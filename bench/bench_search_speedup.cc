// Search-layer speedup: wall-clock of HeuristicSearch with the fast paths
// (hashed signatures + delta recosting) at 1/2/4/8 worker threads against
// the pre-optimization baseline (string signatures, full recost of every
// state, serial frontier), on a generated scenario. The headline check is
// >= 3x at 8 threads vs. the baseline on a large (~70-activity, §4.2)
// workflow; every run also re-verifies that best cost, best signature and
// visited-state count are byte-identical across all configurations.
//
// The speedup check hard-fails only where it is physically meaningful: on
// machines with >= 8 hardware threads (CI perf runners). Elsewhere the
// numbers are measured, printed and emitted, but informational.
// ETLOPT_BENCH_CATEGORY=small|medium|large picks the scenario size
// (default large); ETLOPT_BENCH_QUICK=1 shrinks budgets for smoke runs.
//
// Emits BENCH_search_speedup.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include "optimizer/search.h"
#include "suite_runner.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

double MillisOf(const std::function<void()>& fn, int repeats) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

WorkloadCategory CategoryFromEnv() {
  const char* c = std::getenv("ETLOPT_BENCH_CATEGORY");
  if (c != nullptr) {
    if (std::strcmp(c, "small") == 0) return WorkloadCategory::kSmall;
    if (std::strcmp(c, "medium") == 0) return WorkloadCategory::kMedium;
  }
  return WorkloadCategory::kLarge;
}

int Run() {
  const bool quick = []() {
    const char* q = std::getenv("ETLOPT_BENCH_QUICK");
    return q != nullptr && q[0] == '1';
  }();

  GeneratorOptions gen;
  gen.category = CategoryFromEnv();
  gen.seed = 7;
  auto g = GenerateWorkflow(gen);
  ETLOPT_CHECK_OK(g.status());
  LinearLogCostModel model;

  SearchOptions base_options;
  base_options.max_states = quick ? 20000 : 200000;
  base_options.max_millis = 120000;

  std::printf("search speedup: %s scenario, %zu activities\n",
              std::string(WorkloadCategoryToString(gen.category)).c_str(),
              g->activity_count);

  const int repeats = quick ? 1 : 2;

  // The pre-optimization baseline: serial frontier, every state fully
  // recosted and its string signature materialized.
  SearchOptions baseline = base_options;
  baseline.num_threads = 1;
  baseline.disable_fast_paths = true;
  StatusOr<SearchResult> ref = SearchResult{};
  double baseline_ms = MillisOf(
      [&] { ref = HeuristicSearch(g->workflow, model, baseline); }, repeats);
  ETLOPT_CHECK_OK(ref.status());
  std::printf("  %-22s %9.1f ms  %9.0f states/s  cost %.0f (%zu states)\n",
              "baseline (serial,full)", baseline_ms,
              1000.0 * static_cast<double>(ref->visited_states) / baseline_ms,
              ref->best.cost, ref->visited_states);

  JsonReport report("search_speedup");
  report.Add("activities", static_cast<double>(g->activity_count),
             "activities");
  report.Add("baseline.millis", baseline_ms, "ms");
  report.Add("baseline.states_per_sec",
             1000.0 * static_cast<double>(ref->visited_states) / baseline_ms,
             "states/s");
  report.Add("baseline.best_cost", ref->best.cost, "cost");
  report.Add("baseline.visited_states",
             static_cast<double>(ref->visited_states), "states");

  double t1_ms = 0, t8_ms = 0;
  SearchPerf perf1;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    SearchOptions fast = base_options;
    fast.num_threads = threads;
    StatusOr<SearchResult> r = SearchResult{};
    double ms = MillisOf(
        [&] { r = HeuristicSearch(g->workflow, model, fast); }, repeats);
    ETLOPT_CHECK_OK(r.status());
    // The fast paths must not change the search: identical optimum,
    // identical signature, identical state accounting, at every thread
    // count.
    if (r->best.cost != ref->best.cost ||
        r->best.signature != ref->best.signature ||
        r->visited_states != ref->visited_states) {
      std::fprintf(stderr,
                   "FAIL: fast(%zu threads) diverged from the baseline "
                   "(cost %.17g vs %.17g, visited %zu vs %zu)\n",
                   threads, r->best.cost, ref->best.cost, r->visited_states,
                   ref->visited_states);
      return 1;
    }
    if (threads == 1) {
      t1_ms = ms;
      perf1 = r->perf;
    }
    if (threads == 8) t8_ms = ms;
    char key[64];
    std::snprintf(key, sizeof(key), "fast.t%zu.millis", threads);
    report.Add(key, ms, "ms");
    std::snprintf(key, sizeof(key), "fast.t%zu.states_per_sec", threads);
    report.Add(key,
               1000.0 * static_cast<double>(r->visited_states) / ms,
               "states/s");
    std::printf("  fast %zu thread%s        %9.1f ms  %9.0f states/s  "
                "(%.2fx vs baseline)\n",
                threads, threads == 1 ? " " : "s", ms,
                1000.0 * static_cast<double>(r->visited_states) / ms,
                baseline_ms / ms);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double speedup1 = baseline_ms / t1_ms;
  const double speedup8 = baseline_ms / t8_ms;
  report.Add("hardware_threads", static_cast<double>(hw), "threads");
  report.Add("speedup.fast1_vs_baseline", speedup1, "x");
  report.Add("speedup.fast8_vs_baseline", speedup8, "x");
  report.Add("fast1.delta_recost_share", perf1.delta_share(), "ratio");
  report.Add("fast1.node_cache_hit_rate", perf1.node_cache_hit_rate(),
             "ratio");

  // Zero-copy neighbor generation: the baseline pays one full Workflow
  // copy per generated candidate; the fast path copies only enqueued
  // states (plus per-round scratch refreshes) and rolls everything else
  // back in place. The reduction is deterministic — gate it hard.
  const double copy_reduction =
      perf1.workflow_copies > 0
          ? static_cast<double>(ref->perf.workflow_copies) /
                static_cast<double>(perf1.workflow_copies)
          : static_cast<double>(ref->perf.workflow_copies);
  report.Add("baseline.workflow_copies",
             static_cast<double>(ref->perf.workflow_copies), "copies");
  report.Add("fast1.workflow_copies",
             static_cast<double>(perf1.workflow_copies), "copies");
  report.Add("fast1.undo_applies", static_cast<double>(perf1.undo_applies),
             "undos");
  report.Add("fast1.peak_state_bytes",
             static_cast<double>(perf1.peak_state_bytes), "bytes");
  report.Add("copy_reduction", copy_reduction, "x");
  report.Write();

  std::printf("serial fast paths alone: %.2fx; 8 threads vs baseline: %.2fx "
              "(target >= 3x on >= 8 cores; this machine has %u)\n",
              speedup1, speedup8, hw);
  std::printf("fast paths: %.0f%% of states delta-recosted, %.0f%% node "
              "cache hits\n",
              100.0 * perf1.delta_share(),
              100.0 * perf1.node_cache_hit_rate());
  std::printf("workflow copies: %zu baseline -> %zu zero-copy (%.1fx fewer), "
              "%zu undo applies, peak state %.1f KiB\n",
              ref->perf.workflow_copies, perf1.workflow_copies,
              copy_reduction, perf1.undo_applies,
              static_cast<double>(perf1.peak_state_bytes) / 1024.0);
  if (copy_reduction < 5.0) {
    std::fprintf(stderr, "FAIL: workflow copy reduction %.2fx < 5x\n",
                 copy_reduction);
    return 1;
  }
  if (!quick && speedup1 < 1.0) {
    std::fprintf(stderr,
                 "FAIL: serial fast paths slower than baseline (%.2fx)\n",
                 speedup1);
    return 1;
  }
  if (!quick && hw >= 8 && speedup8 < 3.0) {
    std::fprintf(stderr, "FAIL: 8-thread speedup %.2fx < 3x\n", speedup8);
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
