// Reproduces Table 2 of the paper: execution time, number of visited
// states and improvement over the initial state, per algorithm and
// workflow category.
//
// Paper reference (ICDE'05, Table 2; avg per category):
//            activities | ES: visited improv time(s) | HS: visited improv time(s) | HSG: visited improv time(s)
//   small         20    |     28410    78%   67812   |      978     78%     297   |      72     76%      7
//   medium        40    |     45110*   52%  144000*  |     4929     74%     703   |     538     62%     87
//   large         70    |     34205*   45%  144000*  |    14100     71%    2105   |    1214     47%    584
//   (* ES did not terminate; values at the moment it stopped)
//
// Absolute times are machine-dependent (the paper used a 1.4 GHz
// AthlonXP); the shape to reproduce is ES >> HS >> HS-Greedy in time and
// visited states, with HS matching/approaching ES improvement.
//
// ETLOPT_BENCH_QUICK=1 shrinks the suite for smoke runs.

#include <cstdio>

#include "suite_runner.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

void PrintAlgorithm(const char* name, const AlgorithmStats& s,
                    size_t workflows) {
  std::printf("  %-10s visited %9.0f%s  improvement %5.1f%%  time %8.0f ms\n",
              name, s.avg_visited(),
              s.exhausted == static_cast<int>(workflows) ? " " : "*",
              s.avg_improvement(), s.avg_millis());
}

int Run() {
  SuiteSettings settings = SettingsFromEnv();
  LinearLogCostModelOptions cost_options;
  cost_options.surrogate_key_setup = 500.0;
  LinearLogCostModel model(cost_options);

  auto results = RunSuite(settings, model);
  ETLOPT_CHECK_OK(results.status());

  std::printf("\nTable 2: Execution time, visited states and improvement "
              "over the initial state\n");
  for (const auto& r : *results) {
    std::printf("%s (%zu workflows, avg %.0f activities)\n",
                std::string(WorkloadCategoryToString(r.category)).c_str(),
                r.workflows, r.avg_activities);
    PrintAlgorithm("ES", r.es, r.workflows);
    PrintAlgorithm("HS", r.hs, r.workflows);
    PrintAlgorithm("HS-Greedy", r.hsg, r.workflows);
  }
  std::printf("* budget hit on some workflows (the paper's ES cap analogue)\n");
  std::printf("\npaper reference (avg): small ES 28410/78%%, HS 978/78%%, "
              "HSG 72/76%%; medium HS 4929/74%%, HSG 538/62%%; large HS "
              "14100/71%%, HSG 1214/47%%\n");

  // The §4.2 headline claims, checked on this run:
  for (const auto& r : *results) {
    double speedup = r.hs.avg_millis() > 0
                         ? 100.0 * (r.hs.avg_millis() - r.hsg.avg_millis()) /
                               r.hs.avg_millis()
                         : 0;
    std::printf("%s: HS-Greedy is %.0f%% faster than HS; HS improvement "
                "%.0f%% vs HS-Greedy %.0f%%\n",
                std::string(WorkloadCategoryToString(r.category)).c_str(),
                speedup, r.hs.avg_improvement(), r.hsg.avg_improvement());
  }

  JsonReport report("table2_search");
  for (const auto& r : *results) ReportCategory(report, r);
  report.Write();
  return 0;
}

}  // namespace

int main() { return Run(); }
