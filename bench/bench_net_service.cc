// Networked optimizer service under closed-loop socket load: real TCP
// clients against an OptimizerServer on loopback, the same ETLNET1 frames
// a remote caller would send. Each client thread owns one connection and
// draws requests from a Zipf-distributed working set (hot flows dominate,
// as in a warehouse re-optimizing the same ETL graphs every run),
// blocking on each answer before issuing the next.
//
// Measured: cold/warm round-trip latency, closed-loop throughput in
// req/s with client-observed p50/p99, and the shed path — a second
// server with one worker and a one-slot queue is driven past saturation
// to verify admission control answers ResourceExhausted fast instead of
// queueing or silently dropping.
//
// Gates: load p99 stays under a fixed bound at a minimum req/s, every
// served answer is byte-identical to the in-process answer for the same
// canonical request text, and shed replies are an order of magnitude
// faster than a search.
//
// ETLOPT_BENCH_QUICK=1 shrinks the working set and request counts.
// Emits BENCH_net_service.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/executor.h"
#include "io/plan_format.h"
#include "io/text_format.h"
#include "net/client.h"
#include "net/server.h"
#include "service/optimizer_service.h"
#include "service/shared_result_cache.h"
#include "suite_runner.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct BenchConfig {
  size_t distinct_workflows = 8;
  size_t clients = 8;
  size_t requests_per_client = 150;
  double zipf_exponent = 1.0;
  size_t shed_clients = 8;
  size_t shed_requests_per_client = 12;
  SearchOptions search;
  double p99_gate_ms = 150.0;
  double rps_gate = 200.0;
  double shed_p99_gate_ms = 25.0;
};

// Inverse-CDF Zipf sampler over [0, n).
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double exponent) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Pick(Rng& rng) const {
    double u = rng.UniformDouble();
    for (size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return i;
    }
    return cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

// Nearest-rank percentile; sorts in place.
double Percentile(std::vector<double>& samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  return samples[std::min(rank, samples.size()) - 1];
}

Workflow WorkflowFor(uint64_t seed) {
  GeneratorOptions gen;
  gen.seed = seed;
  auto generated = GenerateWorkflow(gen);
  ETLOPT_CHECK_OK(generated.status());
  return std::move(generated->workflow);
}

// The in-process answer for the same canonical request text a socket
// client sends: identical text in, identical plan bytes out.
std::string InProcessPlanBytes(const CostModel& model,
                               const NetOptimizeRequest& net_request) {
  auto workflow = ParseWorkflowText(net_request.workflow_text);
  ETLOPT_CHECK_OK(workflow.status());
  OptimizerService reference(model);
  OptimizeRequest request;
  request.workflow = std::move(workflow).value();
  request.algorithm = net_request.algorithm;
  request.options = net_request.options;
  auto response = reference.Optimize(std::move(request));
  ETLOPT_CHECK_OK(response.status());
  if (!response->plan->persistable) {
    std::fprintf(stderr, "FAIL: reference plan not serializable\n");
    std::exit(1);
  }
  return SerializePlanBinary(response->plan->plan);
}

struct LoadFigures {
  double cold_avg_ms = 0;
  double warm_avg_ms = 0;
  double throughput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t requests_served = 0;
  uint64_t identity_checked = 0;
  double plan_cache_hit_rate_pct = 0;
  double plan_cache_bytes = 0;
  double result_cache_hit_rate_pct = 0;
  double result_cache_bytes = 0;
};

LoadFigures RunLoadPhase(const BenchConfig& config, const CostModel& model) {
  ServerOptions options;
  options.ephemeral_port = true;
  options.service.num_threads = 4;
  options.service.max_queue = 64;
  options.max_connections = config.clients + 1;
  OptimizerServer server(model, options);
  // The serving stack's shared intermediate-result cache: executions
  // run against it in-process; its counters travel in the stats frame.
  SharedResultCache result_cache;
  server.service().AttachResultCache(&result_cache);
  ETLOPT_CHECK_OK(server.Start());

  // The working set, its wire requests, and the in-process reference
  // answer for each — served bytes are checked against these on every
  // reply of the closed loop.
  std::vector<NetOptimizeRequest> requests;
  std::vector<std::string> expected;
  for (size_t i = 0; i < config.distinct_workflows; ++i) {
    auto request = MakeNetRequest(WorkflowFor(8100 + i),
                                  SearchAlgorithm::kHeuristic, config.search);
    ETLOPT_CHECK_OK(request.status());
    expected.push_back(InProcessPlanBytes(model, *request));
    requests.push_back(std::move(request).value());
  }

  LoadFigures figures;

  // Cold then warm pass over one connection.
  {
    auto client = OptimizerClient::Connect("127.0.0.1", server.port());
    ETLOPT_CHECK_OK(client.status());
    for (size_t i = 0; i < requests.size(); ++i) {
      Clock::time_point issued = Clock::now();
      auto response = client->Optimize(requests[i]);
      ETLOPT_CHECK_OK(response.status());
      figures.cold_avg_ms += MillisSince(issued);
      if (response->cache_hit) {
        std::fprintf(stderr, "FAIL: cold request hit the cache\n");
        std::exit(1);
      }
    }
    figures.cold_avg_ms /= static_cast<double>(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      Clock::time_point issued = Clock::now();
      auto response = client->Optimize(requests[i]);
      ETLOPT_CHECK_OK(response.status());
      figures.warm_avg_ms += MillisSince(issued);
      if (!response->cache_hit) {
        std::fprintf(stderr, "FAIL: warm request missed the cache\n");
        std::exit(1);
      }
      if (SerializePlanBinary(response->plan) != expected[i]) {
        std::fprintf(stderr, "FAIL: warm answer differs from in-process\n");
        std::exit(1);
      }
    }
    figures.warm_avg_ms /= static_cast<double>(requests.size());
  }

  // Closed-loop Zipf load, one connection per client thread.
  ZipfPicker picker(requests.size(), config.zipf_exponent);
  std::vector<std::vector<double>> latencies(config.clients);
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> identity_failures{0};
  Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) {
    latencies[c].reserve(config.requests_per_client);
    clients.emplace_back([&, c] {
      auto client = OptimizerClient::Connect("127.0.0.1", server.port());
      ETLOPT_CHECK_OK(client.status());
      Rng rng(4200 + c);
      for (size_t i = 0; i < config.requests_per_client; ++i) {
        size_t pick = picker.Pick(rng);
        Clock::time_point issued = Clock::now();
        auto response = client->Optimize(requests[pick]);
        while (!response.ok() && response.status().IsResourceExhausted()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          issued = Clock::now();
          response = client->Optimize(requests[pick]);
        }
        ETLOPT_CHECK_OK(response.status());
        latencies[c].push_back(MillisSince(issued));
        if (SerializePlanBinary(response->plan) != expected[pick]) {
          identity_failures.fetch_add(1);
        }
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double elapsed_ms = MillisSince(start);

  if (identity_failures.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu served answers differ from the in-process "
                 "reference\n",
                 static_cast<unsigned long long>(identity_failures.load()));
    std::exit(1);
  }

  std::vector<double> all;
  for (const std::vector<double>& bucket : latencies) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  figures.p50_ms = Percentile(all, 50.0);
  figures.p99_ms = Percentile(all, 99.0);
  figures.throughput_rps =
      static_cast<double>(completed.load()) / (elapsed_ms / 1000.0);
  figures.identity_checked = completed.load();

  // Tenant executions against the serving stack's result cache: one
  // cold run materializes, a second identical run must be served.
  {
    Workflow executed = WorkflowFor(8100);
    ExecutionInput input = GenerateInputFor(executed, 9100, 100);
    CacheOptions copts;
    copts.cache = &result_cache;
    auto baseline = ExecuteWorkflow(executed, input);
    ETLOPT_CHECK_OK(baseline.status());
    for (int run = 0; run < 2; ++run) {
      auto r = ExecuteWorkflow(executed, input, copts);
      ETLOPT_CHECK_OK(r.status());
      if (r->target_data != baseline->target_data) {
        std::fprintf(stderr, "FAIL: cached execution differs\n");
        std::exit(1);
      }
    }
  }

  // Server-side counters fetched over the wire, like any operator would
  // — both caches' figures come from the DECODED stats frame, so the
  // wire fields themselves are exercised.
  {
    auto client = OptimizerClient::Connect("127.0.0.1", server.port());
    ETLOPT_CHECK_OK(client.status());
    auto stats = client->Stats();
    ETLOPT_CHECK_OK(stats.status());
    figures.requests_served = stats->server.requests_served;
    figures.plan_cache_hit_rate_pct = 100.0 * stats->service.cache.hit_rate();
    figures.plan_cache_bytes =
        static_cast<double>(stats->service.cache.bytes);
    figures.result_cache_hit_rate_pct =
        100.0 * stats->service.result_cache.hit_rate();
    figures.result_cache_bytes =
        static_cast<double>(stats->service.result_cache.bytes);
    if (stats->service.result_cache.hits == 0 ||
        stats->service.result_cache.bytes == 0) {
      std::fprintf(stderr,
                   "FAIL: result-cache counters missing from the wire "
                   "stats frame\n");
      std::exit(1);
    }
  }

  ETLOPT_CHECK_OK(server.Stop());
  return figures;
}

struct ShedFigures {
  uint64_t served = 0;
  uint64_t shed = 0;
  uint64_t other_errors = 0;
  double shed_p99_ms = 0;
  uint64_t server_counted_sheds = 0;
};

// Drive a deliberately tiny server (one worker, one queue slot) past
// saturation with all-distinct workflows: every request is a real
// search, so concurrent clients overflow the queue and admission
// control must answer ResourceExhausted immediately.
ShedFigures RunShedPhase(const BenchConfig& config, const CostModel& model) {
  ServerOptions options;
  options.ephemeral_port = true;
  options.service.num_threads = 1;
  options.service.max_queue = 1;
  options.max_connections = config.shed_clients + 1;
  OptimizerServer server(model, options);
  ETLOPT_CHECK_OK(server.Start());

  ShedFigures figures;
  std::atomic<uint64_t> served{0}, shed{0}, other{0};
  std::vector<std::vector<double>> shed_latencies(config.shed_clients);
  std::vector<std::thread> clients;
  clients.reserve(config.shed_clients);
  for (size_t c = 0; c < config.shed_clients; ++c) {
    clients.emplace_back([&, c] {
      auto client = OptimizerClient::Connect("127.0.0.1", server.port());
      ETLOPT_CHECK_OK(client.status());
      for (size_t i = 0; i < config.shed_requests_per_client; ++i) {
        // Distinct seed per request: never a cache hit, always a search.
        auto request = MakeNetRequest(
            WorkflowFor(50000 + c * 1000 + i),
            SearchAlgorithm::kHeuristic, config.search);
        ETLOPT_CHECK_OK(request.status());
        Clock::time_point issued = Clock::now();
        auto response = client->Optimize(*request);
        double rtt = MillisSince(issued);
        if (response.ok()) {
          served.fetch_add(1);
        } else if (response.status().IsResourceExhausted()) {
          shed.fetch_add(1);
          shed_latencies[c].push_back(rtt);
        } else {
          other.fetch_add(1);
          std::fprintf(stderr, "shed phase: unexpected error: %s\n",
                       response.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  figures.served = served.load();
  figures.shed = shed.load();
  figures.other_errors = other.load();
  std::vector<double> all;
  for (const std::vector<double>& bucket : shed_latencies) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  figures.shed_p99_ms = Percentile(all, 99.0);

  {
    auto client = OptimizerClient::Connect("127.0.0.1", server.port());
    ETLOPT_CHECK_OK(client.status());
    auto stats = client->Stats();
    ETLOPT_CHECK_OK(stats.status());
    figures.server_counted_sheds = stats->server.requests_shed;
  }

  ETLOPT_CHECK_OK(server.Stop());
  return figures;
}

int Run() {
  const bool quick = []() {
    const char* q = std::getenv("ETLOPT_BENCH_QUICK");
    return q != nullptr && q[0] == '1';
  }();

  BenchConfig config;
  config.search.max_states = 2000;
  config.search.max_millis = 60000;
  if (quick) {
    config.distinct_workflows = 4;
    config.clients = 4;
    config.requests_per_client = 20;
    config.shed_clients = 4;
    config.shed_requests_per_client = 6;
    config.p99_gate_ms = 400.0;
    config.rps_gate = 40.0;
    config.shed_p99_gate_ms = 50.0;
  }

  LinearLogCostModel model;
  JsonReport report("net_service");
  report.Add("config.distinct_workflows",
             static_cast<double>(config.distinct_workflows), "workflows");
  report.Add("config.clients", static_cast<double>(config.clients),
             "connections");
  report.Add("config.requests_per_client",
             static_cast<double>(config.requests_per_client), "requests");
  report.Add("config.zipf_exponent", config.zipf_exponent, "exponent");

  LoadFigures load = RunLoadPhase(config, model);
  std::printf(
      "load: cold=%8.2fms warm=%7.3fms  %6.0f req/s p50=%7.3fms "
      "p99=%8.3fms served=%llu (all byte-checked)\n",
      load.cold_avg_ms, load.warm_avg_ms, load.throughput_rps, load.p50_ms,
      load.p99_ms, static_cast<unsigned long long>(load.requests_served));
  report.Add("load.cold_avg_ms", load.cold_avg_ms, "ms");
  report.Add("load.warm_avg_ms", load.warm_avg_ms, "ms");
  report.Add("load.throughput_rps", load.throughput_rps, "req/s");
  report.Add("load.p50_ms", load.p50_ms, "ms");
  report.Add("load.p99_ms", load.p99_ms, "ms");
  report.Add("load.requests_served",
             static_cast<double>(load.requests_served), "requests");
  report.Add("load.plan_cache_hit_rate", load.plan_cache_hit_rate_pct,
             "percent");
  report.Add("load.plan_cache_bytes", load.plan_cache_bytes, "bytes");
  report.Add("load.result_cache_hit_rate", load.result_cache_hit_rate_pct,
             "percent");
  report.Add("load.result_cache_bytes", load.result_cache_bytes, "bytes");

  ShedFigures shed = RunShedPhase(config, model);
  std::printf(
      "shed: served=%llu shed=%llu other=%llu shed_p99=%7.3fms "
      "(server counted %llu)\n",
      static_cast<unsigned long long>(shed.served),
      static_cast<unsigned long long>(shed.shed),
      static_cast<unsigned long long>(shed.other_errors),
      shed.shed_p99_ms,
      static_cast<unsigned long long>(shed.server_counted_sheds));
  report.Add("shed.served", static_cast<double>(shed.served), "requests");
  report.Add("shed.shed", static_cast<double>(shed.shed), "requests");
  report.Add("shed.p99_ms", shed.shed_p99_ms, "ms");

  report.Write();

  // Gates. The req/s floor holds AT the fixed p99 bound: a server that
  // trades latency for throughput (or vice versa) fails.
  bool failed = false;
  if (load.p99_ms > config.p99_gate_ms) {
    std::fprintf(stderr, "FAIL: load p99 %.1fms > %.0fms gate\n",
                 load.p99_ms, config.p99_gate_ms);
    failed = true;
  }
  if (load.throughput_rps < config.rps_gate) {
    std::fprintf(stderr, "FAIL: %.0f req/s < %.0f req/s gate\n",
                 load.throughput_rps, config.rps_gate);
    failed = true;
  }
  if (shed.shed == 0 || shed.served == 0) {
    std::fprintf(stderr,
                 "FAIL: saturation must both serve and shed "
                 "(served=%llu shed=%llu)\n",
                 static_cast<unsigned long long>(shed.served),
                 static_cast<unsigned long long>(shed.shed));
    failed = true;
  }
  if (shed.other_errors != 0) {
    std::fprintf(stderr,
                 "FAIL: overload produced %llu non-ResourceExhausted "
                 "errors\n",
                 static_cast<unsigned long long>(shed.other_errors));
    failed = true;
  }
  if (shed.shed > 0 && shed.shed_p99_ms > config.shed_p99_gate_ms) {
    std::fprintf(stderr, "FAIL: shed p99 %.1fms > %.0fms gate\n",
                 shed.shed_p99_ms, config.shed_p99_gate_ms);
    failed = true;
  }
  if (shed.server_counted_sheds < shed.shed) {
    std::fprintf(stderr,
                 "FAIL: server counted %llu sheds, clients saw %llu\n",
                 static_cast<unsigned long long>(shed.server_counted_sheds),
                 static_cast<unsigned long long>(shed.shed));
    failed = true;
  }
  if (failed) return 1;
  std::printf(
      "gates: p99 %.1fms <= %.0fms, %.0f req/s >= %.0f, shed fast "
      "(p99 %.1fms <= %.0fms)\n",
      load.p99_ms, config.p99_gate_ms, load.throughput_rps, config.rps_gate,
      shed.shed_p99_ms, config.shed_p99_gate_ms);
  return 0;
}

}  // namespace

int main() { return Run(); }
