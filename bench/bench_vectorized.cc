// Vectorized engine A/B: rows/sec of the columnar batch engine against
// the serial row engine on three hand-built medium scenarios that stress
// different kernel families:
//
//   selection_heavy    — a deep chain of comparison predicates plus
//                        NotNull/DomainCheck filters (the typed-loop
//                        fast path vs. per-row expression interpretation)
//   join_heavy         — PK-check feeding a hash join on a shared key
//   aggregation_heavy  — grouped aggregation with several accumulators
//
// Every measured run re-verifies that the vectorized output is
// byte-identical to the materializing engine's (target rows, order and
// rows_out) — a benchmark that drifted from the oracle would hard-fail,
// not silently report a speedup.
//
// The headline check is >= 5x rows/sec on selection_heavy (vectorized at
// hardware threads vs. the serial row engine), enforced on machines with
// >= 4 hardware threads; ETLOPT_BENCH_QUICK=1 shrinks the inputs for
// smoke runs and relaxes the check (tiny inputs are dispatch-bound).
//
// Emits BENCH_vectorized.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <thread>

#include "activity/templates.h"
#include "engine/executor.h"
#include "engine/vectorized.h"
#include "expr/expr.h"
#include "suite_runner.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

double MillisOf(const std::function<void()>& fn, int repeats) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct Scenario {
  Workflow workflow;
  ExecutionInput input;
  size_t total_rows = 0;
};

Schema FactSchema() {
  return Schema::MakeOrDie({{"K", DataType::kInt64},
                            {"A", DataType::kInt64},
                            {"B", DataType::kDouble},
                            {"C", DataType::kDouble},
                            {"S", DataType::kString}});
}

std::vector<Record> FactRows(size_t n, uint64_t seed, int64_t key_domain) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Record> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Record({
        Value::Int(static_cast<int64_t>(rng() % key_domain)),
        i % 97 == 0 ? Value::Null()
                    : Value::Int(static_cast<int64_t>(rng() % 1000)),
        Value::Double(uni(rng)),
        Value::Double(uni(rng) * 100.0),
        Value::String("s" + std::to_string(rng() % 32)),
    }));
  }
  return rows;
}

// A deep filter chain: six comparison selections plus NotNull and
// DomainCheck, each keeping most rows so every stage stays hot.
Scenario SelectionHeavy(size_t rows) {
  Scenario s;
  Schema fact = FactSchema();
  Workflow& w = s.workflow;
  NodeId src = w.AddRecordSet({"F", fact, rows});
  NodeId cur = src;
  auto add = [&](StatusOr<Activity> a) {
    cur = *w.AddActivity(*a, {cur});
  };
  add(MakeSelection("s1",
                    Compare(CompareOp::kGe, Column("A"),
                            Literal(Value::Int(20))),
                    0.95));
  add(MakeSelection("s2",
                    Compare(CompareOp::kLt, Column("B"),
                            Literal(Value::Double(0.97))),
                    0.95));
  add(MakeNotNull("s3", "A", 0.95));
  add(MakeSelection("s4",
                    Or(Compare(CompareOp::kLe, Column("C"),
                               Literal(Value::Double(95.0))),
                       Compare(CompareOp::kEq, Column("A"),
                               Literal(Value::Int(7)))),
                    0.95));
  add(MakeDomainCheck("s5", "C", 0.5, 99.5, 0.95));
  add(MakeSelection("s6",
                    And(Compare(CompareOp::kGt, Column("B"),
                                Literal(Value::Double(0.02))),
                        Compare(CompareOp::kNe, Column("A"),
                                Literal(Value::Int(999)))),
                    0.95));
  add(MakeSelection("s7",
                    Compare(CompareOp::kLt, Column("A"), Column("C")),
                    0.7));
  NodeId tgt = w.AddRecordSet({"T", fact, 0});
  ETLOPT_CHECK_OK(w.Connect(cur, tgt));
  ETLOPT_CHECK_OK(w.Finalize());
  s.input.source_data["F"] = FactRows(rows, 11, 5000);
  s.total_rows = rows;
  return s;
}

// PK-check on the build side feeding a hash join, then a post-filter.
Scenario JoinHeavy(size_t rows) {
  Scenario s;
  Schema fact = FactSchema();
  Schema dim = Schema::MakeOrDie({{"K", DataType::kInt64},
                                  {"D", DataType::kDouble}});
  Schema joined = Schema::MakeOrDie({{"K", DataType::kInt64},
                                     {"A", DataType::kInt64},
                                     {"B", DataType::kDouble},
                                     {"C", DataType::kDouble},
                                     {"S", DataType::kString},
                                     {"D", DataType::kDouble}});
  Workflow& w = s.workflow;
  NodeId f = w.AddRecordSet({"F", fact, rows});
  NodeId d = w.AddRecordSet({"D", dim, rows / 4});
  NodeId pk = *w.AddActivity(*MakePrimaryKeyCheck("pk", {"K"}, 0.5), {d});
  NodeId j = *w.AddActivity(*MakeJoin("join", {"K"}, 1.0), {f, pk});
  NodeId sel = *w.AddActivity(
      *MakeSelection("post",
                     Compare(CompareOp::kGe, Column("D"),
                             Literal(Value::Double(0.05))),
                     0.9),
      {j});
  NodeId tgt = w.AddRecordSet({"T", joined, 0});
  ETLOPT_CHECK_OK(w.Connect(sel, tgt));
  ETLOPT_CHECK_OK(w.Finalize());
  s.input.source_data["F"] = FactRows(rows, 23, 2000);
  std::mt19937_64 rng(29);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  auto& drows = s.input.source_data["D"];
  for (size_t i = 0; i < rows / 4; ++i) {
    drows.push_back(Record({Value::Int(static_cast<int64_t>(rng() % 2000)),
                            Value::Double(uni(rng))}));
  }
  s.total_rows = rows + rows / 4;
  return s;
}

// A pre-filter into a grouped aggregation with four accumulators.
Scenario AggregationHeavy(size_t rows) {
  Scenario s;
  Schema fact = FactSchema();
  Schema out = Schema::MakeOrDie({{"K", DataType::kInt64},
                                  {"sum_b", DataType::kDouble},
                                  {"avg_c", DataType::kDouble},
                                  {"n", DataType::kInt64},
                                  {"max_a", DataType::kInt64}});
  Workflow& w = s.workflow;
  NodeId src = w.AddRecordSet({"F", fact, rows});
  NodeId sel = *w.AddActivity(
      *MakeSelection("pre",
                     Compare(CompareOp::kLt, Column("B"),
                             Literal(Value::Double(0.9))),
                     0.9),
      {src});
  NodeId agg = *w.AddActivity(
      *MakeAggregation("agg", {"K"},
                       {{AggFn::kSum, "B", "sum_b"},
                        {AggFn::kAvg, "C", "avg_c"},
                        {AggFn::kCount, "A", "n"},
                        {AggFn::kMax, "A", "max_a"}},
                       0.01),
      {sel});
  NodeId tgt = w.AddRecordSet({"T", out, 0});
  ETLOPT_CHECK_OK(w.Connect(agg, tgt));
  ETLOPT_CHECK_OK(w.Finalize());
  s.input.source_data["F"] = FactRows(rows, 31, 4000);
  s.total_rows = rows;
  return s;
}

// Returns the vectorized-vs-serial speedup at hardware threads, after
// hard-failing (exit) on any output divergence.
double RunScenario(const char* name, const Scenario& s, int repeats,
                   JsonReport* report, bool* identity_ok) {
  StatusOr<ExecutionResult> serial = ExecutionResult{};
  double serial_ms = MillisOf(
      [&] { serial = ExecuteWorkflow(s.workflow, s.input); }, repeats);
  ETLOPT_CHECK_OK(serial.status());

  double vec_hw_ms = 0;
  double t1_ms = 0;
  for (size_t threads : {size_t{1}, size_t{0}}) {  // 0 = hardware threads
    VectorizedOptions options;
    options.num_threads = threads;
    VectorizedStats stats;
    StatusOr<ExecutionResult> vec = ExecutionResult{};
    double ms = MillisOf(
        [&] {
          vec = ExecuteVectorized(s.workflow, s.input, options, &stats);
        },
        repeats);
    ETLOPT_CHECK_OK(vec.status());
    if (vec->target_data != serial->target_data ||
        vec->rows_out != serial->rows_out) {
      std::fprintf(stderr,
                   "FAIL: %s: vectorized(threads=%zu) output differs from "
                   "the row engine\n",
                   name, threads);
      *identity_ok = false;
    }
    char key[96];
    std::snprintf(key, sizeof(key), "%s.vectorized.t%zu.rows_per_sec", name,
                  threads == 0 ? stats.num_threads : threads);
    report->Add(key, 1000.0 * s.total_rows / ms, "rows/s");
    if (threads == 1) {
      t1_ms = ms;
    } else {
      vec_hw_ms = ms;
    }
    std::printf("  %-18s vectorized t%-2zu %8.1f ms  %12.0f rows/s\n", name,
                threads == 0 ? stats.num_threads : threads, ms,
                1000.0 * s.total_rows / ms);
  }

  char key[96];
  std::snprintf(key, sizeof(key), "%s.row_serial.rows_per_sec", name);
  report->Add(key, 1000.0 * s.total_rows / serial_ms, "rows/s");
  std::snprintf(key, sizeof(key), "%s.speedup.vec_vs_row", name);
  double speedup = serial_ms / vec_hw_ms;
  report->Add(key, speedup, "x");
  std::printf("  %-18s row serial     %8.1f ms  %12.0f rows/s\n", name,
              serial_ms, 1000.0 * s.total_rows / serial_ms);
  std::printf("  %-18s speedup %.2fx (t1: %.2fx)\n", name, speedup,
              serial_ms / t1_ms);
  return speedup;
}

int Run() {
  const bool quick = []() {
    const char* q = std::getenv("ETLOPT_BENCH_QUICK");
    return q != nullptr && q[0] == '1';
  }();
  const size_t rows = quick ? 4000 : 400000;
  const int repeats = quick ? 1 : 3;

  std::printf("vectorized A/B: %zu rows per scenario\n", rows);
  JsonReport report("vectorized");
  report.Add("rows_per_scenario", static_cast<double>(rows), "rows");

  bool identity_ok = true;
  double sel_speedup = RunScenario("selection_heavy", SelectionHeavy(rows),
                                   repeats, &report, &identity_ok);
  RunScenario("join_heavy", JoinHeavy(rows), repeats, &report, &identity_ok);
  RunScenario("aggregation_heavy", AggregationHeavy(rows), repeats, &report,
              &identity_ok);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  report.Add("hardware_threads", static_cast<double>(hw), "threads");
  report.Write();

  if (!identity_ok) return 1;
  std::printf("selection_heavy speedup: %.2fx (target >= 5x on >= 4 cores; "
              "this machine has %u)\n",
              sel_speedup, hw);
  if (!quick && hw >= 4 && sel_speedup < 5.0) {
    std::fprintf(stderr, "FAIL: selection_heavy speedup %.2fx < 5x\n",
                 sel_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
