// Optimizer-as-a-service throughput: closed-loop multi-client load against
// OptimizerService, per scenario size (small / medium / large). Each client
// thread draws workflows from a Zipf-distributed working set (a few hot
// workflows dominate, as in a real warehouse where the same ETL flows are
// re-optimized on every run), submits, and blocks on the answer before
// issuing the next request.
//
// Measured per category: cold-miss latency vs. warm-hit latency (the
// headline gate: >= 10x reduction on medium scenarios), closed-loop
// throughput in req/sec, and the cache hit rate of the Zipf mix. Every
// category also cross-checks that a served cached answer is byte-identical
// to a from-scratch search of the same request.
//
// ETLOPT_BENCH_QUICK=1 shrinks the working set and request counts.
// Emits BENCH_service_throughput.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/executor.h"
#include "io/plan_format.h"
#include "service/optimizer_service.h"
#include "service/shared_result_cache.h"
#include "suite_runner.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct BenchConfig {
  size_t distinct_workflows = 10;  // the working set per category
  size_t clients = 4;
  size_t requests_per_client = 60;
  double zipf_exponent = 1.0;
  SearchOptions search;
};

// Inverse-CDF Zipf sampler over [0, n).
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double exponent) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Pick(Rng& rng) const {
    double u = rng.UniformDouble();
    for (size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return i;
    }
    return cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

OptimizeRequest RequestFor(const GeneratedWorkflow& generated,
                           const SearchOptions& options) {
  OptimizeRequest request;
  request.workflow = generated.workflow;
  request.options = options;
  return request;
}

struct CategoryFigures {
  double cold_avg_ms = 0;
  double warm_avg_ms = 0;
  double throughput_rps = 0;
  double load_p50_ms = 0;
  double load_p99_ms = 0;
  double hit_rate_pct = 0;
  uint64_t coalesced = 0;
  uint64_t searches_run = 0;
  double plan_cache_bytes = 0;
  double result_cache_hit_rate_pct = 0;
  double result_cache_bytes = 0;
};

// Nearest-rank percentile; sorts in place.
double Percentile(std::vector<double>& samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  return samples[std::min(rank, samples.size()) - 1];
}

CategoryFigures RunCategoryBench(WorkloadCategory category,
                                 const BenchConfig& config,
                                 const CostModel& model) {
  const std::string name(WorkloadCategoryToString(category));
  auto suite = GenerateSuite(category, config.distinct_workflows,
                             9000 + static_cast<uint64_t>(category) * 100);
  ETLOPT_CHECK_OK(suite.status());

  ServiceOptions service_options;
  service_options.num_threads = config.clients;
  service_options.max_queue = config.clients * 4;
  OptimizerService service(model, service_options);
  SharedResultCache result_cache;
  service.AttachResultCache(&result_cache);

  CategoryFigures figures;

  // Cold pass: every distinct workflow once, all misses.
  for (const GeneratedWorkflow& generated : *suite) {
    auto response = service.Optimize(RequestFor(generated, config.search));
    ETLOPT_CHECK_OK(response.status());
    if (response->cache_hit) {
      std::fprintf(stderr, "FAIL(%s): cold request hit the cache\n",
                   name.c_str());
      std::exit(1);
    }
    figures.cold_avg_ms += response->latency_millis;
  }
  figures.cold_avg_ms /= static_cast<double>(suite->size());

  // Warm pass: same requests, all hits now.
  for (const GeneratedWorkflow& generated : *suite) {
    auto response = service.Optimize(RequestFor(generated, config.search));
    ETLOPT_CHECK_OK(response.status());
    if (!response->cache_hit) {
      std::fprintf(stderr, "FAIL(%s): warm request missed the cache\n",
                   name.c_str());
      std::exit(1);
    }
    figures.warm_avg_ms += response->latency_millis;
  }
  figures.warm_avg_ms /= static_cast<double>(suite->size());

  // Cross-check: the served (cached) answer for workflow 0 is
  // byte-identical to a from-scratch search.
  {
    auto served = service.Optimize(RequestFor((*suite)[0], config.search));
    ETLOPT_CHECK_OK(served.status());
    auto fresh =
        HeuristicSearch((*suite)[0].workflow, model, config.search);
    ETLOPT_CHECK_OK(fresh.status());
    const SearchResult& cached = served->plan->result;
    if (cached.best.cost != fresh->best.cost ||
        cached.best.signature_hash != fresh->best.signature_hash ||
        cached.visited_states != fresh->visited_states) {
      std::fprintf(stderr,
                   "FAIL(%s): cached answer differs from fresh search "
                   "(cost %.17g vs %.17g)\n",
                   name.c_str(), cached.best.cost, fresh->best.cost);
      std::exit(1);
    }
  }

  // Closed-loop Zipf load: stats deltas isolate this phase.
  ServiceStats before = service.Stats();
  ZipfPicker picker(suite->size(), config.zipf_exponent);
  std::atomic<uint64_t> completed{0};
  // Client-observed latency per completed request (queue wait included),
  // one bucket per client thread to avoid contention.
  std::vector<std::vector<double>> latencies(config.clients);
  Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) {
    latencies[c].reserve(config.requests_per_client);
    clients.emplace_back([&, c] {
      Rng rng(77 + c);
      for (size_t i = 0; i < config.requests_per_client; ++i) {
        const GeneratedWorkflow& generated = (*suite)[picker.Pick(rng)];
        Clock::time_point issued = Clock::now();
        auto response =
            service.Submit(RequestFor(generated, config.search)).get();
        // Backpressure rejections are part of closed-loop life; retry
        // after a beat rather than dying.
        while (!response.ok() && response.status().IsResourceExhausted()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          issued = Clock::now();
          response =
              service.Submit(RequestFor(generated, config.search)).get();
        }
        ETLOPT_CHECK_OK(response.status());
        latencies[c].push_back(MillisSince(issued));
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double elapsed_ms = MillisSince(start);
  ServiceStats after = service.Stats();

  std::vector<double> all_latencies;
  for (const std::vector<double>& bucket : latencies) {
    all_latencies.insert(all_latencies.end(), bucket.begin(), bucket.end());
  }
  figures.load_p50_ms = Percentile(all_latencies, 50.0);
  figures.load_p99_ms = Percentile(all_latencies, 99.0);

  figures.throughput_rps =
      static_cast<double>(completed.load()) / (elapsed_ms / 1000.0);
  uint64_t hits = after.cache.hits - before.cache.hits;
  uint64_t misses = after.cache.misses - before.cache.misses;
  figures.hit_rate_pct =
      hits + misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses);
  figures.coalesced = after.cache.coalesced - before.cache.coalesced;
  figures.searches_run = after.searches_run;

  // Tenant executions against the attached result cache (cold run
  // materializes, identical second run is served), so the report's
  // result-cache columns carry real traffic.
  {
    const Workflow& executed = suite->front().workflow;
    ExecutionInput input = GenerateInputFor(executed, 9900, 100);
    CacheOptions copts;
    copts.cache = &result_cache;
    for (int run = 0; run < 2; ++run) {
      auto r = ExecuteWorkflow(executed, input, copts);
      ETLOPT_CHECK_OK(r.status());
    }
  }
  ServiceStats final_stats = service.Stats();
  figures.plan_cache_bytes = static_cast<double>(final_stats.cache.bytes);
  figures.result_cache_hit_rate_pct =
      100.0 * final_stats.result_cache.hit_rate();
  figures.result_cache_bytes =
      static_cast<double>(final_stats.result_cache.bytes);

  std::printf(
      "%-6s cold=%8.2fms warm=%8.4fms speedup=%7.0fx  load: %6.0f req/s "
      "p50=%7.3fms p99=%8.3fms hit=%5.1f%% coalesced=%llu searches=%llu\n",
      name.c_str(), figures.cold_avg_ms, figures.warm_avg_ms,
      figures.cold_avg_ms / figures.warm_avg_ms, figures.throughput_rps,
      figures.load_p50_ms, figures.load_p99_ms, figures.hit_rate_pct,
      static_cast<unsigned long long>(figures.coalesced),
      static_cast<unsigned long long>(figures.searches_run));
  std::fputs(service.StatsReport().c_str(), stderr);
  return figures;
}

int Run() {
  const bool quick = []() {
    const char* q = std::getenv("ETLOPT_BENCH_QUICK");
    return q != nullptr && q[0] == '1';
  }();

  BenchConfig config;
  config.search.max_states = quick ? 5000 : 50000;
  config.search.max_millis = 60000;
  if (quick) {
    config.distinct_workflows = 4;
    config.clients = 2;
    config.requests_per_client = 10;
  }

  LinearLogCostModel model;
  JsonReport report("service_throughput");
  report.Add("config.distinct_workflows",
             static_cast<double>(config.distinct_workflows), "workflows");
  report.Add("config.clients", static_cast<double>(config.clients),
             "threads");
  report.Add("config.requests_per_client",
             static_cast<double>(config.requests_per_client), "requests");
  report.Add("config.zipf_exponent", config.zipf_exponent, "exponent");

  double medium_speedup = 0;
  for (WorkloadCategory category :
       {WorkloadCategory::kSmall, WorkloadCategory::kMedium,
        WorkloadCategory::kLarge}) {
    CategoryFigures figures = RunCategoryBench(category, config, model);
    const std::string prefix(WorkloadCategoryToString(category));
    double speedup = figures.warm_avg_ms > 0
                         ? figures.cold_avg_ms / figures.warm_avg_ms
                         : 0.0;
    if (category == WorkloadCategory::kMedium) medium_speedup = speedup;
    report.Add(prefix + ".cold_avg_ms", figures.cold_avg_ms, "ms");
    report.Add(prefix + ".warm_avg_ms", figures.warm_avg_ms, "ms");
    report.Add(prefix + ".warm_speedup", speedup, "x");
    report.Add(prefix + ".throughput_rps", figures.throughput_rps, "req/s");
    report.Add(prefix + ".load_p50_ms", figures.load_p50_ms, "ms");
    report.Add(prefix + ".load_p99_ms", figures.load_p99_ms, "ms");
    report.Add(prefix + ".hit_rate", figures.hit_rate_pct, "percent");
    report.Add(prefix + ".coalesced",
               static_cast<double>(figures.coalesced), "requests");
    report.Add(prefix + ".searches_run",
               static_cast<double>(figures.searches_run), "searches");
    report.Add(prefix + ".plan_cache_bytes", figures.plan_cache_bytes,
               "bytes");
    report.Add(prefix + ".result_cache_hit_rate",
               figures.result_cache_hit_rate_pct, "percent");
    report.Add(prefix + ".result_cache_bytes", figures.result_cache_bytes,
               "bytes");
  }

  report.Write();

  // The acceptance gate: caching must turn a medium-scenario optimization
  // into a lookup — at least 10x latency reduction cold -> warm.
  if (medium_speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: medium cold->warm speedup %.1fx < 10x gate\n",
                 medium_speedup);
    return 1;
  }
  std::printf("medium cold->warm speedup: %.0fx (gate: >= 10x)\n",
              medium_speedup);
  return 0;
}

}  // namespace

int main() { return Run(); }
