// Shared driver for the paper-table benches: generates the 40-workflow
// evaluation suite (15 small / 15 medium / 10 large, §4.2), runs ES, HS
// and HS-Greedy on every workflow, and aggregates the per-category
// metrics both Table 1 and Table 2 report.

#ifndef ETLOPT_BENCH_SUITE_RUNNER_H_
#define ETLOPT_BENCH_SUITE_RUNNER_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "optimizer/search.h"
#include "workload/generator.h"

namespace etlopt {
namespace bench {

struct AlgorithmStats {
  double sum_quality_pct = 0;
  double sum_improvement_pct = 0;
  double sum_visited = 0;
  double sum_millis = 0;
  int exhausted = 0;
  int runs = 0;

  void Add(const SearchResult& r, double best_known_cost) {
    sum_quality_pct += 100.0 * best_known_cost / r.best.cost;
    sum_improvement_pct += r.improvement_pct();
    sum_visited += static_cast<double>(r.visited_states);
    sum_millis += static_cast<double>(r.elapsed_millis);
    exhausted += r.exhausted ? 1 : 0;
    ++runs;
  }

  double avg_quality() const { return runs ? sum_quality_pct / runs : 0; }
  double avg_improvement() const {
    return runs ? sum_improvement_pct / runs : 0;
  }
  double avg_visited() const { return runs ? sum_visited / runs : 0; }
  double avg_millis() const { return runs ? sum_millis / runs : 0; }
};

struct CategoryResult {
  WorkloadCategory category;
  size_t workflows = 0;
  double avg_activities = 0;
  AlgorithmStats es;
  AlgorithmStats hs;
  AlgorithmStats hsg;
};

struct SuiteSettings {
  size_t small_count = 15;
  size_t medium_count = 15;
  size_t large_count = 10;
  uint64_t base_seed = 1000;
  /// ES budgets per category (the stand-in for the paper's 40-hour cap).
  SearchOptions es_small{.max_states = 15000, .max_millis = 5000};
  SearchOptions es_medium{.max_states = 10000, .max_millis = 5000};
  SearchOptions es_large{.max_states = 8000, .max_millis = 5000};
  SearchOptions heuristic{.max_states = 200000, .max_millis = 15000};
};

inline StatusOr<CategoryResult> RunCategory(WorkloadCategory category,
                                            size_t count, uint64_t base_seed,
                                            const SearchOptions& es_options,
                                            const SearchOptions& hs_options,
                                            const CostModel& model) {
  CategoryResult out;
  out.category = category;
  out.workflows = count;
  ETLOPT_ASSIGN_OR_RETURN(auto suite,
                          GenerateSuite(category, count, base_seed));
  for (size_t i = 0; i < suite.size(); ++i) {
    const Workflow& w = suite[i].workflow;
    out.avg_activities += static_cast<double>(suite[i].activity_count);
    ETLOPT_ASSIGN_OR_RETURN(SearchResult es,
                            ExhaustiveSearch(w, model, es_options));
    ETLOPT_ASSIGN_OR_RETURN(SearchResult hs,
                            HeuristicSearch(w, model, hs_options));
    ETLOPT_ASSIGN_OR_RETURN(SearchResult hsg,
                            HeuristicSearchGreedy(w, model, hs_options));
    // The reference cost: the true optimum when ES exhausted the space,
    // otherwise the best any algorithm found (the paper compares against
    // "the best solution that ES has produced when it stopped"; ours is
    // the tighter of the two references).
    double best_known =
        std::min({es.best.cost, hs.best.cost, hsg.best.cost});
    out.es.Add(es, best_known);
    out.hs.Add(hs, best_known);
    out.hsg.Add(hsg, best_known);
    std::fprintf(stderr, "  [%s %zu/%zu] es=%.0f%s hs=%.0f hsg=%.0f\n",
                 std::string(WorkloadCategoryToString(category)).c_str(),
                 i + 1, count, es.best.cost, es.exhausted ? "" : "*",
                 hs.best.cost, hsg.best.cost);
  }
  out.avg_activities /= static_cast<double>(count);
  return out;
}

inline StatusOr<std::vector<CategoryResult>> RunSuite(
    const SuiteSettings& settings, const CostModel& model) {
  std::vector<CategoryResult> out;
  struct Spec {
    WorkloadCategory category;
    size_t count;
    const SearchOptions* es;
  };
  const Spec specs[] = {
      {WorkloadCategory::kSmall, settings.small_count, &settings.es_small},
      {WorkloadCategory::kMedium, settings.medium_count, &settings.es_medium},
      {WorkloadCategory::kLarge, settings.large_count, &settings.es_large},
  };
  uint64_t seed = settings.base_seed;
  for (const Spec& spec : specs) {
    ETLOPT_ASSIGN_OR_RETURN(
        CategoryResult r,
        RunCategory(spec.category, spec.count, seed, *spec.es,
                    settings.heuristic, model));
    out.push_back(std::move(r));
    seed += 1000;
  }
  return out;
}

/// The current git revision, for stamping bench reports. Falls back to
/// $ETLOPT_GIT_REV, then "unknown", so benches work from tarballs too.
inline std::string GitRevision() {
  if (const char* env = std::getenv("ETLOPT_GIT_REV")) return env;
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  std::string rev;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) rev = buf;
  ::pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

/// Machine-readable bench output: collects (metric, value, units) triples
/// and writes them as BENCH_<name>.json next to the binary's working
/// directory, stamped with the git revision. CI and regression tooling
/// parse these instead of scraping stdout tables.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : name_(std::move(bench_name)) {}

  void Add(const std::string& metric, double value,
           const std::string& units) {
    metrics_.push_back({metric, value, units});
  }

  /// Writes BENCH_<name>.json; returns false (and warns) on I/O failure.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_rev\": \"%s\",\n",
                 name_.c_str(), GitRevision().c_str());
    std::fprintf(f, "  \"metrics\": [\n");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"value\": %.6g, "
                   "\"units\": \"%s\"}%s\n",
                   m.name.c_str(), m.value, m.units.c_str(),
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string units;
  };
  std::string name_;
  std::vector<Metric> metrics_;
};

/// Adds the per-algorithm aggregates of a category to a JsonReport under
/// "<category>.<algo>.<metric>" keys.
inline void ReportCategory(JsonReport& report, const CategoryResult& r) {
  const std::string prefix(WorkloadCategoryToString(r.category));
  report.Add(prefix + ".avg_activities", r.avg_activities, "activities");
  struct Named {
    const char* algo;
    const AlgorithmStats* stats;
  };
  const Named algos[] = {{"es", &r.es}, {"hs", &r.hs}, {"hsg", &r.hsg}};
  for (const Named& a : algos) {
    const std::string p = prefix + "." + a.algo;
    report.Add(p + ".avg_quality", a.stats->avg_quality(), "percent");
    report.Add(p + ".avg_improvement", a.stats->avg_improvement(), "percent");
    report.Add(p + ".avg_visited", a.stats->avg_visited(), "states");
    report.Add(p + ".avg_millis", a.stats->avg_millis(), "ms");
  }
}

/// Reads a "quick mode" flag from the environment so the full suite can be
/// shrunk during development (ETLOPT_BENCH_QUICK=1).
inline SuiteSettings SettingsFromEnv() {
  SuiteSettings s;
  const char* quick = std::getenv("ETLOPT_BENCH_QUICK");
  if (quick != nullptr && quick[0] == '1') {
    s.small_count = 3;
    s.medium_count = 3;
    s.large_count = 2;
    s.es_small = {.max_states = 4000, .max_millis = 3000};
    s.es_medium = {.max_states = 3000, .max_millis = 3000};
    s.es_large = {.max_states = 2000, .max_millis = 3000};
    s.heuristic = {.max_states = 50000, .max_millis = 10000};
  }
  return s;
}

}  // namespace bench
}  // namespace etlopt

#endif  // ETLOPT_BENCH_SUITE_RUNNER_H_
