// Micro-benchmarks of the optimizer's primitive operations (google-
// benchmark): workflow copy, schema regeneration (Refresh), the three
// cost-relevant transitions, state signing/costing, and full vs
// semi-incremental costing (the paper's §4.1 optimization).

#include <benchmark/benchmark.h>

#include "suite_runner.h"
#include "common/macros.h"
#include "cost/state_cost.h"
#include "optimizer/search.h"
#include "optimizer/transitions.h"
#include "workload/generator.h"
#include "workload/scenarios.h"

namespace {

using namespace etlopt;

Workflow MediumWorkflow() {
  GeneratorOptions options;
  options.category = WorkloadCategory::kMedium;
  options.seed = 7;
  auto g = GenerateWorkflow(options);
  ETLOPT_CHECK_OK(g.status());
  return g->workflow;
}

// A swappable adjacent unary pair in `w`.
std::pair<NodeId, NodeId> SwappablePair(const Workflow& w) {
  for (NodeId u : w.ActivityNodeIds()) {
    if (!w.chain(u).is_unary()) continue;
    auto cs = w.Consumers(u);
    if (cs.size() == 1 && w.IsActivity(cs[0]) && w.chain(cs[0]).is_unary() &&
        CanSwap(w, u, cs[0])) {
      return {u, cs[0]};
    }
  }
  ETLOPT_CHECK(false);
  return {kInvalidNode, kInvalidNode};
}

void BM_WorkflowCopy(benchmark::State& state) {
  Workflow w = MediumWorkflow();
  for (auto _ : state) {
    Workflow copy = w;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_WorkflowCopy);

void BM_Refresh(benchmark::State& state) {
  Workflow w = MediumWorkflow();
  for (auto _ : state) {
    ETLOPT_CHECK_OK(w.Refresh());
  }
}
BENCHMARK(BM_Refresh);

void BM_Signature(benchmark::State& state) {
  Workflow w = MediumWorkflow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.Signature());
  }
}
BENCHMARK(BM_Signature);

// Hashed state identity (what the search sets actually key on): no string
// materialization. Compare with BM_Signature.
void BM_SignatureHash(benchmark::State& state) {
  Workflow w = MediumWorkflow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.SignatureHash());
  }
}
BENCHMARK(BM_SignatureHash);

void BM_ApplySwap(benchmark::State& state) {
  Workflow w = MediumWorkflow();
  auto [a, b] = SwappablePair(w);
  for (auto _ : state) {
    auto next = ApplySwap(w, a, b);
    ETLOPT_CHECK_OK(next.status());
    benchmark::DoNotOptimize(*next);
  }
}
BENCHMARK(BM_ApplySwap);

void BM_ApplyDistribute(benchmark::State& state) {
  auto s = BuildFig1Scenario();
  ETLOPT_CHECK_OK(s.status());
  for (auto _ : state) {
    auto next = ApplyDistribute(s->workflow, s->union_node, s->threshold);
    ETLOPT_CHECK_OK(next.status());
    benchmark::DoNotOptimize(*next);
  }
}
BENCHMARK(BM_ApplyDistribute);

void BM_ApplyFactorize(benchmark::State& state) {
  auto s = BuildFig4Scenario(1024);
  ETLOPT_CHECK_OK(s.status());
  for (auto _ : state) {
    auto next = ApplyFactorize(s->workflow, s->union_node, s->sk1, s->sk2);
    ETLOPT_CHECK_OK(next.status());
    benchmark::DoNotOptimize(*next);
  }
}
BENCHMARK(BM_ApplyFactorize);

void BM_StateCostFull(benchmark::State& state) {
  Workflow w = MediumWorkflow();
  LinearLogCostModel model;
  for (auto _ : state) {
    auto c = StateCost(w, model);
    ETLOPT_CHECK_OK(c.status());
    benchmark::DoNotOptimize(*c);
  }
}
BENCHMARK(BM_StateCostFull);

// Delta recosting (§4.1): re-cost a swapped state reusing the base
// breakdown, with the swap's dirty marks seeding the reuse decision.
// Compare with BM_StateCostFull.
void BM_StateCostIncremental(benchmark::State& state) {
  Workflow w = MediumWorkflow();
  LinearLogCostModel model;
  auto base = ComputeCostBreakdown(w, model);
  ETLOPT_CHECK_OK(base.status());
  auto [a, b] = SwappablePair(w);
  auto swapped = ApplySwap(w, a, b);
  ETLOPT_CHECK_OK(swapped.status());
  for (auto _ : state) {
    auto c = IncrementalCostBreakdown(*swapped, *base, model);
    ETLOPT_CHECK_OK(c.status());
    benchmark::DoNotOptimize(c->total);
  }
}
BENCHMARK(BM_StateCostIncremental);

void BM_MakeState(benchmark::State& state) {
  Workflow w = MediumWorkflow();
  LinearLogCostModel model;
  for (auto _ : state) {
    auto st = MakeState(w, model);
    ETLOPT_CHECK_OK(st.status());
    benchmark::DoNotOptimize(st->cost);
  }
}
BENCHMARK(BM_MakeState);

void BM_EnumerateSuccessors(benchmark::State& state) {
  Workflow w = MediumWorkflow();
  LinearLogCostModel model;
  auto st = MakeState(w, model);
  ETLOPT_CHECK_OK(st.status());
  for (auto _ : state) {
    auto succ = EnumerateSuccessors(*st, model);
    ETLOPT_CHECK_OK(succ.status());
    benchmark::DoNotOptimize(succ->size());
  }
}
BENCHMARK(BM_EnumerateSuccessors);

// Mirrors every finished run into a BENCH_transition_throughput.json so
// CI tooling can diff the micros without scraping console output.
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      double ns = run.iterations > 0
                      ? run.real_accumulated_time /
                            static_cast<double>(run.iterations) * 1e9
                      : 0.0;
      json_.Add(run.benchmark_name(), ns, "ns/iter");
    }
    ConsoleReporter::ReportRuns(reports);
  }

  bool WriteJson() const { return json_.Write(); }

 private:
  etlopt::bench::JsonReport json_{"transition_throughput"};
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonMirrorReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.WriteJson();
  return 0;
}
