// Fault-injection and recovery cost on a large (§4.2) generated
// scenario. Two headline gates (hard failures on full runs):
//
//   1. Injector overhead while disarmed <= 2% of plain execution. The
//      binary cannot compare compiled-out vs compiled-in directly, so
//      the bound is measured as (disarmed hook cost in ns) x (hook
//      executions per run, counted by arming an empty schedule) divided
//      by the plain runtime.
//   2. Resuming after a late crash from checkpoints >= 2x faster than a
//      full restart of the same recoverable run.
//
// Every timed recovery run is also checked byte-identical to the plain
// engine's output. ETLOPT_BENCH_QUICK=1 shrinks the input and demotes
// the gates to informational. Emits BENCH_fault_recovery.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>

#include "engine/executor.h"
#include "engine/recovery.h"
#include "fault/fault_injector.h"
#include "suite_runner.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;
namespace fs = std::filesystem;

double MillisOf(const std::function<void()>& fn, int repeats) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

bool SameResult(const ExecutionResult& a, const ExecutionResult& b) {
  return a.target_data == b.target_data && a.rows_out == b.rows_out;
}

// The disarmed fast path of one hook: a relaxed load and a predictable
// branch. Measured in isolation; `sink` keeps the loop observable.
double DisarmedHookNanos(uint64_t iterations) {
  FaultInjector& injector = FaultInjector::Global();
  uint64_t sink = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iterations; ++i) {
    if (injector.armed()) ++sink;
  }
  auto t1 = std::chrono::steady_clock::now();
  if (sink != 0) std::printf("(unreachable %llu)\n",
                             static_cast<unsigned long long>(sink));
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iterations);
}

int Run() {
  const bool quick = []() {
    const char* q = std::getenv("ETLOPT_BENCH_QUICK");
    return q != nullptr && q[0] == '1';
  }();
  const int repeats = quick ? 1 : 3;

  GeneratorOptions gen;
  gen.category = WorkloadCategory::kLarge;
  gen.seed = 7;
  auto g = GenerateWorkflow(gen);
  ETLOPT_CHECK_OK(g.status());

  InputGenOptions igen;
  igen.rows_per_source = quick ? 1000 : 40000;
  igen.key_domain = quick ? 200 : 5000;
  ExecutionInput input = GenerateInputFor(g->workflow, 42, igen);
  size_t total_rows = 0;
  for (const auto& [name, rows] : input.source_data) total_rows += rows.size();
  std::printf("fault recovery: %zu activities, %zu sources, %zu rows\n",
              g->activity_count, input.source_data.size(), total_rows);

  JsonReport report("fault_recovery");
  report.Add("activities", static_cast<double>(g->activity_count),
             "activities");
  report.Add("source_rows", static_cast<double>(total_rows), "rows");

  // --- Plain engine baseline (reference output + runtime). -------------
  StatusOr<ExecutionResult> plain = ExecutionResult{};
  double plain_ms = MillisOf(
      [&] { plain = ExecuteWorkflow(g->workflow, input); }, repeats);
  ETLOPT_CHECK_OK(plain.status());
  report.Add("plain.millis", plain_ms, "ms");
  std::printf("  %-24s %9.1f ms\n", "plain execute", plain_ms);

  // --- Gate 1: disarmed injector overhead. -----------------------------
  // Hook executions of one plain run, counted by pure hit counting.
  uint64_t hooks_per_run = 0;
  {
    FaultInjector::Global().Arm(FaultSchedule{});
    auto counted = ExecuteWorkflow(g->workflow, input);
    ETLOPT_CHECK_OK(counted.status());
    hooks_per_run = FaultInjector::Global().Stats().total_hits();
    FaultInjector::Global().Disarm();
  }
  double hook_ns = DisarmedHookNanos(quick ? (1u << 22) : (1u << 25));
  double overhead_pct =
      hooks_per_run == 0
          ? 0.0
          : 100.0 * (hook_ns * static_cast<double>(hooks_per_run)) /
                (plain_ms * 1e6);
  report.Add("hooks.per_run", static_cast<double>(hooks_per_run), "hits");
  report.Add("hooks.disarmed_ns", hook_ns, "ns");
  report.Add("injector.disabled_overhead_pct", overhead_pct, "percent");
  std::printf(
      "  disarmed hooks: %llu per run x %.2f ns = %.4f%% of runtime "
      "(target <= 2%%)\n",
      static_cast<unsigned long long>(hooks_per_run), hook_ns, overhead_pct);

  // --- Gate 2: resume from checkpoints vs full restart. ----------------
  const fs::path dir =
      fs::temp_directory_path() / "etlopt_bench_fault_recovery";
  RecoveryOptions recovery;
  recovery.checkpoint_dir = dir.string();
  recovery.checkpoint_policy = CheckpointPolicy::kAllNodes;
  recovery.remove_checkpoints_on_success = false;
  RecoverableExecutor exec(recovery);

  // A full recoverable run from scratch (this is what "restart from the
  // beginning" costs; checkpoint writes included).
  StatusOr<ExecutionResult> recovered = ExecutionResult{};
  double full_ms = MillisOf(
      [&] {
        fs::remove_all(dir);
        recovered = exec.Execute(g->workflow, input);
      },
      repeats);
  ETLOPT_CHECK_OK(recovered.status());
  if (!SameResult(*plain, *recovered)) {
    std::fprintf(stderr,
                 "FAIL: recoverable output differs from the plain engine\n");
    return 1;
  }
  report.Add("full_restart.millis", full_ms, "ms");
  report.Add("checkpoint.overhead_pct", 100.0 * (full_ms - plain_ms) /
                                            plain_ms,
             "percent");
  std::printf("  %-24s %9.1f ms  (checkpointing overhead %.1f%%)\n",
              "recoverable full run", full_ms,
              100.0 * (full_ms - plain_ms) / plain_ms);

  // How many activity executions one recoverable run performs, so the
  // crash can be placed on the last one.
  uint64_t activity_hits = 0;
  {
    fs::remove_all(dir);
    FaultInjector::Global().Arm(FaultSchedule{});
    auto counted = exec.Execute(g->workflow, input);
    ETLOPT_CHECK_OK(counted.status());
    activity_hits = FaultInjector::Global()
                        .Stats()
                        .hits[static_cast<int>(FaultSite::kActivityExecute)];
    FaultInjector::Global().Disarm();
  }
  if (activity_hits == 0) {
    std::printf(
        "fault hooks compiled out (ETLOPT_NO_FAULT_INJECTION); recovery "
        "speedup not measurable, skipping\n");
    report.Write();
    fs::remove_all(dir);
    return 0;
  }

  // Crash on the last activity, resume from the surviving checkpoints.
  // The crashed run recreates the checkpoint state each repeat; only the
  // resume itself is timed.
  RecoveryStats resume_stats;
  double resume_ms = 1e300;
  for (int i = 0; i < repeats; ++i) {
    fs::remove_all(dir);
    {
      FaultSchedule schedule;
      FaultSpec spec;
      spec.site = FaultSite::kActivityExecute;
      spec.hit = activity_hits - 1;
      spec.kind = FaultKind::kCrash;
      schedule.faults.push_back(spec);
      ScopedFaultInjection arm(schedule);
      auto crashed = exec.Execute(g->workflow, input);
      if (crashed.ok()) {
        std::fprintf(stderr, "FAIL: scheduled crash did not fire\n");
        return 1;
      }
    }
    auto t0 = std::chrono::steady_clock::now();
    recovered = exec.Execute(g->workflow, input, &resume_stats);
    auto t1 = std::chrono::steady_clock::now();
    ETLOPT_CHECK_OK(recovered.status());
    resume_ms = std::min(
        resume_ms,
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  if (!SameResult(*plain, *recovered)) {
    std::fprintf(stderr,
                 "FAIL: resumed output differs from the plain engine\n");
    return 1;
  }
  if (!resume_stats.resumed) {
    std::fprintf(stderr, "FAIL: resume did not load any checkpoint\n");
    return 1;
  }
  double speedup = full_ms / resume_ms;
  report.Add("resume.millis", resume_ms, "ms");
  report.Add("resume.checkpoints_loaded",
             static_cast<double>(resume_stats.checkpoints_loaded), "files");
  report.Add("resume.nodes_skipped",
             static_cast<double>(resume_stats.nodes_skipped), "nodes");
  report.Add("recovery.speedup_vs_restart", speedup, "x");
  report.Write();
  std::printf("  %-24s %9.1f ms  (%llu checkpoints, %llu nodes skipped)\n",
              "resume after late crash", resume_ms,
              static_cast<unsigned long long>(resume_stats.checkpoints_loaded),
              static_cast<unsigned long long>(resume_stats.nodes_skipped));
  std::printf("recovery speedup vs full restart: %.2fx (target >= 2x)\n",
              speedup);
  fs::remove_all(dir);

  if (!quick) {
    if (overhead_pct > 2.0) {
      std::fprintf(stderr,
                   "FAIL: disarmed injector overhead %.3f%% > 2%%\n",
                   overhead_pct);
      return 1;
    }
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: recovery speedup %.2fx < 2x vs full restart\n",
                   speedup);
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
