// EXTENSION bench (beyond the paper's tables): simulated annealing vs the
// paper's HS / HS-Greedy on the medium workload suite — does randomized
// search close the gap to the heuristic at comparable state counts?
//
// ETLOPT_BENCH_QUICK=1 shrinks the suite.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/macros.h"
#include "optimizer/annealing.h"
#include "optimizer/search.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;

int Run() {
  const char* quick = std::getenv("ETLOPT_BENCH_QUICK");
  size_t count = (quick != nullptr && quick[0] == '1') ? 3 : 10;

  LinearLogCostModelOptions cost_options;
  cost_options.surrogate_key_setup = 500.0;
  LinearLogCostModel model(cost_options);

  auto suite = GenerateSuite(WorkloadCategory::kMedium, count, 9090);
  ETLOPT_CHECK_OK(suite.status());

  struct Row {
    const char* name;
    double sum_improvement = 0;
    double sum_visited = 0;
    double sum_millis = 0;
  };
  Row rows[] = {{"HS"}, {"HS-Greedy"}, {"SA (1 run)"}, {"SA (best of 3)"}};

  SearchOptions budget;
  budget.max_millis = 20000;

  for (const auto& g : *suite) {
    auto hs = HeuristicSearch(g.workflow, model, budget);
    ETLOPT_CHECK_OK(hs.status());
    rows[0].sum_improvement += hs->improvement_pct();
    rows[0].sum_visited += static_cast<double>(hs->visited_states);
    rows[0].sum_millis += static_cast<double>(hs->elapsed_millis);

    auto hsg = HeuristicSearchGreedy(g.workflow, model, budget);
    ETLOPT_CHECK_OK(hsg.status());
    rows[1].sum_improvement += hsg->improvement_pct();
    rows[1].sum_visited += static_cast<double>(hsg->visited_states);
    rows[1].sum_millis += static_cast<double>(hsg->elapsed_millis);

    double best_of_three = 0;
    for (uint64_t restart = 0; restart < 3; ++restart) {
      AnnealingOptions annealing;
      annealing.seed = 100 + restart;
      auto sa = SimulatedAnnealingSearch(g.workflow, model, budget, annealing);
      ETLOPT_CHECK_OK(sa.status());
      if (restart == 0) {
        rows[2].sum_improvement += sa->improvement_pct();
        rows[2].sum_visited += static_cast<double>(sa->visited_states);
        rows[2].sum_millis += static_cast<double>(sa->elapsed_millis);
      }
      best_of_three = std::max(best_of_three, sa->improvement_pct());
      rows[3].sum_visited += static_cast<double>(sa->visited_states);
      rows[3].sum_millis += static_cast<double>(sa->elapsed_millis);
    }
    rows[3].sum_improvement += best_of_three;
  }

  std::printf("Simulated-annealing extension over %zu medium workflows\n",
              count);
  std::printf("%-16s %14s %14s %12s\n", "algorithm", "improvement %",
              "visited states", "time ms");
  for (const Row& r : rows) {
    std::printf("%-16s %14.1f %14.0f %12.0f\n", r.name,
                r.sum_improvement / count, r.sum_visited / count,
                r.sum_millis / count);
  }
  std::printf("\nreading: the paper's structured heuristic should beat or "
              "match randomized search at far fewer visited states; SA "
              "narrows the gap with restarts at a steep state cost.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
