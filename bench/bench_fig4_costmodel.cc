// Reproduces Fig. 4 of the paper: the cost arithmetic showing that
// Distribute (case 2) and Factorize (case 3) reduce state cost.
//
// Paper setting: two flows of n = 8 rows, surrogate-key cost n*log2(n),
// selection cost n with 50% selectivity, union cost ignored. The paper
// reports c1 = 56, c2 = 32, c3 = 24 (its illustrative formulas).
//
// We print (a) the paper's formulas evaluated literally, and (b) the
// library's exact cost accounting for the three states constructed with
// real transitions — with and without an SK setup cost. Under exact
// accounting (which, unlike the paper's formulas, charges the factorized
// SK for the full merged flow), factorization wins exactly when the SK
// carries a per-instance setup cost — the paper's own caching argument
// for Factorize (§2.2).

#include <cstdio>

#include "common/macros.h"
#include "cost/state_cost.h"
#include "optimizer/transitions.h"
#include "suite_runner.h"
#include "workload/scenarios.h"

namespace {

using namespace etlopt;

int Run() {
  const double n = 8;
  std::printf("Fig. 4 paper formulas (n = %.0f rows per flow):\n", n);
  std::printf("  c1 = 2n*log2(n) + n           = %.0f   (initial)\n",
              2 * NLogN(n) + n);
  std::printf("  c2 = 2(n + (n/2)log2(n/2))    = %.0f   (after DIS)\n",
              2 * (n + NLogN(n / 2)));
  std::printf("  c3 = 2n + (n/2)log2(n/2)      = %.0f   (after DIS+FAC)\n",
              2 * n + NLogN(n / 2));

  // The three states, built with real transitions.
  auto s = BuildFig4Scenario(/*rows_per_flow=*/n);
  ETLOPT_CHECK_OK(s.status());
  const Workflow& case1 = s->workflow;

  auto case2 = ApplyDistribute(case1, s->union_node, s->selection);
  ETLOPT_CHECK_OK(case2.status());
  // Push each selection clone before its SK (it is 50% selective).
  Workflow case2w = *case2;
  for (NodeId sk : {s->sk1, s->sk2}) {
    NodeId clone = case2w.Consumers(sk)[0];
    auto swapped = ApplySwap(case2w, sk, clone);
    ETLOPT_CHECK_OK(swapped.status());
    case2w = std::move(swapped).value();
  }

  // Case 3: from case 2, factorize the two SKs after the union.
  auto case3 = ApplyFactorize(case2w, s->union_node, s->sk1, s->sk2);
  ETLOPT_CHECK_OK(case3.status());

  bench::JsonReport report("fig4_costmodel");
  report.Add("paper.c1", 2 * NLogN(n) + n, "cost");
  report.Add("paper.c2", 2 * (n + NLogN(n / 2)), "cost");
  report.Add("paper.c3", 2 * n + NLogN(n / 2), "cost");
  for (double setup : {0.0, 16.0}) {
    LinearLogCostModelOptions options;
    options.surrogate_key_setup = setup;
    LinearLogCostModel model(options);
    double c1 = *StateCost(case1, model);
    double c2 = *StateCost(case2w, model);
    double c3 = *StateCost(*case3, model);
    std::printf("\nexact library accounting (SK setup cost = %.0f):\n",
                setup);
    std::printf("  case 1 (initial, SK per flow then sigma) : %.0f\n", c1);
    std::printf("  case 2 (sigma distributed before SKs)    : %.0f\n", c2);
    std::printf("  case 3 (SK factorized after union)       : %.0f\n", c3);
    std::printf("  ranking: %s\n",
                setup == 0.0
                    ? (c2 < c1 && c2 <= c3 ? "DIS wins (c2 lowest)"
                                           : "unexpected")
                    : (c3 < c2 && c2 < c1 ? "c1 > c2 > c3 as in the paper"
                                          : "unexpected"));
    const char* prefix = setup == 0.0 ? "exact.setup0" : "exact.setup16";
    report.Add(std::string(prefix) + ".c1", c1, "cost");
    report.Add(std::string(prefix) + ".c2", c2, "cost");
    report.Add(std::string(prefix) + ".c3", c3, "cost");
  }
  report.Write();
  return 0;
}

}  // namespace

int main() { return Run(); }
