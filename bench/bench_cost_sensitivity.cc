// Ablation (beyond the paper's tables): plan sensitivity to the cost
// model. The optimizer is cost-model agnostic (§2.2); this bench checks
// how often the *chosen plan* actually changes when the simple row-count
// model is swapped for the physical external-sort model, and what each
// plan costs under the other model's lens.
//
// ETLOPT_BENCH_QUICK=1 shrinks the suite.

#include <cstdio>
#include <cstdlib>

#include "common/macros.h"
#include "cost/external_cost_model.h"
#include "optimizer/search.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;

int Run() {
  const char* quick = std::getenv("ETLOPT_BENCH_QUICK");
  size_t count = (quick != nullptr && quick[0] == '1') ? 3 : 10;

  LinearLogCostModel logical;
  ExternalSortCostModelOptions phys_options;
  phys_options.memory_rows = 4000;  // smaller than most intermediate flows
  phys_options.merge_fanin = 8;
  ExternalSortCostModel physical(phys_options);

  auto suite = GenerateSuite(WorkloadCategory::kMedium, count, 5150);
  ETLOPT_CHECK_OK(suite.status());

  size_t plans_differ = 0;
  double sum_logical_improvement = 0;
  double sum_physical_improvement = 0;
  double sum_cross_penalty_pct = 0;
  for (const auto& g : *suite) {
    auto by_logical = HeuristicSearch(g.workflow, logical);
    auto by_physical = HeuristicSearch(g.workflow, physical);
    ETLOPT_CHECK_OK(by_logical.status());
    ETLOPT_CHECK_OK(by_physical.status());
    sum_logical_improvement += by_logical->improvement_pct();
    sum_physical_improvement += by_physical->improvement_pct();
    if (by_logical->best.signature != by_physical->best.signature) {
      ++plans_differ;
    }
    // How much worse is the logical model's plan when judged physically?
    auto logical_plan_physical_cost =
        StateCost(by_logical->best.workflow, physical);
    ETLOPT_CHECK_OK(logical_plan_physical_cost.status());
    double penalty = 100.0 *
                     (*logical_plan_physical_cost - by_physical->best.cost) /
                     by_physical->best.cost;
    sum_cross_penalty_pct += penalty;
  }

  std::printf("cost-model sensitivity over %zu medium workflows\n", count);
  std::printf("  plans differ between models          : %zu / %zu\n",
              plans_differ, count);
  std::printf("  avg improvement (row-count model)    : %.1f%%\n",
              sum_logical_improvement / count);
  std::printf("  avg improvement (external-sort model): %.1f%%\n",
              sum_physical_improvement / count);
  std::printf("  avg physical-cost penalty of using the row-count plan: "
              "%.1f%%\n",
              sum_cross_penalty_pct / count);
  std::printf("\nreading: the rewrites transfer across cost models; the "
              "penalty quantifies what a physical-level model adds — the "
              "paper's future-work direction.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
