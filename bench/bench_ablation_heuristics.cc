// Ablation of the Heuristic Search phases (beyond the paper's tables):
// how much of HS's improvement does each Fig. 7 phase contribute?
//
// Runs HS on a medium suite with each phase disabled in turn and reports
// the average improvement over the initial state and states visited.
//
// ETLOPT_BENCH_QUICK=1 shrinks the suite.

#include <cstdio>
#include <cstdlib>

#include "common/macros.h"
#include "optimizer/search.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;

struct Variant {
  const char* name;
  SearchOptions options;
};

int Run() {
  const char* quick = std::getenv("ETLOPT_BENCH_QUICK");
  size_t count = (quick != nullptr && quick[0] == '1') ? 3 : 10;

  LinearLogCostModelOptions cost_options;
  cost_options.surrogate_key_setup = 500.0;
  LinearLogCostModel model(cost_options);

  SearchOptions base;
  base.max_millis = 20000;

  Variant variants[] = {
      {"full HS (paper)", base},
      {"no Phase I sweep", base},
      {"no Factorize (II)", base},
      {"no Distribute (III)", base},
      {"no Phase IV resweep", base},
      {"swaps only (I+IV)", base},
  };
  variants[1].options.enable_phase1_sweep = false;
  variants[2].options.enable_factorize = false;
  variants[3].options.enable_distribute = false;
  variants[4].options.enable_phase4_resweep = false;
  variants[5].options.enable_factorize = false;
  variants[5].options.enable_distribute = false;

  auto suite = GenerateSuite(WorkloadCategory::kMedium, count, 4242);
  ETLOPT_CHECK_OK(suite.status());

  std::printf("HS phase ablation over %zu medium workflows\n", count);
  std::printf("%-22s %14s %14s %12s\n", "variant", "improvement %",
              "visited states", "time ms");
  for (const Variant& v : variants) {
    double sum_improvement = 0;
    double sum_visited = 0;
    double sum_millis = 0;
    for (const auto& g : *suite) {
      auto r = HeuristicSearch(g.workflow, model, v.options);
      ETLOPT_CHECK_OK(r.status());
      sum_improvement += r->improvement_pct();
      sum_visited += static_cast<double>(r->visited_states);
      sum_millis += static_cast<double>(r->elapsed_millis);
    }
    std::printf("%-22s %14.1f %14.0f %12.0f\n", v.name,
                sum_improvement / count, sum_visited / count,
                sum_millis / count);
  }
  std::printf("\nreading: dropping Distribute or the swap sweeps should "
              "cost the most improvement; dropping Factorize matters when "
              "surrogate keys carry setup costs.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
