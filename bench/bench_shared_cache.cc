// K-tenant shared-result-cache bench: the tentpole gate of the shared
// intermediate-result cache. K=8 tenants run workflows generated with
// GeneratorOptions::backbone_overlap swept over {0, 0.5, 1.0}; at each
// overlap the bench measures total executed work (sum of rows produced
// by actually-executed activity nodes) across all tenants, cached vs.
// K independent uncached runs.
//
// Hard gates (full runs; ETLOPT_BENCH_QUICK=1 shrinks inputs and
// demotes them to informational):
//
//   1. At overlap=1.0 the cached fleet executes >= 3x less total work
//      than 8 independent uncached runs — superlinear sharing, since a
//      single tenant saves nothing.
//   2. Every tenant's cached output is byte-identical to its own
//      uncached run (target bytes and per-node rows_out).
//   3. Cache-off execution is bit-identical to the plain engine run
//      (the CacheOptions default must change nothing).
//
// The gated pass runs tenants as sequential arrivals (tenant t starts
// after t-1 finished) — the steady-state sharing a warm fleet sees. A
// second, informational pass starts all K tenants in the same instant
// on one thread each: simultaneous cold start is the cache's worst
// case (the deadlock-free lease protocol refuses to wait while holding
// a lease, so racing tenants degrade to recomputation), and the bench
// reports how much sharing survives it rather than gating on timing.
// Emits BENCH_shared_cache.json.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "engine/executor.h"
#include "service/shared_result_cache.h"
#include "suite_runner.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

constexpr size_t kTenants = 8;

struct Tenant {
  Workflow workflow;
  ExecutionInput input;
  ExecutionResult uncached;
  size_t uncached_work = 0;
};

size_t TotalRowsOut(const ExecutionResult& r) {
  size_t n = 0;
  for (const auto& [id, rows] : r.rows_out) n += rows;
  return n;
}

bool SameResult(const ExecutionResult& a, const ExecutionResult& b) {
  return a.target_data == b.target_data && a.rows_out == b.rows_out;
}

std::vector<Tenant> MakeTenants(double overlap, size_t rows_per_source) {
  std::vector<Tenant> tenants(kTenants);
  for (size_t t = 0; t < kTenants; ++t) {
    GeneratorOptions gen;
    gen.category = WorkloadCategory::kMedium;
    gen.seed = 7000 + t;
    gen.backbone_overlap = overlap;
    auto g = GenerateWorkflow(gen);
    ETLOPT_CHECK_OK(g.status());
    tenants[t].workflow = std::move(g->workflow);
    // One shared input seed: overlapping flows read identical source
    // data across tenants — the premise of cross-tenant sharing.
    tenants[t].input =
        GenerateInputFor(tenants[t].workflow, 4242, rows_per_source);
    auto r = ExecuteWorkflow(tenants[t].workflow, tenants[t].input);
    ETLOPT_CHECK_OK(r.status());
    tenants[t].uncached = std::move(r).value();
    tenants[t].uncached_work = TotalRowsOut(tenants[t].uncached);
  }
  return tenants;
}

struct OverlapFigures {
  size_t uncached_work = 0;
  size_t cached_work = 0;        // sequential arrivals (the gated pass)
  size_t concurrent_work = 0;    // simultaneous cold start (informational)
  double work_ratio = 0;
  double concurrent_ratio = 0;
  double hit_rate_pct = 0;
  size_t cache_bytes = 0;
  uint64_t concurrent_coalesced = 0;
  uint64_t concurrent_busy = 0;
  bool byte_identical = true;
};

double Ratio(size_t uncached, size_t cached) {
  return cached == 0 ? 0.0
                     : static_cast<double>(uncached) /
                           static_cast<double>(cached);
}

OverlapFigures RunOverlap(double overlap, size_t rows_per_source) {
  std::vector<Tenant> tenants = MakeTenants(overlap, rows_per_source);

  OverlapFigures figures;
  for (const Tenant& t : tenants) figures.uncached_work += t.uncached_work;

  // Gate 3 material: the cache-off path (default CacheOptions) must be
  // bit-identical to the plain engine run.
  {
    auto off = ExecuteWorkflow(tenants[0].workflow, tenants[0].input,
                               CacheOptions{});
    ETLOPT_CHECK_OK(off.status());
    if (!SameResult(*off, tenants[0].uncached)) {
      std::fprintf(stderr, "FAIL: cache-off run differs from plain run\n");
      std::exit(1);
    }
  }

  // Gated pass: sequential arrivals against one shared cache. Tenant 0
  // pays full price and publishes; later tenants hit at every shared
  // cut point and compute only their tenant-specific work.
  {
    SharedResultCache cache;
    CacheOptions copts;
    copts.cache = &cache;
    for (size_t t = 0; t < kTenants; ++t) {
      auto r = ExecuteWorkflow(tenants[t].workflow, tenants[t].input, copts);
      ETLOPT_CHECK_OK(r.status());
      figures.cached_work += r->cache.rows_computed;
      if (!SameResult(*r, tenants[t].uncached)) {
        figures.byte_identical = false;
      }
    }
    ResultCacheStats stats = cache.Stats();
    figures.hit_rate_pct = 100.0 * stats.hit_rate();
    figures.cache_bytes = stats.bytes;
  }
  figures.work_ratio = Ratio(figures.uncached_work, figures.cached_work);

  // Informational pass: all K tenants start in the same instant against
  // a fresh cache (worst case for the no-wait-while-leasing protocol).
  {
    SharedResultCache cache;
    std::vector<ExecutionResult> results(kTenants);
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(kTenants);
    for (size_t t = 0; t < kTenants; ++t) {
      threads.emplace_back([&, t] {
        CacheOptions copts;
        copts.cache = &cache;
        auto r = ExecuteWorkflow(tenants[t].workflow, tenants[t].input, copts);
        if (!r.ok()) {
          failed = true;
          return;
        }
        results[t] = std::move(r).value();
      });
    }
    for (std::thread& th : threads) th.join();
    if (failed.load()) {
      std::fprintf(stderr, "FAIL: concurrent cached execution errored\n");
      std::exit(1);
    }
    for (size_t t = 0; t < kTenants; ++t) {
      figures.concurrent_work += results[t].cache.rows_computed;
      if (!SameResult(results[t], tenants[t].uncached)) {
        figures.byte_identical = false;
      }
    }
    ResultCacheStats stats = cache.Stats();
    figures.concurrent_coalesced = stats.coalesced;
    figures.concurrent_busy = stats.busy;
  }
  figures.concurrent_ratio =
      Ratio(figures.uncached_work, figures.concurrent_work);
  return figures;
}

int Run() {
  const bool quick = []() {
    const char* q = std::getenv("ETLOPT_BENCH_QUICK");
    return q != nullptr && q[0] == '1';
  }();
  const size_t rows_per_source = quick ? 200 : 2000;

  JsonReport report("shared_cache");
  report.Add("config.tenants", static_cast<double>(kTenants), "tenants");
  report.Add("config.rows_per_source",
             static_cast<double>(rows_per_source), "rows");

  double gate_ratio = 0.0;
  bool all_identical = true;
  for (double overlap : {0.0, 0.5, 1.0}) {
    OverlapFigures f = RunOverlap(overlap, rows_per_source);
    std::printf(
        "overlap=%.1f  work uncached=%10zu cached=%10zu ratio=%6.2fx  "
        "hit=%5.1f%% bytes=%zu  concurrent=%6.2fx "
        "(coalesced=%llu busy=%llu) %s\n",
        overlap, f.uncached_work, f.cached_work, f.work_ratio,
        f.hit_rate_pct, f.cache_bytes, f.concurrent_ratio,
        static_cast<unsigned long long>(f.concurrent_coalesced),
        static_cast<unsigned long long>(f.concurrent_busy),
        f.byte_identical ? "" : "OUTPUT-MISMATCH");
    const std::string prefix = StrFormat("overlap_%.0f", overlap * 100.0);
    report.Add(prefix + ".uncached_work",
               static_cast<double>(f.uncached_work), "rows");
    report.Add(prefix + ".cached_work",
               static_cast<double>(f.cached_work), "rows");
    report.Add(prefix + ".work_ratio", f.work_ratio, "x");
    report.Add(prefix + ".hit_rate", f.hit_rate_pct, "percent");
    report.Add(prefix + ".cache_bytes",
               static_cast<double>(f.cache_bytes), "bytes");
    report.Add(prefix + ".concurrent_work_ratio", f.concurrent_ratio, "x");
    report.Add(prefix + ".concurrent_coalesced",
               static_cast<double>(f.concurrent_coalesced), "flights");
    report.Add(prefix + ".concurrent_busy",
               static_cast<double>(f.concurrent_busy), "flights");
    if (overlap == 1.0) gate_ratio = f.work_ratio;
    all_identical = all_identical && f.byte_identical;
  }
  report.Write();

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: cached tenant outputs differ from uncached runs\n");
    return 1;
  }
  std::printf("full-overlap work reduction at K=%zu: %.2fx (gate: >= 3x)\n",
              kTenants, gate_ratio);
  if (gate_ratio < 3.0) {
    std::fprintf(stderr, "%s: %.2fx < 3x work-reduction gate at K=%zu\n",
                 quick ? "note (quick mode)" : "FAIL", gate_ratio, kTenants);
    if (!quick) return 1;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
