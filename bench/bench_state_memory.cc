// State-memory bench: workflow copy traffic and state footprint of the
// search algorithms, with and without zero-copy neighbor generation.
//
// Runs HeuristicSearch, HS-Greedy, ExhaustiveSearch and simulated
// annealing on a generated scenario twice — disable_fast_paths (the
// copy-per-candidate baseline) vs. the default zero-copy path — and
// reports, per algorithm: full Workflow copies, surgery undo applies,
// peak state bytes, wall clock. Results must be byte-identical across
// the two configurations (cost, signature, visited states).
//
// Copy gates: HS and HS-Greedy must make >= 5x fewer copies than the
// baseline — their candidate fan-out is much wider than their survivor
// set, so evaluate-in-place pays off heavily. ES and SA have structural
// floors well under 5x and gate at >= 1.1x instead: ES enqueues nearly
// every candidate it evaluates (each enqueued state owns its workflow, a
// copy both configurations must pay), and SA accepts the large majority
// of its proposals (each accepted state is materialized; only rejections
// are free on the zero-copy path).
//
// ETLOPT_BENCH_CATEGORY=small|medium|large picks the scenario (default
// large, ~70 activities); ETLOPT_BENCH_QUICK=1 shrinks budgets.
// Emits BENCH_state_memory.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "optimizer/annealing.h"
#include "optimizer/search.h"
#include "suite_runner.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

WorkloadCategory CategoryFromEnv() {
  const char* c = std::getenv("ETLOPT_BENCH_CATEGORY");
  if (c != nullptr) {
    if (std::strcmp(c, "small") == 0) return WorkloadCategory::kSmall;
    if (std::strcmp(c, "medium") == 0) return WorkloadCategory::kMedium;
  }
  return WorkloadCategory::kLarge;
}

struct RunOutcome {
  SearchResult result;
  double millis = 0;
};

RunOutcome Timed(const std::function<StatusOr<SearchResult>()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  auto r = fn();
  auto t1 = std::chrono::steady_clock::now();
  ETLOPT_CHECK_OK(r.status());
  RunOutcome out;
  out.result = std::move(r).value();
  out.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

int Run() {
  const bool quick = []() {
    const char* q = std::getenv("ETLOPT_BENCH_QUICK");
    return q != nullptr && q[0] == '1';
  }();

  GeneratorOptions gen;
  gen.category = CategoryFromEnv();
  gen.seed = 7;
  auto g = GenerateWorkflow(gen);
  ETLOPT_CHECK_OK(g.status());
  LinearLogCostModel model;

  SearchOptions options;
  options.max_states = quick ? 5000 : 50000;
  options.max_millis = 120000;
  options.num_threads = 1;  // copy accounting, not parallel speedup
  SearchOptions es_options = options;
  es_options.max_states = quick ? 1000 : 4000;
  AnnealingOptions annealing;
  annealing.seed = 13;

  std::printf("state memory: %s scenario, %zu activities\n",
              std::string(WorkloadCategoryToString(gen.category)).c_str(),
              g->activity_count);
  std::printf("  %-10s %-9s %12s %12s %14s %10s\n", "algo", "mode", "copies",
              "undos", "peak KiB", "ms");

  JsonReport report("state_memory");
  report.Add("activities", static_cast<double>(g->activity_count),
             "activities");

  struct Algo {
    const char* name;
    std::function<StatusOr<SearchResult>(const SearchOptions&)> run;
  };
  const Workflow& w = g->workflow;
  const Algo algos[] = {
      {"hs", [&](const SearchOptions& o) { return HeuristicSearch(w, model, o); }},
      {"hsg",
       [&](const SearchOptions& o) { return HeuristicSearchGreedy(w, model, o); }},
      {"es", [&](const SearchOptions& o) { return ExhaustiveSearch(w, model, o); }},
      {"sa",
       [&](const SearchOptions& o) {
         return SimulatedAnnealingSearch(w, model, o, annealing);
       }},
  };

  bool ok = true;
  for (const Algo& algo : algos) {
    const SearchOptions& base =
        std::strcmp(algo.name, "es") == 0 ? es_options : options;
    SearchOptions slow = base;
    slow.disable_fast_paths = true;
    RunOutcome baseline = Timed([&] { return algo.run(slow); });
    RunOutcome fast = Timed([&] { return algo.run(base); });

    // The zero-copy path is an implementation detail: identical optimum,
    // signature and state accounting are part of the contract.
    if (fast.result.best.cost != baseline.result.best.cost ||
        fast.result.best.signature != baseline.result.best.signature ||
        fast.result.visited_states != baseline.result.visited_states) {
      std::fprintf(stderr, "FAIL: %s zero-copy diverged from baseline\n",
                   algo.name);
      ok = false;
      continue;
    }

    const SearchPerf& bp = baseline.result.perf;
    const SearchPerf& fp = fast.result.perf;
    auto emit = [&](const char* mode, const RunOutcome& run,
                    const SearchPerf& perf) {
      std::printf("  %-10s %-9s %12zu %12zu %14.1f %10.1f\n", algo.name, mode,
                  perf.workflow_copies, perf.undo_applies,
                  static_cast<double>(perf.peak_state_bytes) / 1024.0,
                  run.millis);
      const std::string p = std::string(algo.name) + "." + mode;
      report.Add(p + ".workflow_copies",
                 static_cast<double>(perf.workflow_copies), "copies");
      report.Add(p + ".undo_applies", static_cast<double>(perf.undo_applies),
                 "undos");
      report.Add(p + ".peak_state_bytes",
                 static_cast<double>(perf.peak_state_bytes), "bytes");
      report.Add(p + ".millis", run.millis, "ms");
    };
    emit("baseline", baseline, bp);
    emit("zerocopy", fast, fp);
    const double reduction =
        fp.workflow_copies > 0 ? static_cast<double>(bp.workflow_copies) /
                                     static_cast<double>(fp.workflow_copies)
                               : static_cast<double>(bp.workflow_copies);
    report.Add(std::string(algo.name) + ".copy_reduction", reduction, "x");
    std::printf("  %-10s copy reduction %.1fx, undo applies %zu\n", algo.name,
                reduction, fp.undo_applies);
    const bool survivor_bound = std::strcmp(algo.name, "es") == 0 ||
                                std::strcmp(algo.name, "sa") == 0;
    const double floor = survivor_bound ? 1.1 : 5.0;
    if (reduction < floor) {
      std::fprintf(stderr, "FAIL: %s copy reduction %.2fx < %.1fx\n",
                   algo.name, reduction, floor);
      ok = false;
    }
    if (fp.undo_applies == 0) {
      std::fprintf(stderr, "FAIL: %s made no in-place undo applies\n",
                   algo.name);
      ok = false;
    }
  }

  report.Write();
  return ok ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
