// Reproduces the paper's Fig. 1 -> Fig. 2 rewriting of the running
// example: the optimizer must (a) distribute the threshold selection into
// both branches, (b) push the aggregation before the date-format
// conversion, while (c) keeping the selection below the $2E conversion
// and the aggregation — and the optimized workflow must produce the same
// warehouse contents.

#include <algorithm>
#include <cstdio>

#include "common/macros.h"
#include "engine/executor.h"
#include "optimizer/search.h"
#include "optimizer/transitions.h"
#include "suite_runner.h"
#include "workload/scenarios.h"

namespace {

using namespace etlopt;

void Check(const char* what, bool ok) {
  std::printf("  %-64s %s\n", what, ok ? "yes" : "NO  <-- mismatch");
}

int Run() {
  auto s = BuildFig1Scenario();
  ETLOPT_CHECK_OK(s.status());
  LinearLogCostModel model;

  auto es = ExhaustiveSearch(s->workflow, model);
  ETLOPT_CHECK_OK(es.status());
  auto hs = HeuristicSearch(s->workflow, model);
  ETLOPT_CHECK_OK(hs.status());
  auto hsg = HeuristicSearchGreedy(s->workflow, model);
  ETLOPT_CHECK_OK(hsg.status());

  std::printf("Fig. 1 running example (PARTS1/PARTS2 -> DW)\n");
  std::printf("  initial   signature %s cost %.0f\n",
              s->workflow.Signature().c_str(), es->initial_cost);
  std::printf("  ES        signature %s cost %.0f (%zu states, %s)\n",
              es->best.signature.c_str(), es->best.cost, es->visited_states,
              es->exhausted ? "exhausted" : "budget hit");
  std::printf("  HS        signature %s cost %.0f (%zu states)\n",
              hs->best.signature.c_str(), hs->best.cost, hs->visited_states);
  std::printf("  HS-Greedy signature %s cost %.0f (%zu states)\n",
              hsg->best.signature.c_str(), hsg->best.cost,
              hsg->visited_states);

  const Workflow& best = es->best.workflow;
  std::printf("\nFig. 2 features of the optimum:\n");
  // (a) Selection distributed: the union feeds the warehouse directly.
  NodeId after_union = best.Consumers(s->union_node)[0];
  Check("threshold selection distributed into both branches",
        best.IsRecordSet(after_union));
  // (b) Aggregation before the A2E date conversion.
  const auto& topo = best.TopoOrder();
  auto pos = [&](NodeId id) {
    return std::find(topo.begin(), topo.end(), id) - topo.begin();
  };
  Check("aggregation swapped before the A2E date conversion",
        pos(s->aggregate) < pos(s->a2e_date));
  // (c) The selection stayed below $2E and the aggregation in flow 2.
  NodeId sel_flow2 = best.Consumers(s->aggregate)[0];
  bool sel_after_agg =
      best.IsActivity(sel_flow2) &&
      best.chain(sel_flow2).front().kind() == ActivityKind::kSelection;
  Check("selection NOT pushed above $2E / aggregation (flow 2)",
        sel_after_agg && pos(s->to_euro) < pos(sel_flow2) &&
            pos(s->aggregate) < pos(sel_flow2));
  Check("HS found the ES optimum (paper: 100% on small workflows)",
        hs->best.cost == es->best.cost);
  Check("all results equivalent to the initial design",
        es->best.workflow.EquivalentTo(s->workflow) &&
            hs->best.workflow.EquivalentTo(s->workflow) &&
            hsg->best.workflow.EquivalentTo(s->workflow));

  auto same = ProduceSameOutput(s->workflow, es->best.workflow,
                                MakeFig1Input(99, 500));
  ETLOPT_CHECK_OK(same.status());
  Check("optimized workflow loads identical DW contents (500-row run)",
        *same);

  std::printf("\nimprovement: ES %.1f%%, HS %.1f%%, HS-Greedy %.1f%%\n",
              es->improvement_pct(), hs->improvement_pct(),
              hsg->improvement_pct());

  bench::JsonReport report("fig1_example");
  report.Add("initial_cost", es->initial_cost, "cost");
  report.Add("es.best_cost", es->best.cost, "cost");
  report.Add("es.visited_states", static_cast<double>(es->visited_states),
             "states");
  report.Add("es.improvement", es->improvement_pct(), "percent");
  report.Add("hs.best_cost", hs->best.cost, "cost");
  report.Add("hs.visited_states", static_cast<double>(hs->visited_states),
             "states");
  report.Add("hs.improvement", hs->improvement_pct(), "percent");
  report.Add("hsg.best_cost", hsg->best.cost, "cost");
  report.Add("hsg.visited_states", static_cast<double>(hsg->visited_states),
             "states");
  report.Add("hsg.improvement", hsg->improvement_pct(), "percent");
  report.Add("hs_matches_es_optimum", hs->best.cost == es->best.cost ? 1 : 0,
             "bool");
  report.Add("output_identical", *same ? 1 : 0, "bool");
  report.Write();
  return 0;
}

}  // namespace

int main() { return Run(); }
