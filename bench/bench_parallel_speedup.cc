// Parallel engine scaling: rows/sec of ExecuteParallel at 1/2/4/8 worker
// threads against the serial engines, on a large (~70-activity, §4.2)
// generated scenario with a scaled-up input. The headline check is
// >= 2x rows/sec at 4 threads vs. 1; every run also re-verifies that the
// parallel output is byte-identical to the materializing engine's.
//
// The speedup check hard-fails only where it is physically meaningful:
// on machines with >= 4 hardware threads (CI runners). On smaller boxes
// the numbers are still measured, printed and emitted, but informational.
// ETLOPT_BENCH_QUICK=1 additionally shrinks the input for smoke runs
// (tiny inputs are dominated by dispatch, so the check relaxes too).
//
// Emits BENCH_parallel_speedup.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "engine/executor.h"
#include "engine/parallel.h"
#include "engine/pipeline.h"
#include "suite_runner.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

double MillisOf(const std::function<void()>& fn, int repeats) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

int Run() {
  const bool quick = []() {
    const char* q = std::getenv("ETLOPT_BENCH_QUICK");
    return q != nullptr && q[0] == '1';
  }();

  GeneratorOptions gen;
  gen.category = WorkloadCategory::kLarge;
  gen.seed = 7;
  auto g = GenerateWorkflow(gen);
  ETLOPT_CHECK_OK(g.status());

  InputGenOptions igen;
  igen.rows_per_source = quick ? 2000 : 120000;
  igen.key_domain = quick ? 200 : 5000;
  ExecutionInput input = GenerateInputFor(g->workflow, 42, igen);
  size_t total_rows = 0;
  for (const auto& [name, rows] : input.source_data) total_rows += rows.size();

  std::printf("parallel speedup: %zu activities, %zu sources, %zu rows\n",
              g->activity_count, input.source_data.size(), total_rows);

  const int repeats = quick ? 1 : 3;

  // Serial baselines (and the reference output for the identity check).
  StatusOr<ExecutionResult> batch = ExecutionResult{};
  double batch_ms = MillisOf(
      [&] { batch = ExecuteWorkflow(g->workflow, input); }, repeats);
  ETLOPT_CHECK_OK(batch.status());
  StatusOr<ExecutionResult> piped = ExecutionResult{};
  double piped_ms = MillisOf(
      [&] { piped = ExecutePipelined(g->workflow, input); }, repeats);
  ETLOPT_CHECK_OK(piped.status());

  JsonReport report("parallel_speedup");
  report.Add("activities", static_cast<double>(g->activity_count),
             "activities");
  report.Add("source_rows", static_cast<double>(total_rows), "rows");
  report.Add("materializing.rows_per_sec", 1000.0 * total_rows / batch_ms,
             "rows/s");
  report.Add("pipelined.rows_per_sec", 1000.0 * total_rows / piped_ms,
             "rows/s");
  std::printf("  %-18s %8.1f ms  %12.0f rows/s\n", "materializing", batch_ms,
              1000.0 * total_rows / batch_ms);
  std::printf("  %-18s %8.1f ms  %12.0f rows/s\n", "pipelined", piped_ms,
              1000.0 * total_rows / piped_ms);

  double t1_ms = 0, t4_ms = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelOptions options;
    options.num_threads = threads;
    StatusOr<ExecutionResult> par = ExecutionResult{};
    double ms = MillisOf(
        [&] { par = ExecuteParallel(g->workflow, input, options); }, repeats);
    ETLOPT_CHECK_OK(par.status());
    if (par->target_data != batch->target_data ||
        par->rows_out != batch->rows_out) {
      std::fprintf(stderr,
                   "FAIL: parallel(%zu) output differs from the "
                   "materializing engine\n",
                   threads);
      return 1;
    }
    if (threads == 1) t1_ms = ms;
    if (threads == 4) t4_ms = ms;
    char key[64];
    std::snprintf(key, sizeof(key), "parallel.t%zu.rows_per_sec", threads);
    report.Add(key, 1000.0 * total_rows / ms, "rows/s");
    std::printf("  parallel %zu thread%s %7.1f ms  %12.0f rows/s  (%.2fx)\n",
                threads, threads == 1 ? " " : "s", ms,
                1000.0 * total_rows / ms, t1_ms / ms);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  double speedup4 = t1_ms / t4_ms;
  report.Add("hardware_threads", static_cast<double>(hw), "threads");
  report.Add("speedup.t4_vs_t1", speedup4, "x");
  report.Write();

  std::printf("speedup at 4 threads vs 1: %.2fx (target >= 2x on >= 4 "
              "cores; this machine has %u)\n",
              speedup4, hw);
  if (!quick && hw >= 4 && speedup4 < 2.0) {
    std::fprintf(stderr, "FAIL: 4-thread speedup %.2fx < 2x\n", speedup4);
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
