// Reproduces Table 1 of the paper: quality of solution (%) per algorithm
// and workflow category. Quality is the best-known cost divided by the
// algorithm's cost (100% = found the best known solution).
//
// Paper reference (ICDE'05, Table 1):
//   small : ES 100, HS 100, HS-Greedy 99
//   medium: ES  - , HS  99*, HS-Greedy 86*
//   large : ES  - , HS  98*, HS-Greedy 62*
//   (* compared to the best of ES when it stopped)
//
// ETLOPT_BENCH_QUICK=1 shrinks the suite for smoke runs.

#include <cstdio>

#include "suite_runner.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

int Run() {
  SuiteSettings settings = SettingsFromEnv();
  LinearLogCostModelOptions cost_options;
  cost_options.surrogate_key_setup = 500.0;
  LinearLogCostModel model(cost_options);

  auto results = RunSuite(settings, model);
  ETLOPT_CHECK_OK(results.status());

  std::printf("\nTable 1: Quality of solution\n");
  std::printf("%-10s %10s %14s %14s %18s\n", "category", "workflows",
              "ES quality %", "HS quality %", "HS-Greedy quality %");
  for (const auto& r : *results) {
    std::printf("%-10s %10zu %13.1f%s %14.1f %18.1f\n",
                std::string(WorkloadCategoryToString(r.category)).c_str(),
                r.workflows, r.es.avg_quality(),
                r.es.exhausted == static_cast<int>(r.workflows) ? " " : "*",
                r.hs.avg_quality(), r.hsg.avg_quality());
  }
  std::printf("* ES hit its budget on some workflows; quality is relative "
              "to the best solution found by any algorithm\n");
  std::printf("\npaper reference: small ES/HS/HSG = 100/100/99, "
              "medium HS/HSG = 99*/86*, large HS/HSG = 98*/62*\n");

  JsonReport report("table1_quality");
  for (const auto& r : *results) ReportCategory(report, r);
  report.Write();
  return 0;
}

}  // namespace

int main() { return Run(); }
