// Streaming micro-batch throughput (ISSUE 6 gate). Two scenarios:
//
//   * the §4.2 medium generated workflow (aggregation-heavy), and
//   * a hand-built two-source equi-join,
//
// each streamed through StreamExecutor in N micro-batches and compared
// against the naive alternative: re-running the one-shot batch engine
// over the accumulated prefix after every batch (full recomputation).
//
// Headline gate (hard failure on full runs): incremental streaming
// beats per-batch full recomputation by >= 2x on the medium scenario.
// Output equality with the one-shot run is checked on every timed run
// and is a hard failure even under ETLOPT_BENCH_QUICK=1, which
// otherwise shrinks the inputs and demotes the speed gate to
// informational. Reports sustained rows/sec and p99 batch latency vs
// the one-shot run. Emits BENCH_stream_throughput.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "activity/templates.h"
#include "engine/executor.h"
#include "stream/stream_executor.h"
#include "suite_runner.h"
#include "workload/generator.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;

double MillisOf(const std::function<void()>& fn, int repeats) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

bool SameMultisetResult(const ExecutionResult& a, const ExecutionResult& b) {
  if (a.rows_out != b.rows_out) return false;
  if (a.target_data.size() != b.target_data.size()) return false;
  for (const auto& [name, rows] : a.target_data) {
    auto it = b.target_data.find(name);
    if (it == b.target_data.end()) return false;
    if (!SameRecordMultiset(rows, it->second)) return false;
  }
  return true;
}

double P99Millis(std::vector<int64_t> micros) {
  if (micros.empty()) return 0;
  std::sort(micros.begin(), micros.end());
  const size_t idx =
      std::min(micros.size() - 1,
               static_cast<size_t>(0.99 * static_cast<double>(micros.size())));
  return static_cast<double>(micros[idx]) / 1000.0;
}

struct Scenario {
  std::string name;
  Workflow workflow;
  ExecutionInput input;
  size_t total_rows = 0;
};

Scenario MakeMediumScenario(size_t rows_per_source) {
  GeneratorOptions options;
  options.category = WorkloadCategory::kMedium;
  options.seed = 17;
  auto g = GenerateWorkflow(options);
  ETLOPT_CHECK_OK(g.status());
  Scenario s;
  s.name = "medium";
  s.workflow = std::move(g->workflow);
  s.input = GenerateInputFor(s.workflow, /*seed=*/4, rows_per_source);
  for (const auto& [name, rows] : s.input.source_data) {
    s.total_rows += rows.size();
  }
  return s;
}

Scenario MakeJoinScenario(size_t rows_per_source) {
  Scenario s;
  s.name = "join";
  Schema left = Schema::MakeOrDie(
      {{"K", DataType::kInt64}, {"A", DataType::kInt64}});
  Schema right = Schema::MakeOrDie(
      {{"K", DataType::kInt64}, {"B", DataType::kInt64}});
  Schema out = Schema::MakeOrDie({{"K", DataType::kInt64},
                                  {"A", DataType::kInt64},
                                  {"B", DataType::kInt64}});
  NodeId l = s.workflow.AddRecordSet(
      {"L", left, static_cast<double>(rows_per_source)});
  NodeId r = s.workflow.AddRecordSet(
      {"R", right, static_cast<double>(rows_per_source)});
  auto join = MakeJoin("join", {"K"}, 0.5);
  ETLOPT_CHECK_OK(join.status());
  auto act = s.workflow.AddActivity(*join, {l, r});
  ETLOPT_CHECK_OK(act.status());
  NodeId t = s.workflow.AddRecordSet(
      {"T", out, static_cast<double>(rows_per_source)});
  ETLOPT_CHECK_OK(s.workflow.Connect(*act, t));
  ETLOPT_CHECK_OK(s.workflow.Finalize());
  // ~4 matches per key on each side keeps the join output linear-ish.
  const int64_t keys = static_cast<int64_t>(rows_per_source) / 4 + 1;
  for (int64_t i = 0; i < static_cast<int64_t>(rows_per_source); ++i) {
    Record lr;
    lr.Append(Value::Int(i % keys));
    lr.Append(Value::Int(i));
    s.input.source_data["L"].push_back(std::move(lr));
    Record rr;
    rr.Append(Value::Int((i * 7) % keys));
    rr.Append(Value::Int(-i));
    s.input.source_data["R"].push_back(std::move(rr));
  }
  s.total_rows = 2 * rows_per_source;
  return s;
}

// Builds the capture prefix covering batches [0, b] with the same slice
// boundaries MicroBatchSource uses, for the naive recomputation loop.
ExecutionInput PrefixInput(const ExecutionInput& input, size_t b,
                           size_t num_batches) {
  ExecutionInput prefix;
  prefix.context = input.context;
  for (const auto& [name, rows] : input.source_data) {
    const size_t hi = (b + 1) * rows.size() / num_batches;
    prefix.source_data[name].assign(rows.begin(),
                                    rows.begin() + static_cast<ptrdiff_t>(hi));
  }
  return prefix;
}

struct ScenarioNumbers {
  double speedup = 0;
  bool outputs_match = true;
};

ScenarioNumbers RunScenario(const Scenario& s, size_t num_batches,
                            int repeats, JsonReport& report) {
  ScenarioNumbers numbers;
  const std::string p = s.name + ".";

  StatusOr<ExecutionResult> oneshot = ExecutionResult{};
  double oneshot_ms = MillisOf(
      [&] { oneshot = ExecuteWorkflow(s.workflow, s.input); }, repeats);
  ETLOPT_CHECK_OK(oneshot.status());
  report.Add(p + "oneshot.millis", oneshot_ms, "ms");

  StreamOptions options;
  options.num_batches = static_cast<int64_t>(num_batches);
  StreamExecutor exec(options);
  StatusOr<ExecutionResult> streamed = ExecutionResult{};
  StreamStats stats;
  double stream_ms = MillisOf(
      [&] { streamed = exec.Run(s.workflow, s.input, &stats); }, repeats);
  ETLOPT_CHECK_OK(streamed.status());
  numbers.outputs_match = SameMultisetResult(*oneshot, *streamed);

  // Naive alternative: after each batch, recompute the whole prefix with
  // the one-shot engine (what a stream without incremental operators
  // would have to do to keep its targets current).
  StatusOr<ExecutionResult> naive = ExecutionResult{};
  double naive_ms = MillisOf(
      [&] {
        for (size_t b = 0; b < num_batches; ++b) {
          naive = ExecuteWorkflow(s.workflow,
                                  PrefixInput(s.input, b, num_batches));
          ETLOPT_CHECK_OK(naive.status());
        }
      },
      repeats);
  numbers.outputs_match =
      numbers.outputs_match && SameMultisetResult(*oneshot, *naive);

  numbers.speedup = naive_ms / stream_ms;
  const double rows_per_sec =
      static_cast<double>(s.total_rows) / (stream_ms / 1000.0);
  const double p99_ms = P99Millis(stats.batch_micros);

  report.Add(p + "stream.millis", stream_ms, "ms");
  report.Add(p + "naive_recompute.millis", naive_ms, "ms");
  report.Add(p + "incremental_speedup", numbers.speedup, "x");
  report.Add(p + "stream.rows_per_sec", rows_per_sec, "rows/s");
  report.Add(p + "stream.p99_batch_millis", p99_ms, "ms");
  report.Add(p + "source_rows", static_cast<double>(s.total_rows), "rows");
  report.Add(p + "batches", static_cast<double>(num_batches), "batches");

  std::printf(
      "  %-7s %7zu rows, %2zu batches: oneshot %8.1f ms | stream %8.1f ms "
      "(%9.0f rows/s, p99 batch %6.2f ms) | naive %8.1f ms | speedup "
      "%.2fx\n",
      s.name.c_str(), s.total_rows, num_batches, oneshot_ms, stream_ms,
      rows_per_sec, p99_ms, naive_ms, numbers.speedup);
  return numbers;
}

}  // namespace

int main() {
  const char* q = std::getenv("ETLOPT_BENCH_QUICK");
  const bool quick = q != nullptr && *q != '\0' && *q != '0';
  const size_t medium_rows = quick ? 400 : 4000;
  const size_t join_rows = quick ? 500 : 6000;
  const size_t num_batches = 16;
  const int repeats = quick ? 1 : 3;

  std::printf("stream throughput (quick=%d)\n", quick ? 1 : 0);
  JsonReport report("stream_throughput");

  Scenario medium = MakeMediumScenario(medium_rows);
  ScenarioNumbers medium_numbers =
      RunScenario(medium, num_batches, repeats, report);

  Scenario join = MakeJoinScenario(join_rows);
  ScenarioNumbers join_numbers =
      RunScenario(join, num_batches, repeats, report);

  report.Write();

  // Output equality is a hard failure in every mode.
  if (!medium_numbers.outputs_match || !join_numbers.outputs_match) {
    std::fprintf(stderr,
                 "FAIL: streamed output differs from the one-shot run\n");
    return 1;
  }
  // The >= 2x incremental gate applies to full runs of the medium
  // scenario (quick inputs are too small for a stable ratio).
  if (!quick && medium_numbers.speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: incremental speedup %.2fx < 2x on the medium "
                 "scenario\n",
                 medium_numbers.speedup);
    return 1;
  }
  return 0;
}
