// End-to-end chaos soak plus the recovery-point placement economics.
//
// Part 1 measures what the optimizer's RecoveryPointPlan buys: on a
// large generated workflow, crashes are injected at ~30/60/90% of the
// measured wall profile and the recovery cost — time lost per crash:
// (crashed attempt + resume) minus the fault-free plain run, i.e. the
// work redone plus the checkpoint overhead the policy carried — is
// averaged and compared across three policies: no checkpoints,
// checkpoint-everywhere, and the optimizer-placed plan.
// Gates (hard failures on full runs):
//
//   1. Plan-placed recovery cost <= 0.5x of BOTH degenerate policies.
//   2. Plan-placed checkpoint overhead <= 10%: fault-free runtime vs the
//      same recoverable engine with checkpointing disabled (isolating
//      what the checkpoint writes themselves cost).
//
// Part 2 soaks the networked service, the recoverable engine, and the
// streaming engine under continuously rotating random fault schedules
// (errors, delays, crash-restarts at every registered site) for a
// bounded wall-clock window:
//
//   3. Soak duration >= 60s, zero wrong result bytes, zero wedges (after
//      every chaos round a clean pass on each surface must succeed).
//
// ETLOPT_CHAOS_SEED rotates the schedule stream (CI feeds the run
// number). ETLOPT_BENCH_QUICK=1 shrinks the input and soak window and
// demotes the gates to informational. Emits BENCH_chaos_soak.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cost/state_cost.h"
#include "engine/executor.h"
#include "engine/recovery.h"
#include "fault/fault_injector.h"
#include "io/plan_format.h"
#include "io/text_format.h"
#include "net/client.h"
#include "net/server.h"
#include "stream/stream_executor.h"
#include "suite_runner.h"
#include "workload/generator.h"
#include "workload/scenarios.h"

namespace {

using namespace etlopt;
using namespace etlopt::bench;
namespace fs = std::filesystem;

double MillisOf(const std::function<void()>& fn, int repeats) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

bool SameResult(const ExecutionResult& a, const ExecutionResult& b) {
  return a.target_data == b.target_data && a.rows_out == b.rows_out;
}

SearchOptions SmallBudget() {
  SearchOptions options;
  options.max_states = 2000;
  return options;
}

struct PolicyCost {
  double fault_free_ms = 0;   // one clean run under the policy
  double overhead_pct = 0;    // vs the plain engine
  double recovery_cost_ms = 0;  // avg of (crashed + resume - plain)
};

int Run() {
  const bool quick = []() {
    const char* q = std::getenv("ETLOPT_BENCH_QUICK");
    return q != nullptr && q[0] == '1';
  }();
  const uint64_t seed = []() -> uint64_t {
    const char* s = std::getenv("ETLOPT_CHAOS_SEED");
    if (s == nullptr) return 1;
    const long long v = std::atoll(s);
    return v > 0 ? static_cast<uint64_t>(v) : 1;
  }();
  const int repeats = quick ? 1 : 3;
  JsonReport report("chaos_soak");
  report.Add("seed", static_cast<double>(seed), "seed");

  // ==== Part 1: recovery-point placement economics. ====================
  GeneratorOptions gen;
  gen.category = WorkloadCategory::kLarge;
  gen.seed = 7;
  auto g = GenerateWorkflow(gen);
  ETLOPT_CHECK_OK(g.status());
  InputGenOptions igen;
  igen.rows_per_source = quick ? 1000 : 20000;
  igen.key_domain = quick ? 200 : 5000;
  ExecutionInput input = GenerateInputFor(g->workflow, 42, igen);

  LinearLogCostModel model;
  auto bd = ComputeCostBreakdown(g->workflow, model);
  ETLOPT_CHECK_OK(bd.status());

  StatusOr<ExecutionResult> plain = ExecutionResult{};
  double plain_ms = MillisOf(
      [&] { plain = ExecuteWorkflow(g->workflow, input); }, repeats);
  ETLOPT_CHECK_OK(plain.status());
  report.Add("plain.millis", plain_ms, "ms");

  // Activity executions per run, to place the late crash and to index the
  // wall-clock profile below (executions fire in topo order).
  uint64_t activity_hits = 0;
  {
    FaultInjector::Global().Arm(FaultSchedule{});
    auto counted = ExecuteWorkflow(g->workflow, input);
    ETLOPT_CHECK_OK(counted.status());
    activity_hits = FaultInjector::Global()
                        .Stats()
                        .hits[static_cast<int>(FaultSite::kActivityExecute)];
    FaultInjector::Global().Disarm();
  }
  if (activity_hits == 0) {
    std::printf("fault hooks compiled out; chaos soak not measurable\n");
    report.Write();
    return 0;
  }

  // Statistics feedback: re-cost placement from a measured profile. The
  // generator's declared cardinalities are estimates, and on this input
  // they diverge from what actually flows — enough that model-optimal
  // cuts land at wall-clock-cheap positions. Close the loop the way a
  // cost-based optimizer does with runtime statistics: measure the
  // cumulative wall time up to every activity (a crash probe at hit k
  // aborts the run after k executions), difference it into per-activity
  // wall costs, and hand the DP a breakdown whose cost axis IS wall
  // time. Observed output rows stand in for the cardinality estimates.
  std::vector<double> cum_wall(activity_hits + 1, 0.0);
  cum_wall[activity_hits] = plain_ms;
  for (uint64_t k = 1; k < activity_hits; ++k) {
    FaultSchedule schedule;
    FaultSpec spec;
    spec.site = FaultSite::kActivityExecute;
    spec.hit = k;
    spec.kind = FaultKind::kCrash;
    schedule.faults.push_back(spec);
    double best = 1e300;
    for (int r = 0; r < (quick ? 1 : 2); ++r) {
      ScopedFaultInjection arm(schedule);
      auto t0 = std::chrono::steady_clock::now();
      auto probed = ExecuteWorkflow(g->workflow, input);
      auto t1 = std::chrono::steady_clock::now();
      if (probed.ok()) {
        std::fprintf(stderr, "FAIL: profile probe %llu did not crash\n",
                     static_cast<unsigned long long>(k));
        return 1;
      }
      best = std::min(
          best, std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    cum_wall[k] = best;
  }
  // Enforce monotonicity (probe noise can locally invert), then price
  // the i-th activity in topo order at its measured wall slice.
  for (uint64_t k = 1; k <= activity_hits; ++k) {
    cum_wall[k] = std::max(cum_wall[k], cum_wall[k - 1]);
  }
  CostBreakdown observed = *bd;
  {
    uint64_t hit = 0;
    for (NodeId id : g->workflow.TopoOrder()) {
      if (!g->workflow.IsActivity(id)) continue;
      if (hit < activity_hits) {
        observed.node_cost[id] = cum_wall[hit + 1] - cum_wall[hit];
      }
      ++hit;
    }
  }
  observed.total = plain_ms;
  for (auto& [node, card] : observed.node_output_cardinality) {
    if (auto it = plain->rows_out.find(node); it != plain->rows_out.end()) {
      card = static_cast<double>(it->second);
    }
  }

  // Reliability knobs in profile units (cost 1.0 == one millisecond):
  // a checkpoint file costs the engine a flat ~1.5% of this workflow's
  // wall time (directory + serialize + atomic write) regardless of rows,
  // so setup is what the DP must ration; lambda expects about one
  // failure per run, enough for placement to matter.
  ReliabilityParams params;
  params.failure_rate_per_cost = 2.0 / plain_ms;
  params.checkpoint_setup_cost = 0.005 * plain_ms;
  params.checkpoint_cost_per_row = 1.7e-4;
  params.restore_setup_cost = 2.0;
  params.restore_cost_per_row = 4e-5;
  RecoveryPointPlan plan = PlaceRecoveryPoints(g->workflow, observed, params);
  if (!plan.enabled || plan.labels.empty()) {
    std::fprintf(stderr, "FAIL: placement produced no recovery points\n");
    return 1;
  }
  std::printf("chaos soak: %zu activities, plan checkpoints %zu nodes\n",
              g->activity_count, plan.labels.size());
  std::printf("  plan rationale: %s\n", plan.rationale.c_str());
  if (std::getenv("ETLOPT_CHAOS_DEBUG") != nullptr) {
    uint64_t hit = 0;
    std::printf("  plan activity positions (of %llu):",
                static_cast<unsigned long long>(activity_hits));
    for (NodeId id : g->workflow.TopoOrder()) {
      if (!g->workflow.IsActivity(id)) continue;
      const std::string& label = g->workflow.PriorityLabelOf(id);
      for (const std::string& planned : plan.labels) {
        if (planned == label) {
          uint64_t rows = 0;
          if (auto it = plain->rows_out.find(id); it != plain->rows_out.end())
            rows = it->second;
          std::printf(" %llu(%.0f%%,%llur)",
                      static_cast<unsigned long long>(hit),
                      100.0 * cum_wall[hit + 1] / plain_ms,
                      static_cast<unsigned long long>(rows));
        }
      }
      ++hit;
    }
    std::printf("\n");
  }
  report.Add("plan.points", static_cast<double>(plan.labels.size()), "nodes");

  // Crash sites for the recovery measurement: the activity hits closest
  // to 30..90% of the measured wall profile. Failures arrive per unit
  // of executed work, so a sample uniform in wall time is the empirical
  // analogue of the expectation the DP minimized; the first 30% is left
  // out because a crash there precedes any useful recovery point and
  // costs every policy the same rerun.
  std::vector<uint64_t> crash_hits;
  for (double f : {0.3, 0.5, 0.7, 0.9}) {
    uint64_t h = 1;
    while (h + 1 < activity_hits && cum_wall[h] < f * plain_ms) ++h;
    crash_hits.push_back(h);
  }

  const fs::path dir = fs::temp_directory_path() / "etlopt_bench_chaos";
  auto options_for = [&](CheckpointPolicy policy) {
    RecoveryOptions options;
    options.checkpoint_policy = policy;
    if (policy != CheckpointPolicy::kNone) {
      options.checkpoint_dir = dir.string();
    }
    if (policy == CheckpointPolicy::kRecoveryPlan) {
      options.recovery_plan = plan;
    }
    options.remove_checkpoints_on_success = false;
    return options;
  };
  struct Policy {
    CheckpointPolicy policy;
    const char* label;
    PolicyCost cost;
  };
  Policy policies[3] = {{CheckpointPolicy::kNone, "none", {}},
                        {CheckpointPolicy::kAllNodes, "all", {}},
                        {CheckpointPolicy::kRecoveryPlan, "placed", {}}};

  // Fault-free pass. The overhead gate compares placed against none and
  // container throughput drifts on the minutes scale, so interleave the
  // policies rep by rep: every policy's best-of sees the same mix of
  // machine regimes.
  for (Policy& p : policies) p.cost.fault_free_ms = 1e300;
  for (int i = 0; i < repeats + 2; ++i) {
    for (Policy& p : policies) {
      RecoverableExecutor exec(options_for(p.policy));
      fs::remove_all(dir);
      auto t0 = std::chrono::steady_clock::now();
      auto out = exec.Execute(g->workflow, input);
      auto t1 = std::chrono::steady_clock::now();
      ETLOPT_CHECK_OK(out.status());
      if (!SameResult(*plain, *out)) {
        std::fprintf(stderr, "FAIL: %s output differs from plain engine\n",
                     p.label);
        return 1;
      }
      p.cost.fault_free_ms = std::min(
          p.cost.fault_free_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  for (Policy& p : policies) {
    p.cost.overhead_pct =
        100.0 * (p.cost.fault_free_ms - plain_ms) / plain_ms;
  }

  // Recovery pass. Crash at each sampled position, resume from whatever
  // the policy persisted, and bill the time the crash cost: crashed
  // attempt plus resume, minus a plain baseline re-measured inside the
  // same cell (the drift guard again). That difference is the work
  // redone after the crash plus the checkpoint overhead the policy
  // carried; its average over the positions is the measured analogue of
  // the expected recovery cost the optimizer minimized.
  for (Policy& p : policies) {
    RecoverableExecutor exec(options_for(p.policy));
    double total_excess = 0;
    for (uint64_t crash_hit : crash_hits) {
      const double base_ms = MillisOf(
          [&] { plain = ExecuteWorkflow(g->workflow, input); }, repeats);
      ETLOPT_CHECK_OK(plain.status());
      double best_excess = 1e300;
      for (int i = 0; i < repeats; ++i) {
        fs::remove_all(dir);
        double crashed_ms = 0;
        {
          FaultSchedule schedule;
          FaultSpec spec;
          spec.site = FaultSite::kActivityExecute;
          spec.hit = crash_hit;
          spec.kind = FaultKind::kCrash;
          schedule.faults.push_back(spec);
          ScopedFaultInjection arm(schedule);
          auto t0 = std::chrono::steady_clock::now();
          auto crashed = exec.Execute(g->workflow, input);
          auto t1 = std::chrono::steady_clock::now();
          if (crashed.ok()) {
            std::fprintf(stderr, "FAIL: scheduled crash did not fire (%s)\n",
                         p.label);
            return 1;
          }
          crashed_ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
        }
        RecoveryStats resume_stats;
        auto t0 = std::chrono::steady_clock::now();
        StatusOr<ExecutionResult> out =
            exec.Execute(g->workflow, input, &resume_stats);
        auto t1 = std::chrono::steady_clock::now();
        ETLOPT_CHECK_OK(out.status());
        if (std::getenv("ETLOPT_CHAOS_DEBUG") != nullptr) {
          std::printf(
              "  [%s crash@%llu rep%d] base=%.1f crashed=%.1f loaded=%zu "
              "rejected=%zu executed=%zu skipped=%zu\n",
              p.label, static_cast<unsigned long long>(crash_hit), i, base_ms,
              crashed_ms, resume_stats.checkpoints_loaded,
              resume_stats.checkpoints_rejected, resume_stats.nodes_executed,
              resume_stats.nodes_skipped);
        }
        if (!SameResult(*plain, *out)) {
          std::fprintf(stderr, "FAIL: %s resume differs from plain engine\n",
                       p.label);
          return 1;
        }
        const double resume_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        best_excess =
            std::min(best_excess,
                     std::max(0.0, crashed_ms + resume_ms - base_ms));
      }
      total_excess += best_excess;
    }
    p.cost.recovery_cost_ms = total_excess / crash_hits.size();
    fs::remove_all(dir);
    report.Add(std::string(p.label) + ".fault_free_millis",
               p.cost.fault_free_ms, "ms");
    report.Add(std::string(p.label) + ".overhead_pct", p.cost.overhead_pct,
               "percent");
    report.Add(std::string(p.label) + ".recovery_cost_millis",
               p.cost.recovery_cost_ms, "ms");
    std::printf(
        "  %-22s fault-free %8.1f ms (%+5.1f%%), recovery cost %8.1f ms\n",
        p.label, p.cost.fault_free_ms, p.cost.overhead_pct,
        p.cost.recovery_cost_ms);
  }

  const PolicyCost& none = policies[0].cost;
  const PolicyCost& all = policies[1].cost;
  const PolicyCost& placed = policies[2].cost;
  const double vs_none = none.recovery_cost_ms / placed.recovery_cost_ms;
  const double vs_all = all.recovery_cost_ms / placed.recovery_cost_ms;
  // What the checkpoints themselves cost: placed vs the same engine with
  // checkpointing off. (overhead_pct above is vs the plain engine and
  // includes the recoverable engine's fixed bookkeeping, common to all
  // three policies.)
  const double placed_ckpt_overhead_pct =
      100.0 * (placed.fault_free_ms - none.fault_free_ms) /
      none.fault_free_ms;
  report.Add("placed.advantage_vs_none", vs_none, "x");
  report.Add("placed.advantage_vs_all", vs_all, "x");
  report.Add("placed.checkpoint_overhead_pct", placed_ckpt_overhead_pct,
             "percent");
  std::printf(
      "placed recovery cost advantage: %.2fx vs none, %.2fx vs all "
      "(target >= 2x each); checkpoint overhead %.1f%% (target <= 10%%)\n",
      vs_none, vs_all, placed_ckpt_overhead_pct);

  // ==== Part 2: the soak itself. =======================================
  OptimizerService reference(model);
  Workflow net_workflow = [&] {
    GeneratorOptions ngen;
    ngen.seed = 11;
    auto n = GenerateWorkflow(ngen);
    ETLOPT_CHECK_OK(n.status());
    return std::move(n->workflow);
  }();
  std::string expected_net_bytes;
  {
    // The byte-identity contract is per request TEXT: twin activities
    // can swap names across a reparse, so the reference answer must be
    // computed from the same canonical text that crosses the wire.
    auto canonical = MakeNetRequest(net_workflow, SearchAlgorithm::kHeuristic,
                                    SmallBudget());
    ETLOPT_CHECK_OK(canonical.status());
    auto reparsed = ParseWorkflowText(canonical->workflow_text);
    ETLOPT_CHECK_OK(reparsed.status());
    OptimizeRequest request;
    request.workflow = std::move(reparsed).value();
    request.options = SmallBudget();
    auto response = reference.Optimize(std::move(request));
    ETLOPT_CHECK_OK(response.status());
    expected_net_bytes = SerializePlanBinary(response->plan->plan);
  }
  auto fig1 = BuildFig1Scenario();
  ETLOPT_CHECK_OK(fig1.status());
  auto fig1_bd = ComputeCostBreakdown(fig1->workflow, model);
  ETLOPT_CHECK_OK(fig1_bd.status());
  ReliabilityParams soak_params;
  soak_params.failure_rate_per_cost = 2e-7;
  soak_params.checkpoint_setup_cost = 1.0;
  soak_params.checkpoint_cost_per_row = 0.001;
  RecoveryPointPlan soak_plan =
      PlaceRecoveryPoints(fig1->workflow, *fig1_bd, soak_params);
  ExecutionInput soak_input = MakeFig1Input(13, 80);
  auto soak_plain = ExecuteWorkflow(fig1->workflow, soak_input);
  ETLOPT_CHECK_OK(soak_plain.status());

  const fs::path rec_dir = fs::temp_directory_path() / "etlopt_chaos_rec";
  const fs::path stream_dir =
      fs::temp_directory_path() / "etlopt_chaos_stream";
  fs::remove_all(rec_dir);
  fs::remove_all(stream_dir);

  ServerOptions server_options;
  server_options.ephemeral_port = true;
  server_options.service.num_threads = 2;
  OptimizerServer server(model, server_options);
  ETLOPT_CHECK_OK(server.Start());

  uint64_t completed = 0, clean_failures = 0, wrong_bytes = 0, wedges = 0;
  auto net_request = [&]() -> Status {
    ClientOptions coptions;
    coptions.timeout_millis = 5000;
    auto client =
        OptimizerClient::Connect("127.0.0.1", server.port(), coptions);
    if (!client.ok()) return client.status();
    auto request = MakeNetRequest(net_workflow, SearchAlgorithm::kHeuristic,
                                  SmallBudget());
    if (!request.ok()) return request.status();
    auto response = client->Optimize(*request);
    if (!response.ok()) return response.status();
    // Degraded answers come from the admission-control greedy fallback
    // and legitimately differ; full answers must stay byte-identical.
    if (!response->degraded &&
        SerializePlanBinary(response->plan) != expected_net_bytes) {
      ++wrong_bytes;
    }
    return Status::OK();
  };
  auto recoverable_run = [&]() -> Status {
    RecoveryOptions options;
    options.checkpoint_dir = rec_dir.string();
    options.checkpoint_policy = CheckpointPolicy::kRecoveryPlan;
    options.recovery_plan = soak_plan;
    options.retry.initial_backoff_millis = 1;
    options.retry.max_backoff_millis = 2;
    RecoverableExecutor exec(options);
    auto r = exec.Execute(fig1->workflow, soak_input);
    if (!r.ok()) return r.status();
    if (!SameResult(*soak_plain, *r)) ++wrong_bytes;
    return Status::OK();
  };
  auto stream_run = [&]() -> Status {
    StreamOptions options;
    options.num_batches = 8;
    options.checkpoint_dir = stream_dir.string();
    options.recovery_plan = soak_plan;
    options.retry.initial_backoff_millis = 1;
    options.retry.max_backoff_millis = 2;
    StreamExecutor exec(options);
    auto r = exec.Run(fig1->workflow, soak_input);
    if (!r.ok()) return r.status();
    if (!SameResult(*soak_plain, *r)) ++wrong_bytes;
    return Status::OK();
  };

  const double soak_target_s = [&]() -> double {
    if (const char* s = std::getenv("ETLOPT_CHAOS_SOAK_SECS")) {
      const double v = std::atof(s);
      if (v > 0) return v;
    }
    return quick ? 2.0 : 65.0;
  }();
  const auto soak_start = std::chrono::steady_clock::now();
  uint64_t round = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       soak_start)
             .count() < soak_target_s) {
    FaultScheduleOptions schedule_options;
    schedule_options.num_faults = 4;
    schedule_options.max_hit = 32;
    FaultSchedule schedule =
        MakeRandomFaultSchedule(seed * 1000003 + round, schedule_options);
    {
      ScopedFaultInjection arm(schedule);
      for (const Status& status :
           {net_request(), recoverable_run(), stream_run()}) {
        if (status.ok()) {
          ++completed;
        } else if (status.message().empty()) {
          ++wrong_bytes;  // an undescribed failure counts as corruption
        } else {
          ++clean_failures;
        }
      }
    }
    // Post-round clean pass: any surface failing with the injector
    // disarmed is a wedge (poisoned state the chaos left behind).
    for (const Status& status :
         {net_request(), recoverable_run(), stream_run()}) {
      if (!status.ok()) {
        std::fprintf(stderr, "wedge after round %llu: %s\n",
                     static_cast<unsigned long long>(round),
                     status.ToString().c_str());
        ++wedges;
      } else {
        ++completed;
      }
    }
    ++round;
  }
  const double soak_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    soak_start)
          .count();
  ETLOPT_CHECK_OK(server.Stop());
  fs::remove_all(rec_dir);
  fs::remove_all(stream_dir);

  report.Add("soak.seconds", soak_s, "s");
  report.Add("soak.rounds", static_cast<double>(round), "rounds");
  report.Add("soak.completed", static_cast<double>(completed), "requests");
  report.Add("soak.clean_failures", static_cast<double>(clean_failures),
             "requests");
  report.Add("soak.wrong_bytes", static_cast<double>(wrong_bytes),
             "requests");
  report.Add("soak.wedges", static_cast<double>(wedges), "rounds");
  report.Write();
  std::printf(
      "soak: %.1fs, %llu rounds, %llu completed (all byte-checked), %llu "
      "clean failures, %llu wrong bytes, %llu wedges\n",
      soak_s, static_cast<unsigned long long>(round),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(clean_failures),
      static_cast<unsigned long long>(wrong_bytes),
      static_cast<unsigned long long>(wedges));

  if (!quick) {
    int failures = 0;
    if (vs_none < 2.0 || vs_all < 2.0) {
      std::fprintf(stderr,
                   "FAIL: placed recovery cost advantage %.2fx/%.2fx < 2x\n",
                   vs_none, vs_all);
      ++failures;
    }
    if (placed_ckpt_overhead_pct > 10.0) {
      std::fprintf(stderr,
                   "FAIL: placed checkpoint overhead %.1f%% > 10%%\n",
                   placed_ckpt_overhead_pct);
      ++failures;
    }
    if (soak_s < 60.0) {
      std::fprintf(stderr, "FAIL: soak ran %.1fs < 60s\n", soak_s);
      ++failures;
    }
    if (wrong_bytes != 0) {
      std::fprintf(stderr, "FAIL: %llu wrong result bytes\n",
                   static_cast<unsigned long long>(wrong_bytes));
      ++failures;
    }
    if (wedges != 0) {
      std::fprintf(stderr, "FAIL: %llu wedged rounds\n",
                   static_cast<unsigned long long>(wedges));
      ++failures;
    }
    if (completed == 0) {
      std::fprintf(stderr, "FAIL: no request completed during the soak\n");
      ++failures;
    }
    if (failures != 0) return 1;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
