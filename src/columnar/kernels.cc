#include "columnar/kernels.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {
namespace kernels {

StatusOr<std::vector<uint32_t>> SelectionFilter(const Expr& predicate,
                                                const RecordBatch& batch) {
  std::vector<uint32_t> sel;
  ETLOPT_RETURN_NOT_OK(SelectTrueRows(predicate, batch, &sel));
  return sel;
}

std::vector<uint32_t> NotNullFilter(const RecordBatch& batch, size_t col) {
  const uint8_t* nulls = batch.column(col).null_bytes();
  std::vector<uint32_t> sel;
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    if (!nulls[i]) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

StatusOr<std::vector<uint32_t>> DomainCheckFilter(const RecordBatch& batch,
                                                  size_t col, double lo,
                                                  double hi,
                                                  const std::string& label,
                                                  const std::string& attr) {
  const ColumnVector& c = batch.column(col);
  const uint8_t* nulls = c.null_bytes();
  std::vector<uint32_t> sel;
  const bool typed_numeric =
      !c.boxed() && (c.declared_type() == DataType::kInt64 ||
                     c.declared_type() == DataType::kDouble);
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    if (nulls[i]) continue;
    double d;
    if (typed_numeric) {
      d = c.declared_type() == DataType::kInt64
              ? static_cast<double>(c.ints()[i])
              : c.doubles()[i];
    } else {
      DataType t = c.TypeAt(i);
      if (t != DataType::kInt64 && t != DataType::kDouble) {
        return Status::InvalidArgument(
            StrFormat("activity '%s': domain check over non-numeric '%s'",
                      label.c_str(), attr.c_str()));
      }
      d = c.ValueAt(i).AsDouble();
    }
    if (d >= lo && d <= hi) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

StatusOr<std::vector<size_t>> ColumnMapping(const Schema& from,
                                            const Schema& to) {
  std::vector<size_t> mapping;
  mapping.reserve(to.size());
  for (const auto& a : to.attributes()) {
    auto idx = from.IndexOf(a.name);
    if (!idx.has_value()) {
      return Status::Internal("realign: missing attribute " + a.name);
    }
    mapping.push_back(*idx);
  }
  return mapping;
}

std::vector<Value> KeyAt(const RecordBatch& batch,
                         const std::vector<size_t>& key_cols, size_t row) {
  std::vector<Value> key;
  key.reserve(key_cols.size());
  for (size_t c : key_cols) key.push_back(batch.column(c).ValueAt(row));
  return key;
}

void PkKeepPartition(const std::vector<RecordBatch>& batches,
                     const std::vector<size_t>& key_cols, size_t part,
                     size_t num_partitions,
                     std::vector<std::vector<uint8_t>>* keep) {
  std::map<std::vector<Value>, bool> seen;
  for (size_t b = 0; b < batches.size(); ++b) {
    const RecordBatch& batch = batches[b];
    const std::vector<uint64_t>& hashes = batch.KeyHashes(key_cols);
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      if (hashes[i] % num_partitions != part) continue;
      if (seen.emplace(KeyAt(batch, key_cols, i), true).second) {
        (*keep)[b][i] = 1;
      }
    }
  }
}

GroupMap AggregatePartition(const std::vector<RecordBatch>& batches,
                            const std::vector<size_t>& group_cols,
                            const std::vector<size_t>& arg_cols, size_t part,
                            size_t num_partitions) {
  GroupMap groups;
  for (const RecordBatch& batch : batches) {
    const std::vector<uint64_t>& hashes = batch.KeyHashes(group_cols);
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      if (hashes[i] % num_partitions != part) continue;
      auto [it, inserted] = groups.try_emplace(
          KeyAt(batch, group_cols, i), std::vector<AggAcc>(arg_cols.size()));
      (void)inserted;
      for (size_t a = 0; a < arg_cols.size(); ++a) {
        it->second[a].Add(batch.column(arg_cols[a]).ValueAt(i));
      }
    }
  }
  return groups;
}

namespace {

bool KeyHasNull(const RecordBatch& batch, const std::vector<size_t>& key_cols,
                size_t row) {
  for (size_t c : key_cols) {
    if (batch.column(c).IsNull(row)) return true;
  }
  return false;
}

}  // namespace

JoinShard JoinBuildPartition(const std::vector<RecordBatch>& build,
                             const std::vector<size_t>& key_cols, size_t part,
                             size_t num_partitions) {
  JoinShard shard;
  for (size_t b = 0; b < build.size(); ++b) {
    const RecordBatch& batch = build[b];
    const std::vector<uint64_t>& hashes = batch.KeyHashes(key_cols);
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      if (hashes[i] % num_partitions != part) continue;
      if (KeyHasNull(batch, key_cols, i)) continue;
      shard[KeyAt(batch, key_cols, i)].push_back(
          BatchRef{static_cast<uint32_t>(b), static_cast<uint32_t>(i)});
    }
  }
  return shard;
}

RecordBatch JoinProbeBatch(const RecordBatch& left,
                           const std::vector<size_t>& left_key_cols,
                           const std::vector<JoinShard>& shards,
                           const std::vector<RecordBatch>& build,
                           const std::vector<size_t>& build_pass_cols,
                           const Schema& out_schema) {
  RecordBatch out(out_schema);
  const std::vector<uint64_t>& hashes = left.KeyHashes(left_key_cols);
  const size_t left_cols = left.num_columns();
  size_t emitted = 0;
  for (size_t i = 0; i < left.num_rows(); ++i) {
    if (KeyHasNull(left, left_key_cols, i)) continue;
    const JoinShard& shard = shards[hashes[i] % shards.size()];
    auto hit = shard.find(KeyAt(left, left_key_cols, i));
    if (hit == shard.end()) continue;
    for (const BatchRef& ref : hit->second) {
      const RecordBatch& rb = build[ref.batch];
      for (size_t c = 0; c < left_cols; ++c) {
        out.column(c).AppendFrom(left.column(c), i);
      }
      for (size_t p = 0; p < build_pass_cols.size(); ++p) {
        out.column(left_cols + p).AppendFrom(rb.column(build_pass_cols[p]),
                                             ref.row);
      }
      ++emitted;
    }
  }
  out.SetRowCount(emitted);
  return out;
}

}  // namespace kernels
}  // namespace etlopt
