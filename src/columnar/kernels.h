// Vectorized operator kernels over RecordBatches.
//
// Pure single-threaded primitives: each function processes one batch, or
// one hash partition's worth of rows across a batch list. All thread-pool
// fan-out lives in the engine (src/engine/vectorized.cc), which calls
// these from ParallelFor tasks — kernels never spawn work themselves, so
// src/columnar depends only on activity/expr/records/schema and the
// engine library can depend on it without a cycle.
//
// Correctness contract (the row engines are the oracle): every kernel
// reproduces the corresponding branch of Activity::Execute exactly —
// same kept rows, same order, same cell bytes, same error messages.
// Filters return ascending selection vectors; multi-batch kernels route
// each key to exactly one hash partition (hash % num_partitions over the
// batch's cached KeyHashes) and scan batches in order within a
// partition, so keep-first / accumulation order per key equals the
// serial engines' global scan order.

#ifndef ETLOPT_COLUMNAR_KERNELS_H_
#define ETLOPT_COLUMNAR_KERNELS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "activity/activity.h"
#include "activity/agg_accumulator.h"
#include "columnar/record_batch.h"
#include "columnar/vector_eval.h"
#include "common/statusor.h"

namespace etlopt {
namespace kernels {

/// Rows kept by a Selection predicate (must satisfy
/// CanVectorizePredicate), ascending.
StatusOr<std::vector<uint32_t>> SelectionFilter(const Expr& predicate,
                                                const RecordBatch& batch);

/// Rows whose column `col` is non-NULL, ascending.
std::vector<uint32_t> NotNullFilter(const RecordBatch& batch, size_t col);

/// Rows whose numeric column `col` lies in [lo, hi] (NULLs dropped),
/// ascending. Non-null non-numeric cells reproduce the row engine's
/// InvalidArgument ("activity '<label>': domain check over non-numeric
/// '<attr>'").
StatusOr<std::vector<uint32_t>> DomainCheckFilter(const RecordBatch& batch,
                                                  size_t col, double lo,
                                                  double hi,
                                                  const std::string& label,
                                                  const std::string& attr);

/// Column indices of `from` producing `to`'s attribute order (the
/// realign/projection mapping); Internal error if an attribute of `to`
/// is missing from `from`.
StatusOr<std::vector<size_t>> ColumnMapping(const Schema& from,
                                            const Schema& to);

/// Key cell values of row `row` at `key_cols`, in order.
std::vector<Value> KeyAt(const RecordBatch& batch,
                         const std::vector<size_t>& key_cols, size_t row);

/// Primary-key keep-first for one hash partition: scans every batch in
/// order, and for rows whose cached key hash routes to `part` marks the
/// first occurrence of each key in keep[batch][row]. Requires KeyHashes
/// precomputed on every batch for `key_cols`.
void PkKeepPartition(const std::vector<RecordBatch>& batches,
                     const std::vector<size_t>& key_cols, size_t part,
                     size_t num_partitions,
                     std::vector<std::vector<uint8_t>>* keep);

/// Aggregation state for one hash partition: group key -> one AggAcc per
/// AggSpec, fed in global scan order. The ordered map means partition
/// results merge into the serial engines' key-sorted output by a simple
/// key-merge. Requires KeyHashes precomputed for `group_cols`.
using GroupMap = std::map<std::vector<Value>, std::vector<AggAcc>>;
GroupMap AggregatePartition(const std::vector<RecordBatch>& batches,
                            const std::vector<size_t>& group_cols,
                            const std::vector<size_t>& arg_cols, size_t part,
                            size_t num_partitions);

/// A row address within a batch list.
struct BatchRef {
  uint32_t batch = 0;
  uint32_t row = 0;
};

/// Join build index for one hash partition: key -> build rows in build
/// (input) order. NULL keys never enter the index (SQL join semantics).
/// Requires KeyHashes precomputed on the build batches for `key_cols`.
using JoinShard = std::map<std::vector<Value>, std::vector<BatchRef>>;
JoinShard JoinBuildPartition(const std::vector<RecordBatch>& build,
                             const std::vector<size_t>& key_cols, size_t part,
                             size_t num_partitions);

/// Probes one left batch against the sharded build index, emitting for
/// each left row (in order) the concatenation of the left row and the
/// build row's passthrough columns, per matching build row in build
/// order — the serial engine's exact emit order. Left rows with NULL
/// keys never match. Requires KeyHashes precomputed on `left` for
/// `left_key_cols`.
RecordBatch JoinProbeBatch(const RecordBatch& left,
                           const std::vector<size_t>& left_key_cols,
                           const std::vector<JoinShard>& shards,
                           const std::vector<RecordBatch>& build,
                           const std::vector<size_t>& build_pass_cols,
                           const Schema& out_schema);

}  // namespace kernels
}  // namespace etlopt

#endif  // ETLOPT_COLUMNAR_KERNELS_H_
