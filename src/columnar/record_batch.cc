#include "columnar/record_batch.h"

#include <algorithm>

#include "common/macros.h"

namespace etlopt {

namespace {

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

}  // namespace

RecordBatch::RecordBatch(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (const auto& a : schema_.attributes()) columns_.emplace_back(a.type);
}

RecordBatch RecordBatch::FromRows(const Schema& schema,
                                  const std::vector<Record>& rows,
                                  size_t begin, size_t end) {
  RecordBatch b(schema);
  b.Reserve(end - begin);
  for (size_t i = begin; i < end; ++i) b.AppendRow(rows[i]);
  return b;
}

void RecordBatch::Reserve(size_t n) {
  for (auto& c : columns_) c.Reserve(n);
}

void RecordBatch::AppendRow(const Record& r) {
  ETLOPT_CHECK(r.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].Append(r.value(c));
  ++rows_;
  hashes_cached_ = false;
}

void RecordBatch::SetRowCount(size_t n) {
  for (const auto& c : columns_) ETLOPT_CHECK(c.size() == n);
  rows_ = n;
  hashes_cached_ = false;
}

Record RecordBatch::RowAt(size_t i) const {
  Record r;
  for (const auto& c : columns_) r.Append(c.ValueAt(i));
  return r;
}

void RecordBatch::AppendRowsTo(std::vector<Record>* out) const {
  out->reserve(out->size() + rows_);
  for (size_t i = 0; i < rows_; ++i) out->push_back(RowAt(i));
}

std::vector<Record> RecordBatch::ToRows() const {
  std::vector<Record> out;
  AppendRowsTo(&out);
  return out;
}

RecordBatch RecordBatch::Gather(const std::vector<uint32_t>& sel) const {
  RecordBatch out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) out.columns_.push_back(c.Gather(sel));
  out.rows_ = sel.size();
  return out;
}

RecordBatch RecordBatch::SelectColumns(const std::vector<size_t>& mapping,
                                       const Schema& to) const {
  RecordBatch out;
  out.schema_ = to;
  out.columns_.reserve(mapping.size());
  for (size_t src : mapping) out.columns_.push_back(columns_[src]);
  out.rows_ = rows_;
  return out;
}

const std::vector<uint64_t>& RecordBatch::KeyHashes(
    const std::vector<size_t>& key_cols) const {
  if (hashes_cached_ && cached_key_cols_ == key_cols) return cached_hashes_;
  cached_key_cols_ = key_cols;
  cached_hashes_.assign(rows_, kFnvBasis);
  for (size_t c : key_cols) {
    const ColumnVector& col = columns_[c];
    for (size_t i = 0; i < rows_; ++i) {
      cached_hashes_[i] = (cached_hashes_[i] ^ col.CellHash(i)) * kFnvPrime;
    }
  }
  hashes_cached_ = true;
  return cached_hashes_;
}

std::vector<RecordBatch> BatchRows(const Schema& schema,
                                   const std::vector<Record>& rows,
                                   size_t batch_size) {
  if (batch_size == 0) batch_size = kDefaultBatchSize;
  std::vector<RecordBatch> out;
  out.reserve((rows.size() + batch_size - 1) / batch_size);
  for (size_t begin = 0; begin < rows.size(); begin += batch_size) {
    size_t end = std::min(rows.size(), begin + batch_size);
    out.push_back(RecordBatch::FromRows(schema, rows, begin, end));
  }
  return out;
}

std::vector<Record> FlattenBatches(const std::vector<RecordBatch>& batches) {
  size_t total = 0;
  for (const auto& b : batches) total += b.num_rows();
  std::vector<Record> out;
  out.reserve(total);
  for (const auto& b : batches) b.AppendRowsTo(&out);
  return out;
}

}  // namespace etlopt
