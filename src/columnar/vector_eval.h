// Vectorized predicate evaluation over RecordBatches.
//
// Compiles a restricted class of Expr trees into per-batch loops:
//
//   supported ::= Compare(operand, operand)
//               | And/Or/Not(supported, ...)
//               | IsNull(column) | IsNotNull(column)
//   operand   ::= column reference present in the schema | literal
//
// Anything else — function calls, arithmetic, columns missing from the
// schema — reports !CanVectorizePredicate and the engine falls back to
// the row path for that activity, which also preserves the row engines'
// error behaviour (e.g. NotFound for unknown columns) exactly.
//
// Results are tri-state per row (SQL three-valued logic): 0 = false,
// 1 = true, 2 = NULL. The semantics replicate expr.cc bit for bit:
// comparisons of NULL yield NULL, non-null comparisons use Value's
// rank-based total order (int and double compare numerically, mixed
// ranks compare by rank), and AND/OR/NOT combine tri-states the way
// LogicalExpr::Evaluate does. A filter keeps exactly the rows whose
// tri-state is 1, matching EvaluatePredicate's NULL-is-false rule.

#ifndef ETLOPT_COLUMNAR_VECTOR_EVAL_H_
#define ETLOPT_COLUMNAR_VECTOR_EVAL_H_

#include <cstdint>
#include <vector>

#include "columnar/record_batch.h"
#include "common/status.h"
#include "expr/expr.h"
#include "schema/schema.h"

namespace etlopt {

/// True iff `expr` is in the supported class above against `schema`.
bool CanVectorizePredicate(const Expr& expr, const Schema& schema);

/// Evaluates `expr` (which must satisfy CanVectorizePredicate) over every
/// row of `batch`, writing one tri-state byte per row into `tri`.
Status EvalPredicateTri(const Expr& expr, const RecordBatch& batch,
                        std::vector<uint8_t>* tri);

/// Appends the ascending indices of rows where `expr` is exactly true.
Status SelectTrueRows(const Expr& expr, const RecordBatch& batch,
                      std::vector<uint32_t>* sel);

}  // namespace etlopt

#endif  // ETLOPT_COLUMNAR_VECTOR_EVAL_H_
