#include "columnar/column_vector.h"

#include "common/macros.h"

namespace etlopt {

namespace {

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

// Bit-identical to Value::Hash() for int/double cells: numerically equal
// int and double must hash equally, and -0.0 normalizes to 0.0.
uint64_t HashNumericCell(double d) {
  if (d == 0.0) d = 0.0;
  return FnvMix(kFnvBasis, &d, sizeof(d));
}

}  // namespace

ColumnVector::ColumnVector(DataType declared) : declared_(declared) {
  if (declared_ == DataType::kNull) boxed_ = true;
}

void ColumnVector::Reserve(size_t n) {
  null_.reserve(n);
  if (boxed_) {
    box_.reserve(n);
    return;
  }
  switch (declared_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kBool:
      bools_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
    case DataType::kNull:
      break;
  }
}

void ColumnVector::Append(const Value& v) {
  const bool is_null = v.is_null();
  if (!boxed_ && !is_null && v.type() != declared_) Demote();
  null_.push_back(is_null ? 1 : 0);
  if (boxed_) {
    box_.push_back(v);
    return;
  }
  switch (declared_) {
    case DataType::kInt64:
      ints_.push_back(is_null ? 0 : v.int_value());
      break;
    case DataType::kDouble:
      doubles_.push_back(is_null ? 0.0 : v.double_value());
      break;
    case DataType::kBool:
      bools_.push_back(is_null ? 0 : (v.bool_value() ? 1 : 0));
      break;
    case DataType::kString:
      strings_.push_back(is_null ? std::string() : v.string_value());
      break;
    case DataType::kNull:
      break;  // unreachable: kNull columns are boxed on construction
  }
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.IsNull(i)) {
    Append(Value::Null());
    return;
  }
  // Fast path: matching non-boxed layouts copy the raw cell.
  if (!boxed_ && !src.boxed_ && src.declared_ == declared_) {
    null_.push_back(0);
    switch (declared_) {
      case DataType::kInt64:
        ints_.push_back(src.ints_[i]);
        return;
      case DataType::kDouble:
        doubles_.push_back(src.doubles_[i]);
        return;
      case DataType::kBool:
        bools_.push_back(src.bools_[i]);
        return;
      case DataType::kString:
        strings_.push_back(src.strings_[i]);
        return;
      case DataType::kNull:
        return;
    }
  }
  Append(src.ValueAt(i));
}

DataType ColumnVector::TypeAt(size_t i) const {
  if (IsNull(i)) return DataType::kNull;
  return boxed_ ? box_[i].type() : declared_;
}

Value ColumnVector::ValueAt(size_t i) const {
  if (boxed_) return box_[i];
  if (IsNull(i)) return Value::Null();
  switch (declared_) {
    case DataType::kInt64:
      return Value::Int(ints_[i]);
    case DataType::kDouble:
      return Value::Double(doubles_[i]);
    case DataType::kBool:
      return Value::Bool(bools_[i] != 0);
    case DataType::kString:
      return Value::String(strings_[i]);
    case DataType::kNull:
      break;
  }
  return Value::Null();
}

uint64_t ColumnVector::CellHash(size_t i) const {
  if (boxed_) return box_[i].Hash();
  if (IsNull(i)) return kFnvBasis;
  switch (declared_) {
    case DataType::kInt64:
      return HashNumericCell(static_cast<double>(ints_[i]));
    case DataType::kDouble:
      return HashNumericCell(doubles_[i]);
    case DataType::kBool: {
      bool b = bools_[i] != 0;
      return FnvMix(kFnvBasis, &b, sizeof(b));
    }
    case DataType::kString:
      return FnvMix(kFnvBasis, strings_[i].data(), strings_[i].size());
    case DataType::kNull:
      break;
  }
  return kFnvBasis;
}

ColumnVector ColumnVector::Gather(const std::vector<uint32_t>& sel) const {
  ColumnVector out(declared_);
  out.boxed_ = boxed_;
  out.Reserve(sel.size());
  if (boxed_) {
    for (uint32_t i : sel) {
      out.null_.push_back(null_[i]);
      out.box_.push_back(box_[i]);
    }
    return out;
  }
  for (uint32_t i : sel) out.null_.push_back(null_[i]);
  switch (declared_) {
    case DataType::kInt64:
      for (uint32_t i : sel) out.ints_.push_back(ints_[i]);
      break;
    case DataType::kDouble:
      for (uint32_t i : sel) out.doubles_.push_back(doubles_[i]);
      break;
    case DataType::kBool:
      for (uint32_t i : sel) out.bools_.push_back(bools_[i]);
      break;
    case DataType::kString:
      for (uint32_t i : sel) out.strings_.push_back(strings_[i]);
      break;
    case DataType::kNull:
      break;
  }
  return out;
}

void ColumnVector::Demote() {
  ETLOPT_CHECK(!boxed_);
  box_.reserve(null_.size());
  for (size_t i = 0; i < null_.size(); ++i) box_.push_back(ValueAt(i));
  ints_.clear();
  doubles_.clear();
  bools_.clear();
  strings_.clear();
  boxed_ = true;
}

}  // namespace etlopt
