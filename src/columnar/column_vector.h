// ColumnVector: one column of a RecordBatch.
//
// The columnar layer trades the row engines' Record-of-Value layout
// (one heap vector of variants per row) for contiguous typed arrays with
// a null byte-map, so the vectorized kernels run tight loops over plain
// int64_t/double data instead of variant dispatch per cell.
//
// Round-trip contract: a column rebuilt from Values hands back *exactly*
// the Values it was fed — same runtime type, same bytes — because the
// vectorized engine's outputs must be byte-identical to the row engines'
// (the engine-agreement property). Since recordsets are only
// arity-checked at the source, a cell's runtime type may disagree with
// the column's declared type (an int schema carrying a double after a
// union realign, say). Such a column *demotes*: it falls back to boxed
// Value storage for every cell, keeping the round-trip lossless at the
// price of the typed fast path. Kernels check boxed() and take the
// general per-cell path for demoted columns.

#ifndef ETLOPT_COLUMNAR_COLUMN_VECTOR_H_
#define ETLOPT_COLUMNAR_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/value.h"

namespace etlopt {

class ColumnVector {
 public:
  /// An empty column whose typed storage matches `declared`. A declared
  /// type of kNull boxes from the start (no typed array to use).
  explicit ColumnVector(DataType declared = DataType::kString);

  DataType declared_type() const { return declared_; }

  /// True when the column fell back to boxed Value storage because some
  /// cell's runtime type disagreed with the declared type.
  bool boxed() const { return boxed_; }

  size_t size() const { return null_.size(); }
  void Reserve(size_t n);

  /// Appends one cell, demoting the column if the runtime type of a
  /// non-null `v` differs from the declared type.
  void Append(const Value& v);

  /// Appends cell `i` of `src` — same semantics as Append(src.ValueAt(i))
  /// without boxing the cell first.
  void AppendFrom(const ColumnVector& src, size_t i);

  bool IsNull(size_t i) const { return null_[i] != 0; }

  /// Runtime type of cell `i` (kNull for NULL cells).
  DataType TypeAt(size_t i) const;

  /// Boxes cell `i` back into a Value with its exact runtime type.
  Value ValueAt(size_t i) const;

  /// FNV hash of cell `i`, bit-identical to ValueAt(i).Hash().
  uint64_t CellHash(size_t i) const;

  // Typed raw access for kernels; valid only when !boxed() and the
  // declared type matches. NULL positions hold a zero placeholder.
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const uint8_t* bools() const { return bools_.data(); }
  const std::string& string_at(size_t i) const { return strings_[i]; }
  /// One byte per row; non-zero means NULL.
  const uint8_t* null_bytes() const { return null_.data(); }

  /// New column containing rows sel[0], sel[1], ... in that order.
  ColumnVector Gather(const std::vector<uint32_t>& sel) const;

 private:
  /// Moves every cell into boxed storage; Append continues boxed.
  void Demote();

  DataType declared_;
  bool boxed_ = false;
  std::vector<uint8_t> null_;  // 1 = NULL; size() == row count
  // Exactly one of these is populated when !boxed_ (per declared_);
  // box_ is populated instead after demotion.
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  std::vector<Value> box_;
};

}  // namespace etlopt

#endif  // ETLOPT_COLUMNAR_COLUMN_VECTOR_H_
