#include "columnar/vector_eval.h"

#include "common/macros.h"

namespace etlopt {

namespace {

// One side of a compiled comparison: a resolved column index or a
// literal borrowed from the Expr tree (valid for the tree's lifetime).
struct Operand {
  bool is_column = false;
  size_t col = 0;
  const Value* literal = nullptr;
};

bool CompileOperand(const Expr& e, const Schema& schema, Operand* op) {
  Expr::Parts p = e.parts();
  if (e.kind() == Expr::Kind::kColumn && p.column != nullptr) {
    auto idx = schema.IndexOf(*p.column);
    if (!idx.has_value()) return false;
    op->is_column = true;
    op->col = *idx;
    return true;
  }
  if (e.kind() == Expr::Kind::kLiteral && p.literal != nullptr) {
    op->literal = p.literal;
    return true;
  }
  return false;
}

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

// A numeric column usable by the typed fast path, presented as a
// per-row double getter regardless of int64/double storage.
struct NumericColumn {
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const uint8_t* nulls = nullptr;
  double At(size_t i) const {
    return ints != nullptr ? static_cast<double>(ints[i]) : doubles[i];
  }
};

bool AsNumericColumn(const ColumnVector& c, NumericColumn* out) {
  if (c.boxed() || !IsNumeric(c.declared_type())) return false;
  out->nulls = c.null_bytes();
  if (c.declared_type() == DataType::kInt64) {
    out->ints = c.ints();
  } else {
    out->doubles = c.doubles();
  }
  return true;
}

// Comparison outcome for two non-null doubles. Spelled with the exact
// ==/< negation forms CompareExpr::Evaluate uses (not <=/>=) so NaN
// cells order identically to the row path.
inline bool CompareDoubles(CompareOp op, double a, double b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return !(a == b);
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return !(b < a);
    case CompareOp::kGt:
      return b < a;
    case CompareOp::kGe:
      return !(a < b);
  }
  return false;
}

// Same outcome for two non-null Values, using the rank-based total
// order exactly as CompareExpr::Evaluate does.
inline bool CompareValues(CompareOp op, const Value& l, const Value& r) {
  switch (op) {
    case CompareOp::kEq:
      return l == r;
    case CompareOp::kNe:
      return !(l == r);
    case CompareOp::kLt:
      return l < r;
    case CompareOp::kLe:
      return !(r < l);
    case CompareOp::kGt:
      return r < l;
    case CompareOp::kGe:
      return !(l < r);
  }
  return false;
}

Status EvalCompare(CompareOp op, const Operand& lhs, const Operand& rhs,
                   const RecordBatch& batch, std::vector<uint8_t>* tri) {
  const size_t n = batch.num_rows();
  tri->resize(n);

  // Typed fast paths: numeric column vs numeric literal (either side)
  // and numeric column vs numeric column.
  NumericColumn lc, rc;
  const bool l_num_col =
      lhs.is_column && AsNumericColumn(batch.column(lhs.col), &lc);
  const bool r_num_col =
      rhs.is_column && AsNumericColumn(batch.column(rhs.col), &rc);
  const bool l_num_lit =
      lhs.literal != nullptr && IsNumeric(lhs.literal->type());
  const bool r_num_lit =
      rhs.literal != nullptr && IsNumeric(rhs.literal->type());

  if (l_num_col && r_num_lit) {
    const double b = rhs.literal->AsDouble();
    for (size_t i = 0; i < n; ++i) {
      (*tri)[i] = lc.nulls[i] ? 2 : (CompareDoubles(op, lc.At(i), b) ? 1 : 0);
    }
    return Status::OK();
  }
  if (l_num_lit && r_num_col) {
    const double a = lhs.literal->AsDouble();
    for (size_t i = 0; i < n; ++i) {
      (*tri)[i] = rc.nulls[i] ? 2 : (CompareDoubles(op, a, rc.At(i)) ? 1 : 0);
    }
    return Status::OK();
  }
  if (l_num_col && r_num_col) {
    for (size_t i = 0; i < n; ++i) {
      (*tri)[i] = (lc.nulls[i] || rc.nulls[i])
                      ? 2
                      : (CompareDoubles(op, lc.At(i), rc.At(i)) ? 1 : 0);
    }
    return Status::OK();
  }

  // General path: box cells and use Value's operators directly. Still
  // avoids the row path's per-row schema lookup and virtual dispatch.
  for (size_t i = 0; i < n; ++i) {
    Value l = lhs.is_column ? batch.column(lhs.col).ValueAt(i) : *lhs.literal;
    Value r = rhs.is_column ? batch.column(rhs.col).ValueAt(i) : *rhs.literal;
    if (l.is_null() || r.is_null()) {
      (*tri)[i] = 2;
    } else {
      (*tri)[i] = CompareValues(op, l, r) ? 1 : 0;
    }
  }
  return Status::OK();
}

}  // namespace

bool CanVectorizePredicate(const Expr& expr, const Schema& schema) {
  Expr::Parts p = expr.parts();
  switch (expr.kind()) {
    case Expr::Kind::kCompare: {
      Operand l, r;
      return p.lhs != nullptr && p.rhs != nullptr &&
             CompileOperand(*p.lhs, schema, &l) &&
             CompileOperand(*p.rhs, schema, &r);
    }
    case Expr::Kind::kLogical: {
      if (p.lhs == nullptr || !CanVectorizePredicate(*p.lhs, schema)) {
        return false;
      }
      if (p.logical == LogicalOp::kNot) return true;
      return p.rhs != nullptr && CanVectorizePredicate(*p.rhs, schema);
    }
    case Expr::Kind::kIsNull:
    case Expr::Kind::kIsNotNull: {
      if (p.lhs == nullptr || p.lhs->kind() != Expr::Kind::kColumn) {
        return false;
      }
      Expr::Parts inner = p.lhs->parts();
      return inner.column != nullptr && schema.Contains(*inner.column);
    }
    default:
      return false;
  }
}

Status EvalPredicateTri(const Expr& expr, const RecordBatch& batch,
                        std::vector<uint8_t>* tri) {
  Expr::Parts p = expr.parts();
  switch (expr.kind()) {
    case Expr::Kind::kCompare: {
      Operand l, r;
      if (p.lhs == nullptr || p.rhs == nullptr ||
          !CompileOperand(*p.lhs, batch.schema(), &l) ||
          !CompileOperand(*p.rhs, batch.schema(), &r)) {
        return Status::Internal("vector_eval: unsupported compare operand");
      }
      return EvalCompare(p.cmp, l, r, batch, tri);
    }
    case Expr::Kind::kLogical: {
      if (p.lhs == nullptr) {
        return Status::Internal("vector_eval: logical without lhs");
      }
      ETLOPT_RETURN_NOT_OK(EvalPredicateTri(*p.lhs, batch, tri));
      if (p.logical == LogicalOp::kNot) {
        for (auto& t : *tri) {
          if (t != 2) t = t == 0 ? 1 : 0;
        }
        return Status::OK();
      }
      std::vector<uint8_t> rhs_tri;
      if (p.rhs == nullptr) {
        return Status::Internal("vector_eval: binary logical without rhs");
      }
      ETLOPT_RETURN_NOT_OK(EvalPredicateTri(*p.rhs, batch, &rhs_tri));
      if (p.logical == LogicalOp::kAnd) {
        for (size_t i = 0; i < tri->size(); ++i) {
          uint8_t a = (*tri)[i], b = rhs_tri[i];
          (*tri)[i] = (a == 0 || b == 0) ? 0 : ((a == 2 || b == 2) ? 2 : 1);
        }
      } else {
        for (size_t i = 0; i < tri->size(); ++i) {
          uint8_t a = (*tri)[i], b = rhs_tri[i];
          (*tri)[i] = (a == 1 || b == 1) ? 1 : ((a == 2 || b == 2) ? 2 : 0);
        }
      }
      return Status::OK();
    }
    case Expr::Kind::kIsNull:
    case Expr::Kind::kIsNotNull: {
      Expr::Parts inner = p.lhs != nullptr ? p.lhs->parts() : Expr::Parts{};
      if (inner.column == nullptr) {
        return Status::Internal("vector_eval: null test over non-column");
      }
      auto idx = batch.schema().IndexOf(*inner.column);
      if (!idx.has_value()) {
        return Status::Internal("vector_eval: null-test column missing");
      }
      const uint8_t* nulls = batch.column(*idx).null_bytes();
      const bool want_null = expr.kind() == Expr::Kind::kIsNull;
      tri->resize(batch.num_rows());
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        (*tri)[i] = ((nulls[i] != 0) == want_null) ? 1 : 0;
      }
      return Status::OK();
    }
    default:
      return Status::Internal("vector_eval: unsupported predicate shape");
  }
}

Status SelectTrueRows(const Expr& expr, const RecordBatch& batch,
                      std::vector<uint32_t>* sel) {
  std::vector<uint8_t> tri;
  ETLOPT_RETURN_NOT_OK(EvalPredicateTri(expr, batch, &tri));
  for (size_t i = 0; i < tri.size(); ++i) {
    if (tri[i] == 1) sel->push_back(static_cast<uint32_t>(i));
  }
  return Status::OK();
}

}  // namespace etlopt
