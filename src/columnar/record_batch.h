// RecordBatch: a horizontal slice of a recordset in columnar layout.
//
// The vectorized engine's unit of work. A batch is a Schema plus one
// ColumnVector per attribute, all the same length. Batches convert
// losslessly to and from the row representation (FromRows/ToRows are
// exact inverses, including runtime cell types), which is what lets the
// row engines act as the byte-identical correctness oracle.
//
// Selection semantics: filters never mutate a batch in place; they
// produce an ascending selection vector (row indices to keep) and
// Gather() compacts it into a fresh, smaller batch. Ascending selection
// vectors preserve input order, so concatenating per-batch outputs in
// batch order reproduces the serial engines' row order exactly.

#ifndef ETLOPT_COLUMNAR_RECORD_BATCH_H_
#define ETLOPT_COLUMNAR_RECORD_BATCH_H_

#include <cstdint>
#include <vector>

#include "columnar/column_vector.h"
#include "common/statusor.h"
#include "records/record.h"
#include "schema/schema.h"

namespace etlopt {

/// Default rows per batch for the vectorized engine.
inline constexpr size_t kDefaultBatchSize = 1024;

class RecordBatch {
 public:
  RecordBatch() = default;

  /// An empty batch with one column per attribute of `schema`.
  explicit RecordBatch(Schema schema);

  /// Batches rows[begin, end), columns typed per `schema`. Rows must
  /// match the schema's arity (the engines validate sources up front).
  static RecordBatch FromRows(const Schema& schema,
                              const std::vector<Record>& rows, size_t begin,
                              size_t end);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnVector& column(size_t i) const { return columns_[i]; }
  ColumnVector& column(size_t i) { return columns_[i]; }

  void Reserve(size_t n);

  /// Appends one row; aborts on arity mismatch (programming error).
  void AppendRow(const Record& r);

  /// Declares the row count after a kernel appended cells column-wise
  /// (bypassing AppendRow); aborts unless every column holds exactly `n`
  /// cells.
  void SetRowCount(size_t n);

  /// Boxes row `i` back into a Record (exact runtime cell types).
  Record RowAt(size_t i) const;

  /// Appends every row to `out` in order.
  void AppendRowsTo(std::vector<Record>* out) const;
  std::vector<Record> ToRows() const;

  /// Compacts rows sel[0], sel[1], ... (ascending for order-preserving
  /// filters) into a fresh batch with the same schema.
  RecordBatch Gather(const std::vector<uint32_t>& sel) const;

  /// Rebuilds the batch in `to`'s attribute order (realign / projection):
  /// output column j is this batch's column mapping[j].
  RecordBatch SelectColumns(const std::vector<size_t>& mapping,
                            const Schema& to) const;

  /// Per-row FNV hash over the cells of `key_cols`, bit-identical to
  /// Record::Hash() of the extracted key record. The result is cached on
  /// the batch: the join and PK kernels hash each batch once and reuse
  /// the cache for partition routing and bucket lookup instead of
  /// re-hashing per probe row. NOT thread-safe — the engine computes the
  /// cache with one task per batch before any shared read-only phase.
  const std::vector<uint64_t>& KeyHashes(
      const std::vector<size_t>& key_cols) const;

 private:
  Schema schema_;
  std::vector<ColumnVector> columns_;
  size_t rows_ = 0;

  mutable bool hashes_cached_ = false;
  mutable std::vector<size_t> cached_key_cols_;
  mutable std::vector<uint64_t> cached_hashes_;
};

/// Splits `rows` into batches of at most `batch_size` rows (the last may
/// be short). Zero rows yields zero batches.
std::vector<RecordBatch> BatchRows(const Schema& schema,
                                   const std::vector<Record>& rows,
                                   size_t batch_size);

/// Concatenates every batch's rows, in batch order.
std::vector<Record> FlattenBatches(const std::vector<RecordBatch>& batches);

}  // namespace etlopt

#endif  // ETLOPT_COLUMNAR_RECORD_BATCH_H_
