// Reliability-aware costing: expected-total-cost = execution cost +
// checkpoint write cost + expected recovery cost, with recovery-point
// placement solved exactly per state by dynamic programming over the
// topological execution order.
//
// The model follows the classic checkpoint-placement formulation: failures
// arrive at a rate proportional to executed work (failure_rate_per_cost,
// "lambda" — expected failures per unit of execution cost), and a failure
// during node j forces a restart from the most recent recovery point
// (paying a restore cost plus re-execution of every node after it up to
// and including j). A recovery point after position i is a *consistent
// cut*, not a single node: it covers every activity at position <= i
// whose output is still needed after i (the engine's resume walks need-
// propagation back from the targets and only stops at checkpointed
// nodes). Cuts are priced sparsely: a member whose upstream cone is
// cheaper to re-execute across the run's expected failures than one
// checkpoint file is left out of the cut and its recompute is charged to
// the restore cost instead — resume walks through the hole to the
// sources or to another recovery point. Writing a cut costs a setup fee
// per persisted member plus a per-row fee on their output cardinality.
// All figures are in the cost model's native units, so the surcharge
// composes directly with CostBreakdown::total.
//
// Everything here is a pure deterministic function of
// (workflow structure, CostBreakdown, ReliabilityParams) — the search
// layer relies on this for its paranoid save/restore cross-checks.

#ifndef ETLOPT_COST_RELIABILITY_MODEL_H_
#define ETLOPT_COST_RELIABILITY_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cost/state_cost.h"
#include "graph/workflow.h"

namespace etlopt {

/// Parameters of the reliability model. Defaults are deliberately mild:
/// with lambda = 1e-4 a workflow costing 30,000 units expects ~3 failures
/// per run, enough for placement to matter without dominating execution.
struct ReliabilityParams {
  /// Expected failures per unit of execution cost (lambda >= 0).
  double failure_rate_per_cost = 1e-4;
  /// Fixed cost of writing one checkpoint.
  double checkpoint_setup_cost = 8.0;
  /// Per-row cost of writing a checkpoint of a node's output.
  double checkpoint_cost_per_row = 0.05;
  /// Fixed cost of one restart (process respawn, re-open sources, ...).
  double restore_setup_cost = 32.0;
  /// Per-row cost of reading a checkpoint back on restart.
  double restore_cost_per_row = 0.025;
};

/// Rejects non-finite or negative parameters.
Status ValidateReliabilityParams(const ReliabilityParams& params);

/// Canonical fingerprint, e.g. "rel(lambda=0.0001,ws=8,wr=0.05,rs=32,
/// rr=0.025)". Values round-trip bit for bit (DoubleToString), so the
/// fingerprint embedded in a serialized plan's options line is enough to
/// re-verify the plan's recovery section exactly.
std::string ReliabilityFingerprint(const ReliabilityParams& params);

/// Inverse of ReliabilityFingerprint. Accepts exactly the canonical form.
StatusOr<ReliabilityParams> ParseReliabilityFingerprint(std::string_view s);

/// Scans `options_fingerprint` (a SearchOptions fingerprint line) for a
/// ",reliability=rel(...)" entry; returns it parsed, or an error when the
/// entry is absent or malformed. Helper for plan re-verification.
StatusOr<ReliabilityParams> ReliabilityFromOptionsFingerprint(
    std::string_view options_fingerprint);

/// The optimizer's recovery-point decision for one workflow: which nodes
/// to checkpoint, and the cost ledger that justified them. Node identity
/// crosses serialization via priority labels (stable across transitions
/// and round-trips), never raw NodeIds.
struct RecoveryPointPlan {
  /// False = reliability costing was off; every other field is zero/empty
  /// and the plan serializes to nothing (byte-identical legacy formats).
  bool enabled = false;
  /// Priority labels of the nodes to checkpoint — the union of the
  /// chosen recovery points' cuts — in topological execution order of
  /// the optimized workflow.
  std::vector<std::string> labels;
  /// Execution cost of the workflow (CostBreakdown::total).
  double execution_cost = 0.0;
  /// Total cost of writing the chosen checkpoints.
  double checkpoint_cost = 0.0;
  /// Expected cost of failures: restore + re-execution, summed over nodes.
  double expected_recovery_cost = 0.0;
  /// execution_cost + checkpoint_cost + expected_recovery_cost. This is
  /// the value the search minimized (state cost under reliability).
  double expected_total_cost = 0.0;
  /// Lambda the plan was computed with (carried so executors can derive
  /// stream checkpoint intervals without re-parsing options).
  double failure_rate_per_cost = 0.0;
  /// Estimated cost of one streaming checkpoint (setup + per-row over the
  /// target recordsets' cardinalities) — input to the Young-style
  /// micro-batch interval in PlannedStreamCheckpointInterval.
  double stream_checkpoint_unit_cost = 0.0;
  /// Human-readable budget rationale: how many candidates were considered,
  /// what the chosen placement costs, and what the no-checkpoint /
  /// checkpoint-everywhere alternatives would have cost. Deterministic.
  std::string rationale;
};

/// Solves recovery-point placement for one costed workflow: O(n^2)
/// dynamic program over topological positions choosing the cut positions
/// whose checkpoints minimize
///   checkpoint_cost + expected_recovery_cost.
/// Ties break deterministically (strict improvement, earliest predecessor
/// wins). `workflow` must be fresh and `bd` must be its exact breakdown.
RecoveryPointPlan PlaceRecoveryPoints(const Workflow& workflow,
                                      const CostBreakdown& bd,
                                      const ReliabilityParams& params);

/// The additive surcharge reliability costing puts on a state:
/// checkpoint_cost + expected_recovery_cost of the *optimal* placement.
/// Equal to the corresponding PlaceRecoveryPoints fields bit for bit, but
/// skips label/rationale materialization (search hot path).
double ReliabilitySurcharge(const Workflow& workflow, const CostBreakdown& bd,
                            const ReliabilityParams& params);

/// Checkpoint-every-k-batches interval for the streaming executor, from
/// the Young approximation: the optimal inter-checkpoint work is
/// sqrt(2 * checkpoint_unit_cost / lambda), converted to batches via the
/// plan's per-batch execution cost and clamped to [1, batch_count].
/// Returns batch_count (checkpoint only at the end) when the plan is
/// disabled or failures are impossible.
uint64_t PlannedStreamCheckpointInterval(const RecoveryPointPlan& plan,
                                         uint64_t batch_count);

}  // namespace etlopt

#endif  // ETLOPT_COST_RELIABILITY_MODEL_H_
