#include "cost/reliability_model.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

// Everything the DP needs, laid out by topological position.
//
// A recovery point "after position j" is a *consistent cut*: the engine's
// resume walks need-propagation back from the targets and only stops at
// checkpointed nodes, so a single mid-DAG checkpoint leaves every other
// branch re-executing from its sources. The cut at j therefore contains
// every activity at position <= j whose output is still needed by some
// node after j (or feeds a target recordset, which must survive a late
// crash).
//
// Cuts are *sparse*: a member whose entire upstream cone costs less to
// re-execute across the run's expected failures than one checkpoint file
// is cheaper to recompute on restart than to persist every run, so it is
// dropped from the cut and its cone is charged to Restore instead. The
// engine's resume handles the hole naturally — need-propagation walks
// through un(checkpointed) nodes to the sources or to other recovery
// points — so only the pricing lives here.
struct PlacementInput {
  int n = 0;
  std::vector<double> cost;         // execution cost per position (0 for rs)
  std::vector<double> card;         // output cardinality per position
  std::vector<char> candidate;      // 1 = activity node (checkpointable)
  std::vector<double> cum;          // cum[i] = exec cost of positions < i
  std::vector<double> weighted;     // weighted[i] = sum cost[j]*cum[j+1], j<i
  std::vector<int> last_need;       // activity at i is in cut(j) iff
                                    // i <= j < last_need[i]
  std::vector<char> kept;           // candidate worth a checkpoint file
  std::vector<double> kept_count;   // files written for cut(j)
  std::vector<double> kept_rows;    // rows in those files
  std::vector<double> drop_cost;    // recompute bill of cut(j)'s dropped
                                    // members (union of their cones)
};

PlacementInput BuildInput(const Workflow& workflow, const CostBreakdown& bd,
                          const ReliabilityParams& params) {
  const std::vector<NodeId>& topo = workflow.TopoOrder();
  PlacementInput in;
  in.n = static_cast<int>(topo.size());
  in.cost.assign(in.n, 0.0);
  in.card.assign(in.n, 0.0);
  in.candidate.assign(in.n, 0);
  std::unordered_map<NodeId, int> pos_of;
  pos_of.reserve(topo.size());
  for (int i = 0; i < in.n; ++i) pos_of[topo[i]] = i;
  for (int i = 0; i < in.n; ++i) {
    if (auto it = bd.node_cost.find(topo[i]); it != bd.node_cost.end()) {
      in.cost[i] = it->second;
      in.candidate[i] = 1;
    }
    if (auto it = bd.node_output_cardinality.find(topo[i]);
        it != bd.node_output_cardinality.end()) {
      in.card[i] = it->second;
    }
  }
  in.cum.assign(in.n + 1, 0.0);
  in.weighted.assign(in.n + 1, 0.0);
  for (int i = 0; i < in.n; ++i) {
    in.cum[i + 1] = in.cum[i] + in.cost[i];
    in.weighted[i + 1] = in.weighted[i] + in.cost[i] * in.cum[i + 1];
  }
  // last_need[i]: one past the last position that still consumes activity
  // i's output. The activity's output recordset(s) sit after it in topo
  // order; a recordset with no consumers is a target and must survive
  // until the very end (last_need = n).
  in.last_need.assign(in.n, 0);
  for (int i = 0; i < in.n; ++i) {
    if (!in.candidate[i]) continue;
    int last = i + 1;
    for (NodeId out : workflow.Consumers(topo[i])) {
      auto out_pos = pos_of.find(out);
      if (out_pos == pos_of.end()) continue;
      last = std::max(last, out_pos->second + 1);
      const std::vector<NodeId> readers = workflow.Consumers(out);
      if (readers.empty()) {
        last = in.n;  // target recordset: needed through the end
        break;
      }
      for (NodeId r : readers) {
        auto r_pos = pos_of.find(r);
        if (r_pos != pos_of.end()) last = std::max(last, r_pos->second + 1);
      }
    }
    in.last_need[i] = last;
  }
  // cone[i]: positions of every activity in i's ancestor closure
  // (including i), as a bitset — the work a restart must redo to rebuild
  // i's output from the sources when i is not checkpointed.
  const int words = (in.n + 63) / 64;
  std::vector<uint64_t> cone(static_cast<size_t>(in.n) * words, 0);
  std::vector<double> cone_cost(in.n, 0.0);
  for (int i = 0; i < in.n; ++i) {
    uint64_t* self = &cone[static_cast<size_t>(i) * words];
    for (NodeId p : workflow.Providers(topo[i])) {
      auto it = pos_of.find(p);
      if (it == pos_of.end()) continue;
      const uint64_t* prov = &cone[static_cast<size_t>(it->second) * words];
      for (int w = 0; w < words; ++w) self[w] |= prov[w];
    }
    if (in.candidate[i]) self[i / 64] |= uint64_t{1} << (i % 64);
    double total = 0.0;
    for (int w = 0; w < words; ++w) {
      uint64_t bits = self[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        total += in.cost[w * 64 + b];
      }
    }
    cone_cost[i] = total;
  }
  // Sparse-cut keep rule: persist a member only when recomputing its cone
  // on every expected failure would cost more than one checkpoint file.
  const double expected_failures =
      params.failure_rate_per_cost * in.cum[in.n];
  in.kept.assign(in.n, 0);
  for (int i = 0; i < in.n; ++i) {
    if (!in.candidate[i]) continue;
    const double file_cost = params.checkpoint_setup_cost +
                             params.checkpoint_cost_per_row * in.card[i];
    if (expected_failures * cone_cost[i] >= file_cost) in.kept[i] = 1;
  }
  // kept_count/kept_rows via interval difference sums: activity i belongs
  // to cut(j) for j in [i, last_need[i]).
  std::vector<double> dcount(in.n + 1, 0.0), drows(in.n + 1, 0.0);
  for (int i = 0; i < in.n; ++i) {
    if (!in.kept[i] || in.last_need[i] <= i) continue;
    dcount[i] += 1.0;
    drows[i] += in.card[i];
    dcount[in.last_need[i]] -= 1.0;
    drows[in.last_need[i]] -= in.card[i];
  }
  in.kept_count.assign(in.n, 0.0);
  in.kept_rows.assign(in.n, 0.0);
  double c = 0.0, r = 0.0;
  for (int j = 0; j < in.n; ++j) {
    c += dcount[j];
    r += drows[j];
    in.kept_count[j] = c;
    in.kept_rows[j] = r;
  }
  // drop_cost[j]: one restart from cut(j) re-executes the union of the
  // dropped members' cones (union, not sum — shared ancestors run once).
  in.drop_cost.assign(in.n, 0.0);
  std::vector<uint64_t> scratch(words);
  for (int j = 0; j < in.n; ++j) {
    if (!in.candidate[j]) continue;
    std::fill(scratch.begin(), scratch.end(), uint64_t{0});
    bool any = false;
    for (int i = 0; i <= j; ++i) {
      if (!in.candidate[i] || in.kept[i] || in.last_need[i] <= j) continue;
      const uint64_t* c2 = &cone[static_cast<size_t>(i) * words];
      for (int w = 0; w < words; ++w) scratch[w] |= c2[w];
      any = true;
    }
    if (!any) continue;
    double total = 0.0;
    for (int w = 0; w < words; ++w) {
      uint64_t bits = scratch[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        total += in.cost[w * 64 + b];
      }
    }
    in.drop_cost[j] = total;
  }
  return in;
}

struct SegmentModel {
  const PlacementInput* in;
  const ReliabilityParams* params;

  // Cost of restarting from the recovery point at position `pos` (-1 =
  // the virtual start: plain restart, nothing to read back). One restart
  // reads every checkpoint file of the cut and re-executes the cones of
  // the members the sparse cut chose not to persist.
  double Restore(int pos) const {
    if (pos < 0) return params->restore_setup_cost;
    return params->restore_setup_cost +
           params->restore_cost_per_row * in->kept_rows[pos] +
           in->drop_cost[pos];
  }

  // Cost of writing the recovery point after position `pos`: one
  // checkpoint file per kept cut member.
  double Write(int pos) const {
    return params->checkpoint_setup_cost * in->kept_count[pos] +
           params->checkpoint_cost_per_row * in->kept_rows[pos];
  }

  // Expected recovery cost of positions (q, j]: a failure during node k
  // (probability lambda * cost[k]) pays Restore(q) plus re-execution of
  // (q, k] including node k itself. Closed form via the prefix sums:
  //   sum_k lambda*cost[k]*(Restore(q) + cum[k+1] - cum[q+1])
  // = lambda*((Restore(q) - cum[q+1])*(cum[j+1]-cum[q+1])
  //           + (weighted[j+1]-weighted[q+1])).
  double Recovery(int q, int j) const {
    if (j <= q) return 0.0;
    const double exec = in->cum[j + 1] - in->cum[q + 1];
    const double w = in->weighted[j + 1] - in->weighted[q + 1];
    return params->failure_rate_per_cost *
           ((Restore(q) - in->cum[q + 1]) * exec + w);
  }
};

// Note: cum[q+1] with q = -1 reads cum[0] = 0, so the virtual start needs
// no special casing in Recovery().

struct PlacementCore {
  std::vector<int> chosen;  // topo positions, ascending
  size_t num_candidates = 0;
};

// O(n^2) DP: f[j] = minimal checkpoint+recovery cost of the prefix
// ending in a checkpoint at candidate position j. Strict `<` improvement
// with ascending predecessor scan keeps ties deterministic.
PlacementCore SolvePlacement(const PlacementInput& in, const SegmentModel& m) {
  PlacementCore core;
  const int n = in.n;
  std::vector<double> f(n, std::numeric_limits<double>::infinity());
  std::vector<int> parent(n, -1);
  double best_total = m.Recovery(-1, n - 1);  // no checkpoints at all
  int best_last = -1;
  for (int j = 0; j < n; ++j) {
    if (!in.candidate[j]) continue;
    ++core.num_candidates;
    double best = m.Recovery(-1, j);
    int par = -1;
    for (int q = 0; q < j; ++q) {
      if (!in.candidate[q]) continue;
      const double v = f[q] + m.Recovery(q, j);
      if (v < best) {
        best = v;
        par = q;
      }
    }
    f[j] = best + m.Write(j);
    parent[j] = par;
    const double tail = f[j] + m.Recovery(j, n - 1);
    if (tail < best_total) {
      best_total = tail;
      best_last = j;
    }
  }
  for (int j = best_last; j >= 0; j = parent[j]) {
    core.chosen.push_back(j);
  }
  std::reverse(core.chosen.begin(), core.chosen.end());
  return core;
}

// Re-walks a placement and accumulates its ledger in one fixed order, so
// every consumer (surcharge, plan fields, rationale baselines) sees bit-
// identical figures.
void LedgerOf(const std::vector<int>& chosen, int n, const SegmentModel& m,
              double* checkpoint_cost, double* recovery_cost) {
  *checkpoint_cost = 0.0;
  *recovery_cost = 0.0;
  int prev = -1;
  for (int pos : chosen) {
    *recovery_cost += m.Recovery(prev, pos);
    *checkpoint_cost += m.Write(pos);
    prev = pos;
  }
  *recovery_cost += m.Recovery(prev, n - 1);
}

StatusOr<double> ParseDoubleField(std::string_view field,
                                  std::string_view key) {
  if (!StartsWith(field, key) || field.size() <= key.size() ||
      field[key.size()] != '=') {
    return Status::InvalidArgument(
        StrFormat("reliability fingerprint: expected %.*s=<value>, got '%.*s'",
                  static_cast<int>(key.size()), key.data(),
                  static_cast<int>(field.size()), field.data()));
  }
  std::string value(field.substr(key.size() + 1));
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("reliability fingerprint: bad number '%s'", value.c_str()));
  }
  return v;
}

}  // namespace

Status ValidateReliabilityParams(const ReliabilityParams& params) {
  if (!FiniteNonNegative(params.failure_rate_per_cost)) {
    return Status::InvalidArgument(
        "reliability: failure_rate_per_cost must be finite and >= 0");
  }
  if (!FiniteNonNegative(params.checkpoint_setup_cost) ||
      !FiniteNonNegative(params.checkpoint_cost_per_row)) {
    return Status::InvalidArgument(
        "reliability: checkpoint costs must be finite and >= 0");
  }
  if (!FiniteNonNegative(params.restore_setup_cost) ||
      !FiniteNonNegative(params.restore_cost_per_row)) {
    return Status::InvalidArgument(
        "reliability: restore costs must be finite and >= 0");
  }
  return Status::OK();
}

std::string ReliabilityFingerprint(const ReliabilityParams& params) {
  return "rel(lambda=" + DoubleToString(params.failure_rate_per_cost) +
         ",ws=" + DoubleToString(params.checkpoint_setup_cost) +
         ",wr=" + DoubleToString(params.checkpoint_cost_per_row) +
         ",rs=" + DoubleToString(params.restore_setup_cost) +
         ",rr=" + DoubleToString(params.restore_cost_per_row) + ")";
}

StatusOr<ReliabilityParams> ParseReliabilityFingerprint(std::string_view s) {
  if (!StartsWith(s, "rel(") || !EndsWith(s, ")")) {
    return Status::InvalidArgument(StrFormat(
        "reliability fingerprint: expected rel(...), got '%.*s'",
        static_cast<int>(s.size()), s.data()));
  }
  std::vector<std::string> fields =
      Split(s.substr(4, s.size() - 5), ',');
  if (fields.size() != 5) {
    return Status::InvalidArgument(
        StrFormat("reliability fingerprint: expected 5 fields, got %zu",
                  fields.size()));
  }
  ReliabilityParams params;
  ETLOPT_ASSIGN_OR_RETURN(params.failure_rate_per_cost,
                          ParseDoubleField(fields[0], "lambda"));
  ETLOPT_ASSIGN_OR_RETURN(params.checkpoint_setup_cost,
                          ParseDoubleField(fields[1], "ws"));
  ETLOPT_ASSIGN_OR_RETURN(params.checkpoint_cost_per_row,
                          ParseDoubleField(fields[2], "wr"));
  ETLOPT_ASSIGN_OR_RETURN(params.restore_setup_cost,
                          ParseDoubleField(fields[3], "rs"));
  ETLOPT_ASSIGN_OR_RETURN(params.restore_cost_per_row,
                          ParseDoubleField(fields[4], "rr"));
  ETLOPT_RETURN_NOT_OK(ValidateReliabilityParams(params));
  return params;
}

StatusOr<ReliabilityParams> ReliabilityFromOptionsFingerprint(
    std::string_view options_fingerprint) {
  constexpr std::string_view kKey = "reliability=";
  size_t at = options_fingerprint.find(kKey);
  if (at == std::string_view::npos) {
    return Status::NotFound("options fingerprint has no reliability entry");
  }
  std::string_view rest = options_fingerprint.substr(at + kKey.size());
  size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    return Status::InvalidArgument(
        "options fingerprint: unterminated reliability entry");
  }
  return ParseReliabilityFingerprint(rest.substr(0, close + 1));
}

RecoveryPointPlan PlaceRecoveryPoints(const Workflow& workflow,
                                      const CostBreakdown& bd,
                                      const ReliabilityParams& params) {
  const PlacementInput in = BuildInput(workflow, bd, params);
  const SegmentModel m{&in, &params};
  const PlacementCore core = SolvePlacement(in, m);

  RecoveryPointPlan plan;
  plan.enabled = true;
  const std::vector<NodeId>& topo = workflow.TopoOrder();
  // Materialize every chosen recovery point as its sparse cut: the union,
  // in topological order, of the kept activities each cut persists so the
  // engine's need-propagation stops at the frontier on resume (dropped
  // members recompute from upstream instead).
  std::vector<char> member(in.n, 0);
  for (int pos : core.chosen) {
    for (int i = 0; i <= pos; ++i) {
      if (in.kept[i] && pos < in.last_need[i]) member[i] = 1;
    }
  }
  for (int i = 0; i < in.n; ++i) {
    if (member[i]) plan.labels.push_back(workflow.PriorityLabelOf(topo[i]));
  }
  plan.execution_cost = bd.total;
  LedgerOf(core.chosen, in.n, m, &plan.checkpoint_cost,
           &plan.expected_recovery_cost);
  plan.expected_total_cost =
      plan.execution_cost +
      (plan.checkpoint_cost + plan.expected_recovery_cost);
  plan.failure_rate_per_cost = params.failure_rate_per_cost;

  double target_rows = 0.0;
  for (NodeId t : workflow.TargetRecordSets()) {
    if (auto it = bd.node_output_cardinality.find(t);
        it != bd.node_output_cardinality.end()) {
      target_rows += it->second;
    }
  }
  plan.stream_checkpoint_unit_cost =
      params.checkpoint_setup_cost +
      params.checkpoint_cost_per_row * target_rows;

  // Budget rationale: the chosen ledger against both degenerate policies.
  double none_ckpt = 0.0, none_rec = 0.0;
  LedgerOf({}, in.n, m, &none_ckpt, &none_rec);
  std::vector<int> all;
  for (int j = 0; j < in.n; ++j) {
    if (in.candidate[j]) all.push_back(j);
  }
  double all_ckpt = 0.0, all_rec = 0.0;
  LedgerOf(all, in.n, m, &all_ckpt, &all_rec);
  plan.rationale = StrFormat(
      "placed %zu of %zu candidates: exec=%s ckpt=%s recovery=%s; "
      "alternatives: none recovery=%s, all ckpt=%s recovery=%s",
      core.chosen.size(), core.num_candidates,
      DoubleToString(plan.execution_cost).c_str(),
      DoubleToString(plan.checkpoint_cost).c_str(),
      DoubleToString(plan.expected_recovery_cost).c_str(),
      DoubleToString(none_rec).c_str(), DoubleToString(all_ckpt).c_str(),
      DoubleToString(all_rec).c_str());
  return plan;
}

double ReliabilitySurcharge(const Workflow& workflow, const CostBreakdown& bd,
                            const ReliabilityParams& params) {
  const PlacementInput in = BuildInput(workflow, bd, params);
  const SegmentModel m{&in, &params};
  const PlacementCore core = SolvePlacement(in, m);
  double ckpt = 0.0, rec = 0.0;
  LedgerOf(core.chosen, in.n, m, &ckpt, &rec);
  return ckpt + rec;
}

uint64_t PlannedStreamCheckpointInterval(const RecoveryPointPlan& plan,
                                         uint64_t batch_count) {
  if (batch_count == 0) return 1;
  if (!plan.enabled) return batch_count;
  const double lambda = plan.failure_rate_per_cost;
  const double per_batch_cost =
      plan.execution_cost / static_cast<double>(batch_count);
  if (!(lambda > 0.0) || !(per_batch_cost > 0.0)) {
    return batch_count;  // failures are free or impossible: checkpoint once
  }
  const double delta = plan.stream_checkpoint_unit_cost;
  if (!(delta > 0.0)) return 1;  // checkpoints are free: every batch
  // Young's approximation: optimal work between checkpoints.
  const double tau = std::sqrt(2.0 * delta / lambda);
  double k = tau / per_batch_cost;
  if (!std::isfinite(k) || k <= 1.0) return 1;
  if (k >= static_cast<double>(batch_count)) return batch_count;
  return static_cast<uint64_t>(std::llround(k));
}

}  // namespace etlopt
