// State costing: C(S) = sum of activity costs over the workflow graph
// (paper §2.2), with cardinalities propagated from the source recordsets.

#ifndef ETLOPT_COST_STATE_COST_H_
#define ETLOPT_COST_STATE_COST_H_

#include <map>
#include <vector>

#include "cost/cost_model.h"
#include "graph/workflow.h"

namespace etlopt {

/// Full costing of one state. The per-node figures double as the search
/// layer's cost cache: IncrementalCostBreakdown reuses them for every
/// node a transition provably did not touch.
struct CostBreakdown {
  double total = 0.0;
  /// Cost charged to each activity node (chain members summed).
  std::map<NodeId, double> node_cost;
  /// Estimated rows leaving each node.
  std::map<NodeId, double> node_output_cardinality;
  /// Port-ordered input cardinalities of each activity node — recorded so
  /// delta recosting can decide reuse ("same chain, same inputs => same
  /// cost") without consulting the base workflow's edge list.
  std::map<NodeId, std::vector<double>> node_input_cardinality;
};

/// Computes the breakdown for a fresh workflow. Source cardinalities come
/// from each source RecordSetDef::cardinality.
StatusOr<CostBreakdown> ComputeCostBreakdown(const Workflow& workflow,
                                             const CostModel& model);

/// Just the total (convenience).
StatusOr<double> StateCost(const Workflow& workflow, const CostModel& model);

/// Cache behavior of one IncrementalCostBreakdown call.
struct CostReuseStats {
  size_t reused_nodes = 0;
  size_t recosted_nodes = 0;
};

/// Delta recosting (paper §4.1): computes the cost of `next` — a workflow
/// derived from the state `base` describes by applying transitions —
/// reusing `base`'s figures for every untouched node. A node is reused
/// when it is not in `next`'s dirty set (its chain is unchanged since the
/// base, see Workflow::dirty_nodes()), it has cached figures in `base`,
/// and its freshly propagated input cardinalities equal the cached ones;
/// cost models are deterministic functions of (activity, input rows), so
/// reuse is exact. Results are bit-identical to
/// ComputeCostBreakdown(next, model) — asserted in debug builds by the
/// search layer on every transition.
StatusOr<CostBreakdown> IncrementalCostBreakdown(const Workflow& next,
                                                 const CostBreakdown& base,
                                                 const CostModel& model,
                                                 CostReuseStats* stats = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_COST_STATE_COST_H_
