// State costing: C(S) = sum of activity costs over the workflow graph
// (paper §2.2), with cardinalities propagated from the source recordsets.

#ifndef ETLOPT_COST_STATE_COST_H_
#define ETLOPT_COST_STATE_COST_H_

#include <map>

#include "cost/cost_model.h"
#include "graph/workflow.h"

namespace etlopt {

/// Full costing of one state.
struct CostBreakdown {
  double total = 0.0;
  /// Cost charged to each activity node (chain members summed).
  std::map<NodeId, double> node_cost;
  /// Estimated rows leaving each node.
  std::map<NodeId, double> node_output_cardinality;
};

/// Computes the breakdown for a fresh workflow. Source cardinalities come
/// from each source RecordSetDef::cardinality.
StatusOr<CostBreakdown> ComputeCostBreakdown(const Workflow& workflow,
                                             const CostModel& model);

/// Just the total (convenience).
StatusOr<double> StateCost(const Workflow& workflow, const CostModel& model);

/// Semi-incremental costing (paper §4.1): computes the cost of `next` by
/// reusing `base`'s breakdown for every node whose inputs are untouched,
/// re-costing only nodes downstream of a changed region. Falls back to a
/// full recomputation when reuse is impossible. Results are identical to
/// ComputeCostBreakdown(next, model).
StatusOr<CostBreakdown> IncrementalCostBreakdown(const Workflow& next,
                                                 const CostBreakdown& base,
                                                 const Workflow& base_workflow,
                                                 const CostModel& model);

}  // namespace etlopt

#endif  // ETLOPT_COST_STATE_COST_H_
