// Cost models for ETL workflow states.
//
// The paper's discrimination criterion (§2.2): the cost of a state is the
// sum of its activities' costs, where each activity's cost depends on the
// number of rows it processes at its position in the graph. The approach
// is deliberately cost-model-agnostic; CostModel is the plug point and
// LinearLogCostModel is the "simple cost model taking into consideration
// only the number of processed rows based on simple formulae [15]" used
// in the paper's experiments (and in its Fig. 4 arithmetic).

#ifndef ETLOPT_COST_COST_MODEL_H_
#define ETLOPT_COST_COST_MODEL_H_

#include <string>
#include <vector>

#include "activity/activity.h"

namespace etlopt {

/// Estimates per-activity cost and output cardinality from input
/// cardinalities (rows). Implementations must be deterministic.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost of running `a` once over inputs of the given sizes.
  virtual double ActivityCost(const Activity& a,
                              const std::vector<double>& input_cards) const = 0;

  /// Estimated rows `a` emits, given inputs of the given sizes.
  virtual double OutputCardinality(
      const Activity& a, const std::vector<double>& input_cards) const = 0;

  /// Canonical description of the model and every parameter that affects
  /// its estimates — "linlog(sk_setup=0,agg_setup=0)". Two models with
  /// equal fingerprints must cost every state identically: the serving
  /// layer keys its plan cache on (workflow signature x fingerprint) and
  /// persisted plans are only replayed against a matching model.
  virtual std::string Fingerprint() const = 0;
};

/// Options for LinearLogCostModel.
struct LinearLogCostModelOptions {
  /// Fixed per-instance cost of a surrogate-key activity (building or
  /// caching its lookup structure). This is what makes Factorize
  /// profitable: one shared SK instance pays the setup once (the caching
  /// argument of the paper's §2.2 discussion of Fig. 4).
  double surrogate_key_setup = 0.0;

  /// Fixed per-instance cost of an aggregation (hash/sort scaffolding).
  double aggregation_setup = 0.0;
};

/// Row-count cost model:
///   filters, functions, projections            ->  n
///   surrogate key, PK check, aggregation       ->  n * log2(n)  (+ setup)
///   union                                      ->  n1 + n2
///   join, difference, intersection             ->  n1*log2(n1) + n2*log2(n2) + n1 + n2
///
/// Output cardinalities:
///   filters, aggregation                       ->  selectivity * n
///   functions, projection, SK, PK(check sel.)  ->  selectivity * n
///   union                                      ->  n1 + n2
///   join                                       ->  selectivity * n1 * n2
///   difference / intersection                  ->  selectivity * n1
class LinearLogCostModel final : public CostModel {
 public:
  explicit LinearLogCostModel(LinearLogCostModelOptions options = {})
      : options_(options) {}

  double ActivityCost(const Activity& a,
                      const std::vector<double>& input_cards) const override;

  double OutputCardinality(
      const Activity& a,
      const std::vector<double>& input_cards) const override;

  std::string Fingerprint() const override;

 private:
  LinearLogCostModelOptions options_;
};

/// n * log2(n) with n <= 1 costing 0 (the paper's SK formula at Fig. 4's
/// operating points: 8*3 = 24, 4*2 = 8).
double NLogN(double n);

}  // namespace etlopt

#endif  // ETLOPT_COST_COST_MODEL_H_
