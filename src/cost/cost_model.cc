#include "cost/cost_model.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

double NLogN(double n) {
  if (n <= 1.0) return 0.0;
  return n * std::log2(n);
}

double LinearLogCostModel::ActivityCost(
    const Activity& a, const std::vector<double>& input_cards) const {
  ETLOPT_CHECK(static_cast<int>(input_cards.size()) == a.input_arity());
  double n = input_cards[0];
  switch (a.kind()) {
    case ActivityKind::kSelection:
    case ActivityKind::kNotNull:
    case ActivityKind::kDomainCheck:
    case ActivityKind::kProjection:
    case ActivityKind::kFunction:
      return n;
    case ActivityKind::kPrimaryKeyCheck:
      return NLogN(n);
    case ActivityKind::kSurrogateKey:
      return NLogN(n) + options_.surrogate_key_setup;
    case ActivityKind::kAggregation:
      return NLogN(n) + options_.aggregation_setup;
    case ActivityKind::kUnion:
      return n + input_cards[1];
    case ActivityKind::kJoin:
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection:
      return NLogN(n) + NLogN(input_cards[1]) + n + input_cards[1];
  }
  return 0.0;
}

double LinearLogCostModel::OutputCardinality(
    const Activity& a, const std::vector<double>& input_cards) const {
  ETLOPT_CHECK(static_cast<int>(input_cards.size()) == a.input_arity());
  double n = input_cards[0];
  switch (a.kind()) {
    case ActivityKind::kSelection:
    case ActivityKind::kNotNull:
    case ActivityKind::kDomainCheck:
    case ActivityKind::kPrimaryKeyCheck:
    case ActivityKind::kProjection:
    case ActivityKind::kFunction:
    case ActivityKind::kSurrogateKey:
    case ActivityKind::kAggregation:
      return a.selectivity() * n;
    case ActivityKind::kUnion:
      return n + input_cards[1];
    case ActivityKind::kJoin:
      return a.selectivity() * n * input_cards[1];
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection:
      return a.selectivity() * n;
  }
  return n;
}

std::string LinearLogCostModel::Fingerprint() const {
  return "linlog(sk_setup=" + DoubleToString(options_.surrogate_key_setup) +
         ",agg_setup=" + DoubleToString(options_.aggregation_setup) + ")";
}

}  // namespace etlopt
