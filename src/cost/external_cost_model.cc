#include "cost/external_cost_model.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

double ExternalSortPasses(double n, double memory_rows, double fanin) {
  if (n <= memory_rows || memory_rows <= 0) return 0;
  double runs = std::ceil(n / memory_rows);
  if (fanin < 2) fanin = 2;
  return std::ceil(std::log(runs) / std::log(fanin));
}

double ExternalSortCostModel::SortCost(double n) const {
  double passes =
      ExternalSortPasses(n, options_.memory_rows, options_.merge_fanin);
  return n * (1.0 + 2.0 * passes);
}

double ExternalSortCostModel::ActivityCost(
    const Activity& a, const std::vector<double>& input_cards) const {
  ETLOPT_CHECK(static_cast<int>(input_cards.size()) == a.input_arity());
  double n = input_cards[0];
  switch (a.kind()) {
    case ActivityKind::kSelection:
    case ActivityKind::kNotNull:
    case ActivityKind::kDomainCheck:
    case ActivityKind::kProjection:
    case ActivityKind::kFunction:
      return n;
    case ActivityKind::kPrimaryKeyCheck:
    case ActivityKind::kAggregation:
      return SortCost(n);
    case ActivityKind::kSurrogateKey:
      return SortCost(n) + options_.surrogate_key_setup;
    case ActivityKind::kUnion:
      return n + input_cards[1];
    case ActivityKind::kJoin:
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection:
      return SortCost(n) + SortCost(input_cards[1]) + n + input_cards[1];
  }
  return 0.0;
}

double ExternalSortCostModel::OutputCardinality(
    const Activity& a, const std::vector<double>& input_cards) const {
  // Cardinality estimation is physical-model independent; reuse the
  // selectivity-based estimates of the logical model.
  static const LinearLogCostModel kLogical;
  return kLogical.OutputCardinality(a, input_cards);
}

std::string ExternalSortCostModel::Fingerprint() const {
  return "extsort(memory_rows=" + DoubleToString(options_.memory_rows) +
         ",merge_fanin=" + DoubleToString(options_.merge_fanin) +
         ",sk_setup=" + DoubleToString(options_.surrogate_key_setup) + ")";
}

}  // namespace etlopt
