#include "cost/state_cost.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// Folds cost and cardinality over a chain's members.
void CostChain(const ActivityChain& chain, const std::vector<double>& inputs,
               const CostModel& model, double* cost, double* out_card) {
  *cost = 0.0;
  std::vector<double> cur = inputs;
  for (const auto& m : chain.members()) {
    *cost += model.ActivityCost(m.activity, cur);
    double out = model.OutputCardinality(m.activity, cur);
    cur = {out};
  }
  *out_card = cur[0];
}

}  // namespace

StatusOr<CostBreakdown> ComputeCostBreakdown(const Workflow& workflow,
                                             const CostModel& model) {
  if (!workflow.fresh()) {
    return Status::FailedPrecondition("cost: workflow must be fresh");
  }
  CostBreakdown bd;
  for (NodeId id : workflow.TopoOrder()) {
    std::vector<NodeId> providers = workflow.Providers(id);
    std::vector<double> inputs;
    inputs.reserve(providers.size());
    for (NodeId p : providers) {
      inputs.push_back(bd.node_output_cardinality.at(p));
    }
    if (workflow.IsRecordSet(id)) {
      double card = providers.empty() ? workflow.recordset(id).cardinality
                                      : inputs[0];
      bd.node_output_cardinality[id] = card;
    } else {
      double cost = 0.0;
      double out = 0.0;
      CostChain(workflow.chain(id), inputs, model, &cost, &out);
      bd.node_cost[id] = cost;
      bd.node_output_cardinality[id] = out;
      bd.total += cost;
    }
  }
  return bd;
}

StatusOr<double> StateCost(const Workflow& workflow, const CostModel& model) {
  ETLOPT_ASSIGN_OR_RETURN(CostBreakdown bd,
                          ComputeCostBreakdown(workflow, model));
  return bd.total;
}

StatusOr<CostBreakdown> IncrementalCostBreakdown(const Workflow& next,
                                                 const CostBreakdown& base,
                                                 const Workflow& base_workflow,
                                                 const CostModel& model) {
  if (!next.fresh()) {
    return Status::FailedPrecondition("cost: workflow must be fresh");
  }
  CostBreakdown bd;
  for (NodeId id : next.TopoOrder()) {
    std::vector<NodeId> providers = next.Providers(id);
    std::vector<double> inputs;
    inputs.reserve(providers.size());
    for (NodeId p : providers) {
      inputs.push_back(bd.node_output_cardinality.at(p));
    }
    if (next.IsRecordSet(id)) {
      double card = providers.empty() ? next.recordset(id).cardinality
                                      : inputs[0];
      bd.node_output_cardinality[id] = card;
      continue;
    }
    // Reuse the base figures when this node is untouched: same node id,
    // same semantics, same providers, and identical input cardinalities.
    bool reusable = base_workflow.Exists(id) && base_workflow.IsActivity(id) &&
                    base.node_cost.count(id) > 0;
    if (reusable) {
      std::vector<NodeId> base_providers = base_workflow.Providers(id);
      reusable = base_providers == providers &&
                 base_workflow.chain(id).semantics_hash() ==
                     next.chain(id).semantics_hash();
      if (reusable) {
        for (size_t i = 0; i < providers.size() && reusable; ++i) {
          auto it = base.node_output_cardinality.find(providers[i]);
          reusable =
              it != base.node_output_cardinality.end() && it->second == inputs[i];
        }
      }
    }
    if (reusable) {
      bd.node_cost[id] = base.node_cost.at(id);
      bd.node_output_cardinality[id] =
          base.node_output_cardinality.at(id);
    } else {
      double cost = 0.0;
      double out = 0.0;
      CostChain(next.chain(id), inputs, model, &cost, &out);
      bd.node_cost[id] = cost;
      bd.node_output_cardinality[id] = out;
    }
    bd.total += bd.node_cost[id];
  }
  return bd;
}

}  // namespace etlopt
