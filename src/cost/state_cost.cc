#include "cost/state_cost.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// Folds cost and cardinality over a chain's members.
void CostChain(const ActivityChain& chain, const std::vector<double>& inputs,
               const CostModel& model, double* cost, double* out_card) {
  *cost = 0.0;
  std::vector<double> cur = inputs;
  for (const auto& m : chain.members()) {
    *cost += model.ActivityCost(m.activity, cur);
    double out = model.OutputCardinality(m.activity, cur);
    cur = {out};
  }
  *out_card = cur[0];
}

}  // namespace

StatusOr<CostBreakdown> ComputeCostBreakdown(const Workflow& workflow,
                                             const CostModel& model) {
  if (!workflow.fresh()) {
    return Status::FailedPrecondition("cost: workflow must be fresh");
  }
  CostBreakdown bd;
  for (NodeId id : workflow.TopoOrder()) {
    std::vector<NodeId> providers = workflow.Providers(id);
    std::vector<double> inputs;
    inputs.reserve(providers.size());
    for (NodeId p : providers) {
      inputs.push_back(bd.node_output_cardinality.at(p));
    }
    if (workflow.IsRecordSet(id)) {
      double card = providers.empty() ? workflow.recordset(id).cardinality
                                      : inputs[0];
      bd.node_output_cardinality[id] = card;
    } else {
      double cost = 0.0;
      double out = 0.0;
      CostChain(workflow.chain(id), inputs, model, &cost, &out);
      bd.node_cost[id] = cost;
      bd.node_output_cardinality[id] = out;
      bd.node_input_cardinality[id] = std::move(inputs);
      bd.total += cost;
    }
  }
  return bd;
}

StatusOr<double> StateCost(const Workflow& workflow, const CostModel& model) {
  ETLOPT_ASSIGN_OR_RETURN(CostBreakdown bd,
                          ComputeCostBreakdown(workflow, model));
  return bd.total;
}

StatusOr<CostBreakdown> IncrementalCostBreakdown(const Workflow& next,
                                                 const CostBreakdown& base,
                                                 const CostModel& model,
                                                 CostReuseStats* stats) {
  if (!next.fresh()) {
    return Status::FailedPrecondition("cost: workflow must be fresh");
  }
  const std::set<NodeId> dirty(next.dirty_nodes().begin(),
                               next.dirty_nodes().end());
  // One edge pass builds the port-ordered provider index; per-node
  // Providers() rescans are O(E) each and dominate the delta path.
  std::map<NodeId, std::vector<std::pair<int, NodeId>>> providers_of;
  for (const auto& e : next.edges()) {
    providers_of[e.to].push_back({e.port, e.from});
  }
  for (auto& [id, ps] : providers_of) std::sort(ps.begin(), ps.end());

  CostBreakdown bd;
  for (NodeId id : next.TopoOrder()) {
    std::vector<double> inputs;
    if (auto it = providers_of.find(id); it != providers_of.end()) {
      inputs.reserve(it->second.size());
      for (const auto& [port, from] : it->second) {
        inputs.push_back(bd.node_output_cardinality.at(from));
      }
    }
    if (next.IsRecordSet(id)) {
      bd.node_output_cardinality[id] =
          inputs.empty() ? next.recordset(id).cardinality : inputs[0];
      continue;
    }
    // Reuse iff the chain is untouched (not dirty), cached in the base,
    // and fed the exact same input cardinalities. The propagated inputs
    // of an untouched prefix are bit-identical to the base's, so exact
    // double comparison is the right test.
    bool reusable = dirty.count(id) == 0;
    if (reusable) {
      auto ci = base.node_cost.find(id);
      auto ii = base.node_input_cardinality.find(id);
      reusable = ci != base.node_cost.end() &&
                 ii != base.node_input_cardinality.end() &&
                 ii->second == inputs;
      if (reusable) {
        bd.node_cost[id] = ci->second;
        bd.node_output_cardinality[id] = base.node_output_cardinality.at(id);
      }
    }
    if (!reusable) {
      double cost = 0.0;
      double out = 0.0;
      CostChain(next.chain(id), inputs, model, &cost, &out);
      bd.node_cost[id] = cost;
      bd.node_output_cardinality[id] = out;
    }
    if (stats != nullptr) {
      ++(reusable ? stats->reused_nodes : stats->recosted_nodes);
    }
    bd.total += bd.node_cost[id];
    bd.node_input_cardinality[id] = std::move(inputs);
  }
  return bd;
}

}  // namespace etlopt
