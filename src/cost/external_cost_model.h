// ExternalSortCostModel: a physical-level cost model.
//
// The paper's future work calls out "physical optimization of ETL
// workflows (taking physical operators and access methods into
// consideration)". This model takes one step in that direction while
// keeping the optimizer unchanged (the approach is cost-model agnostic,
// §2.2): blocking activities are costed as external multi-pass sorts
// under a memory budget, so the same logical rewrites are judged by a
// different physical lens.
//
//   per-row activities:            cost = n
//   sort-based activities:         cost = n * (1 + 2 * passes)
//       passes = merge passes of an external sort of n rows with
//                memory_rows of memory and merge_fanin-way merges
//   union:                         cost = n1 + n2
//   join/difference/intersection:  sort both inputs + linear merge
//
// With memory_rows >= every intermediate cardinality this degenerates to
// (roughly) the paper's n / n*log-free costs; with small memory the
// optimizer is pushed even harder to shrink flows before blocking
// activities.

#ifndef ETLOPT_COST_EXTERNAL_COST_MODEL_H_
#define ETLOPT_COST_EXTERNAL_COST_MODEL_H_

#include "cost/cost_model.h"

namespace etlopt {

struct ExternalSortCostModelOptions {
  /// Rows that fit in memory for a blocking activity.
  double memory_rows = 10000;
  /// Merge fan-in of the external sort.
  double merge_fanin = 8;
  /// Fixed per-instance cost of a surrogate-key activity (lookup build).
  double surrogate_key_setup = 0.0;
};

class ExternalSortCostModel final : public CostModel {
 public:
  explicit ExternalSortCostModel(ExternalSortCostModelOptions options = {})
      : options_(options) {}

  double ActivityCost(const Activity& a,
                      const std::vector<double>& input_cards) const override;

  double OutputCardinality(
      const Activity& a,
      const std::vector<double>& input_cards) const override;

  std::string Fingerprint() const override;

 private:
  double SortCost(double n) const;

  ExternalSortCostModelOptions options_;
};

/// Merge passes needed to externally sort `n` rows with `memory_rows` of
/// memory and `fanin`-way merges (0 when the input fits in memory).
double ExternalSortPasses(double n, double memory_rows, double fanin);

}  // namespace etlopt

#endif  // ETLOPT_COST_EXTERNAL_COST_MODEL_H_
