#include "io/wire_codec.h"

#include <cstring>

namespace etlopt {

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutDouble(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out += s;
}

StatusOr<double> WireReader::Double() {
  ETLOPT_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace etlopt
