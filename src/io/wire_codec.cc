#include "io/wire_codec.h"

#include <cstring>

namespace etlopt {

// PutU32/PutU64 are defined in records/record_io.cc — one strong
// definition for every binary format, declared by both headers.

void PutDouble(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out += s;
}

StatusOr<double> WireReader::Double() {
  ETLOPT_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace etlopt
