#include "io/text_format.h"

#include <cctype>
#include <map>

#include "activity/templates.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// ---- Predicate tokenizer / parser ----

struct Token {
  enum class Kind { kLParen, kRParen, kWord, kNumber, kString, kOp };
  Kind kind;
  std::string text;
};

StatusOr<std::vector<Token>> TokenizePredicate(const std::string& s) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c == ' ' || c == '\t') {
      ++i;
    } else if (c == '(') {
      out.push_back({Token::Kind::kLParen, "("});
      ++i;
    } else if (c == ')') {
      out.push_back({Token::Kind::kRParen, ")"});
      ++i;
    } else if (c == '\'') {
      size_t end = s.find('\'', i + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated string in predicate: " +
                                       s);
      }
      out.push_back({Token::Kind::kString, s.substr(i + 1, end - i - 1)});
      i = end + 1;
    } else if (c == '>' || c == '<' || c == '=') {
      std::string op(1, c);
      if (i + 1 < s.size() && (s[i + 1] == '=' || s[i + 1] == '>')) {
        op += s[i + 1];
        ++i;
      }
      out.push_back({Token::Kind::kOp, op});
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               c == '+' || c == '.') {
      size_t start = i;
      ++i;
      while (i < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
              s[i] == 'e' || s[i] == 'E' ||
              ((s[i] == '+' || s[i] == '-') &&
               (s[i - 1] == 'e' || s[i - 1] == 'E')))) {
        ++i;
      }
      out.push_back({Token::Kind::kNumber, s.substr(start, i - start)});
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_' ||
              s[i] == '.')) {
        ++i;
      }
      out.push_back({Token::Kind::kWord, s.substr(start, i - start)});
    } else {
      return Status::InvalidArgument(
          StrFormat("bad character '%c' in predicate: %s", c, s.c_str()));
    }
  }
  return out;
}

class PredicateParser {
 public:
  explicit PredicateParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  StatusOr<ExprPtr> Parse() {
    ETLOPT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (pos_ != tokens_.size()) {
      return Status::InvalidArgument("trailing tokens in predicate");
    }
    return e;
  }

 private:
  bool AtEnd() const { return pos_ >= tokens_.size(); }
  const Token& Peek() const { return tokens_[pos_]; }

  Status Expect(Token::Kind kind, const char* what) {
    if (AtEnd() || Peek().kind != kind) {
      return Status::InvalidArgument(StrFormat("expected %s in predicate",
                                               what));
    }
    ++pos_;
    return Status::OK();
  }

  bool ConsumeWord(const char* word) {
    if (!AtEnd() && Peek().kind == Token::Kind::kWord && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }

  // term := NULL | true | false | number | 'string' | column
  StatusOr<ExprPtr> ParseTerm() {
    if (AtEnd()) return Status::InvalidArgument("predicate ends abruptly");
    Token t = Peek();
    ++pos_;
    switch (t.kind) {
      case Token::Kind::kNumber: {
        if (t.text.find_first_of(".eE") == std::string::npos) {
          ETLOPT_ASSIGN_OR_RETURN(Value v,
                                  Value::Parse(t.text, DataType::kInt64));
          return Literal(std::move(v));
        }
        ETLOPT_ASSIGN_OR_RETURN(Value v,
                                Value::Parse(t.text, DataType::kDouble));
        return Literal(std::move(v));
      }
      case Token::Kind::kString:
        return Literal(Value::String(t.text));
      case Token::Kind::kWord:
        if (t.text == "NULL") return Literal(Value::Null());
        if (t.text == "true") return Literal(Value::Bool(true));
        if (t.text == "false") return Literal(Value::Bool(false));
        return Column(t.text);
      default:
        return Status::InvalidArgument("bad term in predicate: " + t.text);
    }
  }

  // expr := "(" inner ")" ; a bare term is also accepted for operands.
  StatusOr<ExprPtr> ParseOperand() {
    if (!AtEnd() && Peek().kind == Token::Kind::kLParen) return ParseExpr();
    return ParseTerm();
  }

  StatusOr<ExprPtr> ParseExpr() {
    ETLOPT_RETURN_NOT_OK(Expect(Token::Kind::kLParen, "'('"));
    if (ConsumeWord("NOT")) {
      ETLOPT_ASSIGN_OR_RETURN(ExprPtr inner, ParseOperand());
      ETLOPT_RETURN_NOT_OK(Expect(Token::Kind::kRParen, "')'"));
      return Not(std::move(inner));
    }
    ETLOPT_ASSIGN_OR_RETURN(ExprPtr left, ParseOperand());
    if (ConsumeWord("AND")) {
      ETLOPT_ASSIGN_OR_RETURN(ExprPtr right, ParseOperand());
      ETLOPT_RETURN_NOT_OK(Expect(Token::Kind::kRParen, "')'"));
      return And(std::move(left), std::move(right));
    }
    if (ConsumeWord("OR")) {
      ETLOPT_ASSIGN_OR_RETURN(ExprPtr right, ParseOperand());
      ETLOPT_RETURN_NOT_OK(Expect(Token::Kind::kRParen, "')'"));
      return Or(std::move(left), std::move(right));
    }
    if (ConsumeWord("IS")) {
      bool negated = ConsumeWord("NOT");
      if (!ConsumeWord("NULL")) {
        return Status::InvalidArgument("expected NULL after IS");
      }
      ETLOPT_RETURN_NOT_OK(Expect(Token::Kind::kRParen, "')'"));
      return negated ? IsNotNull(std::move(left)) : IsNull(std::move(left));
    }
    if (AtEnd() || Peek().kind != Token::Kind::kOp) {
      return Status::InvalidArgument("expected comparison operator");
    }
    std::string op = Peek().text;
    ++pos_;
    CompareOp cmp;
    if (op == "=") cmp = CompareOp::kEq;
    else if (op == "<>") cmp = CompareOp::kNe;
    else if (op == "<") cmp = CompareOp::kLt;
    else if (op == "<=") cmp = CompareOp::kLe;
    else if (op == ">") cmp = CompareOp::kGt;
    else if (op == ">=") cmp = CompareOp::kGe;
    else return Status::InvalidArgument("bad comparison operator: " + op);
    ETLOPT_ASSIGN_OR_RETURN(ExprPtr right, ParseOperand());
    ETLOPT_RETURN_NOT_OK(Expect(Token::Kind::kRParen, "')'"));
    return Compare(cmp, std::move(left), std::move(right));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// ---- Schema / misc field helpers ----

StatusOr<DataType> ParseTypeName(const std::string& name) {
  if (name == "bool") return DataType::kBool;
  if (name == "int") return DataType::kInt64;
  if (name == "double") return DataType::kDouble;
  if (name == "string") return DataType::kString;
  return Status::InvalidArgument("unknown type name: " + name);
}

StatusOr<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Attribute> attrs;
  for (const auto& part : Split(spec, ',')) {
    auto colon = part.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad schema field: " + part);
    }
    ETLOPT_ASSIGN_OR_RETURN(DataType type,
                            ParseTypeName(part.substr(colon + 1)));
    attrs.push_back({part.substr(0, colon), type});
  }
  return Schema::Make(std::move(attrs));
}

std::string PrintSchemaSpec(const Schema& schema) {
  std::vector<std::string> parts;
  parts.reserve(schema.size());
  for (const auto& a : schema.attributes()) parts.push_back(a.ToString());
  return Join(parts, ",");
}

StatusOr<AggFn> ParseAggFn(const std::string& name) {
  if (name == "SUM") return AggFn::kSum;
  if (name == "MIN") return AggFn::kMin;
  if (name == "MAX") return AggFn::kMax;
  if (name == "COUNT") return AggFn::kCount;
  if (name == "AVG") return AggFn::kAvg;
  return Status::InvalidArgument("unknown aggregate fn: " + name);
}

// "SUM(V1E)->V1E,COUNT(K)->N"
StatusOr<std::vector<AggSpec>> ParseAggSpecs(const std::string& spec) {
  std::vector<AggSpec> out;
  for (const auto& part : Split(spec, ',')) {
    size_t lp = part.find('(');
    size_t rp = part.find(')');
    size_t arrow = part.find("->");
    if (lp == std::string::npos || rp == std::string::npos ||
        arrow == std::string::npos || arrow < rp) {
      return Status::InvalidArgument("bad aggregate spec: " + part);
    }
    AggSpec a;
    ETLOPT_ASSIGN_OR_RETURN(a.fn, ParseAggFn(part.substr(0, lp)));
    a.arg = part.substr(lp + 1, rp - lp - 1);
    a.output = part.substr(arrow + 2);
    out.push_back(std::move(a));
  }
  return out;
}

std::string PrintAggSpecs(const std::vector<AggSpec>& aggs) {
  std::vector<std::string> parts;
  parts.reserve(aggs.size());
  for (const auto& a : aggs) {
    parts.push_back(std::string(AggFnToString(a.fn)) + "(" + a.arg + ")->" +
                    a.output);
  }
  return Join(parts, ",");
}

// A parsed DSL line: directive, name, key -> value fields.
struct Line {
  std::string directive;
  std::string name;
  std::map<std::string, std::string> fields;
  int number = 0;
};

StatusOr<Line> ParseLine(const std::string& raw, int number) {
  Line line;
  line.number = number;
  // Token scan that keeps parenthesized predicate values whole.
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < raw.size()) {
    while (i < raw.size() && raw[i] == ' ') ++i;
    if (i >= raw.size()) break;
    size_t start = i;
    int depth = 0;
    while (i < raw.size() && (raw[i] != ' ' || depth > 0)) {
      if (raw[i] == '(') ++depth;
      if (raw[i] == ')') --depth;
      ++i;
    }
    tokens.push_back(raw.substr(start, i - start));
  }
  if (tokens.size() < 2) {
    return Status::InvalidArgument(
        StrFormat("line %d: expected '<directive> <name> ...'", number));
  }
  line.directive = tokens[0];
  line.name = tokens[1];
  for (size_t t = 2; t < tokens.size(); ++t) {
    size_t eq = tokens[t].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected key=value, got '%s'", number,
                    tokens[t].c_str()));
    }
    line.fields.emplace(tokens[t].substr(0, eq), tokens[t].substr(eq + 1));
  }
  return line;
}

StatusOr<std::string> RequireField(const Line& line, const char* key) {
  auto it = line.fields.find(key);
  if (it == line.fields.end()) {
    return Status::InvalidArgument(StrFormat(
        "line %d (%s %s): missing field '%s'", line.number,
        line.directive.c_str(), line.name.c_str(), key));
  }
  return it->second;
}

std::string FieldOr(const Line& line, const char* key,
                    const std::string& fallback) {
  auto it = line.fields.find(key);
  return it == line.fields.end() ? fallback : it->second;
}

StatusOr<double> ParseDoubleField(const Line& line, const char* key,
                                  double fallback) {
  auto it = line.fields.find(key);
  if (it == line.fields.end()) return fallback;
  ETLOPT_ASSIGN_OR_RETURN(Value v, Value::Parse(it->second, DataType::kDouble));
  return v.double_value();
}

}  // namespace

StatusOr<ExprPtr> ParsePredicate(const std::string& text) {
  ETLOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizePredicate(text));
  return PredicateParser(std::move(tokens)).Parse();
}

StatusOr<Workflow> ParseWorkflowText(const std::string& text) {
  Workflow w;
  std::map<std::string, NodeId> by_name;
  std::vector<std::pair<NodeId, std::string>> plabel_overrides;
  auto record_node = [&](const Line& line, NodeId id) {
    by_name[line.name] = id;
    auto it = line.fields.find("plabel");
    if (it != line.fields.end()) plabel_overrides.emplace_back(id, it->second);
  };
  int number = 0;
  for (const auto& raw_line : Split(text, '\n')) {
    ++number;
    std::string line_text(Trim(raw_line));
    auto hash = line_text.find('#');
    if (hash != std::string::npos) line_text = line_text.substr(0, hash);
    line_text = std::string(Trim(line_text));
    if (line_text.empty()) continue;
    ETLOPT_ASSIGN_OR_RETURN(Line line, ParseLine(line_text, number));
    if (by_name.count(line.name)) {
      return Status::AlreadyExists(
          StrFormat("line %d: duplicate node name '%s'", number,
                    line.name.c_str()));
    }

    if (line.directive == "source") {
      ETLOPT_ASSIGN_OR_RETURN(std::string spec, RequireField(line, "schema"));
      ETLOPT_ASSIGN_OR_RETURN(Schema schema, ParseSchemaSpec(spec));
      ETLOPT_ASSIGN_OR_RETURN(double card,
                              ParseDoubleField(line, "card", 0.0));
      record_node(line, w.AddRecordSet({line.name, schema, card}));
      continue;
    }

    // Everything else has providers.
    ETLOPT_ASSIGN_OR_RETURN(std::string in, RequireField(line, "in"));
    std::vector<NodeId> providers;
    for (const auto& pname : Split(in, ',')) {
      auto it = by_name.find(pname);
      if (it == by_name.end()) {
        return Status::NotFound(StrFormat("line %d: unknown provider '%s'",
                                          number, pname.c_str()));
      }
      providers.push_back(it->second);
    }

    if (line.directive == "target") {
      ETLOPT_ASSIGN_OR_RETURN(std::string spec, RequireField(line, "schema"));
      ETLOPT_ASSIGN_OR_RETURN(Schema schema, ParseSchemaSpec(spec));
      if (providers.size() != 1) {
        return Status::InvalidArgument(
            StrFormat("line %d: target needs one provider", number));
      }
      NodeId id = w.AddRecordSet({line.name, schema, 0});
      ETLOPT_RETURN_NOT_OK(w.Connect(providers[0], id));
      record_node(line, id);
      continue;
    }

    ETLOPT_ASSIGN_OR_RETURN(double sel, ParseDoubleField(line, "sel", 1.0));
    StatusOr<Activity> activity = Status::Unimplemented("");
    if (line.directive == "selection") {
      ETLOPT_ASSIGN_OR_RETURN(std::string pred, RequireField(line, "pred"));
      ETLOPT_ASSIGN_OR_RETURN(ExprPtr e, ParsePredicate(pred));
      activity = MakeSelection(line.name, std::move(e), sel);
    } else if (line.directive == "notnull") {
      ETLOPT_ASSIGN_OR_RETURN(std::string attr, RequireField(line, "attr"));
      activity = MakeNotNull(line.name, attr, sel);
    } else if (line.directive == "domain") {
      ETLOPT_ASSIGN_OR_RETURN(std::string attr, RequireField(line, "attr"));
      ETLOPT_ASSIGN_OR_RETURN(double lo, ParseDoubleField(line, "lo", 0));
      ETLOPT_ASSIGN_OR_RETURN(double hi, ParseDoubleField(line, "hi", 0));
      activity = MakeDomainCheck(line.name, attr, lo, hi, sel);
    } else if (line.directive == "pkcheck") {
      ETLOPT_ASSIGN_OR_RETURN(std::string keys, RequireField(line, "keys"));
      activity = MakePrimaryKeyCheck(line.name, Split(keys, ','), sel);
    } else if (line.directive == "project") {
      ETLOPT_ASSIGN_OR_RETURN(std::string drop, RequireField(line, "drop"));
      activity = MakeProjection(line.name, Split(drop, ','));
    } else if (line.directive == "function") {
      ETLOPT_ASSIGN_OR_RETURN(std::string fn, RequireField(line, "fn"));
      ETLOPT_ASSIGN_OR_RETURN(std::string args, RequireField(line, "args"));
      ETLOPT_ASSIGN_OR_RETURN(std::string out_spec, RequireField(line, "out"));
      auto colon = out_spec.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("line %d: function out needs name:type", number));
      }
      ETLOPT_ASSIGN_OR_RETURN(DataType out_type,
                              ParseTypeName(out_spec.substr(colon + 1)));
      std::string drop = FieldOr(line, "drop", "");
      activity = MakeFunction(
          line.name, fn, Split(args, ','), out_spec.substr(0, colon),
          out_type, drop.empty() ? std::vector<std::string>{} : Split(drop, ','));
    } else if (line.directive == "inplace") {
      ETLOPT_ASSIGN_OR_RETURN(std::string fn, RequireField(line, "fn"));
      ETLOPT_ASSIGN_OR_RETURN(std::string attr, RequireField(line, "attr"));
      ETLOPT_ASSIGN_OR_RETURN(DataType type,
                              ParseTypeName(FieldOr(line, "type", "string")));
      activity = MakeInPlaceFunction(line.name, fn, attr, type);
    } else if (line.directive == "skey") {
      ETLOPT_ASSIGN_OR_RETURN(std::string keys, RequireField(line, "keys"));
      ETLOPT_ASSIGN_OR_RETURN(std::string out, RequireField(line, "out"));
      ETLOPT_ASSIGN_OR_RETURN(std::string lut, RequireField(line, "lut"));
      std::string drop = FieldOr(line, "drop", "");
      activity = MakeSurrogateKey(
          line.name, Split(keys, ','), out, lut,
          drop.empty() ? std::vector<std::string>{} : Split(drop, ','));
    } else if (line.directive == "aggregate") {
      ETLOPT_ASSIGN_OR_RETURN(std::string group, RequireField(line, "group"));
      ETLOPT_ASSIGN_OR_RETURN(std::string aggs, RequireField(line, "aggs"));
      ETLOPT_ASSIGN_OR_RETURN(std::vector<AggSpec> specs,
                              ParseAggSpecs(aggs));
      activity = MakeAggregation(line.name, Split(group, ','), specs, sel);
    } else if (line.directive == "union") {
      activity = MakeUnion(line.name);
    } else if (line.directive == "join") {
      ETLOPT_ASSIGN_OR_RETURN(std::string keys, RequireField(line, "keys"));
      activity = MakeJoin(line.name, Split(keys, ','), sel);
    } else if (line.directive == "difference") {
      activity = MakeDifference(line.name, sel);
    } else if (line.directive == "intersection") {
      activity = MakeIntersection(line.name, sel);
    } else {
      return Status::InvalidArgument(StrFormat(
          "line %d: unknown directive '%s'", number, line.directive.c_str()));
    }
    if (!activity.ok()) {
      return activity.status().WithContext(StrFormat("line %d", number));
    }
    ETLOPT_ASSIGN_OR_RETURN(NodeId id,
                            w.AddActivity(std::move(activity).value(),
                                          providers));
    record_node(line, id);
  }
  ETLOPT_RETURN_NOT_OK(w.Finalize());
  // Carried priority labels win over the freshly derived ones (see the
  // header: deserialized mid-optimization states).
  if (!plabel_overrides.empty()) {
    for (const auto& [id, plabel] : plabel_overrides) {
      ETLOPT_RETURN_NOT_OK(w.SetPriorityLabel(id, plabel));
    }
    ETLOPT_RETURN_NOT_OK(w.Refresh());
    w.ClearDirtyNodes();
  }
  return w;
}

StatusOr<std::string> PrintWorkflowText(const Workflow& workflow,
                                        const TextFormatOptions& options) {
  std::string out = "# etlopt workflow\n";
  Workflow copy = workflow;
  if (!copy.fresh()) {
    ETLOPT_RETURN_NOT_OK(copy.Refresh());
  }
  // Splices " plabel=N" in front of the line's trailing newline.
  auto append_plabel = [&](NodeId id) {
    if (!options.emit_plabels) return;
    out.insert(out.size() - 1, " plabel=" + copy.PriorityLabelOf(id));
  };
  // Node names: recordset names / activity labels (must be unique).
  std::map<NodeId, std::string> names;
  std::map<std::string, int> name_counts;
  for (NodeId id : copy.NodeIds()) {
    std::string base = copy.IsRecordSet(id) ? copy.recordset(id).name
                                            : copy.chain(id).label();
    if (++name_counts[base] > 1) {
      base += StrFormat("_%d", name_counts[base]);
    }
    names[id] = base;
  }
  for (NodeId id : copy.TopoOrder()) {
    if (copy.IsRecordSet(id)) {
      const RecordSetDef& def = copy.recordset(id);
      if (copy.Providers(id).empty()) {
        out += StrFormat("source %s card=%s schema=%s\n", names[id].c_str(),
                         DoubleToString(def.cardinality).c_str(),
                         PrintSchemaSpec(def.schema).c_str());
      } else {
        out += StrFormat("target %s in=%s schema=%s\n", names[id].c_str(),
                         names[copy.Providers(id)[0]].c_str(),
                         PrintSchemaSpec(def.schema).c_str());
      }
      append_plabel(id);
      continue;
    }
    const ActivityChain& chain = copy.chain(id);
    if (chain.size() != 1) {
      return Status::FailedPrecondition(
          "cannot print merged chains; split the workflow first");
    }
    const Activity& a = chain.front();
    std::vector<std::string> ins;
    for (NodeId p : copy.Providers(id)) ins.push_back(names[p]);
    std::string in = Join(ins, ",");
    std::string sel = DoubleToString(a.selectivity());
    const char* name = names[id].c_str();
    switch (a.kind()) {
      case ActivityKind::kSelection:
        out += StrFormat(
            "selection %s in=%s pred=%s sel=%s\n", name, in.c_str(),
            a.params_as<SelectionParams>().predicate->ToString().c_str(),
            sel.c_str());
        break;
      case ActivityKind::kNotNull:
        out += StrFormat("notnull %s in=%s attr=%s sel=%s\n", name, in.c_str(),
                         a.params_as<NotNullParams>().attr.c_str(),
                         sel.c_str());
        break;
      case ActivityKind::kDomainCheck: {
        const auto& p = a.params_as<DomainCheckParams>();
        out += StrFormat("domain %s in=%s attr=%s lo=%s hi=%s sel=%s\n", name,
                         in.c_str(), p.attr.c_str(),
                         DoubleToString(p.lo).c_str(),
                         DoubleToString(p.hi).c_str(), sel.c_str());
        break;
      }
      case ActivityKind::kPrimaryKeyCheck:
        out += StrFormat(
            "pkcheck %s in=%s keys=%s sel=%s\n", name, in.c_str(),
            Join(a.params_as<PrimaryKeyParams>().key_attrs, ",").c_str(),
            sel.c_str());
        break;
      case ActivityKind::kProjection:
        out += StrFormat(
            "project %s in=%s drop=%s\n", name, in.c_str(),
            Join(a.params_as<ProjectionParams>().drop_attrs, ",").c_str());
        break;
      case ActivityKind::kFunction: {
        const auto& p = a.params_as<FunctionParams>();
        if (p.entity_preserving) {
          out += StrFormat("inplace %s in=%s fn=%s attr=%s type=%s\n", name,
                           in.c_str(), p.function.c_str(), p.args[0].c_str(),
                           std::string(DataTypeToString(p.output_type)).c_str());
        } else {
          out += StrFormat("function %s in=%s fn=%s args=%s out=%s:%s", name,
                           in.c_str(), p.function.c_str(),
                           Join(p.args, ",").c_str(), p.output.c_str(),
                           std::string(DataTypeToString(p.output_type)).c_str());
          if (!p.drop_args.empty()) {
            out += " drop=" + Join(p.drop_args, ",");
          }
          out += "\n";
        }
        break;
      }
      case ActivityKind::kSurrogateKey: {
        const auto& p = a.params_as<SurrogateKeyParams>();
        out += StrFormat("skey %s in=%s keys=%s out=%s lut=%s", name,
                         in.c_str(), Join(p.key_attrs, ",").c_str(),
                         p.output.c_str(), p.lookup_name.c_str());
        if (!p.drop_attrs.empty()) out += " drop=" + Join(p.drop_attrs, ",");
        out += "\n";
        break;
      }
      case ActivityKind::kAggregation: {
        const auto& p = a.params_as<AggregationParams>();
        out += StrFormat("aggregate %s in=%s group=%s aggs=%s sel=%s\n", name,
                         in.c_str(), Join(p.group_by, ",").c_str(),
                         PrintAggSpecs(p.aggregates).c_str(), sel.c_str());
        break;
      }
      case ActivityKind::kUnion:
        out += StrFormat("union %s in=%s\n", name, in.c_str());
        break;
      case ActivityKind::kJoin:
        out += StrFormat("join %s in=%s keys=%s sel=%s\n", name, in.c_str(),
                         Join(a.params_as<JoinParams>().key_attrs, ",").c_str(),
                         sel.c_str());
        break;
      case ActivityKind::kDifference:
        out += StrFormat("difference %s in=%s sel=%s\n", name, in.c_str(),
                         sel.c_str());
        break;
      case ActivityKind::kIntersection:
        out += StrFormat("intersection %s in=%s sel=%s\n", name, in.c_str(),
                         sel.c_str());
        break;
    }
    append_plabel(id);
  }
  return out;
}

}  // namespace etlopt
