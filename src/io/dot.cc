#include "io/dot.h"

#include "common/string_util.h"

namespace etlopt {

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string WorkflowToDot(const Workflow& workflow) {
  std::string out = "digraph etl {\n  rankdir=LR;\n";
  for (NodeId id : workflow.NodeIds()) {
    if (workflow.IsRecordSet(id)) {
      const RecordSetDef& def = workflow.recordset(id);
      out += StrFormat(
          "  n%d [shape=box, style=filled, fillcolor=lightgray, "
          "label=\"%s: %s\"];\n",
          id, workflow.PriorityLabelOf(id).c_str(),
          EscapeDot(def.name).c_str());
    } else {
      const ActivityChain& chain = workflow.chain(id);
      out += StrFormat(
          "  n%d [shape=ellipse, label=\"%s: %s\\n%s\"];\n", id,
          workflow.PriorityLabelOf(id).c_str(),
          EscapeDot(chain.label()).c_str(),
          EscapeDot(chain.SemanticsString()).c_str());
    }
  }
  for (const auto& e : workflow.edges()) {
    out += StrFormat("  n%d -> n%d", e.from, e.to);
    if (e.port > 0) out += StrFormat(" [label=\"port %d\"]", e.port);
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace etlopt
