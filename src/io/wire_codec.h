// Little-endian binary encode/decode primitives shared by every etlopt
// byte format: plan files (ETLPLAN1/ETLPLNS1), recovery and stream
// checkpoints, and the network wire protocol (ETLNET1). Writers append
// to a std::string; WireReader walks a string_view with bounds checks
// that fail as clean InvalidArgument — a truncated or corrupt input can
// never read past the end or force a huge allocation.

#ifndef ETLOPT_IO_WIRE_CODEC_H_
#define ETLOPT_IO_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"

namespace etlopt {

void PutU32(std::string& out, uint32_t v);
void PutU64(std::string& out, uint64_t v);
/// Stored as the IEEE bit pattern, so the round trip is trivially exact.
void PutDouble(std::string& out, double v);
/// u32 length prefix + raw bytes.
void PutString(std::string& out, std::string_view s);

/// Bounds-checked cursor over one encoded buffer.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  StatusOr<uint8_t> U8() {
    ETLOPT_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  StatusOr<uint32_t> U32() {
    ETLOPT_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  StatusOr<uint64_t> U64() {
    ETLOPT_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  StatusOr<double> Double();

  StatusOr<std::string> String() {
    ETLOPT_ASSIGN_OR_RETURN(uint32_t n, U32());
    ETLOPT_RETURN_NOT_OK(Need(n));
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  StatusOr<std::string_view> Bytes(size_t n) {
    ETLOPT_RETURN_NOT_OK(Need(n));
    std::string_view v = bytes_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  Status Need(size_t n) {
    if (n > bytes_.size() - pos_) {
      return Status::InvalidArgument("wire: truncated binary input");
    }
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_IO_WIRE_CODEC_H_
