// Graphviz DOT export for workflows, for visual inspection of states.

#ifndef ETLOPT_IO_DOT_H_
#define ETLOPT_IO_DOT_H_

#include <string>

#include "graph/workflow.h"

namespace etlopt {

/// Renders the workflow as a DOT digraph: recordsets as boxes, activities
/// as ellipses labelled "<priority>: <label>\n<semantics>".
std::string WorkflowToDot(const Workflow& workflow);

}  // namespace etlopt

#endif  // ETLOPT_IO_DOT_H_
