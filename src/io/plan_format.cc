#include "io/plan_format.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"
#include "io/text_format.h"
#include "io/wire_codec.h"

namespace etlopt {

namespace {

const char kBinaryMagic[8] = {'E', 'T', 'L', 'P', 'L', 'A', 'N', '1'};
const char kCacheFileMagic[8] = {'E', 'T', 'L', 'P', 'L', 'N', 'S', '1'};

std::string_view KindToWord(TransitionRecord::Kind kind) {
  switch (kind) {
    case TransitionRecord::Kind::kSwap: return "SWA";
    case TransitionRecord::Kind::kFactorize: return "FAC";
    case TransitionRecord::Kind::kDistribute: return "DIS";
    case TransitionRecord::Kind::kMerge: return "MER";
    case TransitionRecord::Kind::kSplit: return "SPL";
  }
  return "SWA";
}

StatusOr<TransitionRecord::Kind> KindFromWord(std::string_view word) {
  if (word == "SWA") return TransitionRecord::Kind::kSwap;
  if (word == "FAC") return TransitionRecord::Kind::kFactorize;
  if (word == "DIS") return TransitionRecord::Kind::kDistribute;
  if (word == "MER") return TransitionRecord::Kind::kMerge;
  if (word == "SPL") return TransitionRecord::Kind::kSplit;
  return Status::InvalidArgument("plan: unknown transition kind '" +
                                 std::string(word) + "'");
}

size_t CountLines(const std::string& text) {
  size_t n = 0;
  for (char c : text) n += c == '\n' ? 1 : 0;
  return n;
}

StatusOr<double> ParseExactDouble(const std::string& s) {
  const char* p = s.c_str();
  char* end = nullptr;
  double v = std::strtod(p, &end);
  if (end == p || *end != '\0') {
    return Status::InvalidArgument("plan: bad double '" + s + "'");
  }
  return v;
}

StatusOr<uint64_t> ParseU64(const std::string& s, int base) {
  const char* p = s.c_str();
  char* end = nullptr;
  uint64_t v = std::strtoull(p, &end, base);
  if (end == p || *end != '\0') {
    return Status::InvalidArgument("plan: bad integer '" + s + "'");
  }
  return v;
}

// A cursor over the lines of one or more concatenated plan texts.
class LineCursor {
 public:
  explicit LineCursor(const std::string& text) : lines_(Split(text, '\n')) {
    // A trailing newline yields one empty final field; drop it so AtEnd()
    // means "no more content".
    if (!lines_.empty() && lines_.back().empty()) lines_.pop_back();
  }

  bool AtEnd() const { return pos_ >= lines_.size(); }
  void SkipBlank() {
    while (!AtEnd() && Trim(lines_[pos_]).empty()) ++pos_;
  }

  StatusOr<std::string> Next(const char* what) {
    if (AtEnd()) {
      return Status::InvalidArgument(StrFormat(
          "plan: unexpected end of input, expected %s", what));
    }
    return lines_[pos_++];
  }

  /// Next line split as "<key> <rest>"; the key must match.
  StatusOr<std::string> NextField(const char* key) {
    ETLOPT_ASSIGN_OR_RETURN(std::string line, Next(key));
    std::string prefix = std::string(key);
    if (line == prefix) return std::string();
    prefix += ' ';
    if (!StartsWith(line, prefix)) {
      return Status::InvalidArgument(StrFormat(
          "plan: expected '%s ...', got '%s'", key, line.c_str()));
    }
    return line.substr(prefix.size());
  }

  bool PeekStartsWith(const char* prefix) const {
    return !AtEnd() && StartsWith(lines_[pos_], prefix);
  }

 private:
  std::vector<std::string> lines_;
  size_t pos_ = 0;
};

StatusOr<OptimizedPlan> ParseOnePlan(LineCursor& cursor) {
  OptimizedPlan plan;
  ETLOPT_ASSIGN_OR_RETURN(std::string version, cursor.NextField("plan"));
  if (version != "v1") {
    return Status::InvalidArgument("plan: unsupported version '" + version +
                                   "'");
  }
  ETLOPT_ASSIGN_OR_RETURN(plan.algorithm, cursor.NextField("algorithm"));
  ETLOPT_RETURN_NOT_OK(SearchAlgorithmFromString(plan.algorithm).status());
  ETLOPT_ASSIGN_OR_RETURN(plan.cost_model, cursor.NextField("costmodel"));
  ETLOPT_ASSIGN_OR_RETURN(plan.options, cursor.NextField("options"));
  ETLOPT_ASSIGN_OR_RETURN(plan.merges, cursor.NextField("merges"));
  ETLOPT_ASSIGN_OR_RETURN(std::string field,
                          cursor.NextField("initial_cost"));
  ETLOPT_ASSIGN_OR_RETURN(plan.initial_cost, ParseExactDouble(field));
  ETLOPT_ASSIGN_OR_RETURN(field, cursor.NextField("best_cost"));
  ETLOPT_ASSIGN_OR_RETURN(plan.best_cost, ParseExactDouble(field));
  ETLOPT_ASSIGN_OR_RETURN(field, cursor.NextField("signature_hash"));
  if (!StartsWith(field, "0x")) {
    return Status::InvalidArgument("plan: signature_hash must be 0x-hex");
  }
  ETLOPT_ASSIGN_OR_RETURN(plan.signature_hash,
                          ParseU64(field.substr(2), 16));
  ETLOPT_ASSIGN_OR_RETURN(field, cursor.NextField("visited_states"));
  ETLOPT_ASSIGN_OR_RETURN(plan.visited_states, ParseU64(field, 10));
  ETLOPT_ASSIGN_OR_RETURN(field, cursor.NextField("exhausted"));
  if (field != "0" && field != "1") {
    return Status::InvalidArgument("plan: exhausted must be 0 or 1");
  }
  plan.exhausted = field == "1";
  while (cursor.PeekStartsWith("path ")) {
    ETLOPT_ASSIGN_OR_RETURN(std::string entry, cursor.NextField("path"));
    size_t space = entry.find(' ');
    std::string word = space == std::string::npos ? entry
                                                  : entry.substr(0, space);
    TransitionRecord record;
    ETLOPT_ASSIGN_OR_RETURN(record.kind, KindFromWord(word));
    if (space != std::string::npos) {
      record.description = entry.substr(space + 1);
    }
    plan.path.push_back(std::move(record));
  }
  // Optional tagged recovery section (reliability-aware runs only);
  // absent for — and never emitted by — legacy plans.
  if (cursor.PeekStartsWith("recovery points")) {
    plan.recovery.enabled = true;
    ETLOPT_ASSIGN_OR_RETURN(field, cursor.NextField("recovery points"));
    if (!field.empty()) {
      plan.recovery.labels = Split(field, ',');
      for (const std::string& label : plan.recovery.labels) {
        if (label.empty()) {
          return Status::InvalidArgument("plan: empty recovery point label");
        }
      }
    }
    ETLOPT_ASSIGN_OR_RETURN(field, cursor.NextField("recovery costs"));
    std::vector<std::string> costs = Split(field, ' ');
    if (costs.size() != 6) {
      return Status::InvalidArgument(
          "plan: recovery costs must have 6 fields");
    }
    struct {
      const char* key;
      double* value;
    } slots[] = {
        {"exec=", &plan.recovery.execution_cost},
        {"ckpt=", &plan.recovery.checkpoint_cost},
        {"rec=", &plan.recovery.expected_recovery_cost},
        {"total=", &plan.recovery.expected_total_cost},
        {"lambda=", &plan.recovery.failure_rate_per_cost},
        {"stream_unit=", &plan.recovery.stream_checkpoint_unit_cost},
    };
    for (size_t i = 0; i < 6; ++i) {
      if (!StartsWith(costs[i], slots[i].key)) {
        return Status::InvalidArgument(StrFormat(
            "plan: recovery costs: expected %s<value>, got '%s'",
            slots[i].key, costs[i].c_str()));
      }
      ETLOPT_ASSIGN_OR_RETURN(
          *slots[i].value,
          ParseExactDouble(costs[i].substr(std::strlen(slots[i].key))));
    }
    ETLOPT_ASSIGN_OR_RETURN(plan.recovery.rationale,
                            cursor.NextField("recovery rationale"));
  }
  for (const char* which : {"initial", "optimized"}) {
    ETLOPT_ASSIGN_OR_RETURN(field, cursor.NextField("begin workflow"));
    std::string expected = std::string(which) + " ";
    if (!StartsWith(field, expected)) {
      return Status::InvalidArgument(StrFormat(
          "plan: expected 'begin workflow %s <lines>', got '%s'", which,
          field.c_str()));
    }
    ETLOPT_ASSIGN_OR_RETURN(uint64_t count,
                            ParseU64(field.substr(expected.size()), 10));
    std::string text;
    for (uint64_t i = 0; i < count; ++i) {
      ETLOPT_ASSIGN_OR_RETURN(std::string line, cursor.Next("workflow line"));
      text += line;
      text += '\n';
    }
    ETLOPT_ASSIGN_OR_RETURN(field, cursor.NextField("end workflow"));
    if (!field.empty()) {
      return Status::InvalidArgument("plan: malformed 'end workflow'");
    }
    (std::strcmp(which, "initial") == 0 ? plan.initial_text
                                        : plan.optimized_text) =
        std::move(text);
  }
  ETLOPT_ASSIGN_OR_RETURN(field, cursor.NextField("end plan"));
  if (!field.empty()) {
    return Status::InvalidArgument("plan: malformed 'end plan'");
  }
  return plan;
}

// Binary encoding uses the shared little-endian wire codec
// (io/wire_codec.h); the helpers below are format-specific only.

}  // namespace

std::string CanonicalMergeConstraints(
    const std::vector<MergeConstraint>& merge_constraints) {
  std::string out;
  for (const MergeConstraint& constraint : merge_constraints) {
    if (!out.empty()) out += ';';
    out += constraint.first_label;
    out += '+';
    out += constraint.second_label;
  }
  return out;
}

StatusOr<OptimizedPlan> MakePlan(
    const Workflow& initial, const SearchResult& result,
    SearchAlgorithm algorithm, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints) {
  OptimizedPlan plan;
  plan.algorithm = std::string(SearchAlgorithmToString(algorithm));
  plan.cost_model = model.Fingerprint();
  plan.options = ResultFingerprint(options);
  plan.merges = CanonicalMergeConstraints(merge_constraints);
  plan.initial_cost = result.initial_cost;
  plan.best_cost = result.best.cost;
  plan.signature_hash = result.best.signature_hash;
  plan.visited_states = result.visited_states;
  plan.exhausted = result.exhausted;
  plan.path = result.best_path;
  plan.recovery = result.recovery;
  if (plan.signature_hash == 0) {
    Workflow copy = result.best.workflow;
    if (!copy.fresh()) {
      ETLOPT_RETURN_NOT_OK(copy.Refresh());
    }
    plan.signature_hash = copy.SignatureHash();
  }
  TextFormatOptions text_options;
  text_options.emit_plabels = true;
  ETLOPT_ASSIGN_OR_RETURN(plan.initial_text,
                          PrintWorkflowText(initial, text_options));
  ETLOPT_ASSIGN_OR_RETURN(
      plan.optimized_text,
      PrintWorkflowText(result.best.workflow, text_options));
  return plan;
}

std::string PrintPlanText(const OptimizedPlan& plan) {
  std::string out = "plan v1\n";
  out += "algorithm " + plan.algorithm + "\n";
  out += "costmodel " + plan.cost_model + "\n";
  out += "options " + plan.options + "\n";
  out += plan.merges.empty() ? "merges\n" : "merges " + plan.merges + "\n";
  out += "initial_cost " + DoubleToString(plan.initial_cost) + "\n";
  out += "best_cost " + DoubleToString(plan.best_cost) + "\n";
  out += StrFormat("signature_hash 0x%llx\n",
                   static_cast<unsigned long long>(plan.signature_hash));
  out += StrFormat("visited_states %llu\n",
                   static_cast<unsigned long long>(plan.visited_states));
  out += StrFormat("exhausted %d\n", plan.exhausted ? 1 : 0);
  for (const TransitionRecord& record : plan.path) {
    out += "path " + std::string(KindToWord(record.kind));
    if (!record.description.empty()) out += " " + record.description;
    out += "\n";
  }
  if (plan.recovery.enabled) {
    out += plan.recovery.labels.empty()
               ? "recovery points\n"
               : "recovery points " + Join(plan.recovery.labels, ",") + "\n";
    out += "recovery costs exec=" + DoubleToString(plan.recovery.execution_cost) +
           " ckpt=" + DoubleToString(plan.recovery.checkpoint_cost) +
           " rec=" + DoubleToString(plan.recovery.expected_recovery_cost) +
           " total=" + DoubleToString(plan.recovery.expected_total_cost) +
           " lambda=" + DoubleToString(plan.recovery.failure_rate_per_cost) +
           " stream_unit=" +
           DoubleToString(plan.recovery.stream_checkpoint_unit_cost) + "\n";
    out += "recovery rationale " + plan.recovery.rationale + "\n";
  }
  out += StrFormat("begin workflow initial %zu\n",
                   CountLines(plan.initial_text));
  out += plan.initial_text;
  out += "end workflow\n";
  out += StrFormat("begin workflow optimized %zu\n",
                   CountLines(plan.optimized_text));
  out += plan.optimized_text;
  out += "end workflow\n";
  out += "end plan\n";
  return out;
}

StatusOr<OptimizedPlan> ParsePlanText(const std::string& text) {
  LineCursor cursor(text);
  cursor.SkipBlank();
  ETLOPT_ASSIGN_OR_RETURN(OptimizedPlan plan, ParseOnePlan(cursor));
  cursor.SkipBlank();
  if (!cursor.AtEnd()) {
    return Status::InvalidArgument("plan: trailing content after 'end plan'");
  }
  return plan;
}

StatusOr<std::vector<OptimizedPlan>> ParsePlansText(const std::string& text) {
  std::vector<OptimizedPlan> plans;
  LineCursor cursor(text);
  cursor.SkipBlank();
  while (!cursor.AtEnd()) {
    ETLOPT_ASSIGN_OR_RETURN(OptimizedPlan plan, ParseOnePlan(cursor));
    plans.push_back(std::move(plan));
    cursor.SkipBlank();
  }
  return plans;
}

std::string SerializePlanBinary(const OptimizedPlan& plan) {
  std::string out(kBinaryMagic, sizeof(kBinaryMagic));
  PutString(out, plan.algorithm);
  PutString(out, plan.cost_model);
  PutString(out, plan.options);
  PutString(out, plan.merges);
  PutDouble(out, plan.initial_cost);
  PutDouble(out, plan.best_cost);
  PutU64(out, plan.signature_hash);
  PutU64(out, plan.visited_states);
  out.push_back(plan.exhausted ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(plan.path.size()));
  for (const TransitionRecord& record : plan.path) {
    out.push_back(static_cast<char>(record.kind));
    PutString(out, record.description);
  }
  PutString(out, plan.initial_text);
  PutString(out, plan.optimized_text);
  // Tagged trailer, present only for reliability-aware plans — a
  // reliability-off plan's bytes end exactly where they always did.
  if (plan.recovery.enabled) {
    out.push_back(1);
    PutU32(out, static_cast<uint32_t>(plan.recovery.labels.size()));
    for (const std::string& label : plan.recovery.labels) {
      PutString(out, label);
    }
    PutDouble(out, plan.recovery.execution_cost);
    PutDouble(out, plan.recovery.checkpoint_cost);
    PutDouble(out, plan.recovery.expected_recovery_cost);
    PutDouble(out, plan.recovery.expected_total_cost);
    PutDouble(out, plan.recovery.failure_rate_per_cost);
    PutDouble(out, plan.recovery.stream_checkpoint_unit_cost);
    PutString(out, plan.recovery.rationale);
  }
  return out;
}

StatusOr<OptimizedPlan> ParsePlanBinary(std::string_view bytes) {
  if (bytes.size() < sizeof(kBinaryMagic) ||
      std::memcmp(bytes.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return Status::InvalidArgument("plan: bad binary magic");
  }
  WireReader reader(bytes.substr(sizeof(kBinaryMagic)));
  OptimizedPlan plan;
  ETLOPT_ASSIGN_OR_RETURN(plan.algorithm, reader.String());
  ETLOPT_RETURN_NOT_OK(SearchAlgorithmFromString(plan.algorithm).status());
  ETLOPT_ASSIGN_OR_RETURN(plan.cost_model, reader.String());
  ETLOPT_ASSIGN_OR_RETURN(plan.options, reader.String());
  ETLOPT_ASSIGN_OR_RETURN(plan.merges, reader.String());
  ETLOPT_ASSIGN_OR_RETURN(plan.initial_cost, reader.Double());
  ETLOPT_ASSIGN_OR_RETURN(plan.best_cost, reader.Double());
  ETLOPT_ASSIGN_OR_RETURN(plan.signature_hash, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(plan.visited_states, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(uint8_t exhausted, reader.U8());
  if (exhausted > 1) {
    return Status::InvalidArgument("plan: bad exhausted flag");
  }
  plan.exhausted = exhausted == 1;
  ETLOPT_ASSIGN_OR_RETURN(uint32_t path_size, reader.U32());
  // Bound the reserve by what the input could possibly hold (a record is
  // at least 5 bytes), so a corrupt count cannot force a huge allocation
  // before the per-record bounds checks fire.
  plan.path.reserve(std::min<size_t>(path_size, reader.remaining() / 5));
  for (uint32_t i = 0; i < path_size; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(uint8_t kind, reader.U8());
    if (kind > static_cast<uint8_t>(TransitionRecord::Kind::kSplit)) {
      return Status::InvalidArgument("plan: bad transition kind");
    }
    TransitionRecord record;
    record.kind = static_cast<TransitionRecord::Kind>(kind);
    ETLOPT_ASSIGN_OR_RETURN(record.description, reader.String());
    plan.path.push_back(std::move(record));
  }
  ETLOPT_ASSIGN_OR_RETURN(plan.initial_text, reader.String());
  ETLOPT_ASSIGN_OR_RETURN(plan.optimized_text, reader.String());
  if (!reader.AtEnd()) {
    ETLOPT_ASSIGN_OR_RETURN(uint8_t tag, reader.U8());
    if (tag != 1) {
      return Status::InvalidArgument("plan: bad recovery section tag");
    }
    plan.recovery.enabled = true;
    ETLOPT_ASSIGN_OR_RETURN(uint32_t label_count, reader.U32());
    plan.recovery.labels.reserve(
        std::min<size_t>(label_count, reader.remaining() / 4));
    for (uint32_t i = 0; i < label_count; ++i) {
      ETLOPT_ASSIGN_OR_RETURN(std::string label, reader.String());
      plan.recovery.labels.push_back(std::move(label));
    }
    ETLOPT_ASSIGN_OR_RETURN(plan.recovery.execution_cost, reader.Double());
    ETLOPT_ASSIGN_OR_RETURN(plan.recovery.checkpoint_cost, reader.Double());
    ETLOPT_ASSIGN_OR_RETURN(plan.recovery.expected_recovery_cost,
                            reader.Double());
    ETLOPT_ASSIGN_OR_RETURN(plan.recovery.expected_total_cost,
                            reader.Double());
    ETLOPT_ASSIGN_OR_RETURN(plan.recovery.failure_rate_per_cost,
                            reader.Double());
    ETLOPT_ASSIGN_OR_RETURN(plan.recovery.stream_checkpoint_unit_cost,
                            reader.Double());
    ETLOPT_ASSIGN_OR_RETURN(plan.recovery.rationale, reader.String());
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("plan: trailing binary content");
  }
  return plan;
}

std::string SerializePlansBinary(const std::vector<OptimizedPlan>& plans) {
  std::string payload;
  PutU32(payload, static_cast<uint32_t>(plans.size()));
  for (const OptimizedPlan& plan : plans) {
    std::string bytes = SerializePlanBinary(plan);
    PutU64(payload, bytes.size());
    payload += bytes;
  }
  std::string out(kCacheFileMagic, sizeof(kCacheFileMagic));
  PutU64(out, payload.size());
  out += payload;
  PutU64(out, Fnv1a64(payload));
  return out;
}

StatusOr<std::vector<OptimizedPlan>> ParsePlansBinary(std::string_view bytes) {
  if (bytes.size() < sizeof(kCacheFileMagic) + 16 ||
      std::memcmp(bytes.data(), kCacheFileMagic,
                  sizeof(kCacheFileMagic)) != 0) {
    return Status::InvalidArgument(
        "plan cache: bad magic or truncated file");
  }
  WireReader header(bytes.substr(sizeof(kCacheFileMagic)));
  ETLOPT_ASSIGN_OR_RETURN(uint64_t payload_size, header.U64());
  if (header.remaining() < 8 || payload_size != header.remaining() - 8) {
    return Status::InvalidArgument(
        "plan cache: length mismatch (truncated)");
  }
  // Whole-file checksum first: a flip anywhere — even inside a length
  // prefix or at a plan boundary — is caught before any plan is parsed.
  ETLOPT_ASSIGN_OR_RETURN(std::string_view payload,
                          header.Bytes(payload_size));
  ETLOPT_ASSIGN_OR_RETURN(uint64_t recorded_checksum, header.U64());
  if (Fnv1a64(payload) != recorded_checksum) {
    return Status::InvalidArgument("plan cache: checksum mismatch");
  }
  WireReader reader(payload);
  ETLOPT_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  std::vector<OptimizedPlan> plans;
  plans.reserve(std::min<size_t>(count, reader.remaining() / 8));
  for (uint32_t i = 0; i < count; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(uint64_t plan_size, reader.U64());
    ETLOPT_ASSIGN_OR_RETURN(std::string_view plan_bytes,
                            reader.Bytes(plan_size));
    ETLOPT_ASSIGN_OR_RETURN(OptimizedPlan plan,
                            ParsePlanBinary(plan_bytes));
    plans.push_back(std::move(plan));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("plan cache: trailing content");
  }
  return plans;
}

StatusOr<State> ApplyPlan(const OptimizedPlan& plan, const CostModel& model) {
  if (model.Fingerprint() != plan.cost_model) {
    return Status::FailedPrecondition(
        "plan was produced under cost model '" + plan.cost_model +
        "', not '" + model.Fingerprint() + "'");
  }
  ETLOPT_ASSIGN_OR_RETURN(Workflow workflow,
                          ParseWorkflowText(plan.optimized_text));
  ETLOPT_ASSIGN_OR_RETURN(State state, MakeState(std::move(workflow), model));
  if (state.signature_hash != plan.signature_hash) {
    return Status::Internal(StrFormat(
        "plan does not reproduce its recorded signature (0x%llx vs 0x%llx)",
        static_cast<unsigned long long>(state.signature_hash),
        static_cast<unsigned long long>(plan.signature_hash)));
  }
  // A reliability-aware plan carries its params in the options
  // fingerprint and its placement in the recovery section; the two must
  // agree with each other and with a from-scratch recomputation — a
  // tampered section (labels, ledger, or missing/injected section) is
  // rejected, never served.
  const bool reliability_run =
      plan.options.find("reliability=") != std::string::npos;
  if (reliability_run != plan.recovery.enabled) {
    return Status::Internal(
        "plan recovery section does not match its options fingerprint");
  }
  if (plan.recovery.enabled) {
    ETLOPT_ASSIGN_OR_RETURN(ReliabilityParams params,
                            ReliabilityFromOptionsFingerprint(plan.options));
    RecoveryPointPlan recomputed =
        PlaceRecoveryPoints(state.workflow, *state.breakdown, params);
    if (recomputed.labels != plan.recovery.labels ||
        recomputed.execution_cost != plan.recovery.execution_cost ||
        recomputed.checkpoint_cost != plan.recovery.checkpoint_cost ||
        recomputed.expected_recovery_cost !=
            plan.recovery.expected_recovery_cost ||
        recomputed.expected_total_cost != plan.recovery.expected_total_cost ||
        recomputed.failure_rate_per_cost !=
            plan.recovery.failure_rate_per_cost ||
        recomputed.stream_checkpoint_unit_cost !=
            plan.recovery.stream_checkpoint_unit_cost) {
      return Status::Internal(
          "plan does not reproduce its recorded recovery-point placement");
    }
    // The search minimized effective cost = execution + surcharge;
    // MakeState costs execution only, so lift it before the bits check.
    state.cost += recomputed.checkpoint_cost +
                  recomputed.expected_recovery_cost;
  }
  if (state.cost != plan.best_cost) {
    return Status::Internal(StrFormat(
        "plan does not reproduce its recorded cost (%.17g vs %.17g)",
        state.cost, plan.best_cost));
  }
  return state;
}

StatusOr<Workflow> PlanInitialWorkflow(const OptimizedPlan& plan) {
  return ParseWorkflowText(plan.initial_text);
}

}  // namespace etlopt
