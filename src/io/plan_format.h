// Serialized optimizer plans (.etlplan): the answer of one optimizer run
// — the request workflow, the optimized workflow with its carried
// priority labels (so the state signature survives the trip), the ES
// transition provenance when available, and the figures needed to verify
// a reload — in a canonical text form and a compact binary form, both
// round-trip exact. This is what the serving layer's plan cache persists
// across process restarts.
//
//   plan v1
//   algorithm hs
//   costmodel linlog(sk_setup=0,agg_setup=0)
//   options max_states=200000,max_millis=60000,...
//   merges cleana+cleanb               # canonical merge constraints
//   initial_cost 45852
//   best_cost 30000.125
//   signature_hash 0x1f2e3d4c5b6a7988
//   visited_states 1234
//   exhausted 0
//   path SWA SWA(sel0,nn0)            # zero or more provenance lines
//   begin workflow initial 12         # exactly 12 DSL lines follow
//   ...
//   end workflow
//   begin workflow optimized 12
//   ...
//   end workflow
//   end plan

#ifndef ETLOPT_IO_PLAN_FORMAT_H_
#define ETLOPT_IO_PLAN_FORMAT_H_

#include <string>
#include <string_view>
#include <vector>

#include "cost/cost_model.h"
#include "cost/reliability_model.h"
#include "optimizer/search.h"

namespace etlopt {

/// One cached/persisted optimizer answer. The workflow fields hold the
/// canonical DSL (with plabel= fields, see text_format.h), so a plan is
/// self-contained: no live Workflow objects needed to store or ship it.
struct OptimizedPlan {
  std::string algorithm;   // "es" | "hs" | "hsg"
  std::string cost_model;  // CostModel::Fingerprint() the run used
  std::string options;     // ResultFingerprint(SearchOptions) of the run
  std::string merges;      // CanonicalMergeConstraints of the run
  double initial_cost = 0.0;
  double best_cost = 0.0;
  uint64_t signature_hash = 0;  // best workflow's SignatureHash()
  uint64_t visited_states = 0;
  bool exhausted = false;
  std::vector<TransitionRecord> path;  // ES lineage; empty for heuristics
  std::string initial_text;    // request workflow, canonical DSL
  std::string optimized_text;  // best workflow, canonical DSL

  /// The run's recovery-point decision. Enabled only for reliability-aware
  /// runs; a disabled plan serializes to *nothing* — no text lines, no
  /// binary bytes — so legacy plans stay byte-identical and old parsers
  /// keep accepting new reliability-off plans. When enabled, both forms
  /// carry a tagged section ("recovery ..." lines / a tagged binary
  /// trailer) and ApplyPlan re-derives the placement from the reliability
  /// fingerprint embedded in `options`, rejecting any tampered section.
  RecoveryPointPlan recovery;
};

/// "l1+l2;l3+l4" — the canonical one-line form of a merge-constraint
/// list (order preserved: it is meaningful to HS pre-processing). Empty
/// for the empty list.
std::string CanonicalMergeConstraints(
    const std::vector<MergeConstraint>& merge_constraints);

/// Packages a search result as a plan. Fails when either workflow cannot
/// be printed (merged chains).
StatusOr<OptimizedPlan> MakePlan(
    const Workflow& initial, const SearchResult& result,
    SearchAlgorithm algorithm, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints = {});

/// Canonical text form. Printing is deterministic: parse(print(p)) == p
/// and print(parse(t)) == t for printer-produced t.
std::string PrintPlanText(const OptimizedPlan& plan);
StatusOr<OptimizedPlan> ParsePlanText(const std::string& text);

/// Parses a concatenation of plan texts (a persisted cache file).
StatusOr<std::vector<OptimizedPlan>> ParsePlansText(const std::string& text);

/// Compact binary form ("ETLPLAN1" magic; doubles stored as bit patterns,
/// so the round trip is trivially exact).
std::string SerializePlanBinary(const OptimizedPlan& plan);
StatusOr<OptimizedPlan> ParsePlanBinary(std::string_view bytes);

/// A whole persisted plan-cache file in binary form: "ETLPLNS1" magic,
/// payload length, length-prefixed SerializePlanBinary entries, trailing
/// FNV-64 over the payload. The checksum is verified before any plan is
/// parsed, so any truncation or bit flip — including one that lands
/// exactly on a plan boundary — fails with a clean InvalidArgument.
inline constexpr std::string_view kPlanCacheBinaryMagic = "ETLPLNS1";
std::string SerializePlansBinary(const std::vector<OptimizedPlan>& plans);
StatusOr<std::vector<OptimizedPlan>> ParsePlansBinary(std::string_view bytes);

/// Reconstructs the optimized state from a (possibly reloaded) plan:
/// verifies the model fingerprint matches, parses optimized_text, costs
/// it under `model`, and checks cost bits and signature hash against the
/// recorded values — a reloaded plan that does not reproduce its recorded
/// answer exactly is rejected, never served.
StatusOr<State> ApplyPlan(const OptimizedPlan& plan, const CostModel& model);

/// Parses just the request workflow of a plan (cache keying on reload).
StatusOr<Workflow> PlanInitialWorkflow(const OptimizedPlan& plan);

}  // namespace etlopt

#endif  // ETLOPT_IO_PLAN_FORMAT_H_
