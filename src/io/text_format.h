// Textual workflow format (.etl): a line-oriented DSL for describing
// design-time ETL workflows, with a parser and printer that round-trip.
//
//   # comment
//   source SRC0 card=12000 schema=K:int,SRC:string,V1:double
//   notnull nn0 in=SRC0 attr=V1 sel=0.9
//   selection sel0 in=nn0 pred=(V1 >= 300) sel=0.5
//   domain dc0 in=sel0 attr=V1 lo=10 hi=900 sel=0.6
//   pkcheck pk0 in=dc0 keys=K sel=0.95
//   project pr0 in=pk0 drop=V1
//   function f0 in=pr0 fn=dollar2euro args=V1 out=V1E:double drop=V1
//   inplace g0 in=f0 fn=a2e_date attr=DATE type=string
//   skey sk0 in=g0 keys=K out=SKEY lut=gen_lut drop=K
//   aggregate ag0 in=sk0 group=SRC,DATE aggs=SUM(V1E)->V1E sel=0.3
//   union u0 in=a,b
//   join j0 in=a,b keys=K sel=0.05
//   difference d0 in=a,b sel=0.5
//   intersection x0 in=a,b sel=0.5
//   target DW in=ag0 schema=SRC:string,DATE:string,V1E:double
//
// Node names are unique identifiers; `in=` wires providers (port order).
// Selection predicates use the canonical fully-parenthesized form that
// Expr::ToString emits, restricted to comparisons, AND/OR/NOT and
// IS [NOT] NULL over columns and literals.

#ifndef ETLOPT_IO_TEXT_FORMAT_H_
#define ETLOPT_IO_TEXT_FORMAT_H_

#include <string>

#include "expr/expr.h"
#include "graph/workflow.h"

namespace etlopt {

/// Parses the DSL into a finalized workflow. Every directive accepts an
/// optional `plabel=` field overriding the execution-priority label that
/// Finalize() would derive — this is how serialized mid-optimization
/// workflows (whose labels were assigned by the *initial* topology and
/// carried through transitions) keep their exact state signature across a
/// round trip.
StatusOr<Workflow> ParseWorkflowText(const std::string& text);

struct TextFormatOptions {
  /// Emit a `plabel=` field on every node. Off by default: a design-time
  /// workflow re-derives identical labels in Finalize(), so plain output
  /// stays clean. The plan format always turns this on.
  bool emit_plabels = false;
};

/// Prints a workflow in the DSL. Fails on merged (multi-member) chains —
/// the format describes design-time workflows, not mid-search states.
StatusOr<std::string> PrintWorkflowText(const Workflow& workflow,
                                        const TextFormatOptions& options = {});

/// Parses a canonical predicate string ("(V1 >= 300)", "((A > 1) AND
/// (B IS NOT NULL))", ...). Exposed for tests and tools.
StatusOr<ExprPtr> ParsePredicate(const std::string& text);

}  // namespace etlopt

#endif  // ETLOPT_IO_TEXT_FORMAT_H_
