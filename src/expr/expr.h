// Expr: immutable scalar/boolean expression trees.
//
// Activities carry their semantics as relational algebra extended with
// functions (paper §2.1). Selection predicates and function applications
// are represented with this small AST. Nodes are immutable and shared
// (states copy workflows frequently during search).

#ifndef ETLOPT_EXPR_EXPR_H_
#define ETLOPT_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "records/record.h"
#include "schema/schema.h"

namespace etlopt {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Comparison and logical operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr, kNot };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

std::string_view CompareOpToString(CompareOp op);
std::string_view ArithOpToString(ArithOp op);

/// An immutable expression node.
///
/// SQL-ish NULL semantics: comparisons and arithmetic involving NULL yield
/// NULL; a NULL predicate result is treated as false by filters; IsNull /
/// IsNotNull test NULL-ness directly.
class Expr {
 public:
  enum class Kind {
    kColumn,    // reference-attribute name
    kLiteral,   // constant Value
    kCompare,   // lhs op rhs
    kLogical,   // and/or/not
    kArith,     // lhs op rhs
    kFunction,  // named scalar function over args
    kIsNull,
    kIsNotNull,
  };

  /// Structural view of one node, for external walkers (the vectorized
  /// expression compiler in src/columnar/). Pointers reference data owned
  /// by the node and stay valid for the node's lifetime. Fields not
  /// meaningful for a kind are null / default: kColumn sets `column`,
  /// kLiteral sets `literal`, kCompare sets lhs/rhs/cmp, kLogical sets
  /// lhs/logical (and rhs unless kNot), kArith sets lhs/rhs/arith,
  /// kIsNull/kIsNotNull set lhs to the tested subexpression. kFunction
  /// exposes nothing (walkers must treat it as opaque and fall back to
  /// row-at-a-time Evaluate).
  struct Parts {
    const Expr* lhs = nullptr;
    const Expr* rhs = nullptr;
    const Value* literal = nullptr;
    const std::string* column = nullptr;
    CompareOp cmp = CompareOp::kEq;
    LogicalOp logical = LogicalOp::kAnd;
    ArithOp arith = ArithOp::kAdd;
  };

  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  Kind kind() const { return kind_; }

  /// Structural decomposition of this node (see Parts). The default is
  /// the all-null view, which walkers read as "opaque node".
  virtual Parts parts() const { return {}; }

  /// Evaluates against one record laid out by `schema`.
  virtual StatusOr<Value> Evaluate(const Record& record,
                                   const Schema& schema) const = 0;

  /// Appends the names of all referenced columns (with duplicates).
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;

  /// Canonical text form; equal text implies equal semantics for the
  /// homologous-activity test (§3.2).
  virtual std::string ToString() const = 0;

  /// Distinct referenced column names, in first-appearance order.
  std::vector<std::string> ReferencedColumns() const;

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// --- Factory functions (the public construction API) ---

ExprPtr Column(std::string name);
ExprPtr Literal(Value v);
ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr inner);
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr IsNull(ExprPtr inner);
ExprPtr IsNotNull(ExprPtr inner);

/// Calls a registered scalar function (see RegisterScalarFunction).
ExprPtr Function(std::string name, std::vector<ExprPtr> args);

/// Signature of a user-registerable scalar function.
using ScalarFn = StatusOr<Value> (*)(const std::vector<Value>& args);

/// Registers `fn` under `name`; AlreadyExists if the name is taken.
/// Built-ins registered at startup: dollar2euro, euro2dollar, a2e_date,
/// e2a_date, upper, lower, round, abs, concat, year_of.
Status RegisterScalarFunction(const std::string& name, ScalarFn fn);

/// True iff `name` resolves to a registered scalar function.
bool IsScalarFunctionRegistered(const std::string& name);

/// Evaluates a predicate: NULL and non-bool results are false.
StatusOr<bool> EvaluatePredicate(const Expr& expr, const Record& record,
                                 const Schema& schema);

}  // namespace etlopt

#endif  // ETLOPT_EXPR_EXPR_H_
