#include "expr/expr.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// ---- Scalar function registry ----
// Function-local static reference (never destroyed) per the style guide's
// static-storage rules. Built-ins are installed on first access so every
// entry point sees them.
bool EnsureBuiltinsRegistered();

std::map<std::string, ScalarFn>& RegistryRaw() {
  static auto& m = *new std::map<std::string, ScalarFn>();
  return m;
}

std::map<std::string, ScalarFn>& Registry() {
  static const bool builtins_ready = EnsureBuiltinsRegistered();
  (void)builtins_ready;
  return RegistryRaw();
}

Status ExpectArgs(const std::vector<Value>& args, size_t n,
                  const char* fname) {
  if (args.size() != n) {
    return Status::InvalidArgument(
        StrFormat("%s expects %zu args, got %zu", fname, n, args.size()));
  }
  return Status::OK();
}

// Fixed conversion rate keeps every experiment deterministic.
constexpr double kDollarsPerEuro = 1.25;

StatusOr<Value> FnDollar2Euro(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "dollar2euro"));
  if (args[0].is_null()) return Value::Null();
  return Value::Double(args[0].AsDouble() / kDollarsPerEuro);
}

StatusOr<Value> FnEuro2Dollar(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "euro2dollar"));
  if (args[0].is_null()) return Value::Null();
  return Value::Double(args[0].AsDouble() * kDollarsPerEuro);
}

// "MM/DD/YYYY" -> "DD/MM/YYYY".
StatusOr<Value> SwapDateParts(const Value& v, const char* fname) {
  if (v.is_null()) return Value::Null();
  if (v.type() != DataType::kString) {
    return Status::InvalidArgument(std::string(fname) +
                                   " expects a string date");
  }
  const std::string& s = v.string_value();
  auto parts = Split(s, '/');
  if (parts.size() != 3) {
    return Status::InvalidArgument(std::string(fname) + ": bad date '" + s +
                                   "'");
  }
  return Value::String(parts[1] + "/" + parts[0] + "/" + parts[2]);
}

StatusOr<Value> FnA2EDate(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "a2e_date"));
  return SwapDateParts(args[0], "a2e_date");
}

StatusOr<Value> FnE2ADate(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "e2a_date"));
  return SwapDateParts(args[0], "e2a_date");
}

StatusOr<Value> FnUpper(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "upper"));
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != DataType::kString)
    return Status::InvalidArgument("upper expects a string");
  std::string s = args[0].string_value();
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return Value::String(std::move(s));
}

StatusOr<Value> FnLower(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "lower"));
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != DataType::kString)
    return Status::InvalidArgument("lower expects a string");
  std::string s = args[0].string_value();
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return Value::String(std::move(s));
}

StatusOr<Value> FnRound(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "round"));
  if (args[0].is_null()) return Value::Null();
  return Value::Double(std::round(args[0].AsDouble()));
}

StatusOr<Value> FnAbs(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "abs"));
  if (args[0].is_null()) return Value::Null();
  return Value::Double(std::fabs(args[0].AsDouble()));
}

StatusOr<Value> FnConcat(const std::vector<Value>& args) {
  std::string out;
  for (const auto& a : args) {
    if (a.is_null()) return Value::Null();
    out += a.ToString();
  }
  return Value::String(std::move(out));
}

// Year from "DD/MM/YYYY" or "MM/DD/YYYY".
StatusOr<Value> FnYearOf(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "year_of"));
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != DataType::kString)
    return Status::InvalidArgument("year_of expects a string date");
  auto parts = Split(args[0].string_value(), '/');
  if (parts.size() != 3)
    return Status::InvalidArgument("year_of: bad date '" +
                                   args[0].string_value() + "'");
  return Value::Parse(parts[2], DataType::kInt64);
}

// Month/year grouper "DD/MM/YYYY" -> "MM/YYYY". Used by the monthly
// aggregation of the paper's running example.
StatusOr<Value> FnMonthOf(const std::vector<Value>& args) {
  ETLOPT_RETURN_NOT_OK(ExpectArgs(args, 1, "month_of"));
  if (args[0].is_null()) return Value::Null();
  if (args[0].type() != DataType::kString)
    return Status::InvalidArgument("month_of expects a string date");
  auto parts = Split(args[0].string_value(), '/');
  if (parts.size() != 3)
    return Status::InvalidArgument("month_of: bad date '" +
                                   args[0].string_value() + "'");
  return Value::String(parts[1] + "/" + parts[2]);
}

bool EnsureBuiltinsRegistered() {
  auto& m = RegistryRaw();
  m.emplace("dollar2euro", &FnDollar2Euro);
  m.emplace("euro2dollar", &FnEuro2Dollar);
  m.emplace("a2e_date", &FnA2EDate);
  m.emplace("e2a_date", &FnE2ADate);
  m.emplace("upper", &FnUpper);
  m.emplace("lower", &FnLower);
  m.emplace("round", &FnRound);
  m.emplace("abs", &FnAbs);
  m.emplace("concat", &FnConcat);
  m.emplace("year_of", &FnYearOf);
  m.emplace("month_of", &FnMonthOf);
  return true;
}

// ---- Node classes ----

class ColumnExpr final : public Expr {
 public:
  explicit ColumnExpr(std::string name)
      : Expr(Kind::kColumn), name_(std::move(name)) {}

  StatusOr<Value> Evaluate(const Record& record,
                           const Schema& schema) const override {
    auto idx = schema.IndexOf(name_);
    if (!idx.has_value())
      return Status::NotFound("column not in schema: " + name_);
    if (*idx >= record.size())
      return Status::Internal("record narrower than schema at " + name_);
    return record.value(*idx);
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }

  std::string ToString() const override { return name_; }

  Parts parts() const override {
    Parts p;
    p.column = &name_;
    return p;
  }

 private:
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(Kind::kLiteral), value_(std::move(v)) {}

  StatusOr<Value> Evaluate(const Record&, const Schema&) const override {
    return value_;
  }

  void CollectColumns(std::vector<std::string>*) const override {}

  std::string ToString() const override {
    if (value_.type() == DataType::kString)
      return "'" + value_.ToString() + "'";
    if (value_.is_null()) return "NULL";
    return value_.ToString();
  }

  Parts parts() const override {
    Parts p;
    p.literal = &value_;
    return p;
  }

 private:
  Value value_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kCompare), op_(op), lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  StatusOr<Value> Evaluate(const Record& record,
                           const Schema& schema) const override {
    ETLOPT_ASSIGN_OR_RETURN(Value l, lhs_->Evaluate(record, schema));
    ETLOPT_ASSIGN_OR_RETURN(Value r, rhs_->Evaluate(record, schema));
    if (l.is_null() || r.is_null()) return Value::Null();
    switch (op_) {
      case CompareOp::kEq:
        return Value::Bool(l == r);
      case CompareOp::kNe:
        return Value::Bool(!(l == r));
      case CompareOp::kLt:
        return Value::Bool(l < r);
      case CompareOp::kLe:
        return Value::Bool(!(r < l));
      case CompareOp::kGt:
        return Value::Bool(r < l);
      case CompareOp::kGe:
        return Value::Bool(!(l < r));
    }
    return Status::Internal("bad compare op");
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " +
           std::string(CompareOpToString(op_)) + " " + rhs_->ToString() + ")";
  }

  Parts parts() const override {
    Parts p;
    p.lhs = lhs_.get();
    p.rhs = rhs_.get();
    p.cmp = op_;
    return p;
  }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class LogicalExpr final : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kLogical), op_(op), lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  StatusOr<Value> Evaluate(const Record& record,
                           const Schema& schema) const override {
    ETLOPT_ASSIGN_OR_RETURN(Value l, lhs_->Evaluate(record, schema));
    if (op_ == LogicalOp::kNot) {
      if (l.is_null()) return Value::Null();
      if (l.type() != DataType::kBool)
        return Status::InvalidArgument("NOT over non-bool");
      return Value::Bool(!l.bool_value());
    }
    ETLOPT_ASSIGN_OR_RETURN(Value r, rhs_->Evaluate(record, schema));
    // Three-valued logic with NULL.
    auto as_tri = [](const Value& v) -> StatusOr<int> {
      if (v.is_null()) return -1;
      if (v.type() != DataType::kBool)
        return Status::InvalidArgument("logical op over non-bool");
      return v.bool_value() ? 1 : 0;
    };
    ETLOPT_ASSIGN_OR_RETURN(int tl, as_tri(l));
    ETLOPT_ASSIGN_OR_RETURN(int tr, as_tri(r));
    if (op_ == LogicalOp::kAnd) {
      if (tl == 0 || tr == 0) return Value::Bool(false);
      if (tl == -1 || tr == -1) return Value::Null();
      return Value::Bool(true);
    }
    // kOr
    if (tl == 1 || tr == 1) return Value::Bool(true);
    if (tl == -1 || tr == -1) return Value::Null();
    return Value::Bool(false);
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    lhs_->CollectColumns(out);
    if (rhs_) rhs_->CollectColumns(out);
  }

  std::string ToString() const override {
    if (op_ == LogicalOp::kNot) return "(NOT " + lhs_->ToString() + ")";
    const char* op = op_ == LogicalOp::kAnd ? "AND" : "OR";
    return "(" + lhs_->ToString() + " " + op + " " + rhs_->ToString() + ")";
  }

  Parts parts() const override {
    Parts p;
    p.lhs = lhs_.get();
    p.rhs = rhs_.get();  // null for kNot
    p.logical = op_;
    return p;
  }

 private:
  LogicalOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;  // null for kNot
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kArith), op_(op), lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  StatusOr<Value> Evaluate(const Record& record,
                           const Schema& schema) const override {
    ETLOPT_ASSIGN_OR_RETURN(Value l, lhs_->Evaluate(record, schema));
    ETLOPT_ASSIGN_OR_RETURN(Value r, rhs_->Evaluate(record, schema));
    if (l.is_null() || r.is_null()) return Value::Null();
    double a = l.AsDouble();
    double b = r.AsDouble();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Double(a + b);
      case ArithOp::kSub:
        return Value::Double(a - b);
      case ArithOp::kMul:
        return Value::Double(a * b);
      case ArithOp::kDiv:
        if (b == 0.0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / b);
    }
    return Status::Internal("bad arith op");
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + std::string(ArithOpToString(op_)) +
           " " + rhs_->ToString() + ")";
  }

  Parts parts() const override {
    Parts p;
    p.lhs = lhs_.get();
    p.rhs = rhs_.get();
    p.arith = op_;
    return p;
  }

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class FunctionExpr final : public Expr {
 public:
  FunctionExpr(std::string name, std::vector<ExprPtr> args)
      : Expr(Kind::kFunction), name_(std::move(name)), args_(std::move(args)) {}

  StatusOr<Value> Evaluate(const Record& record,
                           const Schema& schema) const override {
    auto it = Registry().find(name_);
    if (it == Registry().end())
      return Status::NotFound("unregistered scalar function: " + name_);
    std::vector<Value> vals;
    vals.reserve(args_.size());
    for (const auto& a : args_) {
      ETLOPT_ASSIGN_OR_RETURN(Value v, a->Evaluate(record, schema));
      vals.push_back(std::move(v));
    }
    return it->second(vals);
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    for (const auto& a : args_) a->CollectColumns(out);
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(args_.size());
    for (const auto& a : args_) parts.push_back(a->ToString());
    return name_ + "(" + Join(parts, ", ") + ")";
  }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

class NullTestExpr final : public Expr {
 public:
  NullTestExpr(Kind kind, ExprPtr inner)
      : Expr(kind), inner_(std::move(inner)) {}

  StatusOr<Value> Evaluate(const Record& record,
                           const Schema& schema) const override {
    ETLOPT_ASSIGN_OR_RETURN(Value v, inner_->Evaluate(record, schema));
    bool isnull = v.is_null();
    return Value::Bool(kind() == Kind::kIsNull ? isnull : !isnull);
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    inner_->CollectColumns(out);
  }

  std::string ToString() const override {
    return "(" + inner_->ToString() +
           (kind() == Kind::kIsNull ? " IS NULL)" : " IS NOT NULL)");
  }

  Parts parts() const override {
    Parts p;
    p.lhs = inner_.get();
    return p;
  }

 private:
  ExprPtr inner_;
};

}  // namespace

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

std::vector<std::string> Expr::ReferencedColumns() const {
  std::vector<std::string> all;
  CollectColumns(&all);
  std::vector<std::string> out;
  for (auto& n : all) {
    if (std::find(out.begin(), out.end(), n) == out.end())
      out.push_back(std::move(n));
  }
  return out;
}

ExprPtr Column(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}

ExprPtr Literal(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }

ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(lhs),
                                       std::move(rhs));
}

ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(lhs),
                                       std::move(rhs));
}

ExprPtr Not(ExprPtr inner) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(inner),
                                       nullptr);
}

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr IsNull(ExprPtr inner) {
  return std::make_shared<NullTestExpr>(Expr::Kind::kIsNull, std::move(inner));
}

ExprPtr IsNotNull(ExprPtr inner) {
  return std::make_shared<NullTestExpr>(Expr::Kind::kIsNotNull,
                                        std::move(inner));
}

ExprPtr Function(std::string name, std::vector<ExprPtr> args) {
  return std::make_shared<FunctionExpr>(std::move(name), std::move(args));
}

Status RegisterScalarFunction(const std::string& name, ScalarFn fn) {
  auto [it, inserted] = Registry().emplace(name, fn);
  (void)it;
  if (!inserted)
    return Status::AlreadyExists("scalar function exists: " + name);
  return Status::OK();
}

bool IsScalarFunctionRegistered(const std::string& name) {
  return Registry().count(name) > 0;
}

StatusOr<bool> EvaluatePredicate(const Expr& expr, const Record& record,
                                 const Schema& schema) {
  ETLOPT_ASSIGN_OR_RETURN(Value v, expr.Evaluate(record, schema));
  if (v.is_null()) return false;
  if (v.type() != DataType::kBool)
    return Status::InvalidArgument("predicate evaluated to non-bool: " +
                                   expr.ToString());
  return v.bool_value();
}

}  // namespace etlopt
