// Error-propagation and assertion macros used throughout etlopt.

#ifndef ETLOPT_COMMON_MACROS_H_
#define ETLOPT_COMMON_MACROS_H_

#include <cstdlib>
#include <iostream>

#include "common/status.h"

// Propagates a non-OK Status to the caller.
#define ETLOPT_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::etlopt::Status _etlopt_status = (expr);      \
    if (!_etlopt_status.ok()) return _etlopt_status; \
  } while (false)

#define ETLOPT_CONCAT_IMPL(a, b) a##b
#define ETLOPT_CONCAT(a, b) ETLOPT_CONCAT_IMPL(a, b)

// Evaluates a StatusOr expression; on error returns the status, otherwise
// moves the value into `lhs` (which may be a declaration).
#define ETLOPT_ASSIGN_OR_RETURN(lhs, expr) \
  ETLOPT_ASSIGN_OR_RETURN_IMPL(            \
      ETLOPT_CONCAT(_etlopt_statusor_, __LINE__), lhs, expr)

#define ETLOPT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

// Invariant check that aborts on failure. Used for conditions that indicate
// a bug in etlopt itself, never for user input validation.
#define ETLOPT_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::cerr << "ETLOPT_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << std::endl;                                 \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define ETLOPT_CHECK_OK(expr)                                           \
  do {                                                                  \
    ::etlopt::Status _etlopt_status = (expr);                           \
    if (!_etlopt_status.ok()) {                                         \
      std::cerr << "ETLOPT_CHECK_OK failed at " << __FILE__ << ":"      \
                << __LINE__ << ": " << _etlopt_status.ToString()        \
                << std::endl;                                           \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#endif  // ETLOPT_COMMON_MACROS_H_
