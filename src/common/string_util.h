// Small string helpers shared across etlopt modules.

#ifndef ETLOPT_COMMON_STRING_UTIL_H_
#define ETLOPT_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace etlopt {

/// FNV-1a offset basis, the conventional `seed` for Fnv1a64.
inline constexpr uint64_t kFnv1aBasis = 14695981039346656037ull;

/// Incremental FNV-1a over `bytes`, continuing from `seed` — the shared
/// checksum/fingerprint primitive of the persistence formats (plan cache
/// files, recovery checkpoints) and request-context hashing.
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = kFnv1aBasis);

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a double compactly and exactly: integral values lose the
/// fraction ("3" not "3.000000"), others use the fewest significant
/// decimals (starting at 6) that strtod back to the same double — so
/// serialized values round-trip bit for bit.
std::string DoubleToString(double v);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace etlopt

#endif  // ETLOPT_COMMON_STRING_UTIL_H_
