#include "common/file_util.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace etlopt {

namespace fs = std::filesystem;

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot create file: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::IOError("write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename failed: " + path + ": " + ec.message());
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  if (in) buffer << in.rdbuf();
  if (!in || in.bad()) return Status::IOError("cannot read file: " + path);
  return buffer.str();
}

}  // namespace etlopt
