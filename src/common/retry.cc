#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/string_util.h"

namespace etlopt {

Status ValidateRetryPolicy(const RetryPolicy& policy) {
  if (policy.max_attempts < 1) {
    return Status::InvalidArgument(StrFormat(
        "retry: max_attempts must be >= 1, got %d", policy.max_attempts));
  }
  if (policy.initial_backoff_millis <= 0) {
    return Status::InvalidArgument(StrFormat(
        "retry: initial_backoff_millis must be positive, got %lld",
        static_cast<long long>(policy.initial_backoff_millis)));
  }
  if (policy.backoff_multiplier < 1.0 ||
      !std::isfinite(policy.backoff_multiplier)) {
    return Status::InvalidArgument(StrFormat(
        "retry: backoff_multiplier must be >= 1, got %g",
        policy.backoff_multiplier));
  }
  if (policy.max_backoff_millis < policy.initial_backoff_millis) {
    return Status::InvalidArgument(StrFormat(
        "retry: max_backoff_millis (%lld) must be >= initial_backoff_millis "
        "(%lld)",
        static_cast<long long>(policy.max_backoff_millis),
        static_cast<long long>(policy.initial_backoff_millis)));
  }
  if (policy.jitter < 0.0 || policy.jitter > 1.0 ||
      !std::isfinite(policy.jitter)) {
    return Status::InvalidArgument(
        StrFormat("retry: jitter must be in [0, 1], got %g", policy.jitter));
  }
  return Status::OK();
}

bool IsRetryableStatus(const Status& status) {
  return status.IsUnavailable() || status.IsIOError();
}

namespace {

// Floor of any computed backoff: full jitter on a small base must never
// round to a zero-millisecond busy-retry.
constexpr int64_t kMinBackoffMillis = 1;
// Largest double that still converts to int64_t without UB (the next
// representable double above it is 2^63). A policy with
// max_backoff_millis near INT64_MAX would otherwise push the cast below
// out of range — UB that in practice produced INT64_MIN and, through the
// max() below, a 1 ms busy-retry exactly when the caller asked for the
// longest possible backoff.
constexpr double kMaxSafeBackoffMillis = 9223372036854774784.0;

}  // namespace

int64_t BackoffMillis(const RetryPolicy& policy, int retry, Rng& rng) {
  double base = static_cast<double>(policy.initial_backoff_millis) *
                std::pow(policy.backoff_multiplier, retry);
  // pow() overflows to +inf for large retry counts; treat that as "the
  // ceiling", like any other base beyond max_backoff_millis.
  if (!std::isfinite(base)) {
    base = static_cast<double>(policy.max_backoff_millis);
  }
  base = std::min(base, static_cast<double>(policy.max_backoff_millis));
  if (policy.jitter > 0.0) {
    base *= 1.0 - policy.jitter * rng.UniformDouble();
  }
  base = std::min(base, kMaxSafeBackoffMillis);
  return std::max(kMinBackoffMillis, static_cast<int64_t>(base));
}

Status RetryWithBackoff(const RetryPolicy& policy, Rng& rng, const char* what,
                        const std::function<Status()>& attempt,
                        uint64_t* retries) {
  Status status;
  for (int i = 0; i < policy.max_attempts; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMillis(policy, i - 1, rng)));
      if (retries != nullptr) ++*retries;
    }
    status = attempt();
    if (status.ok() || !IsRetryableStatus(status)) return status;
  }
  return status.WithContext(
      StrFormat("%s failed after %d attempts", what, policy.max_attempts));
}

}  // namespace etlopt
