// Deterministic pseudo-random number generation.
//
// All stochastic components of etlopt (workload generation, data
// generation) draw from Rng, a xoshiro256** generator seeded explicitly,
// so every experiment is reproducible from its printed seed.

#ifndef ETLOPT_COMMON_RANDOM_H_
#define ETLOPT_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace etlopt {

/// xoshiro256** PRNG with SplitMix64 seeding.
///
/// Not cryptographically secure; fast and statistically solid, which is all
/// the workload generators need.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Returns a uniformly distributed 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Picks a uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformIndex(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniform element. Requires non-empty input.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[UniformIndex(v.size())];
  }

 private:
  uint64_t s_[4];
};

}  // namespace etlopt

#endif  // ETLOPT_COMMON_RANDOM_H_
