// StatusOr<T>: a Status or a value of type T.

#ifndef ETLOPT_COMMON_STATUSOR_H_
#define ETLOPT_COMMON_STATUSOR_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace etlopt {

/// Holds either an OK status with a value, or a non-OK status.
///
/// Typical use:
///   StatusOr<Schema> s = BuildSchema(...);
///   if (!s.ok()) return s.status();
///   Use(*s);
///
/// Dereferencing a non-OK StatusOr aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and aborts.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      std::cerr << "StatusOr constructed from OK status without a value\n";
      std::abort();
    }
  }

  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const {
    CheckHasValue();
    return &*value_;
  }
  T* operator->() {
    CheckHasValue();
    return &*value_;
  }

  /// Returns the value, or `alternative` if this holds an error.
  template <typename U>
  T value_or(U&& alternative) const& {
    if (ok()) return *value_;
    return static_cast<T>(std::forward<U>(alternative));
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::cerr << "StatusOr accessed without value: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace etlopt

#endif  // ETLOPT_COMMON_STATUSOR_H_
