// RetryPolicy: shared retry/backoff configuration for the recoverable
// executor and the optimizer service.
//
// A retry masks *transient* failures (Unavailable, IOError — the codes
// the fault injector and flaky storage produce); every other code is
// treated as deterministic and surfaces immediately. Backoff is
// exponential with optional jitter, drawn from an explicitly seeded Rng
// so retry timing is reproducible in tests.

#ifndef ETLOPT_COMMON_RETRY_H_
#define ETLOPT_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/random.h"
#include "common/status.h"

namespace etlopt {

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 3;
  /// Backoff before the first retry; doubles (see multiplier) after each.
  int64_t initial_backoff_millis = 1;
  /// Backoff growth factor per retry.
  double backoff_multiplier = 2.0;
  /// Ceiling on any single backoff.
  int64_t max_backoff_millis = 1000;
  /// Fraction of each backoff randomized away: the sleep is drawn
  /// uniformly from [backoff * (1 - jitter), backoff]. 0 = deterministic.
  double jitter = 0.5;
};

/// Rejects nonsensical policies (max_attempts < 1, zero/negative backoff,
/// multiplier < 1, max_backoff < initial_backoff, jitter outside [0, 1])
/// with InvalidArgument. Mirrors ValidateSearchOptions: every entry point
/// that takes a policy validates it before doing any work.
Status ValidateRetryPolicy(const RetryPolicy& policy);

/// True for codes a retry can plausibly fix: Unavailable and IOError.
bool IsRetryableStatus(const Status& status);

/// The jittered backoff before retry number `retry` (0-based: the sleep
/// between attempt 1 and attempt 2 is retry 0). Requires a validated
/// policy.
int64_t BackoffMillis(const RetryPolicy& policy, int retry, Rng& rng);

/// Runs `attempt` up to policy.max_attempts times, sleeping the jittered
/// backoff between attempts, until it returns OK or a non-retryable
/// status. `what` labels the operation in the final error's context.
/// Increments *retries (when given) once per performed retry.
Status RetryWithBackoff(const RetryPolicy& policy, Rng& rng, const char* what,
                        const std::function<Status()>& attempt,
                        uint64_t* retries = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_COMMON_RETRY_H_
