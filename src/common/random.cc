#include "common/random.h"

#include <cstdlib>

#include "common/macros.h"

namespace etlopt {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ETLOPT_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::UniformIndex(size_t n) {
  ETLOPT_CHECK(n > 0);
  return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
}

}  // namespace etlopt
