#include "common/status.h"

namespace etlopt {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace etlopt
