#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cmath>

namespace etlopt {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string DoubleToString(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest representation that parses back to the exact same double, so
  // serialized workflows and plans round-trip without cost drift. Most
  // values (hand-written selectivities, generated two-decimal thresholds)
  // stay at 6 significant digits; only values that genuinely need more
  // precision get it.
  char buf[64];
  for (int precision : {6, 9, 12, 15, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    char* end = nullptr;
    if (std::strtod(buf, &end) == v && end != buf) break;
  }
  return buf;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace etlopt
