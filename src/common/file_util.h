// Small filesystem helpers shared by the checkpoint writers (recovery,
// plan cache, stream state).

#ifndef ETLOPT_COMMON_FILE_UTIL_H_
#define ETLOPT_COMMON_FILE_UTIL_H_

#include <string>

#include "common/statusor.h"

namespace etlopt {

/// Writes `bytes` to `path` via a sibling temp file + rename, so readers
/// never observe a half-written file.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// Reads the whole file into a byte string. IOError when the file cannot
/// be opened or read.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace etlopt

#endif  // ETLOPT_COMMON_FILE_UTIL_H_
