// Status: error propagation without exceptions.
//
// All fallible public APIs in etlopt return a Status (or StatusOr<T>,
// see statusor.h). This mirrors the RocksDB/Arrow idiom: exceptions never
// cross a library boundary; callers inspect the returned object.

#ifndef ETLOPT_COMMON_STATUS_H_
#define ETLOPT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace etlopt {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kIOError = 9,
  kUnavailable = 10,
  kDeadlineExceeded = 11,
};

/// Returns a stable, human-readable name for a StatusCode ("Ok",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise. Construct error statuses through the named
/// factories (Status::InvalidArgument(...) etc.).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  /// Prepends context to the message of a non-OK status; no-op on OK.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace etlopt

#endif  // ETLOPT_COMMON_STATUS_H_
