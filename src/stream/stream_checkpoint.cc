#include "stream/stream_checkpoint.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"
#include "records/record_io.h"

namespace etlopt {

namespace {

const char kStreamMagic[8] = {'E', 'T', 'L', 'S', 'T', 'R', 'M', '1'};

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out += s;
}

}  // namespace

std::string SerializeStreamCheckpoint(const StreamCheckpoint& checkpoint) {
  std::string payload;
  PutU64(payload, checkpoint.workflow_hash);
  PutU64(payload, checkpoint.capture_fingerprint);
  PutU64(payload, checkpoint.next_batch);
  PutU64(payload, checkpoint.batch_count);
  PutU32(payload, static_cast<uint32_t>(checkpoint.rows_out.size()));
  for (const auto& [node, count] : checkpoint.rows_out) {
    PutU32(payload, static_cast<uint32_t>(node));
    PutU64(payload, count);
  }
  PutU32(payload, static_cast<uint32_t>(checkpoint.target_data.size()));
  for (const auto& [name, rows] : checkpoint.target_data) {
    PutString(payload, name);
    PutU64(payload, rows.size());
    for (const Record& r : rows) PutRecord(payload, r);
  }
  PutU32(payload, static_cast<uint32_t>(checkpoint.state_blobs.size()));
  for (const auto& [key, blob] : checkpoint.state_blobs) {
    PutString(payload, key);
    PutString(payload, blob);
  }

  std::string out(kStreamMagic, sizeof(kStreamMagic));
  PutU64(out, payload.size());
  out += payload;
  PutU64(out, Fnv1a64(payload));
  return out;
}

StatusOr<StreamCheckpoint> ParseStreamCheckpoint(std::string_view bytes) {
  if (bytes.size() < sizeof(kStreamMagic) + 16 ||
      std::memcmp(bytes.data(), kStreamMagic, sizeof(kStreamMagic)) != 0) {
    return Status::InvalidArgument(
        "stream checkpoint: bad magic or truncated file");
  }
  BinaryReader header(bytes.substr(sizeof(kStreamMagic)));
  ETLOPT_ASSIGN_OR_RETURN(uint64_t payload_size, header.U64());
  if (header.remaining() < 8 || payload_size != header.remaining() - 8) {
    return Status::InvalidArgument(
        "stream checkpoint: length mismatch (truncated)");
  }
  std::string_view payload =
      bytes.substr(sizeof(kStreamMagic) + 8, payload_size);
  BinaryReader checksum_reader(
      bytes.substr(sizeof(kStreamMagic) + 8 + payload_size));
  ETLOPT_ASSIGN_OR_RETURN(uint64_t recorded_checksum, checksum_reader.U64());
  if (Fnv1a64(payload) != recorded_checksum) {
    return Status::InvalidArgument("stream checkpoint: checksum mismatch");
  }

  BinaryReader reader(payload);
  StreamCheckpoint checkpoint;
  ETLOPT_ASSIGN_OR_RETURN(checkpoint.workflow_hash, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(checkpoint.capture_fingerprint, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(checkpoint.next_batch, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(checkpoint.batch_count, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(uint32_t rows_out_size, reader.U32());
  for (uint32_t i = 0; i < rows_out_size; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(uint32_t node, reader.U32());
    ETLOPT_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
    checkpoint.rows_out[static_cast<NodeId>(node)] =
        static_cast<size_t>(count);
  }
  ETLOPT_ASSIGN_OR_RETURN(uint32_t target_count, reader.U32());
  for (uint32_t i = 0; i < target_count; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(std::string name, reader.String());
    ETLOPT_ASSIGN_OR_RETURN(uint64_t row_count, reader.U64());
    std::vector<Record>& rows = checkpoint.target_data[name];
    // Bound the reserve by what the payload could possibly hold, so a
    // corrupt count cannot force a huge allocation before the per-row
    // bounds checks fire.
    rows.reserve(static_cast<size_t>(
        std::min<uint64_t>(row_count, reader.remaining() / 4)));
    for (uint64_t r = 0; r < row_count; ++r) {
      ETLOPT_ASSIGN_OR_RETURN(Record record, ReadRecord(reader));
      rows.push_back(std::move(record));
    }
  }
  ETLOPT_ASSIGN_OR_RETURN(uint32_t blob_count, reader.U32());
  for (uint32_t i = 0; i < blob_count; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(std::string key, reader.String());
    ETLOPT_ASSIGN_OR_RETURN(std::string blob, reader.String());
    checkpoint.state_blobs.emplace(std::move(key), std::move(blob));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("stream checkpoint: trailing content");
  }
  return checkpoint;
}

}  // namespace etlopt
