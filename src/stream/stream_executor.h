// StreamExecutor: drives a workflow over a MicroBatchSource with delta
// propagation and exactly-once restart semantics (ISSUE 6 tentpole).
//
// Per-node incremental modes, assigned by a static pass over the graph:
//  * stateless activities (Selection/NotNull/DomainCheck/Projection/
//    Function/SurrogateKey/Union) process only each batch's delta;
//  * PrimaryKeyCheck keeps a persistent seen-key set and emits only
//    first occurrences (delta in, delta out);
//  * Join keeps both input histories and per-key indexes, emitting
//    exactly the new pairs each batch (delta in, delta out);
//  * Aggregation keeps persistent per-group accumulators (the same
//    AggAcc as the batch engine) and re-emits the full sorted group
//    table each batch (delta in, refresh out);
//  * Difference/Intersection keep bag counts per side (delta in,
//    refresh out);
//  * any node downstream of a refresh output recomputes from scratch
//    each batch over the full stream so far (delta-side inputs are
//    accumulated into per-port histories).
//
// The final result is byte-identical — as a multiset per target, with
// exactly equal rows_out — to one-shot ExecuteWorkflow over the whole
// capture (see DESIGN.md for the two documented order caveats).
//
// Each batch is transactional: the attempt stages every state mutation
// in per-batch overlays and commits only on success, so transient
// faults retry the batch against unmodified state. With a
// checkpoint_dir set, the committed frontier (plus all operator state
// and accumulated targets) is persisted after every batch in an
// ETLSTRM1 file keyed on workflow signature x capture fingerprint; a
// crashed run resumes at the frontier and applies every batch to the
// persistent state exactly once.

#ifndef ETLOPT_STREAM_STREAM_EXECUTOR_H_
#define ETLOPT_STREAM_STREAM_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "engine/executor.h"
#include "stream/micro_batch.h"
#include "stream/stream_options.h"

namespace etlopt {

struct StreamStats {
  /// Batches executed (and committed) by this run.
  size_t batches_run = 0;
  /// Batches skipped because a checkpoint already covered them.
  size_t batches_skipped = 0;
  /// True when the run restored state from a checkpoint.
  bool resumed = false;
  /// Checkpoints that failed to read or validate and were discarded.
  size_t checkpoints_rejected = 0;
  size_t checkpoints_written = 0;
  size_t checkpoint_write_failures = 0;
  /// Stale sibling stream_*.ckpt files GC'd after a successful run.
  size_t stale_checkpoints_pruned = 0;
  /// The checkpoint-every-k cadence this run actually used (the plan's
  /// Young interval when recovery_plan is enabled, else the knob).
  uint64_t checkpoint_interval = 0;
  /// Per-batch retries performed (transient faults absorbed).
  uint64_t retries = 0;
  /// Nodes running in delta mode / refresh (recompute) mode.
  size_t delta_nodes = 0;
  size_t refresh_nodes = 0;
  /// Wall latency of each executed batch, in microseconds (bench p99).
  std::vector<int64_t> batch_micros;
};

class StreamExecutor {
 public:
  explicit StreamExecutor(StreamOptions options);

  /// Streams `capture` through `workflow` batch by batch and returns the
  /// final accumulated result. The workflow must be fresh().
  StatusOr<ExecutionResult> Run(const Workflow& workflow,
                                const ExecutionInput& capture,
                                StreamStats* stats = nullptr);

  /// Removes the run's stream checkpoint (if any).
  Status ClearCheckpoints(const Workflow& workflow,
                          const ExecutionInput& capture) const;

 private:
  std::string CheckpointPathFor(uint64_t workflow_hash,
                                uint64_t fingerprint) const;

  StreamOptions options_;
};

}  // namespace etlopt

#endif  // ETLOPT_STREAM_STREAM_EXECUTOR_H_
