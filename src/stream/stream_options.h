// Knobs for the streaming micro-batch subsystem (ISSUE 6).
//
// Validation mirrors ValidateSearchOptions / ValidateRetryPolicy: every
// entry point that takes a StreamOptions validates it before doing any
// work, and each rejection names the offending knob.

#ifndef ETLOPT_STREAM_STREAM_OPTIONS_H_
#define ETLOPT_STREAM_STREAM_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/retry.h"
#include "common/status.h"
#include "cost/reliability_model.h"

namespace etlopt {

/// Which execution engine the stream driver runs per micro-batch.
enum class StreamEngine {
  /// One node at a time, in topological order.
  kSerial,
  /// Nodes of the same topological level run concurrently on a
  /// ThreadPool (per-node state is private, so this is race-free).
  kParallel,
};

struct StreamOptions {
  // --- Batching ---
  /// Row-slice mode: the capture is cut into this many contiguous,
  /// near-equal row slices per source. Must be >= 1.
  int64_t num_batches = 8;
  /// When > 0, overrides num_batches: slices hold at most this many rows
  /// of the largest source. Negative is rejected.
  int64_t batch_rows = 0;
  /// When non-empty, switches to event-time mode: every source schema
  /// must carry an int64 attribute of this name, and batches are
  /// fixed-width windows of that timestamp.
  std::string event_time_column;
  /// Window width (event-time units) in event-time mode. Must be > 0.
  int64_t window_millis = 1000;

  // --- Replay clock (DOD-ETL style capture replay) ---
  /// Event time advances this many times faster than the wall clock when
  /// pacing. Must be > 0 and finite.
  double rate_multiplier = 1.0;
  /// When true (event-time mode only), MicroBatchSource::Next sleeps so
  /// batch deliveries reproduce the capture's event-time gaps scaled by
  /// rate_multiplier.
  bool paced = false;

  // --- Engine ---
  StreamEngine engine = StreamEngine::kSerial;
  /// Worker count for kParallel; 0 = ThreadPool::DefaultThreads().
  size_t num_threads = 0;

  // --- Exactly-once checkpointing ---
  /// Directory for stream-state checkpoints; empty disables them.
  std::string checkpoint_dir;
  /// A checkpoint is written after every Nth committed batch (and always
  /// after the last). Must be >= 1.
  int64_t checkpoint_every_batches = 1;
  /// Remove the run's checkpoint once the stream completes.
  bool remove_checkpoints_on_success = true;
  /// The optimizer's reliability decision. When enabled, the checkpoint
  /// cadence is derived from it (Young's approximation over the plan's
  /// per-batch cost and checkpoint unit cost — see
  /// PlannedStreamCheckpointInterval), overriding
  /// checkpoint_every_batches; plan-driven checkpoint writes also hit
  /// the recovery.place_checkpoint fault site.
  RecoveryPointPlan recovery_plan;
  /// Bounded retention for stale sibling stream_*.ckpt files (crashed
  /// runs over other workflows/captures that were never resumed): after
  /// a successful Run(), only the `max_retained_checkpoints` most
  /// recently written stale files under checkpoint_dir survive, oldest
  /// deleted first. The current run's file is never counted against the
  /// cap.
  size_t max_retained_checkpoints = 8;

  // --- Retry ---
  /// Per-batch retry policy for transient faults; crash-points are never
  /// absorbed.
  RetryPolicy retry;
  uint64_t retry_seed = 42;
};

/// Rejects nonsensical option combinations with InvalidArgument naming
/// the knob.
Status ValidateStreamOptions(const StreamOptions& options);

}  // namespace etlopt

#endif  // ETLOPT_STREAM_STREAM_OPTIONS_H_
