#include "stream/micro_batch.h"

#include <algorithm>
#include <thread>

#include "common/macros.h"
#include "common/string_util.h"
#include "engine/recovery.h"
#include "fault/fault_injector.h"
#include "records/record_io.h"

namespace etlopt {

namespace {

// Contiguous near-equal row slices: slice i of R rows is
// [floor(i*R/B), floor((i+1)*R/B)), so the slices concatenate back to
// the original rows exactly and differ in size by at most one row.
std::vector<std::vector<Record>> SliceRows(const std::vector<Record>& rows,
                                           size_t num_batches) {
  std::vector<std::vector<Record>> slices(num_batches);
  const size_t n = rows.size();
  for (size_t i = 0; i < num_batches; ++i) {
    const size_t lo = i * n / num_batches;
    const size_t hi = (i + 1) * n / num_batches;
    slices[i].assign(rows.begin() + static_cast<ptrdiff_t>(lo),
                     rows.begin() + static_cast<ptrdiff_t>(hi));
  }
  return slices;
}

}  // namespace

StatusOr<MicroBatchSource> MicroBatchSource::Make(
    const Workflow& workflow, const ExecutionInput& capture,
    const StreamOptions& options) {
  ETLOPT_RETURN_NOT_OK(ValidateStreamOptions(options));
  if (!workflow.fresh()) {
    return Status::FailedPrecondition(
        "workflow must pass Refresh() before streaming");
  }
  MicroBatchSource source;
  source.options_ = options;
  source.context_ = capture.context;
  source.event_mode_ = !options.event_time_column.empty();

  // Bind and validate every source recordset's capture, exactly as
  // ExecuteWorkflow would.
  struct Bound {
    std::string name;
    const std::vector<Record>* rows;
    size_t ts_index = 0;  // event mode only
  };
  std::vector<Bound> bound;
  size_t max_rows = 0;
  for (NodeId id : workflow.SourceRecordSets()) {
    const RecordSetDef& def = workflow.recordset(id);
    auto it = capture.source_data.find(def.name);
    if (it == capture.source_data.end()) {
      return Status::NotFound("no data bound for source recordset '" +
                              def.name + "'");
    }
    for (const auto& r : it->second) {
      if (r.size() != def.schema.size()) {
        return Status::InvalidArgument(
            StrFormat("source '%s': record arity %zu != schema arity %zu",
                      def.name.c_str(), r.size(), def.schema.size()));
      }
    }
    Bound b;
    b.name = def.name;
    b.rows = &it->second;
    if (source.event_mode_) {
      auto idx = def.schema.IndexOf(options.event_time_column);
      if (!idx.has_value()) {
        return Status::InvalidArgument(StrFormat(
            "source '%s' lacks event-time attribute '%s'", def.name.c_str(),
            options.event_time_column.c_str()));
      }
      if (def.schema.attribute(*idx).type != DataType::kInt64) {
        return Status::InvalidArgument(StrFormat(
            "source '%s': event-time attribute '%s' must be int64",
            def.name.c_str(), options.event_time_column.c_str()));
      }
      b.ts_index = *idx;
      for (const auto& r : it->second) {
        if (r.value(b.ts_index).is_null()) {
          return Status::InvalidArgument(StrFormat(
              "source '%s': null event timestamp", def.name.c_str()));
        }
      }
    }
    max_rows = std::max(max_rows, it->second.size());
    bound.push_back(std::move(b));
  }

  if (source.event_mode_) {
    // Global time span across all sources.
    int64_t min_ts = 0, max_ts = 0;
    bool any = false;
    for (const Bound& b : bound) {
      for (const auto& r : *b.rows) {
        int64_t ts = r.value(b.ts_index).int_value();
        if (!any || ts < min_ts) min_ts = ts;
        if (!any || ts > max_ts) max_ts = ts;
        any = true;
      }
    }
    source.stream_min_ts_ = min_ts;
    const uint64_t span = any ? static_cast<uint64_t>(max_ts - min_ts) : 0;
    source.batch_count_ = static_cast<size_t>(
        any ? span / static_cast<uint64_t>(options.window_millis) + 1 : 1);
    source.batch_min_ts_.assign(source.batch_count_, 0);
    source.batch_max_ts_.assign(source.batch_count_, 0);
    std::vector<bool> seen(source.batch_count_, false);
    // Stable partition: window order across batches, capture order within.
    for (const Bound& b : bound) {
      auto& slices = source.slices_[b.name];
      slices.assign(source.batch_count_, {});
      for (const auto& r : *b.rows) {
        int64_t ts = r.value(b.ts_index).int_value();
        size_t w = static_cast<size_t>(static_cast<uint64_t>(ts - min_ts) /
                                       static_cast<uint64_t>(
                                           options.window_millis));
        slices[w].push_back(r);
        if (!seen[w] || ts < source.batch_min_ts_[w]) {
          source.batch_min_ts_[w] = ts;
        }
        if (!seen[w] || ts > source.batch_max_ts_[w]) {
          source.batch_max_ts_[w] = ts;
        }
        seen[w] = true;
      }
    }
  } else {
    size_t num_batches = static_cast<size_t>(options.num_batches);
    if (options.batch_rows > 0) {
      num_batches = std::max<size_t>(
          1, (max_rows + static_cast<size_t>(options.batch_rows) - 1) /
                 static_cast<size_t>(options.batch_rows));
    }
    source.batch_count_ = num_batches;
    for (const Bound& b : bound) {
      source.slices_[b.name] = SliceRows(*b.rows, num_batches);
    }
  }

  // Fingerprint: capture contents x batching knobs. A different slicing
  // of the same capture must not resume from the other's checkpoint.
  {
    uint64_t h = ExecutionInputFingerprint(capture);
    std::string buf;
    PutU64(buf, static_cast<uint64_t>(source.batch_count_));
    PutU32(buf, static_cast<uint32_t>(options.event_time_column.size()));
    buf += options.event_time_column;
    PutU64(buf, static_cast<uint64_t>(options.window_millis));
    PutU64(buf, static_cast<uint64_t>(options.num_batches));
    PutU64(buf, static_cast<uint64_t>(options.batch_rows));
    source.fingerprint_ = Fnv1a64(buf, h);
  }

  source.clock_anchor_ = std::chrono::steady_clock::now();
  source.anchor_batch_ = 0;
  return source;
}

std::chrono::microseconds MicroBatchSource::DueOffset(size_t b) const {
  if (!event_mode_ || b >= batch_count_) return std::chrono::microseconds(0);
  // A batch is due when the replay clock reaches its last event.
  const double event_millis =
      static_cast<double>(batch_max_ts_[b] - stream_min_ts_);
  return std::chrono::microseconds(static_cast<int64_t>(
      event_millis * 1000.0 / options_.rate_multiplier));
}

Status MicroBatchSource::Seek(size_t batch) {
  if (batch > batch_count_) {
    return Status::InvalidArgument(
        StrFormat("stream: Seek(%zu) past batch count %zu", batch,
                  batch_count_));
  }
  cursor_ = batch;
  clock_anchor_ = std::chrono::steady_clock::now();
  anchor_batch_ = batch;
  return Status::OK();
}

StatusOr<MicroBatch> MicroBatchSource::Next() {
  if (Exhausted()) {
    return Status::OutOfRange(
        StrFormat("stream: source exhausted after %zu batches",
                  batch_count_));
  }
  ETLOPT_FAULT_HIT(FaultSite::kStreamSourceNext);
  const size_t b = cursor_;
  if (options_.paced && event_mode_) {
    // Sleep until this batch's due time relative to the anchor batch
    // (the cursor position of the last Seek, due immediately).
    const auto due = clock_anchor_ + (DueOffset(b) - DueOffset(anchor_batch_));
    std::this_thread::sleep_until(due);
  }
  MicroBatch batch;
  batch.index = b;
  for (const auto& [name, slices] : slices_) {
    batch.source_rows.emplace(name, slices[b]);
  }
  if (event_mode_) {
    batch.min_event_time = batch_min_ts_[b];
    batch.max_event_time = batch_max_ts_[b];
  }
  ++cursor_;
  return batch;
}

StatusOr<ExecutionInput> CaptureFromRecordSets(
    const std::vector<const RecordSet*>& recordsets,
    const ExecutionContext& lookups) {
  ExecutionInput capture;
  capture.context = lookups;
  for (const RecordSet* rs : recordsets) {
    if (rs == nullptr) {
      return Status::InvalidArgument("capture: null recordset");
    }
    ETLOPT_ASSIGN_OR_RETURN(std::vector<Record> rows, rs->ScanAll());
    if (!capture.source_data.emplace(rs->name(), std::move(rows)).second) {
      return Status::InvalidArgument("capture: duplicate recordset name '" +
                                     rs->name() + "'");
    }
  }
  return capture;
}

}  // namespace etlopt
