// MicroBatchSource: slices a captured ExecutionInput into a bounded
// sequence of micro-batches (DOD-ETL's on-demand ingestion model).
//
// Two slicing modes:
//  * row slices (default): every source is cut into `num_batches`
//    contiguous near-equal slices, so concatenating the batches
//    reproduces the capture byte-identically per source;
//  * event-time windows: every source must carry an int64 event-time
//    attribute; batch k holds the rows whose timestamp falls in the
//    k-th fixed-width window of the capture's global time span, in
//    capture order (a stable partition).
//
// Replay clock: in event-time mode with `paced` set, Next() sleeps so
// that batch deliveries reproduce the capture's event-time gaps
// compressed by `rate_multiplier` (a 2x multiplier replays a 10-second
// capture in ~5 wall seconds).

#ifndef ETLOPT_STREAM_MICRO_BATCH_H_
#define ETLOPT_STREAM_MICRO_BATCH_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "records/recordset.h"
#include "stream/stream_options.h"

namespace etlopt {

/// One micro-batch: the new rows per source (the delta), plus event-time
/// bounds when the capture carries timestamps.
struct MicroBatch {
  size_t index = 0;
  std::map<std::string, std::vector<Record>> source_rows;
  /// Min/max event timestamp across the batch's rows; 0/0 for row-slice
  /// mode or an empty batch.
  int64_t min_event_time = 0;
  int64_t max_event_time = 0;
  size_t total_rows() const {
    size_t n = 0;
    for (const auto& [name, rows] : source_rows) n += rows.size();
    return n;
  }
};

class MicroBatchSource {
 public:
  /// Validates options, checks the capture against the workflow's source
  /// schemas (arity; event-time attribute presence/type/non-null in
  /// event mode), and precomputes the batch boundaries.
  static StatusOr<MicroBatchSource> Make(const Workflow& workflow,
                                         const ExecutionInput& capture,
                                         const StreamOptions& options);

  size_t batch_count() const { return batch_count_; }
  size_t cursor() const { return cursor_; }
  bool Exhausted() const { return cursor_ >= batch_count_; }

  /// Moves the cursor (0 <= batch <= batch_count). Re-anchors the replay
  /// clock so the batch at the new cursor is due immediately.
  Status Seek(size_t batch);

  /// Delivers the batch at the cursor and advances it. Crosses the
  /// `stream.source_next` fault site; when paced, sleeps until the
  /// batch's replay due time first. OutOfRange once exhausted.
  StatusOr<MicroBatch> Next();

  /// Fingerprint of (capture contents x batching knobs): two sources
  /// agree iff they deliver the same batch sequence from the same data.
  /// Keys the stream checkpoint together with Workflow::SignatureHash.
  uint64_t CaptureFingerprint() const { return fingerprint_; }

  /// The capture's lookup tables, unchanged.
  const ExecutionContext& context() const { return context_; }

 private:
  MicroBatchSource() = default;

  /// Wall-clock offset at which batch `b` is due (paced mode).
  std::chrono::microseconds DueOffset(size_t b) const;

  // Per source: the row slices, batch-major.
  std::map<std::string, std::vector<std::vector<Record>>> slices_;
  // Per batch: min/max event timestamp (event mode only).
  std::vector<int64_t> batch_min_ts_;
  std::vector<int64_t> batch_max_ts_;
  int64_t stream_min_ts_ = 0;
  ExecutionContext context_;
  StreamOptions options_;
  size_t batch_count_ = 0;
  size_t cursor_ = 0;
  uint64_t fingerprint_ = 0;
  bool event_mode_ = false;
  // Replay clock anchor: wall time at which the batch at the last Seek
  // cursor became due.
  std::chrono::steady_clock::time_point clock_anchor_;
  size_t anchor_batch_ = 0;
};

/// Workload-generator bridge: scans `recordsets` and binds their
/// contents (plus `lookups`) into a capture ready for MicroBatchSource.
StatusOr<ExecutionInput> CaptureFromRecordSets(
    const std::vector<const RecordSet*>& recordsets,
    const ExecutionContext& lookups = {});

}  // namespace etlopt

#endif  // ETLOPT_STREAM_MICRO_BATCH_H_
