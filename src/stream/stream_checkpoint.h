// Stream-state checkpoints (magic ETLSTRM1): the exactly-once frontier.
//
// One file per (workflow signature x capture fingerprint) run, rewritten
// atomically after every committed batch: the next batch to process,
// the accumulated targets and rows_out bookkeeping, and every stateful
// operator's incremental state as an opaque blob. A crash mid-stream
// resumes by restoring the file and seeking the source to next_batch —
// every batch is applied to the persistent state exactly once.
//
// Same framing discipline as the ETLCKPT1 recovery checkpoints:
// length-prefixed payload with a trailing FNV-64 checksum, written via
// temp-file + rename; a reader rejects (rather than trusts) any file
// that is truncated, bit-flipped, or from a different run.

#ifndef ETLOPT_STREAM_STREAM_CHECKPOINT_H_
#define ETLOPT_STREAM_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "engine/executor.h"

namespace etlopt {

struct StreamCheckpoint {
  /// Workflow::SignatureHash of the streamed workflow.
  uint64_t workflow_hash = 0;
  /// MicroBatchSource::CaptureFingerprint (capture x batching knobs).
  uint64_t capture_fingerprint = 0;
  /// The batch frontier: the next batch index to process.
  uint64_t next_batch = 0;
  /// Total batches of the run, as a paranoia cross-check.
  uint64_t batch_count = 0;
  std::map<NodeId, size_t> rows_out;
  std::map<std::string, std::vector<Record>> target_data;
  /// Per-operator incremental state, keyed by a stable slot name
  /// ("n<node>" for node state, "n<node>.p<port>" for port histories).
  std::map<std::string, std::string> state_blobs;
};

std::string SerializeStreamCheckpoint(const StreamCheckpoint& checkpoint);

StatusOr<StreamCheckpoint> ParseStreamCheckpoint(std::string_view bytes);

}  // namespace etlopt

#endif  // ETLOPT_STREAM_STREAM_CHECKPOINT_H_
