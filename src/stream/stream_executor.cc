#include "stream/stream_executor.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "activity/activity.h"
#include "activity/agg_accumulator.h"
#include "common/file_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "engine/thread_pool.h"
#include "fault/fault_injector.h"
#include "records/record_io.h"
#include "stream/stream_checkpoint.h"

namespace etlopt {

namespace {

namespace fs = std::filesystem;
using SteadyClock = std::chrono::steady_clock;

// Bounded retention GC for stale sibling stream checkpoints: after a
// successful run, only the `max_retained` most recently written stale
// stream_*.ckpt files under `checkpoint_dir` survive (oldest pruned
// first); `current_path` is never touched. Best-effort.
size_t PruneStaleStreamCheckpoints(const std::string& checkpoint_dir,
                                   const std::string& current_path,
                                   size_t max_retained) {
  std::error_code ec;
  fs::directory_iterator it(
      checkpoint_dir, fs::directory_options::skip_permission_denied, ec);
  if (ec) return 0;
  std::vector<std::pair<fs::file_time_type, fs::path>> stale;
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) return 0;
    const fs::directory_entry& entry = *it;
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, "stream_") || !EndsWith(name, ".ckpt")) continue;
    if (entry.path() == fs::path(current_path)) continue;
    fs::file_time_type mtime = entry.last_write_time(entry_ec);
    if (entry_ec) mtime = fs::file_time_type::min();
    stale.emplace_back(mtime, entry.path());
  }
  if (stale.size() <= max_retained) return 0;
  std::sort(stale.begin(), stale.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  size_t pruned = 0;
  for (size_t i = 0; i + max_retained < stale.size(); ++i) {
    std::error_code rm_ec;
    fs::remove(stale[i].second, rm_ec);
    if (!rm_ec) ++pruned;
  }
  return pruned;
}

// ---- incremental execution plan -----------------------------------------

/// How one chain member processes the stream flowing through its node.
enum class MemberMode {
  /// Delta in, delta out, no state: run the activity on the batch.
  kStateless,
  /// PrimaryKeyCheck: persistent seen-key set, emits first occurrences.
  kPkDelta,
  /// Join: persistent input histories + key indexes, emits new pairs.
  kJoinDelta,
  /// Aggregation: persistent per-group accumulators, emits the full
  /// sorted group table (the stream turns into refresh here).
  kAggRefresh,
  /// Difference/Intersection: persistent bag counts per side, emits the
  /// full current result (refresh).
  kBagRefresh,
  /// Once the stream is refresh: run the activity fresh on the full
  /// rows each batch.
  kFull,
};

struct MemberPlan {
  MemberMode mode = MemberMode::kStateless;
  std::vector<Schema> input_schemas;
  Schema output_schema;
  // Key-column indexes, resolved once: PK keys / join-left keys.
  std::vector<size_t> key_idx_left;
  // Join-right keys.
  std::vector<size_t> key_idx_right;
  // Join: right-schema indexes of the non-key attributes carried into
  // the output, in right-schema order (mirrors the batch join).
  std::vector<size_t> right_carry_idx;
  // Aggregation.
  std::vector<size_t> group_idx;
  std::vector<size_t> arg_idx;
  std::vector<AggFn> agg_fns;
  // Bag ops: right-schema index for each output attribute (realign map).
  std::vector<size_t> right_realign_idx;
  // Bag ops: keep matched rows (intersection) or unmatched (difference).
  bool keep_matched = false;
};

struct NodePlan {
  bool is_recordset = false;
  bool is_source = false;
  bool is_target = false;
  /// Some input is refresh: rerun the whole chain on full inputs.
  bool recompute = false;
  /// This node emits its full output each batch (vs. a delta).
  bool refresh_output = false;
  std::vector<NodeId> providers;
  /// recompute only: ports whose provider is delta-mode and therefore
  /// needs an accumulated history.
  std::vector<bool> port_history;
  /// Non-recompute activity nodes: one plan per chain member.
  std::vector<MemberPlan> members;
};

// ---- persistent operator state and per-batch staging ---------------------

struct MemberState {
  std::set<std::vector<Value>> pk_seen;
  std::vector<Record> left_rows, right_rows;  // join histories
  std::map<std::vector<Value>, std::vector<size_t>> left_index, right_index;
  std::map<std::vector<Value>, std::vector<AggAcc>> groups;
  std::vector<Record> bag_order;  // distinct left rows, first-encounter order
  std::map<Record, int64_t> left_counts, right_counts;
};

struct NodeState {
  std::vector<MemberState> members;
  std::vector<std::vector<Record>> port_history;
};

// Every mutation a batch attempt wants to make, staged so a failed (and
// retried) attempt leaves the persistent state untouched. Overlay maps
// hold absolute values copied-on-first-touch from the main state.
struct MemberStaging {
  std::set<std::vector<Value>> pk_new;
  std::vector<Record> left_new, right_new;
  std::vector<std::vector<Value>> left_new_keys, right_new_keys;
  std::map<std::vector<Value>, std::vector<AggAcc>> group_overlay;
  std::vector<Record> bag_order_new;
  std::map<Record, int64_t> left_counts_overlay, right_counts_overlay;

  void Clear() {
    pk_new.clear();
    left_new.clear();
    right_new.clear();
    left_new_keys.clear();
    right_new_keys.clear();
    group_overlay.clear();
    bag_order_new.clear();
    left_counts_overlay.clear();
    right_counts_overlay.clear();
  }
};

struct NodeStaging {
  std::vector<MemberStaging> members;
  std::vector<std::vector<Record>> port_append;

  void Clear() {
    for (auto& m : members) m.Clear();
    for (auto& p : port_append) p.clear();
  }
};

// ---- helpers -------------------------------------------------------------

std::vector<Value> ExtractKey(const Record& row,
                              const std::vector<size_t>& idx) {
  std::vector<Value> key;
  key.reserve(idx.size());
  for (size_t i : idx) key.push_back(row.value(i));
  return key;
}

bool HasNull(const std::vector<Value>& key) {
  return std::any_of(key.begin(), key.end(),
                     [](const Value& v) { return v.is_null(); });
}

StatusOr<std::vector<size_t>> ResolveAttrs(
    const Schema& schema, const std::vector<std::string>& attrs) {
  std::vector<size_t> idx;
  idx.reserve(attrs.size());
  for (const auto& a : attrs) {
    auto i = schema.IndexOf(a);
    if (!i.has_value()) return Status::Internal("stream: missing attr " + a);
    idx.push_back(*i);
  }
  return idx;
}

// Absolute-value overlay lookup/touch for the bag counts.
int64_t& OverlayCount(std::map<Record, int64_t>& overlay,
                      const std::map<Record, int64_t>& main,
                      const Record& r) {
  auto it = overlay.find(r);
  if (it != overlay.end()) return it->second;
  auto base = main.find(r);
  return overlay.emplace(r, base != main.end() ? base->second : 0)
      .first->second;
}

int64_t CombinedCount(const std::map<Record, int64_t>& overlay,
                      const std::map<Record, int64_t>& main,
                      const Record& r) {
  auto it = overlay.find(r);
  if (it != overlay.end()) return it->second;
  auto base = main.find(r);
  return base != main.end() ? base->second : 0;
}

// ---- state (de)serialization ---------------------------------------------

constexpr uint8_t kTagRecompute = 0xFF;
constexpr uint8_t kTagStateless = 0;
constexpr uint8_t kTagPk = 1;
constexpr uint8_t kTagJoin = 2;
constexpr uint8_t kTagAgg = 3;
constexpr uint8_t kTagBag = 4;

uint8_t TagOf(MemberMode mode) {
  switch (mode) {
    case MemberMode::kStateless:
    case MemberMode::kFull:
      return kTagStateless;
    case MemberMode::kPkDelta:
      return kTagPk;
    case MemberMode::kJoinDelta:
      return kTagJoin;
    case MemberMode::kAggRefresh:
      return kTagAgg;
    case MemberMode::kBagRefresh:
      return kTagBag;
  }
  return kTagStateless;
}

void PutValueVec(std::string& out, const std::vector<Value>& values) {
  PutU32(out, static_cast<uint32_t>(values.size()));
  for (const Value& v : values) PutValue(out, v);
}

StatusOr<std::vector<Value>> ReadValueVec(BinaryReader& reader) {
  ETLOPT_ASSIGN_OR_RETURN(uint32_t n, reader.U32());
  std::vector<Value> values;
  values.reserve(std::min<size_t>(n, reader.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(Value v, ReadValue(reader));
    values.push_back(std::move(v));
  }
  return values;
}

void PutRecords(std::string& out, const std::vector<Record>& rows) {
  PutU64(out, rows.size());
  for (const Record& r : rows) PutRecord(out, r);
}

StatusOr<std::vector<Record>> ReadRecords(BinaryReader& reader) {
  ETLOPT_ASSIGN_OR_RETURN(uint64_t n, reader.U64());
  std::vector<Record> rows;
  rows.reserve(static_cast<size_t>(
      std::min<uint64_t>(n, reader.remaining() / 4)));
  for (uint64_t i = 0; i < n; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(Record r, ReadRecord(reader));
    rows.push_back(std::move(r));
  }
  return rows;
}

void PutAcc(std::string& out, const AggAcc& acc) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(acc.sum));
  std::memcpy(&bits, &acc.sum, sizeof(bits));
  PutU64(out, bits);
  PutU64(out, static_cast<uint64_t>(acc.non_null));
  PutValue(out, acc.min);
  PutValue(out, acc.max);
}

StatusOr<AggAcc> ReadAcc(BinaryReader& reader) {
  AggAcc acc;
  ETLOPT_ASSIGN_OR_RETURN(uint64_t bits, reader.U64());
  std::memcpy(&acc.sum, &bits, sizeof(acc.sum));
  ETLOPT_ASSIGN_OR_RETURN(uint64_t non_null, reader.U64());
  acc.non_null = static_cast<int64_t>(non_null);
  ETLOPT_ASSIGN_OR_RETURN(acc.min, ReadValue(reader));
  ETLOPT_ASSIGN_OR_RETURN(acc.max, ReadValue(reader));
  return acc;
}

void PutCounts(std::string& out, const std::map<Record, int64_t>& counts) {
  PutU64(out, counts.size());
  for (const auto& [r, c] : counts) {
    PutRecord(out, r);
    PutU64(out, static_cast<uint64_t>(c));
  }
}

Status ReadCounts(BinaryReader& reader, std::map<Record, int64_t>* counts) {
  ETLOPT_ASSIGN_OR_RETURN(uint64_t n, reader.U64());
  for (uint64_t i = 0; i < n; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(Record r, ReadRecord(reader));
    ETLOPT_ASSIGN_OR_RETURN(uint64_t c, reader.U64());
    (*counts)[std::move(r)] = static_cast<int64_t>(c);
  }
  return Status::OK();
}

std::string SerializeNodeState(const NodePlan& plan, const NodeState& state) {
  std::string out;
  if (plan.recompute) {
    out.push_back(static_cast<char>(kTagRecompute));
    PutU32(out, static_cast<uint32_t>(state.port_history.size()));
    for (const auto& rows : state.port_history) PutRecords(out, rows);
    return out;
  }
  PutU32(out, static_cast<uint32_t>(plan.members.size()));
  for (size_t m = 0; m < plan.members.size(); ++m) {
    const MemberState& ms = state.members[m];
    out.push_back(static_cast<char>(TagOf(plan.members[m].mode)));
    switch (TagOf(plan.members[m].mode)) {
      case kTagStateless:
        break;
      case kTagPk:
        PutU64(out, ms.pk_seen.size());
        for (const auto& key : ms.pk_seen) PutValueVec(out, key);
        break;
      case kTagJoin:
        PutRecords(out, ms.left_rows);
        PutRecords(out, ms.right_rows);
        break;
      case kTagAgg:
        PutU64(out, ms.groups.size());
        for (const auto& [key, accs] : ms.groups) {
          PutValueVec(out, key);
          PutU32(out, static_cast<uint32_t>(accs.size()));
          for (const AggAcc& acc : accs) PutAcc(out, acc);
        }
        break;
      case kTagBag:
        PutRecords(out, ms.bag_order);
        PutCounts(out, ms.left_counts);
        PutCounts(out, ms.right_counts);
        break;
    }
  }
  return out;
}

// Rebuilds a join index from a restored row history. Stored rows all
// have non-null keys (null-key rows never join and are never stored).
Status RebuildJoinIndex(
    const std::vector<Record>& rows, const std::vector<size_t>& key_idx,
    std::map<std::vector<Value>, std::vector<size_t>>* index) {
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() <= (key_idx.empty()
                               ? 0
                               : *std::max_element(key_idx.begin(),
                                                   key_idx.end()))) {
      return Status::InvalidArgument("stream checkpoint: short join row");
    }
    (*index)[ExtractKey(rows[i], key_idx)].push_back(i);
  }
  return Status::OK();
}

Status ParseNodeState(const NodePlan& plan, std::string_view blob,
                      NodeState* state) {
  BinaryReader reader(blob);
  if (plan.recompute) {
    ETLOPT_ASSIGN_OR_RETURN(uint8_t tag, reader.U8());
    if (tag != kTagRecompute) {
      return Status::InvalidArgument("stream checkpoint: state tag mismatch");
    }
    ETLOPT_ASSIGN_OR_RETURN(uint32_t ports, reader.U32());
    if (ports != state->port_history.size()) {
      return Status::InvalidArgument(
          "stream checkpoint: port count mismatch");
    }
    for (uint32_t p = 0; p < ports; ++p) {
      ETLOPT_ASSIGN_OR_RETURN(state->port_history[p], ReadRecords(reader));
    }
  } else {
    ETLOPT_ASSIGN_OR_RETURN(uint32_t members, reader.U32());
    if (members != plan.members.size()) {
      return Status::InvalidArgument(
          "stream checkpoint: member count mismatch");
    }
    for (uint32_t m = 0; m < members; ++m) {
      const MemberPlan& mp = plan.members[m];
      MemberState& ms = state->members[m];
      ETLOPT_ASSIGN_OR_RETURN(uint8_t tag, reader.U8());
      if (tag != TagOf(mp.mode)) {
        return Status::InvalidArgument(
            "stream checkpoint: state tag mismatch");
      }
      switch (tag) {
        case kTagStateless:
          break;
        case kTagPk: {
          ETLOPT_ASSIGN_OR_RETURN(uint64_t n, reader.U64());
          for (uint64_t i = 0; i < n; ++i) {
            ETLOPT_ASSIGN_OR_RETURN(std::vector<Value> key,
                                    ReadValueVec(reader));
            ms.pk_seen.insert(std::move(key));
          }
          break;
        }
        case kTagJoin: {
          ETLOPT_ASSIGN_OR_RETURN(ms.left_rows, ReadRecords(reader));
          ETLOPT_ASSIGN_OR_RETURN(ms.right_rows, ReadRecords(reader));
          ETLOPT_RETURN_NOT_OK(RebuildJoinIndex(ms.left_rows,
                                                mp.key_idx_left,
                                                &ms.left_index));
          ETLOPT_RETURN_NOT_OK(RebuildJoinIndex(ms.right_rows,
                                                mp.key_idx_right,
                                                &ms.right_index));
          break;
        }
        case kTagAgg: {
          ETLOPT_ASSIGN_OR_RETURN(uint64_t n, reader.U64());
          for (uint64_t i = 0; i < n; ++i) {
            ETLOPT_ASSIGN_OR_RETURN(std::vector<Value> key,
                                    ReadValueVec(reader));
            ETLOPT_ASSIGN_OR_RETURN(uint32_t accs, reader.U32());
            if (accs != mp.agg_fns.size()) {
              return Status::InvalidArgument(
                  "stream checkpoint: accumulator count mismatch");
            }
            std::vector<AggAcc> vec;
            vec.reserve(accs);
            for (uint32_t a = 0; a < accs; ++a) {
              ETLOPT_ASSIGN_OR_RETURN(AggAcc acc, ReadAcc(reader));
              vec.push_back(std::move(acc));
            }
            ms.groups.emplace(std::move(key), std::move(vec));
          }
          break;
        }
        case kTagBag: {
          ETLOPT_ASSIGN_OR_RETURN(ms.bag_order, ReadRecords(reader));
          ETLOPT_RETURN_NOT_OK(ReadCounts(reader, &ms.left_counts));
          ETLOPT_RETURN_NOT_OK(ReadCounts(reader, &ms.right_counts));
          break;
        }
        default:
          return Status::InvalidArgument("stream checkpoint: bad state tag");
      }
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("stream checkpoint: trailing state");
  }
  return Status::OK();
}

// ---- the per-run driver --------------------------------------------------

class StreamRun {
 public:
  StreamRun(const StreamOptions& options, const Workflow& workflow,
            const ExecutionContext& context, std::string checkpoint_path,
            uint64_t checkpoint_every)
      : options_(options),
        workflow_(workflow),
        context_(context),
        checkpoint_path_(std::move(checkpoint_path)),
        checkpoint_every_(checkpoint_every),
        rng_(options.retry_seed) {}

  Status BuildPlan(StreamStats* stats) {
    for (NodeId id : workflow_.TopoOrder()) {
      NodePlan plan;
      plan.providers = workflow_.Providers(id);
      if (workflow_.IsRecordSet(id)) {
        plan.is_recordset = true;
        plan.is_source = plan.providers.empty();
        plan.is_target =
            !plan.is_source && workflow_.Consumers(id).empty();
        plan.refresh_output =
            !plan.is_source &&
            plans_.at(plan.providers[0]).refresh_output;
      } else {
        bool any_refresh_input = false;
        for (NodeId p : plan.providers) {
          any_refresh_input |= plans_.at(p).refresh_output;
        }
        if (any_refresh_input) {
          plan.recompute = true;
          plan.refresh_output = true;
          plan.port_history.resize(plan.providers.size());
          for (size_t i = 0; i < plan.providers.size(); ++i) {
            plan.port_history[i] =
                !plans_.at(plan.providers[i]).refresh_output;
          }
        } else {
          ETLOPT_RETURN_NOT_OK(PlanMembers(id, &plan));
        }
        if (plan.refresh_output) {
          ++stats->refresh_nodes;
        } else {
          ++stats->delta_nodes;
        }
      }
      plans_.emplace(id, std::move(plan));
    }
    // Allocate persistent state and per-batch staging.
    for (const auto& [id, plan] : plans_) {
      NodeState state;
      NodeStaging staging;
      state.members.resize(plan.members.size());
      staging.members.resize(plan.members.size());
      state.port_history.resize(plan.port_history.size());
      staging.port_append.resize(plan.port_history.size());
      states_.emplace(id, std::move(state));
      staging_.emplace(id, std::move(staging));
    }
    if (options_.engine == StreamEngine::kParallel) {
      BuildLevels();
      pool_ = std::make_unique<ThreadPool>(
          options_.num_threads != 0 ? options_.num_threads
                                    : ThreadPool::DefaultThreads());
    }
    return Status::OK();
  }

  bool NodeHasState(NodeId id) const {
    const NodePlan& plan = plans_.at(id);
    if (plan.recompute) {
      return std::any_of(plan.port_history.begin(), plan.port_history.end(),
                         [](bool h) { return h; });
    }
    for (const MemberPlan& mp : plan.members) {
      if (mp.mode != MemberMode::kStateless &&
          mp.mode != MemberMode::kFull) {
        return true;
      }
    }
    return false;
  }

  /// Tries to restore from the run's checkpoint. Returns the batch
  /// frontier to start from (0 when starting fresh); fills `result`
  /// with the restored targets/rows_out on success.
  StatusOr<uint64_t> TryResume(const MicroBatchSource& source,
                               uint64_t workflow_hash,
                               ExecutionResult* result, StreamStats* stats) {
    if (checkpoint_path_.empty()) return uint64_t{0};
    std::error_code ec;
    if (!fs::exists(checkpoint_path_, ec) || ec) return uint64_t{0};
    auto reject = [&]() -> uint64_t {
      ++stats->checkpoints_rejected;
      return 0;
    };
#ifndef ETLOPT_NO_FAULT_INJECTION
    if (FaultInjector::Global().armed()) {
      Status hook =
          FaultInjector::Global().Hit(FaultSite::kStreamStateCheckpoint);
      if (!hook.ok()) {
        // A crash-point models the process dying here; any other
        // injected error just makes the checkpoint unreadable.
        if (IsInjectedCrash(hook)) return hook;
        return reject();
      }
    }
#endif
    auto bytes = ReadFileToString(checkpoint_path_);
    if (!bytes.ok()) return reject();
    auto checkpoint = ParseStreamCheckpoint(*bytes);
    if (!checkpoint.ok() || checkpoint->workflow_hash != workflow_hash ||
        checkpoint->capture_fingerprint != source.CaptureFingerprint() ||
        checkpoint->batch_count != source.batch_count() ||
        checkpoint->next_batch > checkpoint->batch_count) {
      return reject();
    }
    // Restore operator state all-or-nothing: a missing or malformed
    // blob rejects the whole checkpoint rather than resuming half the
    // state.
    std::map<NodeId, NodeState> restored;
    for (const auto& [id, plan] : plans_) {
      if (!NodeHasState(id)) continue;
      auto blob = checkpoint->state_blobs.find("n" + std::to_string(id));
      if (blob == checkpoint->state_blobs.end()) return reject();
      NodeState state;
      state.members.resize(plan.members.size());
      state.port_history.resize(plan.port_history.size());
      if (!ParseNodeState(plan, blob->second, &state).ok()) return reject();
      restored.emplace(id, std::move(state));
    }
    for (auto& [id, state] : restored) states_[id] = std::move(state);
    result->rows_out = std::move(checkpoint->rows_out);
    result->target_data = std::move(checkpoint->target_data);
    stats->resumed = true;
    stats->batches_skipped = static_cast<size_t>(checkpoint->next_batch);
    return checkpoint->next_batch;
  }

  Status RunBatch(size_t b, MicroBatchSource& source,
                  ExecutionResult* result, StreamStats* stats) {
    auto attempt = [&]() -> Status {
      ETLOPT_RETURN_NOT_OK(source.Seek(b));
      ETLOPT_ASSIGN_OR_RETURN(MicroBatch batch, source.Next());
      for (auto& [id, staging] : staging_) staging.Clear();
      flows_.clear();
      for (NodeId id : workflow_.TopoOrder()) {
        flows_.emplace(id, std::vector<Record>{});
      }
      if (options_.engine == StreamEngine::kParallel) {
        for (const auto& level : levels_) {
          ETLOPT_RETURN_NOT_OK(pool_->ParallelFor(
              level.size(), [&](size_t item, size_t /*worker*/) {
                return ExecuteNode(level[item], batch);
              }));
        }
        return Status::OK();
      }
      for (NodeId id : workflow_.TopoOrder()) {
        ETLOPT_RETURN_NOT_OK(ExecuteNode(id, batch));
      }
      return Status::OK();
    };
    Status status = RetryWithBackoff(options_.retry, rng_,
                                     StrFormat("batch %zu", b).c_str(),
                                     attempt, &stats->retries);
    if (!status.ok()) return status;
    Commit(result);
    return Status::OK();
  }

  Status MaybeCheckpoint(uint64_t next_batch, uint64_t batch_count,
                         uint64_t workflow_hash, uint64_t fingerprint,
                         const ExecutionResult& result, StreamStats* stats) {
    if (checkpoint_path_.empty()) return Status::OK();
    const bool is_last = next_batch == batch_count;
    if (!is_last && next_batch % checkpoint_every_ != 0) {
      return Status::OK();
    }
    StreamCheckpoint checkpoint;
    checkpoint.workflow_hash = workflow_hash;
    checkpoint.capture_fingerprint = fingerprint;
    checkpoint.next_batch = next_batch;
    checkpoint.batch_count = batch_count;
    checkpoint.rows_out = result.rows_out;
    checkpoint.target_data = result.target_data;
    for (const auto& [id, plan] : plans_) {
      if (!NodeHasState(id)) continue;
      checkpoint.state_blobs["n" + std::to_string(id)] =
          SerializeNodeState(plan, states_.at(id));
    }
    const std::string bytes = SerializeStreamCheckpoint(checkpoint);
    auto write_attempt = [&]() -> Status {
      if (options_.recovery_plan.enabled) {
        ETLOPT_FAULT_HIT(FaultSite::kRecoveryPlaceCheckpoint);
      }
      ETLOPT_FAULT_HIT(FaultSite::kStreamStateCheckpoint);
      std::error_code ec;
      fs::create_directories(options_.checkpoint_dir, ec);
      if (ec) {
        return Status::IOError("cannot create checkpoint dir: " +
                               options_.checkpoint_dir + ": " + ec.message());
      }
      return WriteFileAtomic(checkpoint_path_, bytes);
    };
    Status status =
        RetryWithBackoff(options_.retry, rng_, "stream checkpoint write",
                         write_attempt, &stats->retries);
    if (IsInjectedCrash(status)) return status;
    if (status.ok()) {
      ++stats->checkpoints_written;
    } else {
      // Best-effort, like the recovery checkpoints: the stream still
      // completes, it just resumes from an earlier frontier on a crash.
      ++stats->checkpoint_write_failures;
    }
    return Status::OK();
  }

 private:
  Status PlanMembers(NodeId id, NodePlan* plan) {
    const ActivityChain& chain = workflow_.chain(id);
    std::vector<Schema> cur_inputs = workflow_.InputSchemas(id);
    bool refresh = false;
    for (const auto& member : chain.members()) {
      const Activity& a = member.activity;
      MemberPlan mp;
      mp.input_schemas = cur_inputs;
      ETLOPT_ASSIGN_OR_RETURN(mp.output_schema,
                              a.ComputeOutputSchema(cur_inputs));
      if (refresh) {
        mp.mode = MemberMode::kFull;
      } else {
        switch (a.kind()) {
          case ActivityKind::kPrimaryKeyCheck: {
            mp.mode = MemberMode::kPkDelta;
            const auto& p = a.params_as<PrimaryKeyParams>();
            ETLOPT_ASSIGN_OR_RETURN(
                mp.key_idx_left, ResolveAttrs(cur_inputs[0], p.key_attrs));
            break;
          }
          case ActivityKind::kJoin: {
            mp.mode = MemberMode::kJoinDelta;
            const auto& p = a.params_as<JoinParams>();
            ETLOPT_ASSIGN_OR_RETURN(
                mp.key_idx_left, ResolveAttrs(cur_inputs[0], p.key_attrs));
            ETLOPT_ASSIGN_OR_RETURN(
                mp.key_idx_right, ResolveAttrs(cur_inputs[1], p.key_attrs));
            for (size_t i = 0; i < cur_inputs[1].size(); ++i) {
              const std::string& name = cur_inputs[1].attribute(i).name;
              if (std::find(p.key_attrs.begin(), p.key_attrs.end(), name) ==
                  p.key_attrs.end()) {
                mp.right_carry_idx.push_back(i);
              }
            }
            break;
          }
          case ActivityKind::kAggregation: {
            mp.mode = MemberMode::kAggRefresh;
            const auto& p = a.params_as<AggregationParams>();
            ETLOPT_ASSIGN_OR_RETURN(
                mp.group_idx, ResolveAttrs(cur_inputs[0], p.group_by));
            for (const auto& spec : p.aggregates) {
              auto i = cur_inputs[0].IndexOf(spec.arg);
              if (!i.has_value()) {
                return Status::Internal("stream: missing agg arg " +
                                        spec.arg);
              }
              mp.arg_idx.push_back(*i);
              mp.agg_fns.push_back(spec.fn);
            }
            refresh = true;
            break;
          }
          case ActivityKind::kDifference:
          case ActivityKind::kIntersection: {
            mp.mode = MemberMode::kBagRefresh;
            mp.keep_matched = a.kind() == ActivityKind::kIntersection;
            for (const auto& attr : mp.output_schema.attributes()) {
              auto i = cur_inputs[1].IndexOf(attr.name);
              if (!i.has_value()) {
                return Status::Internal("stream: bag realign missing " +
                                        attr.name);
              }
              mp.right_realign_idx.push_back(*i);
            }
            refresh = true;
            break;
          }
          default:
            mp.mode = MemberMode::kStateless;
            break;
        }
      }
      cur_inputs = {mp.output_schema};
      plan->members.push_back(std::move(mp));
    }
    plan->refresh_output = refresh;
    return Status::OK();
  }

  void BuildLevels() {
    std::map<NodeId, size_t> level;
    for (NodeId id : workflow_.TopoOrder()) {
      size_t l = 0;
      for (NodeId p : workflow_.Providers(id)) {
        l = std::max(l, level.at(p) + 1);
      }
      level[id] = l;
      if (levels_.size() <= l) levels_.resize(l + 1);
      levels_[l].push_back(id);
    }
  }

  Status ExecuteNode(NodeId id, const MicroBatch& batch) {
    const NodePlan& plan = plans_.at(id);
    auto flow = flows_.find(id);
    if (plan.is_recordset) {
      const RecordSetDef& def = workflow_.recordset(id);
      if (plan.is_source) {
        auto it = batch.source_rows.find(def.name);
        if (it == batch.source_rows.end()) {
          return Status::NotFound("no data bound for source recordset '" +
                                  def.name + "'");
        }
        flow->second = it->second;
        return Status::OK();
      }
      NodeId provider = plan.providers[0];
      ETLOPT_ASSIGN_OR_RETURN(
          flow->second,
          RealignRecords(flows_.at(provider),
                         workflow_.OutputSchema(provider), def.schema));
      return Status::OK();
    }

    ETLOPT_FAULT_HIT(FaultSite::kActivityExecute);
    NodeState& state = states_.at(id);
    NodeStaging& staging = staging_.at(id);

    if (plan.recompute) {
      std::vector<std::vector<Record>> full_inputs;
      full_inputs.reserve(plan.providers.size());
      for (size_t i = 0; i < plan.providers.size(); ++i) {
        const std::vector<Record>& in = flows_.at(plan.providers[i]);
        if (plan.port_history[i]) {
          staging.port_append[i] = in;
          std::vector<Record> full = state.port_history[i];
          full.insert(full.end(), in.begin(), in.end());
          full_inputs.push_back(std::move(full));
        } else {
          full_inputs.push_back(in);
        }
      }
      auto produced = workflow_.chain(id).Execute(workflow_.InputSchemas(id),
                                                  full_inputs, context_);
      if (!produced.ok()) {
        return produced.status().WithContext(
            StrFormat("executing node %d ('%s')", id,
                      workflow_.chain(id).label().c_str()));
      }
      flow->second = std::move(produced).value();
      return Status::OK();
    }

    std::vector<std::vector<Record>> cur;
    cur.reserve(plan.providers.size());
    for (NodeId p : plan.providers) cur.push_back(flows_.at(p));
    for (size_t m = 0; m < plan.members.size(); ++m) {
      auto produced =
          ExecuteMember(plan.members[m],
                        workflow_.chain(id).members()[m].activity,
                        state.members[m], staging.members[m], cur);
      if (!produced.ok()) {
        return produced.status().WithContext(
            StrFormat("executing node %d ('%s')", id,
                      workflow_.chain(id).label().c_str()));
      }
      cur.clear();
      cur.push_back(std::move(produced).value());
    }
    flow->second = std::move(cur[0]);
    return Status::OK();
  }

  StatusOr<std::vector<Record>> ExecuteMember(
      const MemberPlan& mp, const Activity& activity, MemberState& ms,
      MemberStaging& mstg, const std::vector<std::vector<Record>>& inputs) {
    std::vector<Record> out;
    switch (mp.mode) {
      case MemberMode::kStateless:
      case MemberMode::kFull:
        return activity.Execute(mp.input_schemas, inputs, context_);

      case MemberMode::kPkDelta: {
        for (const Record& r : inputs[0]) {
          std::vector<Value> key = ExtractKey(r, mp.key_idx_left);
          if (ms.pk_seen.count(key) != 0 || mstg.pk_new.count(key) != 0) {
            continue;
          }
          mstg.pk_new.insert(std::move(key));
          out.push_back(r);
        }
        return out;
      }

      case MemberMode::kJoinDelta: {
        const std::vector<Record>& delta_left = inputs[0];
        const std::vector<Record>& delta_right = inputs[1];
        // Stage this batch's joinable rows (null keys never join and
        // are never stored).
        std::map<std::vector<Value>, std::vector<size_t>> staged_right;
        for (const Record& r : delta_right) {
          std::vector<Value> key = ExtractKey(r, mp.key_idx_right);
          if (HasNull(key)) continue;
          staged_right[key].push_back(mstg.right_new.size());
          mstg.right_new.push_back(r);
          mstg.right_new_keys.push_back(std::move(key));
        }
        auto combine = [&](const Record& l, const Record& r) {
          Record nr = l;
          for (size_t i : mp.right_carry_idx) nr.Append(r.value(i));
          out.push_back(std::move(nr));
        };
        // New pairs, each exactly once:
        //   (delta-left x old-right), (delta-left x delta-right),
        //   (old-left x delta-right).
        for (const Record& l : delta_left) {
          std::vector<Value> key = ExtractKey(l, mp.key_idx_left);
          if (HasNull(key)) continue;
          auto old_hit = ms.right_index.find(key);
          if (old_hit != ms.right_index.end()) {
            for (size_t i : old_hit->second) combine(l, ms.right_rows[i]);
          }
          auto new_hit = staged_right.find(key);
          if (new_hit != staged_right.end()) {
            for (size_t i : new_hit->second) combine(l, mstg.right_new[i]);
          }
          mstg.left_new.push_back(l);
          mstg.left_new_keys.push_back(std::move(key));
        }
        for (const Record& r : delta_right) {
          std::vector<Value> key = ExtractKey(r, mp.key_idx_right);
          if (HasNull(key)) continue;
          auto old_hit = ms.left_index.find(key);
          if (old_hit != ms.left_index.end()) {
            for (size_t i : old_hit->second) combine(ms.left_rows[i], r);
          }
        }
        return out;
      }

      case MemberMode::kAggRefresh: {
        for (const Record& r : inputs[0]) {
          std::vector<Value> key = ExtractKey(r, mp.group_idx);
          auto it = mstg.group_overlay.find(key);
          if (it == mstg.group_overlay.end()) {
            auto base = ms.groups.find(key);
            it = mstg.group_overlay
                     .emplace(std::move(key),
                              base != ms.groups.end()
                                  ? base->second
                                  : std::vector<AggAcc>(mp.agg_fns.size()))
                     .first;
          }
          for (size_t i = 0; i < mp.arg_idx.size(); ++i) {
            it->second[i].Add(r.value(mp.arg_idx[i]));
          }
        }
        // Full refresh in sorted key order: merge the persistent map
        // with this batch's overlay (overlay wins) — exactly the table
        // the batch engine would emit over the whole prefix.
        auto emit = [&](const std::vector<Value>& key,
                        const std::vector<AggAcc>& accs) {
          Record nr;
          for (const Value& k : key) nr.Append(k);
          for (size_t i = 0; i < mp.agg_fns.size(); ++i) {
            nr.Append(accs[i].Result(mp.agg_fns[i]));
          }
          out.push_back(std::move(nr));
        };
        auto main_it = ms.groups.begin();
        auto over_it = mstg.group_overlay.begin();
        while (main_it != ms.groups.end() ||
               over_it != mstg.group_overlay.end()) {
          if (over_it == mstg.group_overlay.end() ||
              (main_it != ms.groups.end() &&
               main_it->first < over_it->first)) {
            emit(main_it->first, main_it->second);
            ++main_it;
          } else {
            if (main_it != ms.groups.end() &&
                main_it->first == over_it->first) {
              ++main_it;  // overlay shadows the stale persistent entry
            }
            emit(over_it->first, over_it->second);
            ++over_it;
          }
        }
        return out;
      }

      case MemberMode::kBagRefresh: {
        for (const Record& r : inputs[1]) {
          Record nr;
          for (size_t i : mp.right_realign_idx) nr.Append(r.value(i));
          ++OverlayCount(mstg.right_counts_overlay, ms.right_counts, nr);
        }
        for (const Record& l : inputs[0]) {
          int64_t& c =
              OverlayCount(mstg.left_counts_overlay, ms.left_counts, l);
          if (c == 0) mstg.bag_order_new.push_back(l);
          ++c;
        }
        // Full refresh: (cl - cr)+ copies for difference, min(cl, cr)
        // for intersection, distinct left rows in first-encounter order.
        auto emit_counts = [&](const Record& r) {
          const int64_t cl =
              CombinedCount(mstg.left_counts_overlay, ms.left_counts, r);
          const int64_t cr =
              CombinedCount(mstg.right_counts_overlay, ms.right_counts, r);
          const int64_t n = mp.keep_matched ? std::min(cl, cr)
                                            : std::max<int64_t>(cl - cr, 0);
          for (int64_t i = 0; i < n; ++i) out.push_back(r);
        };
        for (const Record& r : ms.bag_order) emit_counts(r);
        for (const Record& r : mstg.bag_order_new) emit_counts(r);
        return out;
      }
    }
    return Status::Internal("unhandled stream member mode");
  }

  void Commit(ExecutionResult* result) {
    for (auto& [id, staging] : staging_) {
      NodeState& state = states_.at(id);
      for (size_t p = 0; p < staging.port_append.size(); ++p) {
        auto& history = state.port_history[p];
        auto& append = staging.port_append[p];
        history.insert(history.end(),
                       std::make_move_iterator(append.begin()),
                       std::make_move_iterator(append.end()));
      }
      for (size_t m = 0; m < staging.members.size(); ++m) {
        MemberState& ms = state.members[m];
        MemberStaging& mstg = staging.members[m];
        ms.pk_seen.insert(std::make_move_iterator(mstg.pk_new.begin()),
                          std::make_move_iterator(mstg.pk_new.end()));
        for (size_t i = 0; i < mstg.left_new.size(); ++i) {
          ms.left_index[std::move(mstg.left_new_keys[i])].push_back(
              ms.left_rows.size());
          ms.left_rows.push_back(std::move(mstg.left_new[i]));
        }
        for (size_t i = 0; i < mstg.right_new.size(); ++i) {
          ms.right_index[std::move(mstg.right_new_keys[i])].push_back(
              ms.right_rows.size());
          ms.right_rows.push_back(std::move(mstg.right_new[i]));
        }
        for (auto& [key, accs] : mstg.group_overlay) {
          ms.groups[key] = std::move(accs);
        }
        for (auto& [r, c] : mstg.left_counts_overlay) ms.left_counts[r] = c;
        for (auto& [r, c] : mstg.right_counts_overlay) {
          ms.right_counts[r] = c;
        }
        ms.bag_order.insert(ms.bag_order.end(),
                            std::make_move_iterator(mstg.bag_order_new.begin()),
                            std::make_move_iterator(mstg.bag_order_new.end()));
      }
      staging.Clear();
    }
    // Fold this batch's node outputs into the accumulated result.
    for (const auto& [id, plan] : plans_) {
      const std::vector<Record>& rows = flows_.at(id);
      if (!plan.is_recordset) {
        if (plan.refresh_output) {
          result->rows_out[id] = rows.size();
        } else {
          result->rows_out[id] += rows.size();
        }
      } else if (plan.is_target) {
        const std::string& name = workflow_.recordset(id).name;
        std::vector<Record>& target = result->target_data[name];
        if (plan.refresh_output) {
          target = rows;
        } else {
          target.insert(target.end(), rows.begin(), rows.end());
        }
      }
    }
  }

  const StreamOptions& options_;
  const Workflow& workflow_;
  const ExecutionContext& context_;
  const std::string checkpoint_path_;
  const uint64_t checkpoint_every_;
  Rng rng_;
  std::map<NodeId, NodePlan> plans_;
  std::map<NodeId, NodeState> states_;
  std::map<NodeId, NodeStaging> staging_;
  std::map<NodeId, std::vector<Record>> flows_;
  std::vector<std::vector<NodeId>> levels_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace

StreamExecutor::StreamExecutor(StreamOptions options)
    : options_(std::move(options)) {}

std::string StreamExecutor::CheckpointPathFor(uint64_t workflow_hash,
                                              uint64_t fingerprint) const {
  if (options_.checkpoint_dir.empty()) return "";
  return options_.checkpoint_dir +
         StrFormat("/stream_%016llx_%016llx.ckpt",
                   static_cast<unsigned long long>(workflow_hash),
                   static_cast<unsigned long long>(fingerprint));
}

StatusOr<ExecutionResult> StreamExecutor::Run(const Workflow& workflow,
                                              const ExecutionInput& capture,
                                              StreamStats* stats_out) {
  ETLOPT_RETURN_NOT_OK(ValidateStreamOptions(options_));
  if (!workflow.fresh()) {
    return Status::FailedPrecondition(
        "workflow must pass Refresh() before streaming");
  }
  StreamStats stats;
  if (stats_out != nullptr) *stats_out = stats;
  ETLOPT_ASSIGN_OR_RETURN(MicroBatchSource source,
                          MicroBatchSource::Make(workflow, capture, options_));
  const uint64_t workflow_hash = workflow.SignatureHash();
  const uint64_t fingerprint = source.CaptureFingerprint();
  const std::string checkpoint_path =
      CheckpointPathFor(workflow_hash, fingerprint);
  const uint64_t checkpoint_every =
      options_.recovery_plan.enabled
          ? PlannedStreamCheckpointInterval(options_.recovery_plan,
                                            source.batch_count())
          : static_cast<uint64_t>(options_.checkpoint_every_batches);
  stats.checkpoint_interval = checkpoint_every;

  StreamRun run(options_, workflow, source.context(), checkpoint_path,
                checkpoint_every);
  ETLOPT_RETURN_NOT_OK(run.BuildPlan(&stats));

  ExecutionResult result;
  auto resume = run.TryResume(source, workflow_hash, &result, &stats);
  if (!resume.ok()) {
    if (stats_out != nullptr) *stats_out = stats;
    return resume.status();
  }

  for (uint64_t b = *resume; b < source.batch_count(); ++b) {
    const SteadyClock::time_point start = SteadyClock::now();
    Status status = run.RunBatch(static_cast<size_t>(b), source, &result,
                                 &stats);
    if (!status.ok()) {
      if (stats_out != nullptr) *stats_out = stats;
      return status;
    }
    ++stats.batches_run;
    Status checkpointed = run.MaybeCheckpoint(
        b + 1, source.batch_count(), workflow_hash, fingerprint, result,
        &stats);
    stats.batch_micros.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(
            SteadyClock::now() - start)
            .count());
    if (!checkpointed.ok()) {
      if (stats_out != nullptr) *stats_out = stats;
      return checkpointed;
    }
  }

  if (!checkpoint_path.empty()) {
    if (options_.remove_checkpoints_on_success) {
      std::error_code ec;
      fs::remove(checkpoint_path, ec);  // best-effort cleanup
    }
    stats.stale_checkpoints_pruned = PruneStaleStreamCheckpoints(
        options_.checkpoint_dir, checkpoint_path,
        options_.max_retained_checkpoints);
  }
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

Status StreamExecutor::ClearCheckpoints(const Workflow& workflow,
                                        const ExecutionInput& capture) const {
  if (options_.checkpoint_dir.empty()) return Status::OK();
  ETLOPT_ASSIGN_OR_RETURN(MicroBatchSource source,
                          MicroBatchSource::Make(workflow, capture, options_));
  const std::string path = CheckpointPathFor(workflow.SignatureHash(),
                                             source.CaptureFingerprint());
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return Status::IOError("cannot remove stream checkpoint: " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace etlopt
