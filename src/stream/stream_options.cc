#include "stream/stream_options.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

Status ValidateStreamOptions(const StreamOptions& options) {
  if (options.num_batches < 1) {
    return Status::InvalidArgument(
        StrFormat("stream: num_batches must be >= 1, got %lld",
                  static_cast<long long>(options.num_batches)));
  }
  if (options.batch_rows < 0) {
    return Status::InvalidArgument(
        StrFormat("stream: batch_rows must be >= 0 (0 = use num_batches), "
                  "got %lld",
                  static_cast<long long>(options.batch_rows)));
  }
  if (!options.event_time_column.empty() && options.window_millis <= 0) {
    return Status::InvalidArgument(
        StrFormat("stream: window_millis must be > 0 in event-time mode, "
                  "got %lld",
                  static_cast<long long>(options.window_millis)));
  }
  if (!(options.rate_multiplier > 0.0) ||
      !std::isfinite(options.rate_multiplier)) {
    return Status::InvalidArgument(
        StrFormat("stream: rate_multiplier must be positive and finite, "
                  "got %g",
                  options.rate_multiplier));
  }
  if (options.paced && options.event_time_column.empty()) {
    return Status::InvalidArgument(
        "stream: paced replay requires event_time_column (row slices "
        "carry no clock)");
  }
  if (options.checkpoint_every_batches < 1) {
    return Status::InvalidArgument(
        StrFormat("stream: checkpoint_every_batches must be >= 1, got %lld",
                  static_cast<long long>(options.checkpoint_every_batches)));
  }
  ETLOPT_RETURN_NOT_OK(ValidateRetryPolicy(options.retry));
  return Status::OK();
}

}  // namespace etlopt
