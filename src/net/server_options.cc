#include "net/server_options.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

Status ValidateServerOptions(const ServerOptions& options) {
  if (!options.ephemeral_port && (options.port <= 0 || options.port > 65535)) {
    return Status::InvalidArgument(StrFormat(
        "server: port must be in [1, 65535], got %d", options.port));
  }
  if (options.host.empty()) {
    return Status::InvalidArgument("server: host must not be empty");
  }
  if (options.backlog < 1) {
    return Status::InvalidArgument(
        StrFormat("server: backlog must be >= 1, got %d", options.backlog));
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument(
        "server: max_connections must be >= 1");
  }
  if (options.service.max_queue < 1) {
    return Status::InvalidArgument(
        "server: service.max_queue must be >= 1 (the load-shedding "
        "threshold cannot be zero)");
  }
  ETLOPT_RETURN_NOT_OK(
      ValidateServiceOptions(options.service).WithContext("server"));
  if (options.max_deadline_millis < 0) {
    return Status::InvalidArgument(StrFormat(
        "server: max_deadline_millis must be >= 0 (0 = no cap), got %lld",
        static_cast<long long>(options.max_deadline_millis)));
  }
  if (options.read_timeout_millis < 0 || options.write_timeout_millis < 0) {
    return Status::InvalidArgument(
        "server: socket timeouts must be >= 0 (0 = none)");
  }
  if (options.max_frame_bytes < 1024) {
    return Status::InvalidArgument(
        "server: max_frame_bytes must be >= 1024");
  }
  if (options.drain_timeout_millis < 0) {
    return Status::InvalidArgument(
        "server: drain_timeout_millis must be >= 0");
  }
  return Status::OK();
}

}  // namespace etlopt
