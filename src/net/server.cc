#include "net/server.h"

#include <unistd.h>

#include <chrono>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "io/text_format.h"
#include "net/frame.h"

namespace etlopt {

namespace {

using Clock = std::chrono::steady_clock;

// A read error that just means "the peer hung up / we are draining",
// as opposed to a corrupt frame.
bool IsCleanDisconnect(const Status& status) {
  return status.IsUnavailable() || status.IsDeadlineExceeded();
}

}  // namespace

OptimizerServer::OptimizerServer(const CostModel& model,
                                 ServerOptions options)
    : model_(model),
      options_(std::move(options)),
      service_(model, options_.service) {}

OptimizerServer::~OptimizerServer() { Stop(); }

Status OptimizerServer::Start() {
  ETLOPT_RETURN_NOT_OK(ValidateServerOptions(options_));
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server: already started");
  }
  plans_loaded_ = 0;
  if (!options_.plan_file.empty() &&
      access(options_.plan_file.c_str(), F_OK) == 0) {
    // Warm restart: a readable container must load cleanly; corruption
    // is surfaced to the operator rather than silently cold-starting.
    ETLOPT_ASSIGN_OR_RETURN(plans_loaded_,
                            service_.LoadPlans(options_.plan_file));
  }
  ETLOPT_ASSIGN_OR_RETURN(
      auto bound, ListenTcp(options_.host,
                            options_.ephemeral_port ? 0 : options_.port,
                            options_.backlog));
  listener_ = std::move(bound.first);
  port_ = bound.second;
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

Status OptimizerServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  draining_.store(true, std::memory_order_release);
  // Wake the accept loop: a shut-down listener makes accept(2) fail,
  // which AcceptLoop treats as "stop".
  listener_.Shutdown(/*read_only=*/false);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  {
    // Drain: stop inbound data only — sessions finish their in-flight
    // request, flush the reply, then see EOF and exit.
    std::unique_lock<std::mutex> lock(mu_);
    for (const std::unique_ptr<Session>& session : sessions_) {
      if (!session->done.load(std::memory_order_acquire)) {
        session->socket.Shutdown(/*read_only=*/true);
      }
    }
    drained_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_millis),
        [this] { return active_sessions_ == 0; });
    if (active_sessions_ != 0) {
      // Stragglers past the drain budget lose their write side too.
      for (const std::unique_ptr<Session>& session : sessions_) {
        if (!session->done.load(std::memory_order_acquire)) {
          session->socket.Shutdown(/*read_only=*/false);
        }
      }
    }
  }
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::unique_lock<std::mutex> lock(mu_);
    finished.swap(sessions_);
  }
  for (const std::unique_ptr<Session>& session : finished) {
    if (session->thread.joinable()) session->thread.join();
  }
  finished.clear();

  if (!options_.plan_file.empty()) {
    return service_.SavePlans(options_.plan_file,
                              OptimizerService::PlanFileFormat::kBinary);
  }
  return Status::OK();
}

NetServerStats OptimizerServer::NetStats() const {
  NetServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.requests_served = requests_served_.load(std::memory_order_relaxed);
  stats.requests_shed = requests_shed_.load(std::memory_order_relaxed);
  stats.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(mu_);
    stats.active_connections = active_sessions_;
  }
  stats.draining = draining_.load(std::memory_order_acquire);
  return stats;
}

void OptimizerServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    StatusOr<Socket> accepted = AcceptTcp(listener_);
    if (!accepted.ok()) {
      // Injected net.accept faults (and transient accept errors) drop
      // only that connection — the peer sees a clean close, the server
      // keeps serving. A shut-down listener ends the loop.
      if (!running_.load(std::memory_order_acquire)) return;
      continue;
    }
    Socket socket = std::move(accepted).value();
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    socket.SetReadTimeout(options_.read_timeout_millis);
    socket.SetWriteTimeout(options_.write_timeout_millis);

    // Reap finished sessions so a long-lived server's bookkeeping stays
    // bounded by max_connections, not by total connections ever served.
    std::vector<std::unique_ptr<Session>> reaped;
    std::unique_lock<std::mutex> lock(mu_);
    for (size_t i = 0; i < sessions_.size();) {
      if (sessions_[i]->done.load(std::memory_order_acquire)) {
        reaped.push_back(std::move(sessions_[i]));
        sessions_[i] = std::move(sessions_.back());
        sessions_.pop_back();
      } else {
        ++i;
      }
    }
    if (!reaped.empty()) {
      lock.unlock();
      for (const std::unique_ptr<Session>& session : reaped) {
        if (session->thread.joinable()) session->thread.join();
      }
      reaped.clear();
      lock.lock();
    }
    if (active_sessions_ >= options_.max_connections) {
      lock.unlock();
      // Shed, never silently: the peer gets a fast typed rejection.
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      WriteFrame(socket, FrameType::kErrorResponse,
                 EncodeStatusPayload(Status::ResourceExhausted(StrFormat(
                     "server at max_connections=%zu",
                     options_.max_connections))));
      continue;  // socket closes on scope exit
    }
    auto session = std::make_unique<Session>();
    session->socket = std::move(socket);
    Session* raw = session.get();
    ++active_sessions_;
    sessions_.push_back(std::move(session));
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
}

void OptimizerServer::SessionLoop(Session* session) {
  while (true) {
    StatusOr<Frame> frame =
        ReadFrame(session->socket, options_.max_frame_bytes);
    if (!frame.ok()) {
      if (!IsCleanDisconnect(frame.status())) {
        // Corrupt framing: reply with the reason (best effort), then
        // cut the connection — the stream cannot be trusted past it.
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        WriteError(session, frame.status());
      }
      break;
    }
    if (!HandleFrame(session, frame->type, frame->payload)) break;
    if (draining_.load(std::memory_order_acquire)) break;
  }
  session->socket.Shutdown(/*read_only=*/false);
  session->done.store(true, std::memory_order_release);
  {
    std::unique_lock<std::mutex> lock(mu_);
    --active_sessions_;
  }
  drained_cv_.notify_all();
}

bool OptimizerServer::HandleFrame(Session* session, FrameType type,
                                  const std::string& payload) {
  switch (type) {
    case FrameType::kOptimizeRequest:
      return HandleOptimize(session, payload);
    case FrameType::kStatsRequest: {
      NetStatsResponse stats;
      stats.service = service_.Stats();
      stats.server = NetStats();
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      return session->socket
          .WriteFully(EncodeFrame(FrameType::kStatsResponse,
                                  EncodeStatsResponse(stats)))
          .ok();
    }
    case FrameType::kSavePlansRequest: {
      StatusOr<NetSavePlansRequest> request =
          DecodeSavePlansRequest(payload);
      if (!request.ok()) {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        WriteError(session, request.status());
        return false;
      }
      Status saved = service_.SavePlans(
          request->path, request->binary
                             ? OptimizerService::PlanFileFormat::kBinary
                             : OptimizerService::PlanFileFormat::kText);
      if (!saved.ok()) return WriteError(session, saved);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      return session->socket
          .WriteFully(EncodeFrame(FrameType::kSavePlansResponse, ""))
          .ok();
    }
    case FrameType::kHealthRequest: {
      NetHealthResponse health;
      health.serving = serving();
      health.message = health.serving ? "ok" : "draining";
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      return session->socket
          .WriteFully(EncodeFrame(FrameType::kHealthResponse,
                                  EncodeHealthResponse(health)))
          .ok();
    }
    default:
      // A response type arriving at the server is a protocol violation.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      WriteError(session,
                 Status::InvalidArgument(StrFormat(
                     "net: frame type %u is not a request",
                     static_cast<unsigned>(type))));
      return false;
  }
}

bool OptimizerServer::HandleOptimize(Session* session,
                                     const std::string& payload) {
  StatusOr<NetOptimizeRequest> wire = DecodeOptimizeRequest(payload);
  if (!wire.ok()) {
    // Payload-level corruption that framing checksums cannot see (e.g.
    // a malformed request built by a buggy client): reject and close.
    bad_frames_.fetch_add(1, std::memory_order_relaxed);
    WriteError(session, wire.status());
    return false;
  }
  if (wire->deadline_millis < 0) {
    return WriteError(session,
                      Status::InvalidArgument(
                          "net: deadline_millis must be >= 0"));
  }
  StatusOr<Workflow> workflow = ParseWorkflowText(wire->workflow_text);
  if (!workflow.ok()) {
    // A request-level error: reply and keep the connection — the frame
    // stream itself is intact.
    return WriteError(session, workflow.status());
  }
  OptimizeRequest request;
  request.workflow = std::move(workflow).value();
  request.algorithm = wire->algorithm;
  request.options = wire->options;
  request.merge_constraints = std::move(wire->merge_constraints);
  request.deadline_millis = wire->deadline_millis;
  if (options_.max_deadline_millis > 0 &&
      (request.deadline_millis == 0 ||
       request.deadline_millis > options_.max_deadline_millis)) {
    request.deadline_millis = options_.max_deadline_millis;
  }

  // Admission control: Submit answers ResourceExhausted immediately at
  // max_queue — the shed reply costs one cache-free round trip, no
  // search, no queue slot.
  StatusOr<OptimizeResponse> response =
      service_.Submit(std::move(request)).get();
  if (!response.ok()) {
    if (response.status().IsResourceExhausted()) {
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
    }
    return WriteError(session, response.status());
  }
  if (!response->plan->persistable) {
    // No serialized form exists (merged chains); an explicit error beats
    // an unrepresentable reply.
    return WriteError(session,
                      Status::FailedPrecondition(
                          "net: result has no serializable plan form"));
  }
  NetOptimizeResponse reply;
  reply.plan = response->plan->plan;
  reply.cache_hit = response->cache_hit;
  reply.coalesced = response->coalesced;
  reply.degraded = response->degraded;
  reply.server_millis = response->latency_millis;
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  return session->socket
      .WriteFully(EncodeFrame(FrameType::kOptimizeResponse,
                              EncodeOptimizeResponse(reply)))
      .ok();
}

bool OptimizerServer::WriteError(Session* session, const Status& status) {
  return session->socket
      .WriteFully(EncodeFrame(FrameType::kErrorResponse,
                              EncodeStatusPayload(status)))
      .ok();
}

}  // namespace etlopt
