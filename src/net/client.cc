#include "net/client.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "io/text_format.h"

namespace etlopt {

StatusOr<NetOptimizeRequest> MakeNetRequest(
    const Workflow& workflow, SearchAlgorithm algorithm,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints,
    int64_t deadline_millis) {
  NetOptimizeRequest request;
  TextFormatOptions text_options;
  text_options.emit_plabels = true;
  ETLOPT_ASSIGN_OR_RETURN(request.workflow_text,
                          PrintWorkflowText(workflow, text_options));
  request.algorithm = algorithm;
  request.options = options;
  request.merge_constraints = merge_constraints;
  request.deadline_millis = deadline_millis;
  return request;
}

StatusOr<OptimizerClient> OptimizerClient::Connect(const std::string& host,
                                                   int port,
                                                   ClientOptions options) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument(
        StrFormat("client: port must be in [1, 65535], got %d", port));
  }
  if (options.timeout_millis < 0) {
    return Status::InvalidArgument("client: timeout_millis must be >= 0");
  }
  ETLOPT_ASSIGN_OR_RETURN(Socket socket,
                          ConnectTcp(host, port, options.timeout_millis));
  return OptimizerClient(std::move(socket), options);
}

StatusOr<Frame> OptimizerClient::RoundTrip(FrameType request_type,
                                           std::string_view payload,
                                           FrameType expected_type) {
  if (!socket_.valid()) {
    return Status::Unavailable("client: connection is closed");
  }
  ETLOPT_RETURN_NOT_OK(WriteFrame(socket_, request_type, payload));
  ETLOPT_ASSIGN_OR_RETURN(Frame reply,
                          ReadFrame(socket_, options_.max_frame_bytes));
  if (reply.type == FrameType::kErrorResponse) {
    // The remote Status verbatim; a decode failure of the error frame
    // itself surfaces as that failure.
    return DecodeStatusPayload(reply.payload);
  }
  if (reply.type != expected_type) {
    return Status::InvalidArgument(
        StrFormat("client: unexpected reply frame type %u",
                  static_cast<unsigned>(reply.type)));
  }
  return reply;
}

StatusOr<NetOptimizeResponse> OptimizerClient::Optimize(
    const NetOptimizeRequest& request) {
  if (request.deadline_millis < 0) {
    return Status::InvalidArgument("client: deadline_millis must be >= 0");
  }
  if (request.deadline_millis > 0 && options_.timeout_millis > 0) {
    // Let the server's deadline fire first; the socket timeout is only
    // the backstop against a hung server.
    ETLOPT_RETURN_NOT_OK(socket_.SetReadTimeout(request.deadline_millis +
                                                options_.timeout_millis));
  }
  StatusOr<Frame> reply =
      RoundTrip(FrameType::kOptimizeRequest, EncodeOptimizeRequest(request),
                FrameType::kOptimizeResponse);
  if (request.deadline_millis > 0 && options_.timeout_millis > 0) {
    socket_.SetReadTimeout(options_.timeout_millis);
  }
  ETLOPT_RETURN_NOT_OK(reply.status());
  return DecodeOptimizeResponse(reply->payload);
}

StatusOr<NetStatsResponse> OptimizerClient::Stats() {
  ETLOPT_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTrip(FrameType::kStatsRequest, "", FrameType::kStatsResponse));
  return DecodeStatsResponse(reply.payload);
}

Status OptimizerClient::SavePlans(const NetSavePlansRequest& request) {
  if (request.path.empty()) {
    return Status::InvalidArgument("client: save-plans path is empty");
  }
  return RoundTrip(FrameType::kSavePlansRequest,
                   EncodeSavePlansRequest(request),
                   FrameType::kSavePlansResponse)
      .status();
}

StatusOr<NetHealthResponse> OptimizerClient::Health() {
  ETLOPT_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTrip(FrameType::kHealthRequest, "", FrameType::kHealthResponse));
  return DecodeHealthResponse(reply.payload);
}

}  // namespace etlopt
