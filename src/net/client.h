// OptimizerClient: one connection to an OptimizerServer, speaking the
// ETLNET1 protocol. Calls are synchronous request/reply; concurrency
// comes from one client per thread (connections are cheap, the server
// multiplexes via its service pool). Remote failures arrive as the same
// Status an in-process caller would see — a shed request is
// IsResourceExhausted(), an expired deadline IsDeadlineExceeded() — so
// retry/backoff policy code works unchanged against the wire.

#ifndef ETLOPT_NET_CLIENT_H_
#define ETLOPT_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "graph/workflow.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace etlopt {

struct ClientOptions {
  /// Connect/read/write timeout. For optimize calls carrying a deadline
  /// the read timeout is raised to deadline + this slack, so the server
  /// (not the client socket) decides deadline expiry. 0 = none.
  int64_t timeout_millis = 30000;
  /// Reply frames past this cap are rejected before allocation.
  size_t max_frame_bytes = static_cast<size_t>(64) << 20;
};

/// Packages a live Workflow as a wire request (canonical DSL text with
/// plabels, so the server reconstructs the identical signature).
StatusOr<NetOptimizeRequest> MakeNetRequest(
    const Workflow& workflow,
    SearchAlgorithm algorithm = SearchAlgorithm::kHeuristic,
    const SearchOptions& options = {},
    const std::vector<MergeConstraint>& merge_constraints = {},
    int64_t deadline_millis = 0);

class OptimizerClient {
 public:
  static StatusOr<OptimizerClient> Connect(const std::string& host, int port,
                                           ClientOptions options = {});

  OptimizerClient(OptimizerClient&&) noexcept = default;
  OptimizerClient& operator=(OptimizerClient&&) noexcept = default;

  /// One optimize round trip. The reply's plan is the exact ETLPLAN1
  /// bytes the server's cache holds — byte-comparable to an in-process
  /// answer for the same request.
  StatusOr<NetOptimizeResponse> Optimize(const NetOptimizeRequest& request);

  StatusOr<NetStatsResponse> Stats();

  /// Asks the server to persist its plan cache to `path` on ITS
  /// filesystem (warm-restart priming).
  Status SavePlans(const NetSavePlansRequest& request);

  StatusOr<NetHealthResponse> Health();

  void Close() { socket_.Close(); }

 private:
  OptimizerClient(Socket socket, ClientOptions options)
      : socket_(std::move(socket)), options_(options) {}

  /// Sends one request frame and decodes the reply: an error frame
  /// becomes its carried Status, a mismatched type a clean
  /// InvalidArgument.
  StatusOr<Frame> RoundTrip(FrameType request_type, std::string_view payload,
                            FrameType expected_type);

  Socket socket_;
  ClientOptions options_;
};

}  // namespace etlopt

#endif  // ETLOPT_NET_CLIENT_H_
