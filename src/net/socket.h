// Thin RAII layer over POSIX TCP sockets, with Status-based error
// reporting and the net.* fault-injection hooks.
//
// All blocking reads and writes loop over partial transfers: a frame is
// delivered whole or the caller gets a clean error (peer closed, timed
// out, injected fault) — never a short read silently treated as success.
// ReadFully/WriteFully are the ONLY places that touch recv/send, so the
// net.read / net.write fault sites cover every byte that crosses the
// wire in either direction.

#ifndef ETLOPT_NET_SOCKET_H_
#define ETLOPT_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/statusor.h"

namespace etlopt {

/// Owns one socket file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly `n` bytes into `out` (appended). Loops over partial
  /// reads; EOF mid-transfer is a clean Unavailable("connection closed"),
  /// a timeout is DeadlineExceeded. Hits net.read once per call.
  Status ReadFully(std::string& out, size_t n);

  /// Writes all of `bytes`, looping over partial writes. A closed peer
  /// is Unavailable, a timeout DeadlineExceeded. Hits net.write once per
  /// call.
  Status WriteFully(std::string_view bytes);

  /// SO_RCVTIMEO / SO_SNDTIMEO; 0 disables the timeout.
  Status SetReadTimeout(int64_t millis);
  Status SetWriteTimeout(int64_t millis);

  /// shutdown(2). `read_only` stops only inbound data (graceful drain:
  /// the peer's in-flight reply still flushes); otherwise both ways.
  void Shutdown(bool read_only);

  void Close();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = OS-assigned). Returns the
/// listening socket and the actually-bound port.
StatusOr<std::pair<Socket, int>> ListenTcp(const std::string& host, int port,
                                           int backlog);

/// Blocking accept. Hits net.accept before the new connection is handed
/// back; an injected fault closes the just-accepted fd and surfaces the
/// error. A closed/shut-down listener yields Unavailable (the server's
/// shutdown path relies on that to stop the accept loop cleanly).
StatusOr<Socket> AcceptTcp(const Socket& listener);

/// Blocking connect to host:port with an optional timeout.
StatusOr<Socket> ConnectTcp(const std::string& host, int port,
                            int64_t timeout_millis = 0);

}  // namespace etlopt

#endif  // ETLOPT_NET_SOCKET_H_
