// Typed messages of the optimizer wire protocol, and their payload
// encodings inside ETLNET1 frames (frame.h).
//
// Plans ride the wire in the exact ETLPLAN1 binary form the plan cache
// persists (io/plan_format.h), and request workflows travel as the
// canonical DSL text — so a networked answer is byte-comparable to an
// in-process one, and the server's parser is the same battle-tested
// code path the persistence formats use. Every decode is defensive:
// truncated, bit-flipped, or trailing-garbage payloads fail with a
// clean InvalidArgument.

#ifndef ETLOPT_NET_PROTOCOL_H_
#define ETLOPT_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "io/plan_format.h"
#include "optimizer/search.h"
#include "service/service_stats.h"

namespace etlopt {

/// One optimize call as it crosses the wire. The workflow is canonical
/// DSL text (plabels included, so signatures survive the trip);
/// num_threads and disable_fast_paths are deliberately not carried —
/// they cannot change the answer (PR 2's guarantee), so they stay a
/// server-side choice.
struct NetOptimizeRequest {
  std::string workflow_text;
  SearchAlgorithm algorithm = SearchAlgorithm::kHeuristic;
  SearchOptions options;
  std::vector<MergeConstraint> merge_constraints;
  /// Wall-clock budget for the whole request, queueing included,
  /// enforced server-side. 0 = server default; negative is rejected.
  int64_t deadline_millis = 0;
};

/// The answer: the full persisted-plan form plus the serving flags the
/// in-process OptimizeResponse reports.
struct NetOptimizeResponse {
  OptimizedPlan plan;
  bool cache_hit = false;
  bool coalesced = false;
  bool degraded = false;
  /// Server-side wall clock spent on the request.
  double server_millis = 0.0;
};

std::string EncodeOptimizeRequest(const NetOptimizeRequest& request);
StatusOr<NetOptimizeRequest> DecodeOptimizeRequest(std::string_view payload);

std::string EncodeOptimizeResponse(const NetOptimizeResponse& response);
StatusOr<NetOptimizeResponse> DecodeOptimizeResponse(
    std::string_view payload);

/// Server-level counters, alongside the wrapped service's ServiceStats.
struct NetServerStats {
  uint64_t connections_accepted = 0;
  /// Connections shed past max_connections (fast error reply, closed).
  uint64_t connections_rejected = 0;
  uint64_t requests_served = 0;
  /// Requests answered with ResourceExhausted because the service queue
  /// was full (admission-control sheds).
  uint64_t requests_shed = 0;
  /// Malformed/corrupt frames rejected (connection closed after).
  uint64_t bad_frames = 0;
  size_t active_connections = 0;  // gauge
  bool draining = false;
};

struct NetStatsResponse {
  ServiceStats service;
  NetServerStats server;
};

std::string EncodeStatsResponse(const NetStatsResponse& stats);
StatusOr<NetStatsResponse> DecodeStatsResponse(std::string_view payload);

struct NetSavePlansRequest {
  std::string path;
  /// False = canonical text, true = ETLPLNS1 binary container.
  bool binary = true;
};

std::string EncodeSavePlansRequest(const NetSavePlansRequest& request);
StatusOr<NetSavePlansRequest> DecodeSavePlansRequest(
    std::string_view payload);

struct NetHealthResponse {
  /// False once the server started draining (stats/health still answer;
  /// new optimize work should go elsewhere).
  bool serving = true;
  std::string message;
};

std::string EncodeHealthResponse(const NetHealthResponse& health);
StatusOr<NetHealthResponse> DecodeHealthResponse(std::string_view payload);

/// Error replies carry the full Status (code + message) so the client
/// reconstructs exactly what an in-process caller would have seen —
/// a shed request is IsResourceExhausted() on both sides of the wire.
std::string EncodeStatusPayload(const Status& status);
/// Returns the remote Status carried by an error frame; a payload that
/// does not decode comes back as InvalidArgument instead.
Status DecodeStatusPayload(std::string_view payload);

}  // namespace etlopt

#endif  // ETLOPT_NET_PROTOCOL_H_
