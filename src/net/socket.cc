#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/macros.h"
#include "common/string_util.h"
#include "fault/fault_injector.h"

namespace etlopt {

namespace {

Status ErrnoStatus(const char* op, int err) {
  std::string message =
      StrFormat("net: %s failed: %s", op, std::strerror(err));
  if (err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT) {
    return Status::DeadlineExceeded(std::move(message));
  }
  if (err == ECONNRESET || err == EPIPE || err == ECONNREFUSED ||
      err == ENOTCONN || err == ESHUTDOWN || err == EBADF) {
    return Status::Unavailable(std::move(message));
  }
  return Status::IOError(std::move(message));
}

Status SetTimeout(int fd, int option, int64_t millis) {
  if (fd < 0) return Status::Unavailable("net: socket is closed");
  struct timeval tv;
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt", errno);
  }
  return Status::OK();
}

StatusOr<struct sockaddr_in> ResolveV4(const std::string& host, int port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("net: bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

Status Socket::ReadFully(std::string& out, size_t n) {
  ETLOPT_FAULT_HIT(FaultSite::kNetRead);
  if (fd_ < 0) return Status::Unavailable("net: socket is closed");
  size_t start = out.size();
  out.resize(start + n);
  size_t got = 0;
  while (got < n) {
    ssize_t r = recv(fd_, out.data() + start + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    out.resize(start + got);
    if (r == 0) {
      return Status::Unavailable("net: connection closed by peer");
    }
    if (errno == EINTR) {
      out.resize(start + n);
      continue;
    }
    return ErrnoStatus("recv", errno);
  }
  return Status::OK();
}

Status Socket::WriteFully(std::string_view bytes) {
  ETLOPT_FAULT_HIT(FaultSite::kNetWrite);
  if (fd_ < 0) return Status::Unavailable("net: socket is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t r =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Status Socket::SetReadTimeout(int64_t millis) {
  return SetTimeout(fd_, SO_RCVTIMEO, millis);
}

Status Socket::SetWriteTimeout(int64_t millis) {
  return SetTimeout(fd_, SO_SNDTIMEO, millis);
}

void Socket::Shutdown(bool read_only) {
  if (fd_ >= 0) shutdown(fd_, read_only ? SHUT_RD : SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::pair<Socket, int>> ListenTcp(const std::string& host, int port,
                                           int backlog) {
  ETLOPT_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(host, port));
  Socket sock(socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);
  int one = 1;
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return ErrnoStatus("bind", errno);
  }
  if (listen(sock.fd(), backlog) != 0) {
    return ErrnoStatus("listen", errno);
  }
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(sock.fd(), reinterpret_cast<struct sockaddr*>(&bound),
                  &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  int bound_port = ntohs(bound.sin_port);
  return std::make_pair(std::move(sock), bound_port);
}

StatusOr<Socket> AcceptTcp(const Socket& listener) {
  if (!listener.valid()) {
    return Status::Unavailable("net: listener is closed");
  }
  int fd = accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR) return Status::Unavailable("net: accept interrupted");
    return ErrnoStatus("accept", errno);
  }
  Socket sock(fd);
  // The hook sits after accept(2) so an injected fault models a
  // connection the server fails to take over: the fd is closed (the
  // client sees a clean reset/EOF, never a half-served session).
  ETLOPT_FAULT_HIT(FaultSite::kNetAccept);
  int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

StatusOr<Socket> ConnectTcp(const std::string& host, int port,
                            int64_t timeout_millis) {
  ETLOPT_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(host, port));
  Socket sock(socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);
  if (timeout_millis > 0) {
    // SO_SNDTIMEO also bounds connect(2) on Linux.
    ETLOPT_RETURN_NOT_OK(sock.SetWriteTimeout(timeout_millis));
    ETLOPT_RETURN_NOT_OK(sock.SetReadTimeout(timeout_millis));
  }
  if (connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    return ErrnoStatus("connect", errno);
  }
  int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace etlopt
