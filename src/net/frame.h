// ETLNET1 framing: the length-prefixed, checksummed envelope every
// message on the optimizer wire travels in.
//
//   offset  size  field
//   0       8     magic "ETLNET1\0"
//   8       1     frame type (FrameType)
//   9       8     payload length, u64 little-endian
//   17      N     payload (protocol.h defines the per-type encodings)
//   17+N    8     FNV-64 over (type byte + payload), u64 little-endian
//
// Decoding is defensive end to end: bad magic, unknown type, an
// oversized length prefix (checked against max_frame_bytes BEFORE any
// allocation), truncation, and checksum mismatch all fail with a clean
// InvalidArgument — a corrupt or malicious frame can never produce a
// partially-decoded message or an allocation bomb. The same codec runs
// on both sides, so the fuzz tests exercise the server's exact parsing
// path in memory.

#ifndef ETLOPT_NET_FRAME_H_
#define ETLOPT_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"
#include "net/socket.h"

namespace etlopt {

inline constexpr char kNetMagic[8] = {'E', 'T', 'L', 'N', 'E', 'T',
                                      '1', '\0'};
/// magic + type + length prefix.
inline constexpr size_t kFrameHeaderBytes = sizeof(kNetMagic) + 1 + 8;
inline constexpr size_t kFrameChecksumBytes = 8;

/// Request types the client sends; response types the server answers
/// with. kError carries a Status for any failed request.
enum class FrameType : uint8_t {
  kOptimizeRequest = 1,
  kStatsRequest = 2,
  kSavePlansRequest = 3,
  kHealthRequest = 4,

  kOptimizeResponse = 65,
  kStatsResponse = 66,
  kSavePlansResponse = 67,
  kHealthResponse = 68,

  kErrorResponse = 127,
};

/// True for the types a decoder may legally see at all.
bool IsKnownFrameType(uint8_t type);

struct Frame {
  FrameType type = FrameType::kErrorResponse;
  std::string payload;
};

/// Serializes one frame (header + payload + checksum).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Decodes one complete frame from `bytes`, which must contain exactly
/// one frame. Rejects bad magic/type, length mismatch against the actual
/// buffer, payloads past `max_frame_bytes`, and checksum mismatch.
StatusOr<Frame> DecodeFrame(std::string_view bytes, size_t max_frame_bytes);

/// Writes one frame to the socket (single WriteFully, so the net.write
/// fault site covers the whole frame).
Status WriteFrame(Socket& socket, FrameType type, std::string_view payload);

/// Reads one frame: header first (so the length prefix is validated
/// against max_frame_bytes before the payload buffer is sized), then
/// payload + checksum. Any truncation — a peer that stalls, dies, or
/// closes mid-frame — surfaces as the clean Status ReadFully produced,
/// never as a short frame.
StatusOr<Frame> ReadFrame(Socket& socket, size_t max_frame_bytes);

}  // namespace etlopt

#endif  // ETLOPT_NET_FRAME_H_
