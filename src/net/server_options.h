// Knobs for the networked optimizer server (ISSUE 8).
//
// Validation mirrors ValidateSearchOptions / ValidateStreamOptions /
// ValidateServiceOptions: OptimizerServer::Start validates the whole
// bundle up front and each rejection names the offending knob, so a
// misconfigured server never binds a socket.

#ifndef ETLOPT_NET_SERVER_OPTIONS_H_
#define ETLOPT_NET_SERVER_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "service/optimizer_service.h"

namespace etlopt {

struct ServerOptions {
  // --- Listening socket ---
  /// TCP port to bind. Must be in [1, 65535] unless ephemeral_port is
  /// set; zero and negative ports are rejected up front.
  int port = 7451;
  /// Bind port 0 and let the OS assign one (tests, parallel CI). The
  /// bound port is reported by OptimizerServer::port() after Start.
  bool ephemeral_port = false;
  /// Listen address. Default loopback: the server trusts its peers.
  std::string host = "127.0.0.1";
  /// listen(2) backlog. Must be >= 1.
  int backlog = 64;

  // --- Admission control ---
  /// Cap on concurrently served connections. A connection past the cap
  /// receives a fast ResourceExhausted error frame and is closed —
  /// never a silent drop. Must be >= 1.
  size_t max_connections = 64;
  /// Queue-full shedding happens in OptimizerService::Submit (past
  /// service.max_queue); the session turns that rejection into a fast
  /// ResourceExhausted reply on the wire.
  ServiceOptions service;

  // --- Per-request deadlines ---
  /// Cap applied to client-supplied deadlines; a request asking for more
  /// is clamped. 0 = no cap. Negative is rejected.
  int64_t max_deadline_millis = 0;

  // --- Socket robustness ---
  /// Per-read/-write socket timeouts; a peer that stalls longer gets a
  /// clean error and its connection closed. 0 = none. Must be >= 0.
  int64_t read_timeout_millis = 30000;
  int64_t write_timeout_millis = 30000;
  /// Frames whose length prefix exceeds this are rejected before any
  /// allocation. Must be >= 1024.
  size_t max_frame_bytes = static_cast<size_t>(64) << 20;

  // --- Shutdown ---
  /// Stop(): in-flight requests get this long to finish and flush their
  /// replies before sockets are force-closed. Must be >= 0.
  int64_t drain_timeout_millis = 5000;

  // --- Warm restarts ---
  /// When non-empty: Start() warm-loads the PlanCache from this plan
  /// container (missing file = cold start, not an error) and Stop()
  /// persists it back in ETLPLNS1 binary form.
  std::string plan_file;
};

/// Rejects nonsensical configurations with InvalidArgument naming the
/// knob (zero/negative port, zero queue/connection bounds, negative
/// deadlines or timeouts, undersized frame cap, bad service options).
Status ValidateServerOptions(const ServerOptions& options);

}  // namespace etlopt

#endif  // ETLOPT_NET_SERVER_OPTIONS_H_
