// OptimizerServer: the networked front of OptimizerService.
//
// One accept thread plus one session thread per live connection, each
// session a closed loop of read-frame -> dispatch -> write-frame over
// the ETLNET1 protocol. Production behaviors are layered on the service
// hardening of PR 5:
//
//   Admission control. Connections past max_connections and requests
//   past the service queue (max_queue) are shed with a FAST
//   ResourceExhausted error frame — the peer always hears back, never a
//   silent drop. Shed counts are exported in NetServerStats.
//
//   Deadlines on the wire. A request's deadline_millis crosses the wire
//   and is enforced server-side from the moment the request is admitted
//   (queue wait included); max_deadline_millis caps what clients may
//   ask for. Degraded (circuit-breaker / failed-search) answers flow
//   back with the degraded flag set, exactly as in-process.
//
//   Graceful drain. Stop() shuts the listener, lets every in-flight
//   request finish and flush its reply (up to drain_timeout_millis),
//   then force-closes stragglers and joins all threads. Health answers
//   serving=false while draining.
//
//   Warm restarts. With plan_file set, Start() loads the persisted
//   ETLPLNS1/plan-text container into the PlanCache (a missing file is
//   a cold start, not an error) and Stop() persists it back — a
//   restarted server answers its hot working set from cache
//   immediately.

#ifndef ETLOPT_NET_SERVER_H_
#define ETLOPT_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/server_options.h"
#include "net/socket.h"
#include "service/optimizer_service.h"

namespace etlopt {

class OptimizerServer {
 public:
  /// `model` must outlive the server.
  OptimizerServer(const CostModel& model, ServerOptions options);

  /// Stops (drains) if still running.
  ~OptimizerServer();

  OptimizerServer(const OptimizerServer&) = delete;
  OptimizerServer& operator=(const OptimizerServer&) = delete;

  /// Validates options, warm-loads plan_file when set, binds, listens,
  /// and spawns the accept loop. Fails cleanly (no socket left bound) on
  /// bad options, an unbindable port, or a corrupt plan file.
  Status Start();

  /// Graceful drain (see above). Idempotent. Returns the plan-persist
  /// status when plan_file is set.
  Status Stop();

  /// The actually-bound port (ephemeral_port resolves here).
  int port() const { return port_; }

  bool serving() const {
    return running_.load(std::memory_order_acquire) &&
           !draining_.load(std::memory_order_acquire);
  }

  /// Server-level counters; the wrapped service's own stats come from
  /// service().Stats() (both travel together in the stats frame).
  NetServerStats NetStats() const;

  OptimizerService& service() { return service_; }

  /// Plans admitted from plan_file by the last Start() (warm restart
  /// observability).
  size_t plans_loaded() const { return plans_loaded_; }

 private:
  struct Session {
    std::thread thread;
    Socket socket;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void SessionLoop(Session* session);
  /// One frame dispatched; false = close the connection.
  bool HandleFrame(Session* session, FrameType type,
                   const std::string& payload);
  bool HandleOptimize(Session* session, const std::string& payload);
  /// Error reply; false when even that write failed.
  bool WriteError(Session* session, const Status& status);

  const CostModel& model_;
  ServerOptions options_;
  OptimizerService service_;

  Socket listener_;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  size_t plans_loaded_ = 0;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::vector<std::unique_ptr<Session>> sessions_;
  size_t active_sessions_ = 0;  // guarded by mu_

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> bad_frames_{0};
};

}  // namespace etlopt

#endif  // ETLOPT_NET_SERVER_H_
