#include "net/protocol.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "io/wire_codec.h"

namespace etlopt {

namespace {

// SearchOptions booleans packed into one byte. disable_fast_paths and
// num_threads are intentionally absent (see the header).
constexpr uint8_t kPhase1Bit = 1 << 0;
constexpr uint8_t kFactorizeBit = 1 << 1;
constexpr uint8_t kDistributeBit = 1 << 2;
constexpr uint8_t kPhase4Bit = 1 << 3;

void PutSearchOptions(std::string& out, const SearchOptions& options) {
  PutU64(out, options.max_states);
  PutU64(out, static_cast<uint64_t>(options.max_millis));
  PutU64(out, options.max_states_per_group);
  PutU64(out, options.max_phase3_states);
  PutU64(out, options.max_phase4_states);
  uint8_t flags = 0;
  if (options.enable_phase1_sweep) flags |= kPhase1Bit;
  if (options.enable_factorize) flags |= kFactorizeBit;
  if (options.enable_distribute) flags |= kDistributeBit;
  if (options.enable_phase4_resweep) flags |= kPhase4Bit;
  out.push_back(static_cast<char>(flags));
}

StatusOr<SearchOptions> ReadSearchOptions(WireReader& reader) {
  SearchOptions options;
  ETLOPT_ASSIGN_OR_RETURN(options.max_states, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(uint64_t max_millis, reader.U64());
  options.max_millis = static_cast<int64_t>(max_millis);
  ETLOPT_ASSIGN_OR_RETURN(options.max_states_per_group, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(options.max_phase3_states, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(options.max_phase4_states, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(uint8_t flags, reader.U8());
  if (flags > (kPhase1Bit | kFactorizeBit | kDistributeBit | kPhase4Bit)) {
    return Status::InvalidArgument("net: bad search-option flags");
  }
  options.enable_phase1_sweep = (flags & kPhase1Bit) != 0;
  options.enable_factorize = (flags & kFactorizeBit) != 0;
  options.enable_distribute = (flags & kDistributeBit) != 0;
  options.enable_phase4_resweep = (flags & kPhase4Bit) != 0;
  return options;
}

constexpr uint8_t kCacheHitBit = 1 << 0;
constexpr uint8_t kCoalescedBit = 1 << 1;
constexpr uint8_t kDegradedBit = 1 << 2;

Status CheckAtEnd(const WireReader& reader, const char* what) {
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("net: trailing bytes after %s", what));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeOptimizeRequest(const NetOptimizeRequest& request) {
  std::string out;
  PutString(out, request.workflow_text);
  PutString(out, SearchAlgorithmToString(request.algorithm));
  PutSearchOptions(out, request.options);
  PutU32(out, static_cast<uint32_t>(request.merge_constraints.size()));
  for (const MergeConstraint& constraint : request.merge_constraints) {
    PutString(out, constraint.first_label);
    PutString(out, constraint.second_label);
  }
  PutU64(out, static_cast<uint64_t>(request.deadline_millis));
  return out;
}

StatusOr<NetOptimizeRequest> DecodeOptimizeRequest(
    std::string_view payload) {
  WireReader reader(payload);
  NetOptimizeRequest request;
  ETLOPT_ASSIGN_OR_RETURN(request.workflow_text, reader.String());
  ETLOPT_ASSIGN_OR_RETURN(std::string algorithm, reader.String());
  ETLOPT_ASSIGN_OR_RETURN(request.algorithm,
                          SearchAlgorithmFromString(algorithm));
  ETLOPT_ASSIGN_OR_RETURN(request.options, ReadSearchOptions(reader));
  ETLOPT_ASSIGN_OR_RETURN(uint32_t merges, reader.U32());
  // Each constraint takes at least 8 bytes (two length prefixes), so a
  // corrupt count cannot force a huge reserve.
  request.merge_constraints.reserve(
      std::min<size_t>(merges, reader.remaining() / 8));
  for (uint32_t i = 0; i < merges; ++i) {
    MergeConstraint constraint;
    ETLOPT_ASSIGN_OR_RETURN(constraint.first_label, reader.String());
    ETLOPT_ASSIGN_OR_RETURN(constraint.second_label, reader.String());
    request.merge_constraints.push_back(std::move(constraint));
  }
  ETLOPT_ASSIGN_OR_RETURN(uint64_t deadline, reader.U64());
  request.deadline_millis = static_cast<int64_t>(deadline);
  ETLOPT_RETURN_NOT_OK(CheckAtEnd(reader, "optimize request"));
  return request;
}

std::string EncodeOptimizeResponse(const NetOptimizeResponse& response) {
  std::string out;
  uint8_t flags = 0;
  if (response.cache_hit) flags |= kCacheHitBit;
  if (response.coalesced) flags |= kCoalescedBit;
  if (response.degraded) flags |= kDegradedBit;
  out.push_back(static_cast<char>(flags));
  PutDouble(out, response.server_millis);
  PutString(out, SerializePlanBinary(response.plan));
  return out;
}

StatusOr<NetOptimizeResponse> DecodeOptimizeResponse(
    std::string_view payload) {
  WireReader reader(payload);
  NetOptimizeResponse response;
  ETLOPT_ASSIGN_OR_RETURN(uint8_t flags, reader.U8());
  if (flags > (kCacheHitBit | kCoalescedBit | kDegradedBit)) {
    return Status::InvalidArgument("net: bad optimize-response flags");
  }
  response.cache_hit = (flags & kCacheHitBit) != 0;
  response.coalesced = (flags & kCoalescedBit) != 0;
  response.degraded = (flags & kDegradedBit) != 0;
  ETLOPT_ASSIGN_OR_RETURN(response.server_millis, reader.Double());
  ETLOPT_ASSIGN_OR_RETURN(std::string plan_bytes, reader.String());
  ETLOPT_ASSIGN_OR_RETURN(response.plan, ParsePlanBinary(plan_bytes));
  ETLOPT_RETURN_NOT_OK(CheckAtEnd(reader, "optimize response"));
  return response;
}

std::string EncodeStatsResponse(const NetStatsResponse& stats) {
  std::string out;
  const PlanCacheStats& cache = stats.service.cache;
  PutU64(out, cache.hits);
  PutU64(out, cache.misses);
  PutU64(out, cache.coalesced);
  PutU64(out, cache.insertions);
  PutU64(out, cache.evictions);
  PutU64(out, cache.oversized);
  PutU64(out, cache.entries);
  PutU64(out, cache.bytes);
  PutU64(out, cache.byte_budget);
  PutU64(out, cache.shards);
  const ResultCacheStats& rcache = stats.service.result_cache;
  PutU64(out, rcache.hits);
  PutU64(out, rcache.misses);
  PutU64(out, rcache.coalesced);
  PutU64(out, rcache.busy);
  PutU64(out, rcache.insertions);
  PutU64(out, rcache.evictions);
  PutU64(out, rcache.oversized);
  PutU64(out, rcache.aborted);
  PutU64(out, rcache.entries);
  PutU64(out, rcache.bytes);
  PutU64(out, rcache.byte_budget);
  PutU64(out, rcache.shards);
  const ServiceStats& service = stats.service;
  PutU64(out, service.requests);
  PutU64(out, service.rejected);
  PutU64(out, service.uncacheable);
  PutU64(out, service.searches_run);
  PutU64(out, service.failed_searches);
  PutU64(out, service.search_retries);
  PutU64(out, service.degraded);
  PutU64(out, service.deadline_exceeded);
  PutDouble(out, service.search_millis);
  out.push_back(static_cast<char>(service.breaker.state));
  PutU64(out, service.breaker.trips);
  PutU64(out, service.breaker.rejections);
  PutU64(out, static_cast<uint64_t>(service.breaker.consecutive_failures));
  PutU64(out, service.in_flight);
  PutU64(out, service.max_queue);
  PutU64(out, service.worker_threads);
  const NetServerStats& server = stats.server;
  PutU64(out, server.connections_accepted);
  PutU64(out, server.connections_rejected);
  PutU64(out, server.requests_served);
  PutU64(out, server.requests_shed);
  PutU64(out, server.bad_frames);
  PutU64(out, server.active_connections);
  out.push_back(server.draining ? 1 : 0);
  return out;
}

StatusOr<NetStatsResponse> DecodeStatsResponse(std::string_view payload) {
  WireReader reader(payload);
  NetStatsResponse stats;
  PlanCacheStats& cache = stats.service.cache;
  ETLOPT_ASSIGN_OR_RETURN(cache.hits, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(cache.misses, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(cache.coalesced, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(cache.insertions, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(cache.evictions, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(cache.oversized, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(cache.entries, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(cache.bytes, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(cache.byte_budget, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(cache.shards, reader.U64());
  ResultCacheStats& rcache = stats.service.result_cache;
  ETLOPT_ASSIGN_OR_RETURN(rcache.hits, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.misses, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.coalesced, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.busy, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.insertions, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.evictions, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.oversized, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.aborted, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.entries, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.bytes, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.byte_budget, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(rcache.shards, reader.U64());
  ServiceStats& service = stats.service;
  ETLOPT_ASSIGN_OR_RETURN(service.requests, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.rejected, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.uncacheable, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.searches_run, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.failed_searches, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.search_retries, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.degraded, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.deadline_exceeded, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.search_millis, reader.Double());
  ETLOPT_ASSIGN_OR_RETURN(uint8_t state, reader.U8());
  if (state > static_cast<uint8_t>(BreakerState::kHalfOpen)) {
    return Status::InvalidArgument("net: bad breaker state");
  }
  service.breaker.state = static_cast<BreakerState>(state);
  ETLOPT_ASSIGN_OR_RETURN(service.breaker.trips, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.breaker.rejections, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(uint64_t failures, reader.U64());
  service.breaker.consecutive_failures = static_cast<int>(failures);
  ETLOPT_ASSIGN_OR_RETURN(service.in_flight, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.max_queue, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(service.worker_threads, reader.U64());
  NetServerStats& server = stats.server;
  ETLOPT_ASSIGN_OR_RETURN(server.connections_accepted, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(server.connections_rejected, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(server.requests_served, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(server.requests_shed, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(server.bad_frames, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(server.active_connections, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(uint8_t draining, reader.U8());
  if (draining > 1) {
    return Status::InvalidArgument("net: bad draining flag");
  }
  server.draining = draining == 1;
  ETLOPT_RETURN_NOT_OK(CheckAtEnd(reader, "stats response"));
  return stats;
}

std::string EncodeSavePlansRequest(const NetSavePlansRequest& request) {
  std::string out;
  PutString(out, request.path);
  out.push_back(request.binary ? 1 : 0);
  return out;
}

StatusOr<NetSavePlansRequest> DecodeSavePlansRequest(
    std::string_view payload) {
  WireReader reader(payload);
  NetSavePlansRequest request;
  ETLOPT_ASSIGN_OR_RETURN(request.path, reader.String());
  ETLOPT_ASSIGN_OR_RETURN(uint8_t binary, reader.U8());
  if (binary > 1) {
    return Status::InvalidArgument("net: bad save-plans format flag");
  }
  request.binary = binary == 1;
  ETLOPT_RETURN_NOT_OK(CheckAtEnd(reader, "save-plans request"));
  return request;
}

std::string EncodeHealthResponse(const NetHealthResponse& health) {
  std::string out;
  out.push_back(health.serving ? 1 : 0);
  PutString(out, health.message);
  return out;
}

StatusOr<NetHealthResponse> DecodeHealthResponse(std::string_view payload) {
  WireReader reader(payload);
  NetHealthResponse health;
  ETLOPT_ASSIGN_OR_RETURN(uint8_t serving, reader.U8());
  if (serving > 1) {
    return Status::InvalidArgument("net: bad health serving flag");
  }
  health.serving = serving == 1;
  ETLOPT_ASSIGN_OR_RETURN(health.message, reader.String());
  ETLOPT_RETURN_NOT_OK(CheckAtEnd(reader, "health response"));
  return health;
}

std::string EncodeStatusPayload(const Status& status) {
  std::string out;
  PutU32(out, static_cast<uint32_t>(status.code()));
  PutString(out, status.message());
  return out;
}

Status DecodeStatusPayload(std::string_view payload) {
  WireReader reader(payload);
  ETLOPT_ASSIGN_OR_RETURN(uint32_t code, reader.U32());
  if (code == 0 ||
      code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("net: bad status code in error frame");
  }
  ETLOPT_ASSIGN_OR_RETURN(std::string message, reader.String());
  ETLOPT_RETURN_NOT_OK(CheckAtEnd(reader, "error response"));
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace etlopt
