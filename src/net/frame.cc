#include "net/frame.h"

#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"
#include "io/wire_codec.h"

namespace etlopt {

namespace {

// Checksum over type byte + payload: a flipped type byte is caught just
// like a flipped payload byte.
uint64_t FrameChecksum(uint8_t type, std::string_view payload) {
  char type_byte = static_cast<char>(type);
  uint64_t seed = Fnv1a64(std::string_view(&type_byte, 1));
  return Fnv1a64(payload, seed);
}

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kOptimizeRequest:
    case FrameType::kStatsRequest:
    case FrameType::kSavePlansRequest:
    case FrameType::kHealthRequest:
    case FrameType::kOptimizeResponse:
    case FrameType::kStatsResponse:
    case FrameType::kSavePlansResponse:
    case FrameType::kHealthResponse:
    case FrameType::kErrorResponse:
      return true;
  }
  return false;
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out(kNetMagic, sizeof(kNetMagic));
  out.push_back(static_cast<char>(type));
  PutU64(out, payload.size());
  out += payload;
  PutU64(out, FrameChecksum(static_cast<uint8_t>(type), payload));
  return out;
}

StatusOr<Frame> DecodeFrame(std::string_view bytes, size_t max_frame_bytes) {
  if (bytes.size() < kFrameHeaderBytes + kFrameChecksumBytes) {
    return Status::InvalidArgument("net: truncated frame header");
  }
  if (std::memcmp(bytes.data(), kNetMagic, sizeof(kNetMagic)) != 0) {
    return Status::InvalidArgument("net: bad frame magic");
  }
  WireReader reader(bytes.substr(sizeof(kNetMagic)));
  ETLOPT_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument(
        StrFormat("net: unknown frame type %u", static_cast<unsigned>(type)));
  }
  ETLOPT_ASSIGN_OR_RETURN(uint64_t payload_size, reader.U64());
  if (payload_size > max_frame_bytes) {
    return Status::InvalidArgument(StrFormat(
        "net: frame payload of %llu bytes exceeds the %llu-byte cap",
        static_cast<unsigned long long>(payload_size),
        static_cast<unsigned long long>(max_frame_bytes)));
  }
  if (reader.remaining() != payload_size + kFrameChecksumBytes) {
    return Status::InvalidArgument("net: frame length mismatch (truncated)");
  }
  ETLOPT_ASSIGN_OR_RETURN(std::string_view payload,
                          reader.Bytes(payload_size));
  ETLOPT_ASSIGN_OR_RETURN(uint64_t recorded, reader.U64());
  if (FrameChecksum(type, payload) != recorded) {
    return Status::InvalidArgument("net: frame checksum mismatch");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload = std::string(payload);
  return frame;
}

Status WriteFrame(Socket& socket, FrameType type, std::string_view payload) {
  return socket.WriteFully(EncodeFrame(type, payload));
}

StatusOr<Frame> ReadFrame(Socket& socket, size_t max_frame_bytes) {
  std::string header;
  ETLOPT_RETURN_NOT_OK(socket.ReadFully(header, kFrameHeaderBytes));
  if (std::memcmp(header.data(), kNetMagic, sizeof(kNetMagic)) != 0) {
    return Status::InvalidArgument("net: bad frame magic");
  }
  WireReader reader(
      std::string_view(header).substr(sizeof(kNetMagic)));
  ETLOPT_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument(
        StrFormat("net: unknown frame type %u", static_cast<unsigned>(type)));
  }
  ETLOPT_ASSIGN_OR_RETURN(uint64_t payload_size, reader.U64());
  // The cap gates the allocation: an adversarial length prefix cannot
  // balloon memory, it just kills the connection with a clean error.
  if (payload_size > max_frame_bytes) {
    return Status::InvalidArgument(StrFormat(
        "net: frame payload of %llu bytes exceeds the %llu-byte cap",
        static_cast<unsigned long long>(payload_size),
        static_cast<unsigned long long>(max_frame_bytes)));
  }
  std::string body;
  ETLOPT_RETURN_NOT_OK(
      socket.ReadFully(body, payload_size + kFrameChecksumBytes));
  WireReader body_reader(body);
  ETLOPT_ASSIGN_OR_RETURN(std::string_view payload,
                          body_reader.Bytes(payload_size));
  ETLOPT_ASSIGN_OR_RETURN(uint64_t recorded, body_reader.U64());
  if (FrameChecksum(type, payload) != recorded) {
    return Status::InvalidArgument("net: frame checksum mismatch");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload = std::string(payload);
  return frame;
}

}  // namespace etlopt
