#include "engine/executor.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "engine/shared_cache_exec.h"
#include "fault/fault_injector.h"

namespace etlopt {

StatusOr<std::vector<Record>> RealignRecords(const std::vector<Record>& rows,
                                             const Schema& from,
                                             const Schema& to) {
  if (from == to) return rows;
  std::vector<size_t> mapping;
  mapping.reserve(to.size());
  for (const auto& a : to.attributes()) {
    auto idx = from.IndexOf(a.name);
    if (!idx.has_value()) {
      return Status::Internal("realign: missing attribute " + a.name);
    }
    mapping.push_back(*idx);
  }
  std::vector<Record> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    Record nr;
    for (size_t idx : mapping) nr.Append(r.value(idx));
    out.push_back(std::move(nr));
  }
  return out;
}

StatusOr<ExecutionResult> ExecuteWorkflow(const Workflow& workflow,
                                          const ExecutionInput& input) {
  return ExecuteWorkflow(workflow, input, CacheOptions{});
}

StatusOr<ExecutionResult> ExecuteWorkflow(const Workflow& workflow,
                                          const ExecutionInput& input,
                                          const CacheOptions& cache_options) {
  if (!workflow.fresh()) {
    return Status::FailedPrecondition(
        "workflow must pass Refresh() before execution");
  }
  ExecutionResult result;
  CachePlan plan(workflow, input, cache_options);
  std::map<NodeId, std::vector<Record>> flows;
  for (NodeId id : workflow.TopoOrder()) {
    if (plan.Skip(id)) continue;
    if (const CachedSubgraphResult* served = plan.Served(id)) {
      flows[id] = served->rows;
      continue;
    }
    std::vector<NodeId> providers = workflow.Providers(id);
    if (workflow.IsRecordSet(id)) {
      const RecordSetDef& def = workflow.recordset(id);
      if (providers.empty()) {
        auto it = input.source_data.find(def.name);
        if (it == input.source_data.end()) {
          return Status::NotFound("no data bound for source recordset '" +
                                  def.name + "'");
        }
        for (const auto& r : it->second) {
          if (r.size() != def.schema.size()) {
            return Status::InvalidArgument(StrFormat(
                "source '%s': record arity %zu != schema arity %zu",
                def.name.c_str(), r.size(), def.schema.size()));
          }
        }
        flows[id] = it->second;
      } else {
        // Staging or target recordset: realign to the declared schema.
        ETLOPT_ASSIGN_OR_RETURN(
            flows[id],
            RealignRecords(flows.at(providers[0]),
                           workflow.OutputSchema(providers[0]), def.schema));
      }
      if (workflow.Consumers(id).empty()) {
        result.target_data.emplace(def.name, flows[id]);
      }
    } else {
      ETLOPT_FAULT_HIT(FaultSite::kActivityExecute);
      std::vector<std::vector<Record>> inputs;
      inputs.reserve(providers.size());
      for (NodeId p : providers) inputs.push_back(flows.at(p));
      auto rows = workflow.chain(id).Execute(workflow.InputSchemas(id),
                                             inputs, input.context);
      if (!rows.ok()) {
        return rows.status().WithContext(
            StrFormat("executing node %d ('%s')", id,
                      workflow.chain(id).label().c_str()));
      }
      result.rows_out[id] = rows->size();
      flows[id] = std::move(rows).value();
      plan.OnActivityComputed(id, flows[id], result.rows_out);
    }
  }
  plan.Finalize(result);
  return result;
}

Status ExecuteWorkflowInto(const Workflow& workflow,
                           const ExecutionInput& input,
                           const std::map<std::string, RecordSet*>& targets) {
  ETLOPT_ASSIGN_OR_RETURN(ExecutionResult result,
                          ExecuteWorkflow(workflow, input));
  for (const auto& [name, rows] : result.target_data) {
    auto it = targets.find(name);
    if (it == targets.end()) continue;
    RecordSet* rs = it->second;
    ETLOPT_RETURN_NOT_OK(rs->Truncate());
    for (const auto& r : rows) {
      ETLOPT_RETURN_NOT_OK(rs->Append(r));
    }
  }
  return Status::OK();
}

StatusOr<bool> ProduceSameOutput(const Workflow& a, const Workflow& b,
                                 const ExecutionInput& input) {
  ETLOPT_ASSIGN_OR_RETURN(ExecutionResult ra, ExecuteWorkflow(a, input));
  ETLOPT_ASSIGN_OR_RETURN(ExecutionResult rb, ExecuteWorkflow(b, input));
  if (ra.target_data.size() != rb.target_data.size()) return false;
  for (const auto& [name, rows] : ra.target_data) {
    auto it = rb.target_data.find(name);
    if (it == rb.target_data.end()) return false;
    if (!SameRecordMultiset(rows, it->second)) return false;
  }
  return true;
}

}  // namespace etlopt
