// Executor: runs an ETL workflow over actual data.
//
// The optimizer never needs this — it reasons over schemas and costs —
// but the executor is what makes transition correctness *testable*: two
// equivalent states must produce identical target contents from identical
// source contents (the paper's definition of equivalence, §2.2).

#ifndef ETLOPT_ENGINE_EXECUTOR_H_
#define ETLOPT_ENGINE_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "graph/workflow.h"
#include "records/recordset.h"

namespace etlopt {

class SharedResultCache;

/// Everything a run needs besides the workflow itself: source contents
/// (keyed by recordset name) and the surrogate-key lookup tables.
struct ExecutionInput {
  std::map<std::string, std::vector<Record>> source_data;
  ExecutionContext context;
};

/// Where the engines probe the shared result cache.
enum class CutPointPolicy : int {
  /// Activity nodes worth materializing: chain contains a blocking member
  /// (aggregation, PK check, join, difference, intersection), or the node
  /// feeds a recordset (staging/target — the flow and backbone stage
  /// boundaries), or it feeds a multi-input activity (union providers).
  kAuto = 0,
  /// Every activity node. Maximizes reuse granularity; tests use it to
  /// stress the protocol.
  kAll = 1,
};

/// Shared-result-cache knobs, off by default: with `cache == nullptr`
/// every engine takes exactly its legacy code path, bit for bit.
struct CacheOptions {
  /// Not owned; must outlive the run. nullptr disables caching.
  SharedResultCache* cache = nullptr;
  CutPointPolicy cut_points = CutPointPolicy::kAuto;
  /// When false the run only consumes (Lookup) and never leases or
  /// publishes — e.g. speculative or admission-throttled executions.
  bool publish = true;
};

/// Per-run shared-result-cache bookkeeping. `rows_computed` versus the
/// full Σ rows_out is the work-saved metric the bench gate checks.
struct CacheRunStats {
  bool enabled = false;
  size_t cut_points = 0;      // cacheable cut points identified
  size_t hits = 0;            // cut points served from the cache
  size_t misses = 0;          // probed cut points that had to compute
  size_t published = 0;       // leases completed with a publication
  size_t nodes_total = 0;     // activity nodes in the workflow
  size_t nodes_executed = 0;  // activity nodes actually executed
  size_t rows_computed = 0;   // Σ rows_out over executed nodes only
};

/// The result of a run: rows delivered to each target recordset (keyed by
/// name, realigned to the target's declared schema), plus bookkeeping.
struct ExecutionResult {
  std::map<std::string, std::vector<Record>> target_data;
  /// Rows that crossed each activity node's output, keyed by node id —
  /// the observed analogue of the cost model's cardinality estimates.
  /// Complete even for cache-served nodes (transferred positionally from
  /// the publishing run).
  std::map<NodeId, size_t> rows_out;
  CacheRunStats cache;
};

/// Executes `workflow` (which must be fresh, i.e. Refresh() succeeded)
/// over `input`. Fails if a source has no data entry, a lookup is missing,
/// or any activity rejects its input.
StatusOr<ExecutionResult> ExecuteWorkflow(const Workflow& workflow,
                                          const ExecutionInput& input);

/// As above, consulting a shared result cache at the cut points selected
/// by `cache_options`. Byte-identical outputs either way; cache failures
/// (evictions, busy leases, injected faults) degrade to recomputation.
StatusOr<ExecutionResult> ExecuteWorkflow(const Workflow& workflow,
                                          const ExecutionInput& input,
                                          const CacheOptions& cache_options);

/// The independent engine implementations. All produce byte-identical
/// results on every workflow (the engine-agreement property); they differ
/// only in execution strategy.
enum class EngineKind : int {
  kSerial = 0,      // materializing row engine (ExecuteWorkflow)
  kParallel = 1,    // morsel-driven parallel row engine (ExecuteParallel)
  kVectorized = 2,  // columnar batch engine (ExecuteVectorized)
};

/// Engine selection plus the knobs each engine reads. Unused knobs are
/// ignored (e.g. batch_size under kSerial); zeros mean per-engine
/// defaults. Every knob is content-neutral.
struct ExecutionOptions {
  EngineKind engine = EngineKind::kSerial;
  /// kParallel / kVectorized: worker threads (0 = default).
  size_t num_threads = 0;
  /// kParallel: rows per morsel.
  size_t morsel_size = 0;
  /// kVectorized: rows per batch.
  size_t batch_size = 0;
  /// kParallel / kVectorized: hash-exchange partition count.
  size_t num_partitions = 0;
  /// All engines: shared-result-cache knobs (off when cache == nullptr).
  CacheOptions cache;
};

/// Dispatches to the engine selected by `options`.
StatusOr<ExecutionResult> ExecuteWith(const Workflow& workflow,
                                      const ExecutionInput& input,
                                      const ExecutionOptions& options = {});

/// Convenience: executes and loads the results into bound RecordSet
/// objects (e.g. MemoryTable or CsvFile targets), truncating them first.
Status ExecuteWorkflowInto(
    const Workflow& workflow, const ExecutionInput& input,
    const std::map<std::string, RecordSet*>& targets);

/// True iff the two workflows produce identical target multisets on
/// `input` — the empirical equivalence check used throughout the tests.
StatusOr<bool> ProduceSameOutput(const Workflow& a, const Workflow& b,
                                 const ExecutionInput& input);

/// Reorders `rows` (laid out by `from`) into `to`'s attribute order —
/// the staging/target realignment step, shared with the recoverable
/// executor.
StatusOr<std::vector<Record>> RealignRecords(const std::vector<Record>& rows,
                                             const Schema& from,
                                             const Schema& to);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_EXECUTOR_H_
