#include "engine/partition.h"

#include <algorithm>

#include "common/macros.h"
#include "engine/thread_pool.h"

namespace etlopt {

std::vector<Morsel> MakeMorsels(size_t n, size_t morsel_size) {
  morsel_size = std::max<size_t>(1, morsel_size);
  std::vector<Morsel> morsels;
  morsels.reserve(n / morsel_size + 1);
  for (size_t begin = 0; begin < n; begin += morsel_size) {
    morsels.push_back({begin, std::min(n, begin + morsel_size)});
  }
  return morsels;
}

std::optional<std::vector<std::string>> PartitionKeysFor(
    const Activity& activity) {
  switch (activity.kind()) {
    case ActivityKind::kPrimaryKeyCheck:
      return activity.params_as<PrimaryKeyParams>().key_attrs;
    case ActivityKind::kAggregation:
      return activity.params_as<AggregationParams>().group_by;
    case ActivityKind::kJoin:
      return activity.params_as<JoinParams>().key_attrs;
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection:
      // Rows interact iff equal: partition on the whole record.
      return std::vector<std::string>{};
    default:
      return std::nullopt;
  }
}

bool IsStreamingKind(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kSelection:
    case ActivityKind::kNotNull:
    case ActivityKind::kDomainCheck:
    case ActivityKind::kProjection:
    case ActivityKind::kFunction:
    case ActivityKind::kSurrogateKey:
    case ActivityKind::kUnion:
      return true;
    default:
      return false;
  }
}

namespace {

// 64-bit finalizer (splitmix64) decorrelates Value::Hash outputs before
// the modulo so consecutive integer keys spread over partitions.
inline uint64_t Mix(uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

size_t PartitionOfKey(const Record& row, const std::vector<size_t>& key_idx,
                      size_t num_partitions) {
  uint64_t h;
  if (key_idx.empty()) {
    h = row.Hash();
  } else {
    h = 1469598103934665603ULL;  // FNV offset basis
    for (size_t k : key_idx) {
      h = (h ^ row.value(k).Hash()) * 1099511628211ULL;
    }
  }
  return Mix(h) % std::max<size_t>(1, num_partitions);
}

StatusOr<PartitionIndices> HashPartitionIndices(
    const std::vector<Record>& rows, const Schema& schema,
    const std::vector<std::string>& key_attrs, size_t num_partitions,
    size_t morsel_size, ThreadPool* pool) {
  num_partitions = std::max<size_t>(1, num_partitions);
  std::vector<size_t> key_idx;
  key_idx.reserve(key_attrs.size());
  for (const auto& a : key_attrs) {
    auto idx = schema.IndexOf(a);
    if (!idx.has_value()) {
      return Status::Internal("partition: missing key attribute " + a);
    }
    key_idx.push_back(*idx);
  }

  if (num_partitions == 1) {
    PartitionIndices out(1);
    out[0].resize(rows.size());
    for (uint32_t i = 0; i < rows.size(); ++i) out[0][i] = i;
    return out;
  }

  // Phase 1 (morsel-parallel): each morsel scatters its row indices into
  // private buckets, preserving input order within the morsel.
  std::vector<Morsel> morsels = MakeMorsels(rows.size(), morsel_size);
  std::vector<PartitionIndices> local(morsels.size());
  ETLOPT_RETURN_NOT_OK(pool->ParallelFor(
      morsels.size(), [&](size_t m, size_t) -> Status {
        PartitionIndices& buckets = local[m];
        buckets.assign(num_partitions, {});
        for (size_t i = morsels[m].begin; i < morsels[m].end; ++i) {
          buckets[PartitionOfKey(rows[i], key_idx, num_partitions)].push_back(
              static_cast<uint32_t>(i));
        }
        return Status::OK();
      }));

  // Phase 2 (partition-parallel): concatenate each partition's buckets in
  // morsel order, which keeps indices ascending.
  PartitionIndices out(num_partitions);
  ETLOPT_RETURN_NOT_OK(pool->ParallelFor(
      num_partitions, [&](size_t p, size_t) -> Status {
        size_t total = 0;
        for (const auto& buckets : local) total += buckets[p].size();
        out[p].reserve(total);
        for (const auto& buckets : local) {
          out[p].insert(out[p].end(), buckets[p].begin(), buckets[p].end());
        }
        return Status::OK();
      }));
  return out;
}

PartitionIndices RoundRobinPartitionIndices(size_t num_rows,
                                            size_t num_partitions) {
  num_partitions = std::max<size_t>(1, num_partitions);
  PartitionIndices out(num_partitions);
  for (auto& p : out) p.reserve(num_rows / num_partitions + 1);
  for (size_t i = 0; i < num_rows; ++i) {
    out[i % num_partitions].push_back(static_cast<uint32_t>(i));
  }
  return out;
}

}  // namespace etlopt
