// Hash / round-robin partitioning of record batches for the parallel
// engine (src/engine/parallel.h).
//
// The partitioning is keyed on activity semantics: a blocking activity is
// only correct per-partition if every pair of rows that can interact
// lands in the same partition. PartitionKeysFor() encodes that rule per
// template — aggregation exchanges on its group-by attributes, duplicate
// elimination on its key attributes, join build/probe sides on the join
// keys, and bag difference/intersection on the whole record (two rows
// interact iff they are equal). Streaming templates return nullopt: they
// need no exchange and run morsel-parallel instead.
//
// Partitions are materialized as *row indices* in ascending order, never
// as reordered rows: the engine reconstructs the serial engines' exact
// output order from those indices, which is what makes ExecuteParallel
// byte-identical to ExecuteWorkflow at any thread or partition count.

#ifndef ETLOPT_ENGINE_PARTITION_H_
#define ETLOPT_ENGINE_PARTITION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "activity/activity.h"
#include "records/record.h"
#include "schema/schema.h"

namespace etlopt {

class ThreadPool;

/// Row indices owned by each partition, ascending within a partition.
using PartitionIndices = std::vector<std::vector<uint32_t>>;

/// A half-open morsel of row indices [begin, end).
struct Morsel {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits [0, n) into morsels of at most `morsel_size` rows.
std::vector<Morsel> MakeMorsels(size_t n, size_t morsel_size);

/// The exchange keys a blocking activity needs, or nullopt when the
/// activity streams (is data-parallel over arbitrary morsels). An engaged
/// but *empty* vector means "partition on the whole record"
/// (difference/intersection) — except for aggregation, where an empty
/// group-by list means a single global group and therefore a single
/// partition.
std::optional<std::vector<std::string>> PartitionKeysFor(
    const Activity& activity);

/// True for templates whose per-row work is independent of other rows.
bool IsStreamingKind(ActivityKind kind);

/// The partition a row routes to under HashPartitionIndices' hash, given
/// the positional indices of the key attributes within the row's schema
/// (empty = hash the whole record). Probe sides of joins use this to find
/// the shard a build row landed in.
size_t PartitionOfKey(const Record& row, const std::vector<size_t>& key_idx,
                      size_t num_partitions);

/// Hashes the values of `key_attrs` (all values when `key_attrs` is
/// empty) for every row and scatters row indices into `num_partitions`
/// buckets, morsel-parallel over `pool`. Index order inside each bucket
/// is ascending (i.e. input order), so per-partition processing sees rows
/// in the same relative order the serial engines do. Fails if a key
/// attribute is missing from `schema`.
StatusOr<PartitionIndices> HashPartitionIndices(
    const std::vector<Record>& rows, const Schema& schema,
    const std::vector<std::string>& key_attrs, size_t num_partitions,
    size_t morsel_size, ThreadPool* pool);

/// Round-robin variant used where no key constrains placement (load
/// balancing only). Same ordering guarantees as the hash variant.
PartitionIndices RoundRobinPartitionIndices(size_t num_rows,
                                            size_t num_partitions);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_PARTITION_H_
