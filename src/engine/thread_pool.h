// ThreadPool: a fixed-size worker pool for the parallel execution engine.
//
// The pool is deliberately small-surface: fire-and-collect tasks
// (Submit) and a blocking data-parallel loop (ParallelFor) built on an
// atomic work counter, which is all the morsel-driven engine needs.
// Workers are numbered 0..num_threads-1 and the number is passed to every
// task, so callers can keep contention-free per-worker accumulators.

#ifndef ETLOPT_ENGINE_THREAD_POOL_H_
#define ETLOPT_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/statusor.h"

namespace etlopt {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins the workers. Pending tasks still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task; the future resolves when it has run. The task
  /// receives the index of the worker that executes it. A task that
  /// throws does not harm the pool: the exception is captured into the
  /// returned future (rethrown by .get()) and the worker keeps serving.
  std::future<void> Submit(std::function<void(size_t worker)> fn);

  /// Runs `fn(item, worker)` for every item in [0, n), distributing items
  /// over the workers via an atomic claim counter, and blocks until all
  /// items finish. If any invocation returns a non-OK status, no further
  /// items are claimed and the error with the *smallest* item index is
  /// returned — callers see a deterministic error regardless of thread
  /// interleaving. An invocation that throws is converted to an Internal
  /// status and reported the same way — never a wedged pool or a silently
  /// dropped item. The calling thread only waits; all work happens on the
  /// pool, so nesting ParallelFor inside a task would deadlock (the
  /// engine never does).
  Status ParallelFor(size_t n,
                     const std::function<Status(size_t item, size_t worker)>& fn);

  /// A default number of workers for callers that pass 0: the hardware
  /// concurrency, clamped to >= 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void(size_t)>> queue_;
  bool shutdown_ = false;
};

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_THREAD_POOL_H_
