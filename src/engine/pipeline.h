// Pipelined executor: a pull-based (Volcano-style) row-at-a-time engine.
//
// The paper's workflow paradigm lets activities "output data to one
// another" without intermediate data stores. ExecuteWorkflow
// (executor.h) materializes every edge; this executor streams instead:
// filters, projections, functions, surrogate keys, duplicate elimination
// and unions pass rows through one at a time, and only genuinely
// blocking activities (aggregation; the build side of join, difference
// and intersection) buffer rows.
//
// Both executors produce identical results — the test suite asserts it —
// so the pipelined one also serves as an independent implementation of
// the activity semantics (N-version check).

#ifndef ETLOPT_ENGINE_PIPELINE_H_
#define ETLOPT_ENGINE_PIPELINE_H_

#include "engine/executor.h"

namespace etlopt {

/// Execution statistics that distinguish pipelining from materialization.
struct PipelineStats {
  /// Rows buffered inside blocking operators (aggregation groups, build
  /// sides). A fully streaming plan buffers nothing.
  size_t buffered_rows = 0;
  /// Rows the materializing executor would have staged on every edge.
  size_t materialized_equivalent = 0;
};

/// Runs `workflow` (must be fresh) over `input` with the pipelined
/// engine. `target_data` and `rows_out` match ExecuteWorkflow's output.
StatusOr<ExecutionResult> ExecutePipelined(const Workflow& workflow,
                                           const ExecutionInput& input,
                                           PipelineStats* stats = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_PIPELINE_H_
