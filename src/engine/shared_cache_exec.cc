#include "engine/shared_cache_exec.h"

#include <algorithm>

#include "common/string_util.h"
#include "fault/fault_injector.h"
#include "graph/subgraph_signature.h"

namespace etlopt {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FoldU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ static_cast<unsigned char>(v >> (8 * i))) * kFnvPrime;
  }
  return h;
}

// Order-sensitive content fold of a row list. Process-stable is enough:
// the shared cache lives and dies with the process.
uint64_t RowsFingerprint(const std::vector<Record>& rows) {
  uint64_t h = kFnv1aBasis;
  h = FoldU64(h, rows.size());
  for (const Record& r : rows) {
    h = FoldU64(h, r.size());
    for (const Value& v : r.values()) h = FoldU64(h, v.Hash());
  }
  return h;
}

uint64_t LookupFingerprint(
    const std::map<std::vector<Value>, Value>& lookup) {
  uint64_t h = kFnv1aBasis;
  h = FoldU64(h, lookup.size());
  for (const auto& [key, value] : lookup) {
    h = FoldU64(h, key.size());
    for (const Value& v : key) h = FoldU64(h, v.Hash());
    h = FoldU64(h, value.Hash());
  }
  return h;
}

// Cache fault sites are swallowed, not propagated: BOTH the transient
// error and the crash kind turn into "the cache was unavailable here"
// (miss / skipped publication), because a result cache must never be
// able to fail a run. ETLOPT_FAULT_HIT would return from the enclosing
// function, so the sites get this inline form instead.
bool CacheFaultOk(FaultSite site) {
#ifndef ETLOPT_NO_FAULT_INJECTION
  if (FaultInjector::Global().armed()) {
    return FaultInjector::Global().Hit(site).ok();
  }
#endif
  return true;
}

bool HasBlockingMember(const ActivityChain& chain) {
  for (const ActivityChain::Member& m : chain.members()) {
    switch (m.activity.kind()) {
      case ActivityKind::kPrimaryKeyCheck:
      case ActivityKind::kAggregation:
      case ActivityKind::kJoin:
      case ActivityKind::kDifference:
      case ActivityKind::kIntersection:
        return true;
      default:
        break;
    }
  }
  return false;
}

}  // namespace

bool CachePlan::IsCutPoint(NodeId id) const {
  if (workflow_.IsRecordSet(id)) return false;
  if (options_cut_points_ == CutPointPolicy::kAll) return true;
  if (HasBlockingMember(workflow_.chain(id))) return true;
  for (NodeId c : workflow_.Consumers(id)) {
    if (workflow_.IsRecordSet(c)) return true;          // stage boundary
    if (workflow_.Providers(c).size() > 1) return true;  // union provider
  }
  return false;
}

CachePlan::CachePlan(const Workflow& workflow, const ExecutionInput& input,
                     const CacheOptions& options)
    : workflow_(workflow),
      cache_(options.cache),
      options_cut_points_(options.cut_points) {
  if (cache_ == nullptr) return;
  enabled_ = true;
  publish_ = options.publish;
  stats_.enabled = true;

  SubgraphSignatureInputs sig_in;
  sig_in.source_fingerprint = [&input](const std::string& name) -> uint64_t {
    auto it = input.source_data.find(name);
    // A missing binding fails execution later anyway; fold a distinct
    // constant so it can never alias a bound source.
    if (it == input.source_data.end()) return 0x6d697373696e6721ull;
    return RowsFingerprint(it->second);
  };
  sig_in.lookup_fingerprint = [&input](const std::string& name) -> uint64_t {
    auto it = input.context.lookups.find(name);
    if (it == input.context.lookups.end()) return 0x6d697373696e6721ull;
    return LookupFingerprint(it->second);
  };
  signatures_ = AllSubgraphResultSignatures(workflow_, sig_in);

  // Acquire pass, downstream-first: a hit at a cut point suppresses every
  // probe inside its cone; reverse topo order guarantees a node already
  // leased can never later land inside a served cone (cones only extend
  // upstream).
  std::vector<char> in_served(signatures_.size(), 0);
  std::vector<NodeId> topo = workflow_.TopoOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    NodeId id = *it;
    if (in_served[id] || !IsCutPoint(id)) continue;
    ++stats_.cut_points;
    if (!CacheFaultOk(FaultSite::kCacheLookup)) {
      ++stats_.misses;  // injected cache failure: recompute locally
      continue;
    }
    std::shared_ptr<const CachedSubgraphResult> entry;
    if (publish_) {
      // Waiting on another run's in-flight lease is only deadlock-free
      // while this run holds no leases of its own.
      auto r = cache_->Acquire(signatures_[id], /*may_wait=*/leases_.empty());
      if (r.kind == SharedResultCache::Outcome::kLeased) {
        leases_[id] = signatures_[id];
        ++stats_.misses;
        continue;
      }
      if (r.kind == SharedResultCache::Outcome::kBusy) {
        ++stats_.misses;
        continue;
      }
      entry = std::move(r.value);
    } else {
      entry = cache_->Lookup(signatures_[id]);
      if (entry == nullptr) {
        ++stats_.misses;
        continue;
      }
    }
    // Transfer the publisher's per-node bookkeeping by canonical DFS
    // position. Equal signatures guarantee positionally matching cones;
    // a size mismatch means a collision — treat as a miss.
    std::vector<NodeId> cone = SubtreeNodes(workflow_, id);
    if (entry->subtree_rows_out.size() != cone.size()) {
      ++stats_.misses;
      continue;
    }
    for (size_t i = 0; i < cone.size(); ++i) {
      in_served[cone[i]] = 1;
      if (!workflow_.IsRecordSet(cone[i])) {
        transferred_rows_out_[cone[i]] = entry->subtree_rows_out[i];
      }
    }
    served_[id] = std::move(entry);
    ++stats_.hits;
  }

  // Needed-set pruning: reverse reachability from the targets, stopping
  // at served cut points. A node outside the needed set has every path
  // to a target covered by a served cone and never executes.
  needed_.assign(signatures_.size(), 0);
  std::vector<NodeId> stack;
  for (NodeId id : workflow_.NodeIds()) {
    if (workflow_.Consumers(id).empty()) stack.push_back(id);
  }
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    if (needed_[id]) continue;
    needed_[id] = 1;
    if (served_.count(id) != 0) continue;  // cone served: don't descend
    for (NodeId p : workflow_.Providers(id)) stack.push_back(p);
  }
}

CachePlan::~CachePlan() {
  // Error paths and injected crashes land here with leases still open;
  // waiters wake with kBusy and recompute.
  for (const auto& [id, sig] : leases_) cache_->Abort(sig);
}

bool CachePlan::Skip(NodeId id) const {
  return enabled_ && !needed_[id];
}

const CachedSubgraphResult* CachePlan::Served(NodeId id) const {
  if (!enabled_) return nullptr;
  auto it = served_.find(id);
  return it == served_.end() ? nullptr : it->second.get();
}

void CachePlan::OnActivityComputed(NodeId id, const std::vector<Record>& rows,
                                   const std::map<NodeId, size_t>& rows_out) {
  if (!enabled_) return;
  auto lease = leases_.find(id);
  if (lease == leases_.end()) return;
  uint64_t sig = lease->second;
  leases_.erase(lease);
  if (!CacheFaultOk(FaultSite::kCacheMaterialize)) {
    cache_->Abort(sig);  // injected failure: others recompute
    return;
  }
  auto entry = std::make_shared<CachedSubgraphResult>();
  entry->rows = rows;
  std::vector<NodeId> cone = SubtreeNodes(workflow_, id);
  entry->subtree_rows_out.reserve(cone.size());
  for (NodeId n : cone) {
    if (workflow_.IsRecordSet(n)) {
      entry->subtree_rows_out.push_back(0);
      continue;
    }
    // Inside this cone a node's count comes either from this run's
    // execution or from a deeper cone served out of the cache.
    auto tr = transferred_rows_out_.find(n);
    if (tr != transferred_rows_out_.end()) {
      entry->subtree_rows_out.push_back(tr->second);
    } else {
      auto ro = rows_out.find(n);
      entry->subtree_rows_out.push_back(ro == rows_out.end() ? 0 : ro->second);
    }
  }
  entry->bytes = ApproxRowsBytes(entry->rows) +
                 entry->subtree_rows_out.size() * sizeof(size_t) + 64;
  cache_->Publish(sig, std::move(entry));
  ++stats_.published;
}

void CachePlan::Finalize(ExecutionResult& result) {
  if (!enabled_) return;
  stats_.nodes_executed = result.rows_out.size();
  for (const auto& [id, n] : result.rows_out) stats_.rows_computed += n;
  for (NodeId id : workflow_.NodeIds()) {
    if (!workflow_.IsRecordSet(id)) ++stats_.nodes_total;
  }
  // Cache-served cones still report per-node row counts: transferred
  // positionally from the run that computed them.
  for (const auto& [id, n] : transferred_rows_out_) result.rows_out[id] = n;
  result.cache = stats_;
}

}  // namespace etlopt
