// Parallel executor: a morsel-driven, partition-parallel engine.
//
// The third independent implementation of the activity semantics (after
// the materializing and pipelined engines). Nodes still execute in
// topological order, but inside a node the data is parallel:
//
//  * streaming activities (filter, project, function, surrogate key,
//    union) run data-parallel over fixed-size morsels of the input, and
//    their per-morsel outputs are concatenated in morsel order;
//  * blocking activities (aggregation, duplicate elimination, join
//    build/probe, difference/intersection) go through a hash-partitioned
//    exchange keyed on the activity's semantics (group-by keys, PK keys,
//    join keys, or the whole record), so each worker owns a disjoint key
//    range and per-partition execution is exactly correct.
//
// Output order is *reconstructed*, not merely made deterministic:
// streaming morsels preserve input order, exchanges either merge kept row
// indices back into input order (filters, difference/intersection) or
// k-way-merge key-sorted partition outputs (aggregation), and the join
// probes the partitioned build index in left-input order. The result is
// byte-identical to ExecuteWorkflow — same rows, same order, same
// rows_out — for every workflow, at any thread count, morsel size or
// partition count. Tests lean on that: equivalence checks reduce to
// straight equality.

#ifndef ETLOPT_ENGINE_PARALLEL_H_
#define ETLOPT_ENGINE_PARALLEL_H_

#include "engine/executor.h"

namespace etlopt {

struct ParallelOptions {
  /// Worker threads. 0 means ThreadPool::DefaultThreads().
  size_t num_threads = 0;
  /// Rows per morsel for streaming activities (and the scatter phase of
  /// exchanges). 0 means a sensible default (2048).
  size_t morsel_size = 0;
  /// Partition count for hash exchanges. 0 derives one from num_threads.
  /// The produced data is identical whatever the value; it only shapes
  /// load balance.
  size_t num_partitions = 0;
  /// Shared-result-cache knobs (off when cache == nullptr); content-
  /// neutral like every other knob here.
  CacheOptions cache;
};

/// Observability counters for a parallel run. All totals are
/// deterministic for fixed options; the per-worker split depends on
/// scheduling and is reported for load-balance inspection only.
struct ParallelStats {
  /// Worker threads the run actually used.
  size_t num_threads = 0;
  /// Morsel tasks dispatched for streaming activities.
  size_t streaming_morsels = 0;
  /// Partition tasks dispatched for blocking exchanges.
  size_t exchange_partitions = 0;
  /// Rows that crossed streaming activities.
  size_t streamed_rows = 0;
  /// Rows routed through hash exchanges.
  size_t exchanged_rows = 0;
  /// Rows processed per worker (size num_threads); the merge of the
  /// per-worker counters the engine keeps during the run.
  std::vector<size_t> worker_rows;
};

/// Runs `workflow` (must be fresh) over `input` with the parallel engine.
/// The result matches ExecuteWorkflow byte-for-byte (target_data rows and
/// order, and rows_out), deterministically across thread counts and
/// repeated runs.
StatusOr<ExecutionResult> ExecuteParallel(const Workflow& workflow,
                                          const ExecutionInput& input,
                                          const ParallelOptions& options = {},
                                          ParallelStats* stats = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_PARALLEL_H_
