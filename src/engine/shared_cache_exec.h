// CachePlan: the shared-result-cache integration all three engines use.
//
// The serial, morsel-parallel and vectorized executors share one topo-
// loop shape; this helper factors the cache logic out of it so the loops
// stay engine-specific only in how they move rows. A plan is built once
// per run:
//
//  1. signature pass — subgraph result signatures for every node, with
//     source/lookup fingerprints bound from the run's ExecutionInput;
//  2. cut-point selection per CutPointPolicy;
//  3. acquire pass, downstream-first (reverse topo): each cut point not
//     inside an already-served cone is probed. A hit serves the whole
//     upstream cone (rows injected at the cut node, per-node rows_out
//     transferred positionally via SubtreeNodes); a lease obliges this
//     run to publish the node's rows once computed. Only the FIRST probe
//     may block on another run's in-flight lease — after this run holds
//     any lease itself, probes are non-blocking (kBusy ⇒ recompute),
//     which keeps the cross-run wait graph acyclic;
//  4. needed-set pruning — reverse reachability from the targets that
//     stops descending at served nodes. Skip(id) nodes never execute.
//
// During the loop the engine asks Served(id) (inject these rows instead
// of computing), calls OnActivityComputed after every computed activity
// node (publishes if leased), and Finalize at the end (merges transferred
// rows_out, fills ExecutionResult::cache). The destructor aborts any
// lease the run did not get to publish — error paths and injected faults
// degrade to other runs recomputing, never to a hang.
//
// With CacheOptions::cache == nullptr the plan is inert: every query
// returns the legacy answer and the engine takes its old path bit for
// bit.

#ifndef ETLOPT_ENGINE_SHARED_CACHE_EXEC_H_
#define ETLOPT_ENGINE_SHARED_CACHE_EXEC_H_

#include <map>
#include <memory>
#include <vector>

#include "engine/executor.h"
#include "service/shared_result_cache.h"

namespace etlopt {

class CachePlan {
 public:
  /// Builds the plan (signature, acquire, pruning passes). `workflow`
  /// must be fresh and must outlive the plan; `input` is only read
  /// during construction.
  CachePlan(const Workflow& workflow, const ExecutionInput& input,
            const CacheOptions& options);
  ~CachePlan();

  CachePlan(const CachePlan&) = delete;
  CachePlan& operator=(const CachePlan&) = delete;

  bool enabled() const { return enabled_; }

  /// True iff the node need not run at all: every path from it to a
  /// target passes through a cache-served cut point.
  bool Skip(NodeId id) const;

  /// Non-null iff `id` is a served cut point: the engine injects
  /// entry->rows as the node's output instead of executing its cone.
  const CachedSubgraphResult* Served(NodeId id) const;

  /// True iff the run holds an unpublished lease on `id`. Engines whose
  /// flows are not plain rows (vectorized) use this to materialize rows
  /// only where a publication will actually happen.
  bool Leased(NodeId id) const { return enabled_ && leases_.count(id) != 0; }

  /// Engines call this after computing any activity node's rows (with
  /// the run's rows_out filled for every node computed so far). If the
  /// run holds a lease on `id`, the rows are published for other runs.
  void OnActivityComputed(NodeId id, const std::vector<Record>& rows,
                          const std::map<NodeId, size_t>& rows_out);

  /// Merges cache-transferred rows_out entries into `result` and fills
  /// `result.cache`. Call once, after the loop, before returning.
  void Finalize(ExecutionResult& result);

 private:
  bool IsCutPoint(NodeId id) const;

  const Workflow& workflow_;
  SharedResultCache* cache_ = nullptr;
  CutPointPolicy options_cut_points_ = CutPointPolicy::kAuto;
  bool enabled_ = false;
  bool publish_ = false;
  std::vector<uint64_t> signatures_;  // NodeId-indexed
  std::vector<char> needed_;          // NodeId-indexed
  std::map<NodeId, std::shared_ptr<const CachedSubgraphResult>> served_;
  std::map<NodeId, uint64_t> leases_;  // unreleased leases, by cut node
  std::map<NodeId, size_t> transferred_rows_out_;
  CacheRunStats stats_;
};

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_SHARED_CACHE_EXEC_H_
