// Selectivity calibration: replace assigned selectivities with measured
// ones.
//
// The paper assigns selectivities to activities by hand (§4.2). In a
// running deployment the natural source of those numbers is the data
// itself: execute the workflow over a sample, observe each activity's
// rows-out / rows-in ratio, and rebuild the workflow with the measured
// selectivities so the optimizer's cost model matches reality.

#ifndef ETLOPT_ENGINE_CALIBRATION_H_
#define ETLOPT_ENGINE_CALIBRATION_H_

#include <map>

#include "engine/executor.h"

namespace etlopt {

/// Observed flow statistics from one execution.
struct CalibrationResult {
  /// Measured selectivity per activity node (rows out / rows in; unary
  /// chains only — binary activities keep their assigned selectivity).
  std::map<NodeId, double> measured_selectivity;
  /// A copy of the workflow whose unary activities carry the measured
  /// selectivities (chains re-built member-wise, with per-chain
  /// measurement applied to the first member).
  Workflow calibrated;
};

/// Executes `workflow` over `input` (typically a sample of production
/// data) and returns measured selectivities plus a calibrated workflow.
/// Activities that saw no input rows keep their assigned selectivity.
StatusOr<CalibrationResult> CalibrateSelectivities(const Workflow& workflow,
                                                   const ExecutionInput& input);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_CALIBRATION_H_
