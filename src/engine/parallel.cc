#include "engine/parallel.h"

#include <algorithm>
#include <map>

#include "common/macros.h"
#include "common/string_util.h"
#include "engine/partition.h"
#include "engine/shared_cache_exec.h"
#include "engine/thread_pool.h"
#include "fault/fault_injector.h"

namespace etlopt {

namespace {

constexpr size_t kDefaultMorselSize = 2048;

// Shared run state threaded through the per-operator helpers.
struct Engine {
  ThreadPool* pool = nullptr;
  size_t morsel_size = kDefaultMorselSize;
  size_t num_partitions = 1;
  const ExecutionContext* ctx = nullptr;
  ParallelStats* stats = nullptr;

  // Per-worker row counter; indexed by worker, so tasks never contend.
  void CountRows(size_t worker, size_t n) const {
    stats->worker_rows[worker] += n;
  }
};

StatusOr<std::vector<size_t>> AttrIndices(
    const Schema& schema, const std::vector<std::string>& attrs) {
  std::vector<size_t> idx;
  idx.reserve(attrs.size());
  for (const auto& a : attrs) {
    auto i = schema.IndexOf(a);
    if (!i.has_value()) {
      return Status::Internal("parallel: missing attribute " + a);
    }
    idx.push_back(*i);
  }
  return idx;
}

std::vector<Value> ExtractKey(const Record& row,
                              const std::vector<size_t>& idx) {
  std::vector<Value> key;
  key.reserve(idx.size());
  for (size_t i : idx) key.push_back(row.value(i));
  return key;
}

// Copies (and optionally re-lays-out) `rows` morsel-parallel. With
// from == to this is a parallel copy; otherwise each row is rebuilt in
// `to`'s attribute order, exactly like the serial engines' realign.
StatusOr<std::vector<Record>> ParallelRealign(const Engine& eng,
                                              const std::vector<Record>& rows,
                                              const Schema& from,
                                              const Schema& to) {
  const bool identity = from == to;
  std::vector<size_t> mapping;
  if (!identity) {
    std::vector<std::string> to_names;
    for (const auto& a : to.attributes()) to_names.push_back(a.name);
    ETLOPT_ASSIGN_OR_RETURN(mapping, AttrIndices(from, to_names));
  }
  std::vector<Record> out(rows.size());
  std::vector<Morsel> morsels = MakeMorsels(rows.size(), eng.morsel_size);
  eng.stats->streaming_morsels += morsels.size();
  eng.stats->streamed_rows += rows.size();
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      morsels.size(), [&](size_t m, size_t worker) -> Status {
        for (size_t i = morsels[m].begin; i < morsels[m].end; ++i) {
          if (identity) {
            out[i] = rows[i];
          } else {
            Record nr;
            for (size_t src : mapping) nr.Append(rows[i].value(src));
            out[i] = std::move(nr);
          }
        }
        eng.CountRows(worker, morsels[m].size());
        return Status::OK();
      }));
  return out;
}

// Streaming unary activity: data-parallel over morsels, per-morsel
// batches delegated to Activity::Execute (the same idiom the pipelined
// engine uses, so the engines cannot diverge on per-row behaviour).
// Filters and 1:1 transforms preserve input order within a morsel, and
// morsel outputs concatenate in morsel order, so the result is exactly
// the serial output.
StatusOr<std::vector<Record>> RunStreaming(const Engine& eng,
                                           const Activity& activity,
                                           const Schema& in_schema,
                                           const std::vector<Record>& rows) {
  std::vector<Morsel> morsels = MakeMorsels(rows.size(), eng.morsel_size);
  eng.stats->streaming_morsels += morsels.size();
  eng.stats->streamed_rows += rows.size();
  std::vector<std::vector<Record>> outs(morsels.size());
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      morsels.size(), [&](size_t m, size_t worker) -> Status {
        std::vector<std::vector<Record>> input(1);
        input[0].assign(rows.begin() + morsels[m].begin,
                        rows.begin() + morsels[m].end);
        ETLOPT_ASSIGN_OR_RETURN(
            outs[m], activity.Execute({in_schema}, input, *eng.ctx));
        eng.CountRows(worker, morsels[m].size());
        return Status::OK();
      }));
  size_t total = 0;
  for (const auto& o : outs) total += o.size();
  std::vector<Record> out;
  out.reserve(total);
  for (auto& o : outs) {
    for (auto& r : o) out.push_back(std::move(r));
  }
  return out;
}

// Union: left rows followed by the right rows realigned into the output
// layout — both sides copied morsel-parallel into their final slots.
StatusOr<std::vector<Record>> RunUnion(const Engine& eng,
                                       const std::vector<Schema>& in_schemas,
                                       const Schema& out_schema,
                                       const std::vector<Record>& left,
                                       const std::vector<Record>& right) {
  std::vector<std::string> out_names;
  for (const auto& a : out_schema.attributes()) out_names.push_back(a.name);
  ETLOPT_ASSIGN_OR_RETURN(std::vector<size_t> right_map,
                          AttrIndices(in_schemas[1], out_names));
  std::vector<Record> out(left.size() + right.size());
  std::vector<Morsel> lm = MakeMorsels(left.size(), eng.morsel_size);
  std::vector<Morsel> rm = MakeMorsels(right.size(), eng.morsel_size);
  eng.stats->streaming_morsels += lm.size() + rm.size();
  eng.stats->streamed_rows += out.size();
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      lm.size() + rm.size(), [&](size_t t, size_t worker) -> Status {
        if (t < lm.size()) {
          for (size_t i = lm[t].begin; i < lm[t].end; ++i) out[i] = left[i];
          eng.CountRows(worker, lm[t].size());
        } else {
          const Morsel& m = rm[t - lm.size()];
          for (size_t i = m.begin; i < m.end; ++i) {
            Record nr;
            for (size_t src : right_map) nr.Append(right[i].value(src));
            out[left.size() + i] = std::move(nr);
          }
          eng.CountRows(worker, m.size());
        }
        return Status::OK();
      }));
  return out;
}

// Duplicate elimination: hash-exchange on the key attributes, keep-first
// per partition (each partition sees its rows in input order), then
// rebuild the kept rows in input order from the survivor bitmap.
StatusOr<std::vector<Record>> RunPkCheck(const Engine& eng,
                                         const Activity& activity,
                                         const Schema& in_schema,
                                         const std::vector<Record>& rows) {
  const auto& p = activity.params_as<PrimaryKeyParams>();
  ETLOPT_ASSIGN_OR_RETURN(std::vector<size_t> key_idx,
                          AttrIndices(in_schema, p.key_attrs));
  ETLOPT_ASSIGN_OR_RETURN(
      PartitionIndices parts,
      HashPartitionIndices(rows, in_schema, p.key_attrs, eng.num_partitions,
                           eng.morsel_size, eng.pool));
  eng.stats->exchange_partitions += parts.size();
  eng.stats->exchanged_rows += rows.size();
  std::vector<uint8_t> keep(rows.size(), 0);
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      parts.size(), [&](size_t pt, size_t worker) -> Status {
        std::map<std::vector<Value>, bool> seen;
        for (uint32_t i : parts[pt]) {
          if (seen.emplace(ExtractKey(rows[i], key_idx), true).second) {
            keep[i] = 1;
          }
        }
        eng.CountRows(worker, parts[pt].size());
        return Status::OK();
      }));
  std::vector<Record> out;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (keep[i]) out.push_back(rows[i]);
  }
  return out;
}

// Aggregation: hash-exchange on the group-by keys so every partition
// owns a disjoint set of groups; per-partition Execute yields key-sorted
// groups (Activity::Execute uses an ordered map), and a k-way merge on
// the key prefix restores the serial engines' global key order.
StatusOr<std::vector<Record>> RunAggregation(const Engine& eng,
                                             const Activity& activity,
                                             const Schema& in_schema,
                                             const std::vector<Record>& rows) {
  const auto& p = activity.params_as<AggregationParams>();
  if (p.group_by.empty()) {
    // One global group: nothing to exchange on.
    eng.stats->exchange_partitions += 1;
    eng.stats->exchanged_rows += rows.size();
    std::vector<std::vector<Record>> input(1);
    input[0] = rows;
    return activity.Execute({in_schema}, input, *eng.ctx);
  }
  ETLOPT_ASSIGN_OR_RETURN(
      PartitionIndices parts,
      HashPartitionIndices(rows, in_schema, p.group_by, eng.num_partitions,
                           eng.morsel_size, eng.pool));
  eng.stats->exchange_partitions += parts.size();
  eng.stats->exchanged_rows += rows.size();
  std::vector<std::vector<Record>> outs(parts.size());
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      parts.size(), [&](size_t pt, size_t worker) -> Status {
        if (parts[pt].empty()) return Status::OK();
        std::vector<std::vector<Record>> input(1);
        input[0].reserve(parts[pt].size());
        for (uint32_t i : parts[pt]) input[0].push_back(rows[i]);
        ETLOPT_ASSIGN_OR_RETURN(
            outs[pt], activity.Execute({in_schema}, input, *eng.ctx));
        eng.CountRows(worker, parts[pt].size());
        return Status::OK();
      }));

  // Merge the key-sorted partition outputs. Group keys are the leading
  // values of every output record and are disjoint across partitions.
  const size_t g = p.group_by.size();
  auto key_less = [g](const Record& a, const Record& b) {
    for (size_t i = 0; i < g; ++i) {
      if (a.value(i) < b.value(i)) return true;
      if (b.value(i) < a.value(i)) return false;
    }
    return false;
  };
  size_t total = 0;
  for (const auto& o : outs) total += o.size();
  std::vector<Record> out;
  out.reserve(total);
  std::vector<size_t> pos(outs.size(), 0);
  while (out.size() < total) {
    size_t best = outs.size();
    for (size_t pt = 0; pt < outs.size(); ++pt) {
      if (pos[pt] >= outs[pt].size()) continue;
      if (best == outs.size() ||
          key_less(outs[pt][pos[pt]], outs[best][pos[best]])) {
        best = pt;
      }
    }
    out.push_back(std::move(outs[best][pos[best]]));
    ++pos[best];
  }
  return out;
}

// Join: partition the build (right) side on the join keys, build one hash
// index per partition in parallel, then probe the left side
// morsel-parallel in input order. Matches are emitted in build-side input
// order per key, so the concatenated morsel outputs replay the serial
// nested emit exactly.
StatusOr<std::vector<Record>> RunJoin(const Engine& eng,
                                      const Activity& activity,
                                      const std::vector<Schema>& in_schemas,
                                      const std::vector<Record>& left,
                                      const std::vector<Record>& right) {
  const auto& p = activity.params_as<JoinParams>();
  ETLOPT_ASSIGN_OR_RETURN(std::vector<size_t> left_key,
                          AttrIndices(in_schemas[0], p.key_attrs));
  ETLOPT_ASSIGN_OR_RETURN(std::vector<size_t> right_key,
                          AttrIndices(in_schemas[1], p.key_attrs));
  // Passthrough: right attributes that are not join keys, in schema order.
  std::vector<size_t> right_pass;
  for (size_t i = 0; i < in_schemas[1].size(); ++i) {
    const auto& name = in_schemas[1].attribute(i).name;
    if (std::find(p.key_attrs.begin(), p.key_attrs.end(), name) ==
        p.key_attrs.end()) {
      right_pass.push_back(i);
    }
  }

  ETLOPT_ASSIGN_OR_RETURN(
      PartitionIndices parts,
      HashPartitionIndices(right, in_schemas[1], p.key_attrs,
                           eng.num_partitions, eng.morsel_size, eng.pool));
  eng.stats->exchange_partitions += parts.size();
  eng.stats->exchanged_rows += left.size() + right.size();

  using ShardIndex = std::map<std::vector<Value>, std::vector<uint32_t>>;
  std::vector<ShardIndex> shards(parts.size());
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      parts.size(), [&](size_t pt, size_t worker) -> Status {
        for (uint32_t i : parts[pt]) {
          std::vector<Value> key = ExtractKey(right[i], right_key);
          // NULL keys never join (SQL semantics).
          if (std::any_of(key.begin(), key.end(),
                          [](const Value& v) { return v.is_null(); })) {
            continue;
          }
          shards[pt][std::move(key)].push_back(i);
        }
        eng.CountRows(worker, parts[pt].size());
        return Status::OK();
      }));

  std::vector<Morsel> morsels = MakeMorsels(left.size(), eng.morsel_size);
  eng.stats->streaming_morsels += morsels.size();
  std::vector<std::vector<Record>> outs(morsels.size());
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      morsels.size(), [&](size_t m, size_t worker) -> Status {
        std::vector<Record>& out = outs[m];
        for (size_t i = morsels[m].begin; i < morsels[m].end; ++i) {
          std::vector<Value> key = ExtractKey(left[i], left_key);
          if (std::any_of(key.begin(), key.end(),
                          [](const Value& v) { return v.is_null(); })) {
            continue;
          }
          const ShardIndex& shard =
              shards[PartitionOfKey(left[i], left_key, parts.size())];
          auto hit = shard.find(key);
          if (hit == shard.end()) continue;
          for (uint32_t r : hit->second) {
            Record nr = left[i];
            for (size_t src : right_pass) nr.Append(right[r].value(src));
            out.push_back(std::move(nr));
          }
        }
        eng.CountRows(worker, morsels[m].size());
        return Status::OK();
      }));
  size_t total = 0;
  for (const auto& o : outs) total += o.size();
  std::vector<Record> out;
  out.reserve(total);
  for (auto& o : outs) {
    for (auto& r : o) out.push_back(std::move(r));
  }
  return out;
}

// Bag difference / intersection: realign the right side into the output
// layout, exchange *both* sides on the whole record (equal records land
// in the same partition), replay the serial count-and-decrement logic per
// partition over ascending row indices, and rebuild the kept left rows in
// input order.
StatusOr<std::vector<Record>> RunDiffIntersect(
    const Engine& eng, const Activity& activity,
    const std::vector<Schema>& in_schemas, const Schema& out_schema,
    const std::vector<Record>& left, const std::vector<Record>& right) {
  ETLOPT_ASSIGN_OR_RETURN(
      std::vector<Record> right_aligned,
      ParallelRealign(eng, right, in_schemas[1], out_schema));
  const std::vector<std::string> whole_record;  // empty = whole record
  ETLOPT_ASSIGN_OR_RETURN(
      PartitionIndices left_parts,
      HashPartitionIndices(left, in_schemas[0], whole_record,
                           eng.num_partitions, eng.morsel_size, eng.pool));
  ETLOPT_ASSIGN_OR_RETURN(
      PartitionIndices right_parts,
      HashPartitionIndices(right_aligned, out_schema, whole_record,
                           eng.num_partitions, eng.morsel_size, eng.pool));
  eng.stats->exchange_partitions += left_parts.size();
  eng.stats->exchanged_rows += left.size() + right_aligned.size();

  const bool keep_matched = activity.kind() == ActivityKind::kIntersection;
  std::vector<uint8_t> keep(left.size(), 0);
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      left_parts.size(), [&](size_t pt, size_t worker) -> Status {
        std::map<Record, int64_t> right_counts;
        for (uint32_t i : right_parts[pt]) ++right_counts[right_aligned[i]];
        for (uint32_t i : left_parts[pt]) {
          auto it = right_counts.find(left[i]);
          bool matched = it != right_counts.end() && it->second > 0;
          if (matched) --it->second;
          if (matched == keep_matched) keep[i] = 1;
        }
        eng.CountRows(worker,
                      left_parts[pt].size() + right_parts[pt].size());
        return Status::OK();
      }));
  std::vector<Record> out;
  for (size_t i = 0; i < left.size(); ++i) {
    if (keep[i]) out.push_back(left[i]);
  }
  return out;
}

StatusOr<std::vector<Record>> RunMember(const Engine& eng,
                                        const Activity& activity,
                                        const std::vector<Schema>& in_schemas,
                                        const std::vector<Record>& left,
                                        const std::vector<Record>* right) {
  ETLOPT_ASSIGN_OR_RETURN(Schema out_schema,
                          activity.ComputeOutputSchema(in_schemas));
  switch (activity.kind()) {
    case ActivityKind::kUnion:
      return RunUnion(eng, in_schemas, out_schema, left, *right);
    case ActivityKind::kJoin:
      return RunJoin(eng, activity, in_schemas, left, *right);
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection:
      return RunDiffIntersect(eng, activity, in_schemas, out_schema, left,
                              *right);
    case ActivityKind::kPrimaryKeyCheck:
      return RunPkCheck(eng, activity, in_schemas[0], left);
    case ActivityKind::kAggregation:
      return RunAggregation(eng, activity, in_schemas[0], left);
    default:
      return RunStreaming(eng, activity, in_schemas[0], left);
  }
}

}  // namespace

StatusOr<ExecutionResult> ExecuteParallel(const Workflow& workflow,
                                          const ExecutionInput& input,
                                          const ParallelOptions& options,
                                          ParallelStats* stats) {
  if (!workflow.fresh()) {
    return Status::FailedPrecondition(
        "workflow must pass Refresh() before execution");
  }
  const size_t threads = options.num_threads != 0
                             ? options.num_threads
                             : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  ParallelStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = ParallelStats{};
  stats->num_threads = pool.num_threads();
  stats->worker_rows.assign(pool.num_threads(), 0);

  Engine eng;
  eng.pool = &pool;
  eng.morsel_size =
      options.morsel_size != 0 ? options.morsel_size : kDefaultMorselSize;
  eng.num_partitions =
      options.num_partitions != 0
          ? options.num_partitions
          : std::min<size_t>(64, pool.num_threads() * 4);
  eng.ctx = &input.context;
  eng.stats = stats;

  ExecutionResult result;
  CachePlan plan(workflow, input, options.cache);
  std::map<NodeId, std::vector<Record>> flows;
  std::map<NodeId, size_t> remaining_consumers;
  for (NodeId id : workflow.NodeIds()) {
    remaining_consumers[id] = workflow.Consumers(id).size();
  }
  // Hands a provider's rows to one consumer: the last consumer takes the
  // buffer by move so peak memory tracks live edges, earlier ones copy.
  auto take_input = [&](NodeId p) {
    auto it = flows.find(p);
    if (--remaining_consumers[p] == 0) {
      std::vector<Record> rows = std::move(it->second);
      flows.erase(it);
      return rows;
    }
    return it->second;
  };

  for (NodeId id : workflow.TopoOrder()) {
    if (plan.Skip(id)) continue;
    if (const CachedSubgraphResult* served = plan.Served(id)) {
      flows[id] = served->rows;
      continue;
    }
    std::vector<NodeId> providers = workflow.Providers(id);
    if (workflow.IsRecordSet(id)) {
      const RecordSetDef& def = workflow.recordset(id);
      std::vector<Record> rows;
      if (providers.empty()) {
        auto it = input.source_data.find(def.name);
        if (it == input.source_data.end()) {
          return Status::NotFound("no data bound for source recordset '" +
                                  def.name + "'");
        }
        for (const auto& r : it->second) {
          if (r.size() != def.schema.size()) {
            return Status::InvalidArgument(StrFormat(
                "source '%s': record arity %zu != schema arity %zu",
                def.name.c_str(), r.size(), def.schema.size()));
          }
        }
        ETLOPT_ASSIGN_OR_RETURN(
            rows, ParallelRealign(eng, it->second, def.schema, def.schema));
      } else {
        std::vector<Record> upstream = take_input(providers[0]);
        const Schema& from = workflow.OutputSchema(providers[0]);
        if (from == def.schema) {
          rows = std::move(upstream);
        } else {
          ETLOPT_ASSIGN_OR_RETURN(
              rows, ParallelRealign(eng, upstream, from, def.schema));
        }
      }
      if (workflow.Consumers(id).empty()) {
        result.target_data.emplace(def.name, std::move(rows));
      } else {
        flows[id] = std::move(rows);
      }
      continue;
    }

    // Activity node: run the chain member by member; the first member may
    // be binary, later members are unary by the chain invariant.
    ETLOPT_FAULT_HIT(FaultSite::kActivityExecute);
    std::vector<std::vector<Record>> inputs;
    inputs.reserve(providers.size());
    for (NodeId p : providers) inputs.push_back(take_input(p));
    const ActivityChain& chain = workflow.chain(id);
    std::vector<Schema> in_schemas = workflow.InputSchemas(id);
    std::vector<Record> cur;
    Schema cur_schema;
    for (size_t m = 0; m < chain.size(); ++m) {
      const Activity& member = chain.members()[m].activity;
      std::vector<Schema> member_schemas =
          m == 0 ? in_schemas : std::vector<Schema>{cur_schema};
      const std::vector<Record>& left = m == 0 ? inputs[0] : cur;
      const std::vector<Record>* right =
          (m == 0 && member.is_binary()) ? &inputs[1] : nullptr;
      auto rows = RunMember(eng, member, member_schemas, left, right);
      if (!rows.ok()) {
        return rows.status().WithContext(
            StrFormat("executing node %d ('%s')", id,
                      chain.label().c_str()));
      }
      ETLOPT_ASSIGN_OR_RETURN(cur_schema,
                              member.ComputeOutputSchema(member_schemas));
      cur = std::move(rows).value();
    }
    result.rows_out[id] = cur.size();
    flows[id] = std::move(cur);
    plan.OnActivityComputed(id, flows[id], result.rows_out);
  }
  plan.Finalize(result);
  return result;
}

}  // namespace etlopt
