// Vectorized executor: columnar batch execution with the row engines as
// the correctness oracle.
//
// The fourth independent implementation of the activity semantics (after
// the materializing, pipelined and morsel-parallel engines). Data flows
// between nodes as ordered lists of RecordBatches (src/columnar/): rows
// are batched once at every source, kernels process whole batches, and
// targets flatten back to rows only at the very end. Hot activity kinds
// — Selection (for predicates vector_eval can compile), NotNull,
// DomainCheck, Projection, PrimaryKeyCheck, Aggregation, Union and Join
// — run through the vectorized kernels; everything else (Function,
// SurrogateKey, Difference/Intersection, and Selections with
// unsupported predicate shapes) falls back per-activity to the row
// path: flatten, Activity::Execute, re-batch. The fallback keeps the
// engine total over every workflow the row engines accept, with
// identical results and identical errors.
//
// Parallelism reuses the PR 1 ThreadPool/morsel structure, with batches
// as the morsels: streaming kernels fan out one task per batch, and the
// blocking kinds (PK, aggregation, join build) exchange over hash
// partitions of the batches' cached key hashes — each key is owned by
// exactly one partition that scans batches in flow order, so keep-first
// decisions and accumulation order match the serial scan exactly.
//
// Output contract: byte-identical to ExecuteWorkflow — same rows, same
// order, same rows_out — for every workflow, at any thread count, batch
// size or partition count. The four-way engine-agreement property test
// (tests/engine/vectorized_agreement_test.cc) enforces this against the
// serial and morsel-parallel engines.

#ifndef ETLOPT_ENGINE_VECTORIZED_H_
#define ETLOPT_ENGINE_VECTORIZED_H_

#include "engine/executor.h"

namespace etlopt {

struct VectorizedOptions {
  /// Worker threads. 0 means ThreadPool::DefaultThreads(); 1 is the
  /// vectorized-serial engine of the agreement property.
  size_t num_threads = 0;
  /// Rows per batch at sources and re-batching points. 0 means
  /// kDefaultBatchSize. The produced data is identical whatever the
  /// value; it only shapes task granularity.
  size_t batch_size = 0;
  /// Partition count for the hash exchanges of blocking kernels.
  /// 0 derives one from num_threads. Content-neutral, like batch_size.
  size_t num_partitions = 0;
  /// Shared-result-cache knobs (off when cache == nullptr); content-
  /// neutral like every other knob here.
  CacheOptions cache;
};

/// Observability counters for a vectorized run. Totals are deterministic
/// for fixed options.
struct VectorizedStats {
  /// Worker threads the run actually used.
  size_t num_threads = 0;
  /// Batch tasks dispatched through vectorized kernels.
  size_t batches = 0;
  /// Chain members executed via vectorized kernels.
  size_t vectorized_members = 0;
  /// Chain members that fell back to the row path.
  size_t fallback_members = 0;
  /// Input rows that crossed vectorized members.
  size_t vectorized_rows = 0;
  /// Input rows that crossed fallback members.
  size_t fallback_rows = 0;
};

/// Runs `workflow` (must be fresh) over `input` with the vectorized
/// engine. The result matches ExecuteWorkflow byte-for-byte (target_data
/// rows and order, and rows_out).
StatusOr<ExecutionResult> ExecuteVectorized(
    const Workflow& workflow, const ExecutionInput& input,
    const VectorizedOptions& options = {}, VectorizedStats* stats = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_VECTORIZED_H_
