// RecoverableExecutor: fault-tolerant workflow execution.
//
// The nightly ETL window makes a mid-run failure that forces a full
// restart the single most expensive event in production. This layer
// wraps the engines with the failure story:
//
//  * per-activity retry with exponential, jittered backoff absorbs
//    transient failures (Unavailable / IOError — what flaky storage and
//    the fault injector produce);
//  * recovery points: at materialization boundaries (staging/target
//    recordsets — optionally every node) the data flow is checkpointed
//    to disk in a checksummed binary format, written atomically
//    (temp file + rename). A crashed run re-executed over the same
//    workflow and input resumes from the persisted checkpoints instead
//    of re-extracting;
//  * a wall-clock deadline for the whole run.
//
// The headline property (enforced by tests/engine/recovery_property_test
// and the nightly fault sweep): under ANY injected fault schedule, a
// RecoverableExecutor run either returns output byte-identical to the
// fault-free ExecuteWorkflow run, or a clean non-OK Status — never
// corrupt or partial output. Checkpoints are keyed by (workflow
// signature hash, input fingerprint) and verified by checksum on read;
// anything stale, truncated or bit-flipped is rejected and recomputed.

#ifndef ETLOPT_ENGINE_RECOVERY_H_
#define ETLOPT_ENGINE_RECOVERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/retry.h"
#include "cost/reliability_model.h"
#include "engine/executor.h"

namespace etlopt {

/// Where recovery points are taken.
enum class CheckpointPolicy : int {
  /// No checkpoints (retry + deadline only).
  kNone = 0,
  /// Staging and target recordset nodes — the paper's materialization
  /// boundaries.
  kBoundaries = 1,
  /// Every node's output (the materializing engine materializes every
  /// edge anyway); maximizes resumability at the cost of checkpoint I/O.
  kAllNodes = 2,
  /// Exactly the nodes the optimizer chose (RecoveryOptions::recovery_plan
  /// — a reliability-aware search's RecoveryPointPlan, matched by
  /// priority label).
  kRecoveryPlan = 3,
};

struct RecoveryOptions {
  /// Directory for recovery points. Empty disables checkpointing; it is
  /// created if missing.
  std::string checkpoint_dir;
  CheckpointPolicy checkpoint_policy = CheckpointPolicy::kBoundaries;
  /// Per-node retry of transient failures.
  RetryPolicy retry;
  /// Wall-clock budget for one Execute() call, retries and backoff
  /// included. 0 = unlimited; negative is rejected.
  int64_t deadline_millis = 0;
  /// Seed for backoff jitter (reproducible retry timing).
  uint64_t retry_seed = 42;
  /// Remove this run's checkpoints after a successful Execute().
  bool remove_checkpoints_on_success = true;
  /// The optimizer's recovery-point decision, honored when
  /// checkpoint_policy == kRecoveryPlan: checkpoints are taken at exactly
  /// the activity nodes whose priority labels the plan names (labels are
  /// stable across transitions and serialization; raw NodeIds are not).
  RecoveryPointPlan recovery_plan;
  /// Bounded retention for stale sibling run directories (crashed runs
  /// over other workflows/inputs that were never resumed): after a
  /// successful Execute(), only the `max_retained_runs` most recently
  /// written stale run_* directories under checkpoint_dir survive, oldest
  /// deleted first. The current run's directory is never counted against
  /// the cap (remove_checkpoints_on_success governs it).
  size_t max_retained_runs = 8;
};

/// Rejects nonsensical configurations — zero/negative backoff,
/// max-attempts or deadline values — with InvalidArgument (mirrors
/// ValidateSearchOptions; Execute() calls this before any work).
Status ValidateRecoveryOptions(const RecoveryOptions& options);

/// What one Execute() did, for observability and tests.
struct RecoveryStats {
  uint64_t retries = 0;               // node re-attempts after transient errors
  size_t checkpoints_written = 0;
  size_t checkpoints_loaded = 0;      // valid recovery points consumed
  size_t checkpoints_rejected = 0;    // present but stale/corrupt/unreadable
  size_t checkpoint_write_failures = 0;  // best-effort writes that failed
  size_t nodes_executed = 0;
  size_t nodes_skipped = 0;           // served from recovery points
  bool resumed = false;               // at least one checkpoint consumed
  size_t stale_runs_pruned = 0;       // sibling run dirs GC'd on success
  /// Work-unit ledger for recovery-cost measurement (the chaos-soak
  /// bench prices redone work with the cost model): executions per
  /// activity node across this call, and checkpoint rows moved.
  std::map<NodeId, uint64_t> node_executions;
  uint64_t checkpoint_rows_written = 0;
  uint64_t checkpoint_rows_read = 0;
};

/// One persisted recovery point: the data flow at `node`, plus the
/// rows_out bookkeeping of everything executed before it (so a resumed
/// run reports the identical ExecutionResult). Exposed for the format
/// tests; production code goes through RecoverableExecutor.
struct Checkpoint {
  uint64_t workflow_hash = 0;  // Workflow::SignatureHash() of the run
  uint64_t input_hash = 0;     // ExecutionInputFingerprint of the run
  NodeId node = kInvalidNode;
  std::vector<Record> rows;
  std::map<NodeId, size_t> rows_out;
};

/// Fingerprint of an execution input (source data + lookup tables):
/// equal inputs yield equal fingerprints, so checkpoints from a run over
/// different data are never resumed from.
uint64_t ExecutionInputFingerprint(const ExecutionInput& input);

/// Checksummed binary encoding ("ETLCKPT1" magic, length-prefixed rows,
/// doubles as bit patterns, trailing FNV-64 over the payload). The round
/// trip is exact; any truncation or bit flip fails ParseCheckpoint with
/// a clean Status.
std::string SerializeCheckpoint(const Checkpoint& checkpoint);
StatusOr<Checkpoint> ParseCheckpoint(std::string_view bytes);

class RecoverableExecutor {
 public:
  explicit RecoverableExecutor(RecoveryOptions options = {});

  /// Runs `workflow` (must be fresh) over `input` with retry, deadline
  /// and recovery points. On success the result is byte-identical to
  /// ExecuteWorkflow(workflow, input) — including when the run resumed
  /// from checkpoints of a previously crashed attempt.
  StatusOr<ExecutionResult> Execute(const Workflow& workflow,
                                    const ExecutionInput& input,
                                    RecoveryStats* stats = nullptr);

  /// Removes the recovery points of (workflow, input), if any.
  Status ClearCheckpoints(const Workflow& workflow,
                          const ExecutionInput& input) const;

  const RecoveryOptions& options() const { return options_; }

 private:
  std::string RunDir(uint64_t workflow_hash, uint64_t input_hash) const;

  RecoveryOptions options_;
};

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_RECOVERY_H_
