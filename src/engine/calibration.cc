#include "engine/calibration.h"

#include "common/macros.h"

namespace etlopt {

StatusOr<CalibrationResult> CalibrateSelectivities(
    const Workflow& workflow, const ExecutionInput& input) {
  Workflow calibrated = workflow;
  if (!calibrated.fresh()) {
    ETLOPT_RETURN_NOT_OK(calibrated.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(ExecutionResult run,
                          ExecuteWorkflow(calibrated, input));

  // Rows entering each node: sources from the bound data, activities and
  // downstream recordsets from their providers' observed outputs.
  std::map<NodeId, double> rows_out;
  for (NodeId id : calibrated.TopoOrder()) {
    if (calibrated.IsRecordSet(id)) {
      std::vector<NodeId> providers = calibrated.Providers(id);
      if (providers.empty()) {
        auto it = input.source_data.find(calibrated.recordset(id).name);
        rows_out[id] = it == input.source_data.end()
                           ? 0.0
                           : static_cast<double>(it->second.size());
      } else {
        rows_out[id] = rows_out.at(providers[0]);
      }
    } else {
      rows_out[id] = static_cast<double>(run.rows_out.at(id));
    }
  }

  CalibrationResult result;
  for (NodeId id : calibrated.ActivityNodeIds()) {
    if (!calibrated.chain(id).is_unary()) continue;  // binary: keep assigned
    double in_rows = 0;
    for (NodeId p : calibrated.Providers(id)) in_rows += rows_out.at(p);
    if (in_rows <= 0) continue;  // no evidence; keep assigned selectivity
    double measured = rows_out.at(id) / in_rows;
    // Selectivities live in (0, 1]; clamp away from zero so cost models
    // never see an impossible (or zero) flow.
    measured = std::min(1.0, std::max(measured, 1e-6));
    result.measured_selectivity[id] = measured;
    ActivityChain* chain = calibrated.mutable_chain(id);
    // Attribute the whole chain's measured selectivity to the first
    // member; the rest become pass-through for costing purposes.
    chain->ReplaceMemberActivity(
        0, chain->members()[0].activity.WithSelectivity(measured));
    for (size_t m = 1; m < chain->size(); ++m) {
      chain->ReplaceMemberActivity(
          m, chain->members()[m].activity.WithSelectivity(1.0));
    }
  }
  ETLOPT_RETURN_NOT_OK(calibrated.Refresh());
  result.calibrated = std::move(calibrated);
  return result;
}

}  // namespace etlopt
