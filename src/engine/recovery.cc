#include "engine/recovery.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/file_util.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "fault/fault_injector.h"
#include "records/record_io.h"

namespace etlopt {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

const char kCheckpointMagic[8] = {'E', 'T', 'L', 'C', 'K', 'P', 'T', '1'};

// Whether `id` is a recovery-point node under `policy`. `plan_nodes` is
// the resolved kRecoveryPlan node set (ignored for other policies).
bool IsCheckpointNode(const Workflow& workflow, NodeId id,
                      CheckpointPolicy policy,
                      const std::unordered_set<NodeId>& plan_nodes) {
  switch (policy) {
    case CheckpointPolicy::kNone:
      return false;
    case CheckpointPolicy::kBoundaries:
      return workflow.IsRecordSet(id) && !workflow.Providers(id).empty();
    case CheckpointPolicy::kAllNodes:
      return !workflow.IsRecordSet(id) ||
             !workflow.Providers(id).empty();
    case CheckpointPolicy::kRecoveryPlan:
      return plan_nodes.count(id) != 0;
  }
  return false;
}

// Resolves a RecoveryPointPlan's labels against `workflow`: the nodes
// whose priority labels the plan names. Labels survive transitions and
// serialization, raw NodeIds do not — so this is the only join the
// executor trusts.
std::unordered_set<NodeId> ResolvePlanNodes(const Workflow& workflow,
                                            const RecoveryPointPlan& plan) {
  std::unordered_set<NodeId> nodes;
  if (!plan.enabled) return nodes;
  std::unordered_set<std::string> wanted(plan.labels.begin(),
                                         plan.labels.end());
  for (NodeId id : workflow.TopoOrder()) {
    if (wanted.count(workflow.PriorityLabelOf(id)) != 0) nodes.insert(id);
  }
  return nodes;
}

// Bounded retention GC: after a successful run, only the
// `max_retained` most recently written *stale* sibling run_* directories
// under `checkpoint_dir` survive (oldest pruned first); `current_run_dir`
// is never touched here. Best-effort — GC failures never fail the run.
size_t PruneStaleRunDirs(const std::string& checkpoint_dir,
                         const std::string& current_run_dir,
                         size_t max_retained) {
  std::error_code ec;
  fs::directory_iterator it(
      checkpoint_dir, fs::directory_options::skip_permission_denied, ec);
  if (ec) return 0;
  std::vector<std::pair<fs::file_time_type, fs::path>> stale;
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) return 0;
    const fs::directory_entry& entry = *it;
    std::error_code entry_ec;
    if (!entry.is_directory(entry_ec) || entry_ec) continue;
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, "run_")) continue;
    if (entry.path() == fs::path(current_run_dir)) continue;
    fs::file_time_type mtime = entry.last_write_time(entry_ec);
    if (entry_ec) mtime = fs::file_time_type::min();
    stale.emplace_back(mtime, entry.path());
  }
  if (stale.size() <= max_retained) return 0;
  // Oldest first; path as tie-break so equal mtimes prune predictably.
  std::sort(stale.begin(), stale.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  size_t pruned = 0;
  for (size_t i = 0; i + max_retained < stale.size(); ++i) {
    std::error_code rm_ec;
    fs::remove_all(stale[i].second, rm_ec);
    if (!rm_ec) ++pruned;
  }
  return pruned;
}

std::string CheckpointPath(const std::string& run_dir, NodeId id) {
  return run_dir + "/node_" + std::to_string(static_cast<long long>(id)) +
         ".ckpt";
}

}  // namespace

Status ValidateRecoveryOptions(const RecoveryOptions& options) {
  ETLOPT_RETURN_NOT_OK(ValidateRetryPolicy(options.retry));
  if (options.deadline_millis < 0) {
    return Status::InvalidArgument(StrFormat(
        "recovery: deadline_millis must be >= 0 (0 = unlimited), got %lld",
        static_cast<long long>(options.deadline_millis)));
  }
  if (options.checkpoint_policy == CheckpointPolicy::kRecoveryPlan &&
      !options.recovery_plan.enabled) {
    return Status::InvalidArgument(
        "recovery: checkpoint_policy kRecoveryPlan requires an enabled "
        "recovery_plan (run the optimizer with SearchOptions::reliability)");
  }
  return Status::OK();
}

uint64_t ExecutionInputFingerprint(const ExecutionInput& input) {
  uint64_t h = kFnv1aBasis;
  std::string buf;
  auto mix = [&h, &buf]() {
    h = Fnv1a64(buf, h);
    buf.clear();
  };
  for (const auto& [name, rows] : input.source_data) {
    PutU32(buf, static_cast<uint32_t>(name.size()));
    buf += name;
    PutU64(buf, rows.size());
    mix();
    for (const Record& r : rows) {
      PutRecord(buf, r);
      mix();
    }
  }
  for (const auto& [name, table] : input.context.lookups) {
    PutU32(buf, static_cast<uint32_t>(name.size()));
    buf += name;
    PutU64(buf, table.size());
    mix();
    for (const auto& [key, value] : table) {
      PutU32(buf, static_cast<uint32_t>(key.size()));
      for (const Value& v : key) PutValue(buf, v);
      PutValue(buf, value);
      mix();
    }
  }
  return h;
}

// Same bytes as SerializeCheckpoint, but from borrowed pieces — the hot
// write path serializes a node's rows in place instead of copying them
// into a Checkpoint first.
std::string SerializeCheckpointParts(uint64_t workflow_hash,
                                     uint64_t input_hash, NodeId node,
                                     const std::map<NodeId, size_t>& rows_out,
                                     const std::vector<Record>& rows) {
  std::string payload;
  PutU64(payload, workflow_hash);
  PutU64(payload, input_hash);
  PutU32(payload, static_cast<uint32_t>(node));
  PutU32(payload, static_cast<uint32_t>(rows_out.size()));
  for (const auto& [out_node, count] : rows_out) {
    PutU32(payload, static_cast<uint32_t>(out_node));
    PutU64(payload, count);
  }
  PutU64(payload, rows.size());
  for (const Record& r : rows) PutRecord(payload, r);

  std::string out(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutU64(out, payload.size());
  out += payload;
  PutU64(out, Fnv1a64(payload));
  return out;
}

std::string SerializeCheckpoint(const Checkpoint& checkpoint) {
  return SerializeCheckpointParts(checkpoint.workflow_hash,
                                  checkpoint.input_hash, checkpoint.node,
                                  checkpoint.rows_out, checkpoint.rows);
}

StatusOr<Checkpoint> ParseCheckpoint(std::string_view bytes) {
  if (bytes.size() < sizeof(kCheckpointMagic) + 16 ||
      std::memcmp(bytes.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::InvalidArgument("checkpoint: bad magic or truncated file");
  }
  BinaryReader header(bytes.substr(sizeof(kCheckpointMagic)));
  ETLOPT_ASSIGN_OR_RETURN(uint64_t payload_size, header.U64());
  if (payload_size != header.remaining() - 8 || header.remaining() < 8) {
    return Status::InvalidArgument("checkpoint: length mismatch (truncated)");
  }
  std::string_view payload =
      bytes.substr(sizeof(kCheckpointMagic) + 8, payload_size);
  BinaryReader checksum_reader(
      bytes.substr(sizeof(kCheckpointMagic) + 8 + payload_size));
  ETLOPT_ASSIGN_OR_RETURN(uint64_t recorded_checksum, checksum_reader.U64());
  if (Fnv1a64(payload) != recorded_checksum) {
    return Status::InvalidArgument("checkpoint: checksum mismatch");
  }

  BinaryReader reader(payload);
  Checkpoint checkpoint;
  ETLOPT_ASSIGN_OR_RETURN(checkpoint.workflow_hash, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(checkpoint.input_hash, reader.U64());
  ETLOPT_ASSIGN_OR_RETURN(uint32_t node, reader.U32());
  checkpoint.node = static_cast<NodeId>(node);
  ETLOPT_ASSIGN_OR_RETURN(uint32_t rows_out_size, reader.U32());
  for (uint32_t i = 0; i < rows_out_size; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(uint32_t out_node, reader.U32());
    ETLOPT_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
    checkpoint.rows_out[static_cast<NodeId>(out_node)] =
        static_cast<size_t>(count);
  }
  ETLOPT_ASSIGN_OR_RETURN(uint64_t row_count, reader.U64());
  // Bound the reserve by what the payload could possibly hold (each row
  // costs at least 4 bytes), so a corrupt count cannot force a huge
  // allocation before the per-row bounds checks fire.
  checkpoint.rows.reserve(static_cast<size_t>(
      std::min<uint64_t>(row_count, reader.remaining() / 4)));
  for (uint64_t i = 0; i < row_count; ++i) {
    ETLOPT_ASSIGN_OR_RETURN(uint32_t arity, reader.U32());
    Record record;
    for (uint32_t c = 0; c < arity; ++c) {
      ETLOPT_ASSIGN_OR_RETURN(Value v, ReadValue(reader));
      record.Append(std::move(v));
    }
    checkpoint.rows.push_back(std::move(record));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("checkpoint: trailing content");
  }
  return checkpoint;
}

RecoverableExecutor::RecoverableExecutor(RecoveryOptions options)
    : options_(std::move(options)) {}

std::string RecoverableExecutor::RunDir(uint64_t workflow_hash,
                                        uint64_t input_hash) const {
  return options_.checkpoint_dir +
         StrFormat("/run_%016llx_%016llx",
                   static_cast<unsigned long long>(workflow_hash),
                   static_cast<unsigned long long>(input_hash));
}

StatusOr<ExecutionResult> RecoverableExecutor::Execute(
    const Workflow& workflow, const ExecutionInput& input,
    RecoveryStats* stats_out) {
  ETLOPT_RETURN_NOT_OK(ValidateRecoveryOptions(options_));
  if (!workflow.fresh()) {
    return Status::FailedPrecondition(
        "workflow must pass Refresh() before execution");
  }
  RecoveryStats stats;
  if (stats_out != nullptr) *stats_out = stats;
  const Clock::time_point start = Clock::now();
  auto over_deadline = [&]() {
    if (options_.deadline_millis == 0) return false;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start)
               .count() >= options_.deadline_millis;
  };
  Rng rng(options_.retry_seed);
  const bool checkpointing =
      !options_.checkpoint_dir.empty() &&
      options_.checkpoint_policy != CheckpointPolicy::kNone;
  const uint64_t workflow_hash = workflow.SignatureHash();
  const uint64_t input_hash = ExecutionInputFingerprint(input);
  const std::string run_dir = RunDir(workflow_hash, input_hash);
  const std::unordered_set<NodeId> plan_nodes =
      options_.checkpoint_policy == CheckpointPolicy::kRecoveryPlan
          ? ResolvePlanNodes(workflow, options_.recovery_plan)
          : std::unordered_set<NodeId>();

  const std::vector<NodeId>& topo = workflow.TopoOrder();

  // Phases 1+2: decide which nodes must be produced and lazily load the
  // recovery points that decision rests on. Targets are always needed; a
  // needed node without a recovery point needs all its providers. Only
  // *needed* checkpoint files are read and parsed — a resume that can
  // serve from a shallow frontier must not pay for deserializing every
  // file a crashed run left behind. A needed checkpoint that fails to
  // read or validate is rejected (its node gets recomputed), which can
  // widen the needed set, so the two steps iterate until stable; each
  // round either finishes or permanently rejects a file, so the loop
  // terminates.
  std::unordered_map<NodeId, Checkpoint> loaded;
  std::unordered_set<NodeId> on_disk;
  std::unordered_set<NodeId> need;
  if (checkpointing) {
    for (NodeId id : topo) {
      if (!IsCheckpointNode(workflow, id, options_.checkpoint_policy,
                            plan_nodes)) {
        continue;
      }
      std::error_code ec;
      if (fs::exists(CheckpointPath(run_dir, id), ec) && !ec) {
        on_disk.insert(id);
      }
    }
  }
  for (bool stable = false; !stable;) {
    stable = true;
    need.clear();
    for (NodeId id : topo) {
      if (workflow.Consumers(id).empty()) need.insert(id);
    }
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      NodeId id = *it;
      if (need.count(id) == 0 || on_disk.count(id) != 0) continue;
      for (NodeId p : workflow.Providers(id)) need.insert(p);
    }
    for (NodeId id : topo) {
      if (on_disk.count(id) == 0 || need.count(id) == 0 ||
          loaded.count(id) != 0) {
        continue;
      }
      auto reject = [&]() {
        // Unreadable, truncated, bit-flipped, or from a different run:
        // never resumed from. The node is recomputed and the file
        // overwritten.
        on_disk.erase(id);
        ++stats.checkpoints_rejected;
        stable = false;
      };
      Status hook;
#ifndef ETLOPT_NO_FAULT_INJECTION
      if (FaultInjector::Global().armed()) {
        hook = FaultInjector::Global().Hit(FaultSite::kCheckpointRead);
      }
#endif
      if (!hook.ok()) {
        // A crash-point models the process dying here; a transient error
        // just means this recovery point is unreadable — recompute.
        if (IsInjectedCrash(hook)) return hook;
        reject();
        break;
      }
      std::ifstream in(CheckpointPath(run_dir, id), std::ios::binary);
      std::ostringstream buffer;
      if (in) buffer << in.rdbuf();
      if (!in || in.bad()) {
        reject();
        break;
      }
      StatusOr<Checkpoint> checkpoint = ParseCheckpoint(buffer.str());
      if (!checkpoint.ok() || checkpoint->workflow_hash != workflow_hash ||
          checkpoint->input_hash != input_hash || checkpoint->node != id) {
        reject();
        break;
      }
      loaded.emplace(id, std::move(checkpoint).value());
    }
  }

  // Phase 3: execute. Mirrors ExecuteWorkflow node for node; recovery
  // points substitute for whole subgraphs.
  ExecutionResult result;
  std::map<NodeId, std::vector<Record>> flows;
  for (NodeId id : topo) {
    if (over_deadline()) {
      return Status::DeadlineExceeded(StrFormat(
          "recoverable execution exceeded its %lld ms deadline",
          static_cast<long long>(options_.deadline_millis)));
    }
    const bool is_recordset = workflow.IsRecordSet(id);
    auto loaded_it = loaded.find(id);
    if (loaded_it != loaded.end()) {
      if (need.count(id) != 0) {
        flows[id] = std::move(loaded_it->second.rows);
        stats.resumed = true;
        ++stats.checkpoints_loaded;
        stats.checkpoint_rows_read += flows[id].size();
        if (!is_recordset) ++stats.nodes_skipped;
        // Fold the recovery point's rows_out bookkeeping in now (nodes
        // recomputed in this run win), so checkpoints written later in
        // this run snapshot complete state — a second crash must not
        // lose the counts of nodes this resume skipped.
        for (const auto& [node, count] : loaded_it->second.rows_out) {
          result.rows_out.emplace(node, count);
        }
      }
    } else if (need.count(id) == 0) {
      if (!is_recordset) ++stats.nodes_skipped;
      continue;
    } else {
      std::vector<NodeId> providers = workflow.Providers(id);
      std::vector<Record> rows;
      auto attempt = [&]() -> Status {
        rows.clear();
        if (is_recordset) {
          const RecordSetDef& def = workflow.recordset(id);
          if (providers.empty()) {
            auto it = input.source_data.find(def.name);
            if (it == input.source_data.end()) {
              return Status::NotFound(
                  "no data bound for source recordset '" + def.name + "'");
            }
            for (const auto& r : it->second) {
              if (r.size() != def.schema.size()) {
                return Status::InvalidArgument(StrFormat(
                    "source '%s': record arity %zu != schema arity %zu",
                    def.name.c_str(), r.size(), def.schema.size()));
              }
            }
            rows = it->second;
            return Status::OK();
          }
          ETLOPT_ASSIGN_OR_RETURN(
              rows,
              RealignRecords(flows.at(providers[0]),
                             workflow.OutputSchema(providers[0]), def.schema));
          return Status::OK();
        }
        ETLOPT_FAULT_HIT(FaultSite::kActivityExecute);
        std::vector<std::vector<Record>> inputs;
        inputs.reserve(providers.size());
        for (NodeId p : providers) inputs.push_back(flows.at(p));
        auto produced = workflow.chain(id).Execute(workflow.InputSchemas(id),
                                                   inputs, input.context);
        if (!produced.ok()) {
          return produced.status().WithContext(
              StrFormat("executing node %d ('%s')", id,
                        workflow.chain(id).label().c_str()));
        }
        rows = std::move(produced).value();
        return Status::OK();
      };
      Status status =
          RetryWithBackoff(options_.retry, rng,
                           StrFormat("node %d", id).c_str(), attempt,
                           &stats.retries);
      if (!status.ok()) {
        if (stats_out != nullptr) *stats_out = stats;
        return status;
      }
      if (!is_recordset) {
        result.rows_out[id] = rows.size();
        ++stats.nodes_executed;
        ++stats.node_executions[id];
      }
      flows[id] = std::move(rows);

      if (checkpointing &&
          IsCheckpointNode(workflow, id, options_.checkpoint_policy,
                           plan_nodes)) {
        // Serialized once, straight from the flow — no row copy, and
        // retries rewrite the same bytes.
        const std::string checkpoint_bytes = SerializeCheckpointParts(
            workflow_hash, input_hash, id, result.rows_out, flows[id]);
        auto write_attempt = [&]() -> Status {
          if (options_.checkpoint_policy == CheckpointPolicy::kRecoveryPlan) {
            ETLOPT_FAULT_HIT(FaultSite::kRecoveryPlaceCheckpoint);
          }
          ETLOPT_FAULT_HIT(FaultSite::kCheckpointWrite);
          std::error_code ec;
          fs::create_directories(run_dir, ec);
          if (ec) {
            return Status::IOError("cannot create checkpoint dir: " +
                                   run_dir + ": " + ec.message());
          }
          return WriteFileAtomic(CheckpointPath(run_dir, id),
                                 checkpoint_bytes);
        };
        Status write_status =
            RetryWithBackoff(options_.retry, rng, "checkpoint write",
                             write_attempt, &stats.retries);
        if (IsInjectedCrash(write_status)) {
          if (stats_out != nullptr) *stats_out = stats;
          return write_status;
        }
        if (write_status.ok()) {
          ++stats.checkpoints_written;
          stats.checkpoint_rows_written += flows[id].size();
        } else {
          // Checkpointing is best-effort: a run that cannot persist a
          // recovery point still completes, it just resumes from an
          // earlier point if it later crashes.
          ++stats.checkpoint_write_failures;
        }
      }
    }

    if (workflow.IsRecordSet(id) && workflow.Consumers(id).empty() &&
        need.count(id) != 0) {
      result.target_data.emplace(workflow.recordset(id).name, flows[id]);
    }
  }

  if (checkpointing) {
    if (options_.remove_checkpoints_on_success) {
      std::error_code ec;
      fs::remove_all(run_dir, ec);  // best-effort cleanup
    }
    stats.stale_runs_pruned = PruneStaleRunDirs(
        options_.checkpoint_dir, run_dir, options_.max_retained_runs);
  }
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

Status RecoverableExecutor::ClearCheckpoints(const Workflow& workflow,
                                             const ExecutionInput& input)
    const {
  if (options_.checkpoint_dir.empty()) return Status::OK();
  if (!workflow.fresh()) {
    return Status::FailedPrecondition(
        "workflow must pass Refresh() before checkpoint lookup");
  }
  const std::string run_dir =
      RunDir(workflow.SignatureHash(), ExecutionInputFingerprint(input));
  std::error_code ec;
  fs::remove_all(run_dir, ec);
  if (ec) {
    return Status::IOError("cannot remove checkpoints: " + run_dir + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace etlopt
