#include "engine/pipeline.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// Pull-based row iterator. Next() yields nullopt at end of stream.
class RowIterator {
 public:
  virtual ~RowIterator() = default;
  virtual StatusOr<std::optional<Record>> Next() = 0;
};

using RowIteratorPtr = std::unique_ptr<RowIterator>;

// Positional remapping of a row from one schema layout to another.
StatusOr<std::vector<size_t>> RealignMapping(const Schema& from,
                                             const Schema& to) {
  std::vector<size_t> mapping;
  mapping.reserve(to.size());
  for (const auto& a : to.attributes()) {
    auto idx = from.IndexOf(a.name);
    if (!idx.has_value()) {
      return Status::Internal("pipeline realign: missing attribute " + a.name);
    }
    mapping.push_back(*idx);
  }
  return mapping;
}

Record ApplyMapping(const Record& row, const std::vector<size_t>& mapping) {
  Record out;
  for (size_t idx : mapping) out.Append(row.value(idx));
  return out;
}

// Scans a bound source vector.
class ScanIterator final : public RowIterator {
 public:
  explicit ScanIterator(const std::vector<Record>* rows) : rows_(rows) {}

  StatusOr<std::optional<Record>> Next() override {
    if (pos_ >= rows_->size()) return std::optional<Record>();
    return std::optional<Record>((*rows_)[pos_++]);
  }

 private:
  const std::vector<Record>* rows_;
  size_t pos_ = 0;
};

// Streams one unary activity over its child. Filters, projections,
// functions, surrogate keys and PK checks are all row-at-a-time; the
// aggregation blocks (drains the child on first Next()).
class UnaryActivityIterator final : public RowIterator {
 public:
  UnaryActivityIterator(const Activity* activity, Schema input_schema,
                        RowIteratorPtr child, const ExecutionContext* ctx,
                        size_t* rows_out, PipelineStats* stats)
      : activity_(activity), input_schema_(std::move(input_schema)),
        child_(std::move(child)), ctx_(ctx), rows_out_(rows_out),
        stats_(stats) {}

  StatusOr<std::optional<Record>> Next() override {
    if (activity_->kind() == ActivityKind::kAggregation) return NextBlocking();
    while (true) {
      ETLOPT_ASSIGN_OR_RETURN(std::optional<Record> row, child_->Next());
      if (!row.has_value()) return std::optional<Record>();
      ETLOPT_ASSIGN_OR_RETURN(std::optional<Record> out,
                              ProcessRow(std::move(*row)));
      if (out.has_value()) {
        if (rows_out_ != nullptr) ++*rows_out_;
        return out;
      }
    }
  }

 private:
  // Row-at-a-time semantics for the streaming templates, implemented via
  // single-row batches through Activity::Execute so the two executors can
  // never diverge on per-row behaviour.
  StatusOr<std::optional<Record>> ProcessRow(Record row) {
    if (activity_->kind() == ActivityKind::kPrimaryKeyCheck) {
      // Keep-first streams with a seen-set; Execute() on a single row
      // cannot carry that state, so handle the key memory here.
      const auto& p = activity_->params_as<PrimaryKeyParams>();
      std::vector<Value> key;
      key.reserve(p.key_attrs.size());
      for (const auto& a : p.key_attrs) {
        auto idx = input_schema_.IndexOf(a);
        if (!idx.has_value()) return Status::Internal("pk: missing attr " + a);
        key.push_back(row.value(*idx));
      }
      if (!seen_keys_.emplace(std::move(key), true).second) {
        return std::optional<Record>();
      }
      if (stats_ != nullptr) ++stats_->buffered_rows;  // key memory grows
      return std::optional<Record>(std::move(row));
    }
    std::vector<std::vector<Record>> input(1);
    input[0].push_back(std::move(row));
    ETLOPT_ASSIGN_OR_RETURN(
        std::vector<Record> out,
        activity_->Execute({input_schema_}, input, *ctx_));
    if (out.empty()) return std::optional<Record>();
    ETLOPT_CHECK(out.size() == 1);
    return std::optional<Record>(std::move(out[0]));
  }

  StatusOr<std::optional<Record>> NextBlocking() {
    if (!drained_) {
      std::vector<std::vector<Record>> input(1);
      while (true) {
        ETLOPT_ASSIGN_OR_RETURN(std::optional<Record> row, child_->Next());
        if (!row.has_value()) break;
        input[0].push_back(std::move(*row));
      }
      if (stats_ != nullptr) stats_->buffered_rows += input[0].size();
      ETLOPT_ASSIGN_OR_RETURN(
          buffered_, activity_->Execute({input_schema_}, input, *ctx_));
      drained_ = true;
    }
    if (pos_ >= buffered_.size()) return std::optional<Record>();
    if (rows_out_ != nullptr) ++*rows_out_;
    return std::optional<Record>(buffered_[pos_++]);
  }

  const Activity* activity_;
  Schema input_schema_;
  RowIteratorPtr child_;
  const ExecutionContext* ctx_;
  size_t* rows_out_;
  PipelineStats* stats_;

  // kPrimaryKeyCheck streaming state.
  std::map<std::vector<Value>, bool> seen_keys_;
  // kAggregation blocking state.
  bool drained_ = false;
  std::vector<Record> buffered_;
  size_t pos_ = 0;
};

// Streams the left child, then the right child (realigned): bag union.
class UnionIterator final : public RowIterator {
 public:
  UnionIterator(RowIteratorPtr left, RowIteratorPtr right,
                std::vector<size_t> right_mapping, size_t* rows_out)
      : left_(std::move(left)), right_(std::move(right)),
        right_mapping_(std::move(right_mapping)), rows_out_(rows_out) {}

  StatusOr<std::optional<Record>> Next() override {
    if (!left_done_) {
      ETLOPT_ASSIGN_OR_RETURN(std::optional<Record> row, left_->Next());
      if (row.has_value()) {
        if (rows_out_ != nullptr) ++*rows_out_;
        return row;
      }
      left_done_ = true;
    }
    ETLOPT_ASSIGN_OR_RETURN(std::optional<Record> row, right_->Next());
    if (!row.has_value()) return std::optional<Record>();
    if (rows_out_ != nullptr) ++*rows_out_;
    return std::optional<Record>(ApplyMapping(*row, right_mapping_));
  }

 private:
  RowIteratorPtr left_;
  RowIteratorPtr right_;
  std::vector<size_t> right_mapping_;
  size_t* rows_out_;
  bool left_done_ = false;
};

// Blocking binary activities (join / difference / intersection): buffer
// the right side, stream the left through Activity::Execute in single-row
// probes for difference/intersection-correct bag semantics we instead
// fully delegate to the batch implementation with a streamed left drain.
class BinaryBlockingIterator final : public RowIterator {
 public:
  BinaryBlockingIterator(const Activity* activity,
                         std::vector<Schema> input_schemas,
                         RowIteratorPtr left, RowIteratorPtr right,
                         const ExecutionContext* ctx, size_t* rows_out,
                         PipelineStats* stats)
      : activity_(activity), input_schemas_(std::move(input_schemas)),
        left_(std::move(left)), right_(std::move(right)), ctx_(ctx),
        rows_out_(rows_out), stats_(stats) {}

  StatusOr<std::optional<Record>> Next() override {
    if (!drained_) {
      std::vector<std::vector<Record>> inputs(2);
      ETLOPT_RETURN_NOT_OK(Drain(left_.get(), &inputs[0]));
      ETLOPT_RETURN_NOT_OK(Drain(right_.get(), &inputs[1]));
      if (stats_ != nullptr) {
        stats_->buffered_rows += inputs[0].size() + inputs[1].size();
      }
      ETLOPT_ASSIGN_OR_RETURN(buffered_,
                              activity_->Execute(input_schemas_, inputs,
                                                 *ctx_));
      drained_ = true;
    }
    if (pos_ >= buffered_.size()) return std::optional<Record>();
    if (rows_out_ != nullptr) ++*rows_out_;
    return std::optional<Record>(buffered_[pos_++]);
  }

 private:
  static Status Drain(RowIterator* child, std::vector<Record>* slot) {
    while (true) {
      ETLOPT_ASSIGN_OR_RETURN(std::optional<Record> row, child->Next());
      if (!row.has_value()) return Status::OK();
      slot->push_back(std::move(*row));
    }
  }

  const Activity* activity_;
  std::vector<Schema> input_schemas_;
  RowIteratorPtr left_;
  RowIteratorPtr right_;
  const ExecutionContext* ctx_;
  size_t* rows_out_;
  PipelineStats* stats_;
  bool drained_ = false;
  std::vector<Record> buffered_;
  size_t pos_ = 0;
};

// Realigns rows into a recordset's declared layout.
class RealignIterator final : public RowIterator {
 public:
  RealignIterator(RowIteratorPtr child, std::vector<size_t> mapping,
                  bool identity)
      : child_(std::move(child)), mapping_(std::move(mapping)),
        identity_(identity) {}

  StatusOr<std::optional<Record>> Next() override {
    ETLOPT_ASSIGN_OR_RETURN(std::optional<Record> row, child_->Next());
    if (!row.has_value() || identity_) return row;
    return std::optional<Record>(ApplyMapping(*row, mapping_));
  }

 private:
  RowIteratorPtr child_;
  std::vector<size_t> mapping_;
  bool identity_;
};

}  // namespace

StatusOr<ExecutionResult> ExecutePipelined(const Workflow& workflow,
                                           const ExecutionInput& input,
                                           PipelineStats* stats) {
  if (!workflow.fresh()) {
    return Status::FailedPrecondition(
        "workflow must pass Refresh() before execution");
  }
  ExecutionResult result;
  PipelineStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // Build the iterator tree bottom-up in topological order. Activity
  // nodes have exactly one consumer, so every iterator is consumed once.
  std::map<NodeId, RowIteratorPtr> iterators;
  for (NodeId id : workflow.TopoOrder()) {
    std::vector<NodeId> providers = workflow.Providers(id);
    if (workflow.IsRecordSet(id)) {
      const RecordSetDef& def = workflow.recordset(id);
      if (providers.empty()) {
        auto it = input.source_data.find(def.name);
        if (it == input.source_data.end()) {
          return Status::NotFound("no data bound for source recordset '" +
                                  def.name + "'");
        }
        iterators[id] = std::make_unique<ScanIterator>(&it->second);
      } else {
        const Schema& from = workflow.OutputSchema(providers[0]);
        ETLOPT_ASSIGN_OR_RETURN(std::vector<size_t> mapping,
                                RealignMapping(from, def.schema));
        iterators[id] = std::make_unique<RealignIterator>(
            std::move(iterators.at(providers[0])), std::move(mapping),
            from == def.schema);
      }
      continue;
    }
    // Compose the chain member-by-member so every member streams
    // independently.
    const ActivityChain& chain = workflow.chain(id);
    size_t* chain_rows_out = &(result.rows_out[id] = 0);
    // Only the final member reports the node's output cardinality.
    size_t* rows_out = chain.size() == 1 ? chain_rows_out : nullptr;
    std::vector<Schema> in_schemas = workflow.InputSchemas(id);
    RowIteratorPtr cur;
    Schema cur_schema;
    const Activity& head = chain.front();
    if (head.is_binary()) {
      RowIteratorPtr left = std::move(iterators.at(providers[0]));
      RowIteratorPtr right = std::move(iterators.at(providers[1]));
      if (head.kind() == ActivityKind::kUnion) {
        ETLOPT_ASSIGN_OR_RETURN(
            std::vector<size_t> mapping,
            RealignMapping(in_schemas[1], in_schemas[0]));
        cur = std::make_unique<UnionIterator>(std::move(left),
                                              std::move(right),
                                              std::move(mapping), rows_out);
      } else {
        cur = std::make_unique<BinaryBlockingIterator>(
            &head, in_schemas, std::move(left), std::move(right),
            &input.context, rows_out, stats);
      }
    } else {
      cur = std::make_unique<UnaryActivityIterator>(
          &head, in_schemas[0], std::move(iterators.at(providers[0])),
          &input.context, rows_out, stats);
    }
    ETLOPT_ASSIGN_OR_RETURN(cur_schema, head.ComputeOutputSchema(in_schemas));
    for (size_t m = 1; m < chain.size(); ++m) {
      const Activity& member = chain.members()[m].activity;
      cur = std::make_unique<UnaryActivityIterator>(
          &member, cur_schema, std::move(cur), &input.context,
          m + 1 == chain.size() ? chain_rows_out : nullptr, stats);
      ETLOPT_ASSIGN_OR_RETURN(
          cur_schema,
          member.ComputeOutputSchema(std::vector<Schema>{cur_schema}));
    }
    iterators[id] = std::move(cur);
  }

  // Drain the targets.
  for (NodeId t : workflow.TargetRecordSets()) {
    std::vector<Record> rows;
    RowIterator* it = iterators.at(t).get();
    while (true) {
      ETLOPT_ASSIGN_OR_RETURN(std::optional<Record> row, it->Next());
      if (!row.has_value()) break;
      rows.push_back(std::move(*row));
    }
    result.target_data.emplace(workflow.recordset(t).name, std::move(rows));
  }

  // What the materializing executor would have buffered: one copy of
  // every activity's output.
  for (const auto& [id, n] : result.rows_out) {
    stats->materialized_equivalent += n;
  }
  return result;
}

}  // namespace etlopt
