#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "fault/fault_injector.h"

namespace etlopt {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void(size_t)> fn) {
  std::packaged_task<void(size_t)> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  while (true) {
    std::packaged_task<void(size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker_index);
  }
}

Status ThreadPool::ParallelFor(
    size_t n, const std::function<Status(size_t, size_t)>& fn) {
  if (n == 0) return Status::OK();
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  size_t error_item = n;
  Status error = Status::OK();

  auto drive = [&](size_t worker) {
    while (true) {
      size_t item = next.fetch_add(1, std::memory_order_relaxed);
      if (item >= n || failed.load(std::memory_order_relaxed)) return;
      Status s;
#ifndef ETLOPT_NO_FAULT_INJECTION
      if (FaultInjector::Global().armed()) {
        s = FaultInjector::Global().Hit(FaultSite::kThreadPoolTask);
      }
#endif
      if (s.ok()) {
        // A task that throws must neither wedge the pool nor silently
        // drop its item: the exception becomes a non-OK status, so
        // ParallelFor reports the failure and the worker survives.
        try {
          s = fn(item, worker);
        } catch (const std::exception& e) {
          s = Status::Internal(std::string("task threw: ") + e.what());
        } catch (...) {
          s = Status::Internal("task threw a non-exception object");
        }
      }
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        // Keep the error from the smallest item index so concurrent
        // failures report deterministically.
        if (item < error_item) {
          error_item = item;
          error = std::move(s);
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  // Enqueue all driver tasks under one lock and wake every worker at
  // once; per-driver Submit would take the lock and notify once per
  // driver, which shows up when ParallelFor runs in a tight loop (the
  // search frontier issues one small batch per expanded state).
  size_t drivers = std::min(n, num_threads());
  std::vector<std::future<void>> futures;
  futures.reserve(drivers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t d = 0; d < drivers; ++d) {
      std::packaged_task<void(size_t)> task(drive);
      futures.push_back(task.get_future());
      queue_.push_back(std::move(task));
    }
  }
  cv_.notify_all();
  for (auto& f : futures) f.wait();
  return error;
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace etlopt
