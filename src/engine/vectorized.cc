#include "engine/vectorized.h"

#include <algorithm>
#include <map>
#include <utility>

#include "columnar/kernels.h"
#include "columnar/record_batch.h"
#include "columnar/vector_eval.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "engine/parallel.h"
#include "engine/partition.h"
#include "engine/shared_cache_exec.h"
#include "engine/thread_pool.h"
#include "fault/fault_injector.h"

namespace etlopt {

namespace {

using BatchVec = std::vector<RecordBatch>;

// Shared run state threaded through the per-operator helpers.
struct VEngine {
  ThreadPool* pool = nullptr;
  size_t batch_size = kDefaultBatchSize;
  size_t num_partitions = 1;
  const ExecutionContext* ctx = nullptr;
  VectorizedStats* stats = nullptr;
};

size_t TotalRows(const BatchVec& batches) {
  size_t n = 0;
  for (const auto& b : batches) n += b.num_rows();
  return n;
}

// Empty batches are content-neutral; dropping them keeps task counts
// proportional to data, not to upstream batch boundaries.
void DropEmptyBatches(BatchVec* batches) {
  batches->erase(std::remove_if(batches->begin(), batches->end(),
                                [](const RecordBatch& b) {
                                  return b.num_rows() == 0;
                                }),
                 batches->end());
}

// Batches `rows` (one task per batch) under `schema`.
StatusOr<BatchVec> MakeBatches(const VEngine& eng, const Schema& schema,
                               const std::vector<Record>& rows) {
  std::vector<Morsel> morsels = MakeMorsels(rows.size(), eng.batch_size);
  eng.stats->batches += morsels.size();
  BatchVec out(morsels.size());
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      morsels.size(), [&](size_t m, size_t) -> Status {
        ETLOPT_FAULT_HIT(FaultSite::kVectorizedBatch);
        out[m] = RecordBatch::FromRows(schema, rows, morsels[m].begin,
                                       morsels[m].end);
        return Status::OK();
      }));
  return out;
}

// Column-level realign of every batch into `to`'s attribute order.
StatusOr<BatchVec> RealignBatches(const VEngine& eng, BatchVec batches,
                                  const Schema& from, const Schema& to) {
  if (from == to) return batches;
  ETLOPT_ASSIGN_OR_RETURN(std::vector<size_t> mapping,
                          kernels::ColumnMapping(from, to));
  eng.stats->batches += batches.size();
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      batches.size(), [&](size_t b, size_t) -> Status {
        ETLOPT_FAULT_HIT(FaultSite::kVectorizedBatch);
        batches[b] = batches[b].SelectColumns(mapping, to);
        return Status::OK();
      }));
  return batches;
}

// Precomputes each batch's cached key hashes (one task per batch) so the
// blocking kernels can read the caches concurrently afterwards — the
// cache itself is not thread-safe.
Status PrecomputeKeyHashes(const VEngine& eng, BatchVec& batches,
                           const std::vector<size_t>& key_cols) {
  eng.stats->batches += batches.size();
  return eng.pool->ParallelFor(
      batches.size(), [&](size_t b, size_t) -> Status {
        ETLOPT_FAULT_HIT(FaultSite::kVectorizedBatch);
        batches[b].KeyHashes(key_cols);
        return Status::OK();
      });
}

// A filter kind: one selection-vector task per batch, then compaction.
template <typename SelFn>
StatusOr<BatchVec> RunFilter(const VEngine& eng, BatchVec batches,
                             const SelFn& sel_of_batch) {
  eng.stats->batches += batches.size();
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      batches.size(), [&](size_t b, size_t) -> Status {
        ETLOPT_FAULT_HIT(FaultSite::kVectorizedBatch);
        ETLOPT_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                                sel_of_batch(batches[b]));
        if (sel.size() != batches[b].num_rows()) {
          batches[b] = batches[b].Gather(sel);
        }
        return Status::OK();
      }));
  DropEmptyBatches(&batches);
  return batches;
}

StatusOr<BatchVec> RunSelection(const VEngine& eng, const Activity& activity,
                                BatchVec batches) {
  const auto& p = activity.params_as<SelectionParams>();
  return RunFilter(eng, std::move(batches),
                   [&p](const RecordBatch& b) {
                     return kernels::SelectionFilter(*p.predicate, b);
                   });
}

StatusOr<BatchVec> RunNotNull(const VEngine& eng, size_t col,
                              BatchVec batches) {
  return RunFilter(eng, std::move(batches),
                   [col](const RecordBatch& b)
                       -> StatusOr<std::vector<uint32_t>> {
                     return kernels::NotNullFilter(b, col);
                   });
}

StatusOr<BatchVec> RunDomainCheck(const VEngine& eng, const Activity& activity,
                                  size_t col, BatchVec batches) {
  const auto& p = activity.params_as<DomainCheckParams>();
  return RunFilter(eng, std::move(batches),
                   [&](const RecordBatch& b) {
                     return kernels::DomainCheckFilter(
                         b, col, p.lo, p.hi, activity.label(), p.attr);
                   });
}

// Duplicate elimination: hash-partitioned keep-first over the batches'
// cached key hashes, then per-batch compaction of the keep bitmaps.
StatusOr<BatchVec> RunPkCheck(const VEngine& eng,
                              const std::vector<size_t>& key_cols,
                              BatchVec batches) {
  ETLOPT_RETURN_NOT_OK(PrecomputeKeyHashes(eng, batches, key_cols));
  std::vector<std::vector<uint8_t>> keep(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    keep[b].assign(batches[b].num_rows(), 0);
  }
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      eng.num_partitions, [&](size_t part, size_t) -> Status {
        kernels::PkKeepPartition(batches, key_cols, part, eng.num_partitions,
                                 &keep);
        return Status::OK();
      }));
  eng.stats->batches += batches.size();
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      batches.size(), [&](size_t b, size_t) -> Status {
        ETLOPT_FAULT_HIT(FaultSite::kVectorizedBatch);
        std::vector<uint32_t> sel;
        for (size_t i = 0; i < batches[b].num_rows(); ++i) {
          if (keep[b][i]) sel.push_back(static_cast<uint32_t>(i));
        }
        if (sel.size() != batches[b].num_rows()) {
          batches[b] = batches[b].Gather(sel);
        }
        return Status::OK();
      }));
  DropEmptyBatches(&batches);
  return batches;
}

// Aggregation: partitions own disjoint group keys and scan batches in
// flow order, so each AggAcc sees its rows exactly as the serial scan
// does; partition maps are key-sorted and disjoint, so a merge-sort of
// their entries reproduces the serial engines' global key order.
StatusOr<BatchVec> RunAggregation(const VEngine& eng, const Activity& activity,
                                  const Schema& in_schema,
                                  const Schema& out_schema, BatchVec batches) {
  const auto& p = activity.params_as<AggregationParams>();
  std::vector<size_t> group_cols, arg_cols;
  for (const auto& g : p.group_by) {
    auto idx = in_schema.IndexOf(g);
    if (!idx.has_value()) return Status::Internal("missing group attr: " + g);
    group_cols.push_back(*idx);
  }
  for (const auto& a : p.aggregates) {
    auto idx = in_schema.IndexOf(a.arg);
    if (!idx.has_value()) {
      return Status::Internal("missing agg attr: " + a.arg);
    }
    arg_cols.push_back(*idx);
  }

  const size_t parts = p.group_by.empty() ? 1 : eng.num_partitions;
  if (!p.group_by.empty()) {
    ETLOPT_RETURN_NOT_OK(PrecomputeKeyHashes(eng, batches, group_cols));
  }
  std::vector<kernels::GroupMap> part_groups(parts);
  ETLOPT_RETURN_NOT_OK(
      eng.pool->ParallelFor(parts, [&](size_t part, size_t) -> Status {
        part_groups[part] = kernels::AggregatePartition(
            batches, group_cols, arg_cols, part, parts);
        return Status::OK();
      }));

  // Merge: partition keys are disjoint, each map is key-sorted; collect
  // and sort to restore the serial std::map emission order.
  std::vector<std::pair<std::vector<Value>, std::vector<AggAcc>>> groups;
  for (auto& pg : part_groups) {
    for (auto& [key, accs] : pg) groups.emplace_back(key, std::move(accs));
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  BatchVec out;
  RecordBatch cur(out_schema);
  for (const auto& [key, accs] : groups) {
    Record r;
    for (const auto& k : key) r.Append(k);
    for (size_t i = 0; i < p.aggregates.size(); ++i) {
      r.Append(accs[i].Result(p.aggregates[i].fn));
    }
    cur.AppendRow(r);
    if (cur.num_rows() >= eng.batch_size) {
      out.push_back(std::move(cur));
      cur = RecordBatch(out_schema);
    }
  }
  if (cur.num_rows() > 0) out.push_back(std::move(cur));
  return out;
}

// Union: left batches pass through (the output schema is the left
// schema), right batches realign column-wise and append in order.
StatusOr<BatchVec> RunUnion(const VEngine& eng,
                            const std::vector<Schema>& in_schemas,
                            const Schema& out_schema, BatchVec left,
                            BatchVec right) {
  ETLOPT_ASSIGN_OR_RETURN(
      BatchVec right_aligned,
      RealignBatches(eng, std::move(right), in_schemas[1], out_schema));
  for (auto& b : right_aligned) left.push_back(std::move(b));
  return left;
}

// Join: hash-partitioned build index over the right batches, then one
// probe task per left batch emitting in left order (build order per key).
StatusOr<BatchVec> RunJoin(const VEngine& eng, const Activity& activity,
                           const std::vector<Schema>& in_schemas,
                           const Schema& out_schema, BatchVec left,
                           BatchVec right) {
  const auto& p = activity.params_as<JoinParams>();
  std::vector<size_t> left_key, right_key, right_pass;
  for (const auto& k : p.key_attrs) {
    auto li = in_schemas[0].IndexOf(k);
    auto ri = in_schemas[1].IndexOf(k);
    if (!li.has_value() || !ri.has_value()) {
      return Status::Internal("missing join key: " + k);
    }
    left_key.push_back(*li);
    right_key.push_back(*ri);
  }
  for (size_t i = 0; i < in_schemas[1].size(); ++i) {
    const auto& name = in_schemas[1].attribute(i).name;
    if (std::find(p.key_attrs.begin(), p.key_attrs.end(), name) ==
        p.key_attrs.end()) {
      right_pass.push_back(i);
    }
  }

  ETLOPT_RETURN_NOT_OK(PrecomputeKeyHashes(eng, right, right_key));
  ETLOPT_RETURN_NOT_OK(PrecomputeKeyHashes(eng, left, left_key));

  std::vector<kernels::JoinShard> shards(eng.num_partitions);
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      shards.size(), [&](size_t part, size_t) -> Status {
        shards[part] = kernels::JoinBuildPartition(right, right_key, part,
                                                   shards.size());
        return Status::OK();
      }));

  eng.stats->batches += left.size();
  ETLOPT_RETURN_NOT_OK(eng.pool->ParallelFor(
      left.size(), [&](size_t b, size_t) -> Status {
        ETLOPT_FAULT_HIT(FaultSite::kVectorizedBatch);
        left[b] = kernels::JoinProbeBatch(left[b], left_key, shards, right,
                                          right_pass, out_schema);
        return Status::OK();
      }));
  DropEmptyBatches(&left);
  return left;
}

// Row-path fallback for kinds without a vectorized kernel: flatten,
// Activity::Execute (the oracle itself), re-batch. Keeps the engine
// total over every workflow with identical results and errors.
StatusOr<BatchVec> RunFallback(const VEngine& eng, const Activity& activity,
                               const std::vector<Schema>& in_schemas,
                               const Schema& out_schema, const BatchVec& left,
                               const BatchVec* right) {
  std::vector<std::vector<Record>> inputs;
  inputs.push_back(FlattenBatches(left));
  if (right != nullptr) inputs.push_back(FlattenBatches(*right));
  eng.stats->fallback_members += 1;
  eng.stats->fallback_rows += inputs[0].size();
  ETLOPT_ASSIGN_OR_RETURN(std::vector<Record> rows,
                          activity.Execute(in_schemas, inputs, *eng.ctx));
  return MakeBatches(eng, out_schema, rows);
}

StatusOr<BatchVec> RunMemberVec(const VEngine& eng, const Activity& activity,
                                const std::vector<Schema>& in_schemas,
                                BatchVec left, const BatchVec* right) {
  ETLOPT_ASSIGN_OR_RETURN(Schema out_schema,
                          activity.ComputeOutputSchema(in_schemas));
  const Schema& in = in_schemas[0];
  const size_t in_rows =
      TotalRows(left) + (right != nullptr ? TotalRows(*right) : 0);

  auto vectorized = [&](StatusOr<BatchVec> out) {
    if (out.ok()) {
      eng.stats->vectorized_members += 1;
      eng.stats->vectorized_rows += in_rows;
    }
    return out;
  };

  switch (activity.kind()) {
    case ActivityKind::kSelection: {
      const auto& p = activity.params_as<SelectionParams>();
      if (!CanVectorizePredicate(*p.predicate, in)) break;
      return vectorized(RunSelection(eng, activity, std::move(left)));
    }
    case ActivityKind::kNotNull: {
      auto idx = in.IndexOf(activity.params_as<NotNullParams>().attr);
      if (!idx.has_value()) break;
      return vectorized(RunNotNull(eng, *idx, std::move(left)));
    }
    case ActivityKind::kDomainCheck: {
      auto idx = in.IndexOf(activity.params_as<DomainCheckParams>().attr);
      if (!idx.has_value()) break;
      return vectorized(RunDomainCheck(eng, activity, *idx, std::move(left)));
    }
    case ActivityKind::kProjection:
      return vectorized(RealignBatches(eng, std::move(left), in, out_schema));
    case ActivityKind::kPrimaryKeyCheck: {
      const auto& p = activity.params_as<PrimaryKeyParams>();
      std::vector<size_t> key_cols;
      for (const auto& k : p.key_attrs) {
        auto idx = in.IndexOf(k);
        if (!idx.has_value()) {
          return Status::Internal("missing key attr: " + k);
        }
        key_cols.push_back(*idx);
      }
      return vectorized(RunPkCheck(eng, key_cols, std::move(left)));
    }
    case ActivityKind::kAggregation:
      return vectorized(
          RunAggregation(eng, activity, in, out_schema, std::move(left)));
    case ActivityKind::kUnion:
      return vectorized(RunUnion(eng, in_schemas, out_schema, std::move(left),
                                 *right));
    case ActivityKind::kJoin:
      return vectorized(RunJoin(eng, activity, in_schemas, out_schema,
                                std::move(left), *right));
    default:
      break;
  }
  return RunFallback(eng, activity, in_schemas, out_schema, left, right);
}

}  // namespace

StatusOr<ExecutionResult> ExecuteVectorized(const Workflow& workflow,
                                            const ExecutionInput& input,
                                            const VectorizedOptions& options,
                                            VectorizedStats* stats) {
  if (!workflow.fresh()) {
    return Status::FailedPrecondition(
        "workflow must pass Refresh() before execution");
  }
  const size_t threads = options.num_threads != 0
                             ? options.num_threads
                             : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  VectorizedStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = VectorizedStats{};
  stats->num_threads = pool.num_threads();

  VEngine eng;
  eng.pool = &pool;
  eng.batch_size =
      options.batch_size != 0 ? options.batch_size : kDefaultBatchSize;
  eng.num_partitions =
      options.num_partitions != 0
          ? options.num_partitions
          : std::min<size_t>(64, pool.num_threads() * 4);
  eng.ctx = &input.context;
  eng.stats = stats;

  ExecutionResult result;
  CachePlan plan(workflow, input, options.cache);
  std::map<NodeId, BatchVec> flows;
  std::map<NodeId, size_t> remaining_consumers;
  for (NodeId id : workflow.NodeIds()) {
    remaining_consumers[id] = workflow.Consumers(id).size();
  }
  auto take_input = [&](NodeId p) {
    auto it = flows.find(p);
    if (--remaining_consumers[p] == 0) {
      BatchVec batches = std::move(it->second);
      flows.erase(it);
      return batches;
    }
    return it->second;
  };

  for (NodeId id : workflow.TopoOrder()) {
    if (plan.Skip(id)) continue;
    if (const CachedSubgraphResult* served = plan.Served(id)) {
      ETLOPT_ASSIGN_OR_RETURN(
          flows[id], MakeBatches(eng, workflow.OutputSchema(id), served->rows));
      continue;
    }
    std::vector<NodeId> providers = workflow.Providers(id);
    if (workflow.IsRecordSet(id)) {
      const RecordSetDef& def = workflow.recordset(id);
      BatchVec batches;
      if (providers.empty()) {
        auto it = input.source_data.find(def.name);
        if (it == input.source_data.end()) {
          return Status::NotFound("no data bound for source recordset '" +
                                  def.name + "'");
        }
        for (const auto& r : it->second) {
          if (r.size() != def.schema.size()) {
            return Status::InvalidArgument(StrFormat(
                "source '%s': record arity %zu != schema arity %zu",
                def.name.c_str(), r.size(), def.schema.size()));
          }
        }
        ETLOPT_ASSIGN_OR_RETURN(batches,
                                MakeBatches(eng, def.schema, it->second));
      } else {
        ETLOPT_ASSIGN_OR_RETURN(
            batches,
            RealignBatches(eng, take_input(providers[0]),
                           workflow.OutputSchema(providers[0]), def.schema));
      }
      if (workflow.Consumers(id).empty()) {
        result.target_data.emplace(def.name, FlattenBatches(batches));
      } else {
        flows[id] = std::move(batches);
      }
      continue;
    }

    // Activity node: run the chain member by member; the first member may
    // be binary, later members are unary by the chain invariant.
    ETLOPT_FAULT_HIT(FaultSite::kActivityExecute);
    std::vector<BatchVec> inputs;
    inputs.reserve(providers.size());
    for (NodeId p : providers) inputs.push_back(take_input(p));
    const ActivityChain& chain = workflow.chain(id);
    std::vector<Schema> in_schemas = workflow.InputSchemas(id);
    BatchVec cur;
    Schema cur_schema;
    for (size_t m = 0; m < chain.size(); ++m) {
      const Activity& member = chain.members()[m].activity;
      std::vector<Schema> member_schemas =
          m == 0 ? in_schemas : std::vector<Schema>{cur_schema};
      BatchVec left = m == 0 ? std::move(inputs[0]) : std::move(cur);
      const BatchVec* right =
          (m == 0 && member.is_binary()) ? &inputs[1] : nullptr;
      auto batches =
          RunMemberVec(eng, member, member_schemas, std::move(left), right);
      if (!batches.ok()) {
        return batches.status().WithContext(
            StrFormat("executing node %d ('%s')", id,
                      chain.label().c_str()));
      }
      ETLOPT_ASSIGN_OR_RETURN(cur_schema,
                              member.ComputeOutputSchema(member_schemas));
      cur = std::move(batches).value();
    }
    result.rows_out[id] = TotalRows(cur);
    if (plan.Leased(id)) {
      // Materialize rows only where a publication happens.
      plan.OnActivityComputed(id, FlattenBatches(cur), result.rows_out);
    }
    flows[id] = std::move(cur);
  }
  plan.Finalize(result);
  return result;
}

StatusOr<ExecutionResult> ExecuteWith(const Workflow& workflow,
                                      const ExecutionInput& input,
                                      const ExecutionOptions& options) {
  switch (options.engine) {
    case EngineKind::kSerial:
      return ExecuteWorkflow(workflow, input, options.cache);
    case EngineKind::kParallel: {
      ParallelOptions popts;
      popts.num_threads = options.num_threads;
      popts.morsel_size = options.morsel_size;
      popts.num_partitions = options.num_partitions;
      popts.cache = options.cache;
      return ExecuteParallel(workflow, input, popts);
    }
    case EngineKind::kVectorized: {
      VectorizedOptions vopts;
      vopts.num_threads = options.num_threads;
      vopts.batch_size = options.batch_size;
      vopts.num_partitions = options.num_partitions;
      vopts.cache = options.cache;
      return ExecuteVectorized(workflow, input, vopts);
    }
  }
  return Status::InvalidArgument("unknown engine kind");
}

}  // namespace etlopt
