// Subgraph result signatures: a 64-bit content identity for the upstream
// cone of one workflow node, built so that two nodes — in the SAME or in
// DIFFERENT workflows — hash equal iff executing their upstream subtrees
// over the bound inputs produces byte-identical output rows (modulo the
// ~2^-64 FNV collision probability every other hashed identity in this
// codebase already accepts).
//
// The signature folds, over a canonical port-ordered DFS of the cone:
//  * the DAG structure itself, with first-visit indices and explicit
//    back-references, so a subtree that SHARES an upstream node never
//    collides with one that duplicates it — positional correspondence of
//    the two enumerations is part of the contract (the shared result
//    cache maps per-node bookkeeping between workflows by DFS position);
//  * per activity node: every chain member's semantics string (predicates
//    and parameters included), the computed output schema (attribute
//    order and types pin the byte layout), and — for surrogate-key
//    members — the fingerprint of the bound lookup table;
//  * per recordset node: the declared schema, plus the fingerprint of the
//    bound source data for sources. Estimated cardinalities, node ids,
//    names and priority labels are deliberately excluded: none of them
//    can change output bytes, and folding them would only lower the
//    cross-tenant hit rate.
//
// Data fingerprints are supplied by callbacks because this layer cannot
// see ExecutionInput (the engine depends on graph, not vice versa). The
// engine binds them to FNV-64 folds of the actual rows / lookup entries;
// the optimizer's cache-aware costing binds the same functions so its
// hint keys match the executor's cache keys.

#ifndef ETLOPT_GRAPH_SUBGRAPH_SIGNATURE_H_
#define ETLOPT_GRAPH_SUBGRAPH_SIGNATURE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/workflow.h"

namespace etlopt {

/// Content fingerprints of the run's bound inputs, by name. A null
/// callback folds the name itself instead — a weaker, input-agnostic
/// identity usable when no concrete run input exists (tests, tooling);
/// cache keys for real executions must always bind real fingerprints.
struct SubgraphSignatureInputs {
  std::function<uint64_t(const std::string&)> source_fingerprint;
  std::function<uint64_t(const std::string&)> lookup_fingerprint;
};

/// Signature of `root`'s upstream cone (root included). Requires a fresh
/// workflow (computed schemas are folded).
uint64_t SubgraphResultSignature(const Workflow& workflow, NodeId root,
                                 const SubgraphSignatureInputs& inputs);

/// Signatures for every present node, NodeId-indexed (0 for absent slots).
/// One provider-index build serves all roots; prefer this over per-root
/// calls when more than a couple of nodes are signed.
std::vector<uint64_t> AllSubgraphResultSignatures(
    const Workflow& workflow, const SubgraphSignatureInputs& inputs);

/// The canonical enumeration behind the signature: `root`'s upstream cone
/// in first-visit (pre-)order of the port-ordered DFS, root first. Two
/// nodes with equal signatures enumerate positionally matching cones —
/// the result cache's cross-workflow bookkeeping transfer relies on this.
std::vector<NodeId> SubtreeNodes(const Workflow& workflow, NodeId root);

}  // namespace etlopt

#endif  // ETLOPT_GRAPH_SUBGRAPH_SIGNATURE_H_
