#include "graph/subgraph_signature.h"

#include <algorithm>
#include <utility>

#include "activity/activity.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// Domain-separation salt: bump when the fold layout changes, so stale
// persisted/cross-version signatures can never alias fresh ones.
constexpr uint64_t kSubgraphSigSalt = 0x5347534947763101ull;  // "SGSIGv1" ~

inline uint64_t FoldU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ static_cast<unsigned char>(v >> (8 * i))) * 1099511628211ull;
  }
  return h;
}

inline uint64_t FoldByte(uint64_t h, unsigned char b) {
  return (h ^ b) * 1099511628211ull;
}

inline uint64_t FoldString(uint64_t h, std::string_view s) {
  h = FoldU64(h, s.size());
  return Fnv1a64(s, h);
}

uint64_t FoldSchema(uint64_t h, const Schema& schema) {
  h = FoldU64(h, schema.size());
  for (const Attribute& a : schema.attributes()) {
    h = FoldString(h, a.name);
    h = FoldByte(h, static_cast<unsigned char>(a.type));
  }
  return h;
}

// Port-ordered provider index for the whole workflow, built in one edge
// pass (Providers() is an O(E) scan per call — too slow inside a DFS).
std::vector<std::vector<NodeId>> BuildProviderIndex(const Workflow& w) {
  size_t slots = 1;
  for (NodeId id : w.NodeIds()) {
    slots = std::max(slots, static_cast<size_t>(id) + 1);
  }
  std::vector<std::vector<std::pair<int, NodeId>>> by_port(slots);
  for (const WorkflowEdge& e : w.edges()) {
    by_port[e.to].push_back({e.port, e.from});
  }
  std::vector<std::vector<NodeId>> out(slots);
  for (size_t i = 0; i < slots; ++i) {
    std::sort(by_port[i].begin(), by_port[i].end());
    out[i].reserve(by_port[i].size());
    for (const auto& [port, from] : by_port[i]) out[i].push_back(from);
  }
  return out;
}

// One root's DFS: threads the running hash through a canonical pre-order
// walk, folding structure (first-visit indices, back-references, port
// order) and per-node content. `order`, when non-null, collects the
// first-visit enumeration.
struct SignatureWalker {
  const Workflow& w;
  const std::vector<std::vector<NodeId>>& providers;
  const SubgraphSignatureInputs& inputs;
  std::vector<int> index;  // NodeId -> first-visit index, -1 = unvisited
  int next_index = 0;
  std::vector<NodeId>* order = nullptr;

  uint64_t Visit(uint64_t h, NodeId id) {
    if (index[id] >= 0) {  // shared upstream node: explicit back-reference
      h = FoldByte(h, 'R');
      return FoldU64(h, static_cast<uint64_t>(index[id]));
    }
    index[id] = next_index++;
    if (order != nullptr) order->push_back(id);
    h = FoldByte(h, 'N');
    const std::vector<NodeId>& provs = providers[id];
    h = FoldU64(h, provs.size());
    for (NodeId p : provs) h = Visit(h, p);
    if (w.IsRecordSet(id)) {
      const RecordSetDef& def = w.recordset(id);
      if (provs.empty()) {
        h = FoldByte(h, 'S');
        h = FoldSchema(h, def.schema);
        h = FoldU64(h, inputs.source_fingerprint
                           ? inputs.source_fingerprint(def.name)
                           : Fnv1a64(def.name));
      } else {
        h = FoldByte(h, 'G');  // staging: realigns to the declared schema
        h = FoldSchema(h, def.schema);
      }
    } else {
      h = FoldByte(h, 'A');
      const ActivityChain& chain = w.chain(id);
      h = FoldU64(h, chain.size());
      for (const ActivityChain::Member& m : chain.members()) {
        h = FoldString(h, m.activity.SemanticsString());
        if (m.activity.kind() == ActivityKind::kSurrogateKey) {
          const auto& p = m.activity.params_as<SurrogateKeyParams>();
          h = FoldU64(h, inputs.lookup_fingerprint
                             ? inputs.lookup_fingerprint(p.lookup_name)
                             : Fnv1a64(p.lookup_name));
        }
      }
      h = FoldSchema(h, w.OutputSchema(id));
    }
    return h;
  }
};

}  // namespace

uint64_t SubgraphResultSignature(const Workflow& workflow, NodeId root,
                                 const SubgraphSignatureInputs& inputs) {
  ETLOPT_CHECK(workflow.fresh());
  ETLOPT_CHECK(workflow.Exists(root));
  auto providers = BuildProviderIndex(workflow);
  SignatureWalker walker{workflow, providers, inputs};
  walker.index.assign(providers.size(), -1);
  return walker.Visit(kSubgraphSigSalt, root);
}

std::vector<uint64_t> AllSubgraphResultSignatures(
    const Workflow& workflow, const SubgraphSignatureInputs& inputs) {
  ETLOPT_CHECK(workflow.fresh());
  auto providers = BuildProviderIndex(workflow);
  std::vector<uint64_t> out(providers.size(), 0);
  for (NodeId id : workflow.NodeIds()) {
    SignatureWalker walker{workflow, providers, inputs};
    walker.index.assign(providers.size(), -1);
    out[id] = walker.Visit(kSubgraphSigSalt, id);
  }
  return out;
}

std::vector<NodeId> SubtreeNodes(const Workflow& workflow, NodeId root) {
  ETLOPT_CHECK(workflow.fresh());
  ETLOPT_CHECK(workflow.Exists(root));
  auto providers = BuildProviderIndex(workflow);
  SubgraphSignatureInputs no_inputs;
  SignatureWalker walker{workflow, providers, no_inputs};
  walker.index.assign(providers.size(), -1);
  std::vector<NodeId> order;
  walker.order = &order;
  (void)walker.Visit(kSubgraphSigSalt, root);
  return order;
}

}  // namespace etlopt
