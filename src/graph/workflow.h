// Workflow: a directed acyclic graph of activities and recordsets
// (paper §2.1). States of the optimizer's search space *are* workflows,
// so Workflow is a value type: transitions either copy it and rewire the
// copy, or — on the search hot path — rewire it *in place* under an
// UndoLog and roll the surgery back once the neighbor has been hashed and
// costed (see BeginSurgery below). Either way the result is revalidated
// via Refresh().
//
// Representation notes: nodes and the computed-schema table are dense
// NodeId-indexed vectors (ids are small and monotonically assigned), and
// computed schemata are interned via SchemaInterner — the per-node entry
// is a pointer into process-wide shared storage. Copying a Workflow is
// therefore a handful of flat vector copies, and snapshotting it into an
// UndoLog is cheaper still.
//
// Invariants enforced by Refresh():
//  * the graph is acyclic;
//  * every activity node has exactly input_arity() providers (one per
//    input port) and exactly one consumer (the paper's setting for the
//    correctness theorems);
//  * schema propagation succeeds: every chain's functionality schema is
//    covered by its input, and every non-source recordset receives a
//    schema equivalent to its declared one.

#ifndef ETLOPT_GRAPH_WORKFLOW_H_
#define ETLOPT_GRAPH_WORKFLOW_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/activity_chain.h"
#include "schema/schema.h"

namespace etlopt {

/// Node identifier, unique within one workflow (and its descendants —
/// copies made by transitions keep ids stable, new nodes get fresh ids).
using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// A recordset as it appears in a workflow: name, declared schema, and the
/// estimated cardinality used by cost models (meaningful for sources).
struct RecordSetDef {
  std::string name;
  Schema schema;
  double cardinality = 0.0;
};

/// A provider edge: data flows from `from` into input port `port` of `to`.
struct WorkflowEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  int port = 0;

  friend bool operator==(const WorkflowEdge& a, const WorkflowEdge& b) {
    return a.from == b.from && a.to == b.to && a.port == b.port;
  }
};

class Workflow {
 private:
  struct Node {
    bool present = false;
    bool is_activity = false;
    std::optional<ActivityChain> chain;     // engaged iff activity
    std::optional<RecordSetDef> recordset;  // engaged iff recordset
    std::string plabel;                     // recordsets only
  };

 public:
  /// Captures everything one surgery session (BeginSurgery ..
  /// RollbackSurgery) needs to restore the workflow byte-identically:
  /// flat snapshots of the cheap tables (edges, topo order, interned
  /// schema pointers, dirty set, scalars) plus first-touch copies of the
  /// few nodes the surgery modifies or removes. Reusable across sessions
  /// — Begin clears and refills it, so one log serves a whole search
  /// without reallocating.
  class UndoLog {
   public:
    UndoLog() = default;
    UndoLog(const UndoLog&) = delete;
    UndoLog& operator=(const UndoLog&) = delete;

    /// True between BeginSurgery and Rollback/CommitSurgery.
    bool active() const { return active_; }

   private:
    friend class Workflow;
    bool active_ = false;
    std::vector<WorkflowEdge> edges_;
    std::vector<NodeId> topo_;
    std::vector<const Schema*> out_schema_;
    std::vector<NodeId> dirty_nodes_;
    std::vector<std::pair<NodeId, Node>> saved_nodes_;
    NodeId next_id_ = 0;
    bool finalized_ = false;
    bool fresh_ = false;
  };

  Workflow() = default;

  /// Copies are counted (TotalCopies) so the search layer can prove its
  /// zero-copy neighbor generation actually avoids them. The copy never
  /// inherits an active surgery session.
  Workflow(const Workflow& other);
  Workflow& operator=(const Workflow& other);
  Workflow(Workflow&&) = default;
  Workflow& operator=(Workflow&&) = default;

  // --- Construction ---

  /// Adds a recordset node (source, staging, or target — determined by how
  /// it is wired).
  NodeId AddRecordSet(RecordSetDef def);

  /// Adds an activity node and connects `providers` to its input ports in
  /// order.
  StatusOr<NodeId> AddActivity(Activity activity,
                               const std::vector<NodeId>& providers);

  /// Adds an explicit edge (used to wire targets: Connect(act, target_rs)).
  Status Connect(NodeId from, NodeId to, int port = 0);

  /// Assigns execution-priority labels from the topological order of the
  /// *initial* graph (paper §4.1) and validates via Refresh(). Call once
  /// after construction; transitions preserve the labels thereafter.
  Status Finalize();

  // --- Node access ---

  bool Exists(NodeId id) const {
    return id > 0 && static_cast<size_t>(id) < nodes_.size() &&
           nodes_[id].present;
  }
  bool IsActivity(NodeId id) const;
  bool IsRecordSet(NodeId id) const;

  const ActivityChain& chain(NodeId id) const;
  ActivityChain* mutable_chain(NodeId id);
  const RecordSetDef& recordset(NodeId id) const;

  /// Priority label of a node: a recordset's own label, or the chain's
  /// joined member labels.
  std::string PriorityLabelOf(NodeId id) const;

  /// Overrides a node's priority label (single-member chains and
  /// recordsets only). Finalize() derives labels from the *initial*
  /// topology and transitions carry them unchanged, so a deserialized
  /// mid-optimization workflow must restore its recorded labels rather
  /// than re-derive them; this is that hook. Invalidates freshness for
  /// activity nodes — callers Refresh() afterwards.
  Status SetPriorityLabel(NodeId id, const std::string& plabel);

  /// Rough in-memory footprint in bytes (nodes, chains, declared schemas,
  /// edges, dense tables), for cache byte budgeting. Computed schemata are
  /// interned in process-wide shared storage, so they are charged at
  /// pointer size here — the shared payload lives in SchemaInterner, once
  /// per distinct schema, not per state. Deterministic for equal
  /// workflows.
  size_t ApproxMemoryBytes() const;

  /// All node ids, ascending.
  std::vector<NodeId> NodeIds() const;
  /// Activity node ids, ascending.
  std::vector<NodeId> ActivityNodeIds() const;
  /// Total number of activities (chain members summed).
  size_t ActivityCount() const;

  /// Providers of `id`, ordered by input port.
  std::vector<NodeId> Providers(NodeId id) const;
  /// Consumers of `id`, ascending by node id.
  std::vector<NodeId> Consumers(NodeId id) const;
  const std::vector<WorkflowEdge>& edges() const { return edges_; }

  /// Source recordsets (no providers) / target recordsets (no consumers).
  std::vector<NodeId> SourceRecordSets() const;
  std::vector<NodeId> TargetRecordSets() const;

  // --- Validation and schema propagation ---

  /// Revalidates the graph and recomputes every node's output schema (the
  /// automatic schema regeneration of §3.2), interning each into the
  /// process-wide SchemaInterner. Must be called after any surgery before
  /// reading schemas; transitions use its failure as the rejection signal
  /// for illegal states (conditions 3-4 of §3.3).
  Status Refresh();

  /// True if Refresh() succeeded since the last mutation.
  bool fresh() const { return fresh_; }

  /// Computed output schema (requires fresh()). The reference points into
  /// interned shared storage and stays valid for the process lifetime.
  const Schema& OutputSchema(NodeId id) const;
  /// Computed input schemata, port-ordered (requires fresh()). Assembled
  /// on demand from the providers' output schemata — input schema i *is*
  /// provider i's output schema, so no separate table is stored.
  std::vector<Schema> InputSchemas(NodeId id) const;
  /// Topological order (requires fresh()).
  const std::vector<NodeId>& TopoOrder() const;

  // --- State identity and equivalence ---

  /// Canonical state signature (paper §4.1): the unfolding of each target
  /// node as plabel(provider-unfoldings), targets sorted, suffixed with
  /// the activity count. Equal signatures identify equal states.
  std::string Signature() const;

  /// 64-bit hash of the canonical signature structure, computed without
  /// materializing the string (the search hot path keys its visited and
  /// queued sets on this; the string form stays for reporting/DOT). Equal
  /// Signature() strings always hash equally; distinct signatures collide
  /// with probability ~2^-64 and the optimizer's SignatureInterner
  /// cross-checks hash/string consistency in debug builds.
  uint64_t SignatureHash() const;

  /// The paper's display form of the signature: linear runs joined with
  /// '.', converging branches bracketed with '//' — Fig. 1 renders as
  /// "((1.3)//(2.4.5.6)).7.8.9".
  std::string PrettySignature() const;

  /// The workflow post-condition (paper §3.4) canonicalized as the set of
  /// member predicates plus recordset predicates.
  std::set<std::string> PostConditionSet() const;

  /// Paper's equivalence: same target schemata and same post-condition.
  bool EquivalentTo(const Workflow& other) const;

  // --- Surgery (transitions build on these; callers Refresh() after) ---

  /// Swaps two adjacent nodes linked upstream -> downstream, both unary
  /// single-consumer chains. Purely structural; semantic applicability is
  /// checked by the transition layer.
  Status SwapAdjacent(NodeId upstream, NodeId downstream);

  /// Removes a unary chain node, bridging its provider to its consumers.
  Status RemoveChainNode(NodeId id);

  /// Inserts a unary chain on the edge from -> to (keeping to's port).
  StatusOr<NodeId> InsertOnEdge(ActivityChain chain, NodeId from, NodeId to);

  /// Appends `second`'s chain to `first`'s (Merge); `second` must be
  /// `first`'s only consumer and a unary chain. `second` is removed.
  Status MergeInto(NodeId first, NodeId second);

  /// Splits `id`'s chain at `at`; the tail becomes a new node placed
  /// after the head. Returns the tail's id.
  StatusOr<NodeId> SplitNode(NodeId id, size_t at);

  // --- In-place surgery sessions (the zero-copy transition path) ---
  //
  // The search layer's neighbor generation mutates ONE scratch workflow
  // per worker instead of copying the parent for every candidate:
  //
  //   Workflow::UndoLog log;
  //   scratch.BeginSurgery(&log);
  //   ... surgery + Refresh() ...          // hash and cost the neighbor
  //   scratch.RollbackSurgery();           // parent restored byte-identically
  //
  // A real copy is taken (plain copy construction, while the session is
  // still open) only for neighbors that survive the visited-set and
  // pruning checks. Rollback restores every observable and internal field
  // — node payloads, edges, topo order, interned schema pointers, dirty
  // set, id counter, freshness — exactly; debug/ETLOPT_PARANOID builds
  // assert this around every undo (see DebugEquals).

  /// Arms `log` and snapshots the state needed to roll back. Sessions
  /// nest at most one level deep: while an outer session is open, one
  /// inner session may begin (the search layer replays a transition path
  /// under an outer session, then probes candidate transitions in inner
  /// sessions), but the inner session can only be rolled back — never
  /// committed — so the outer snapshot stays sufficient. Copies never
  /// inherit a session.
  void BeginSurgery(UndoLog* log);

  /// Restores the workflow to the matching BeginSurgery state and disarms
  /// that log (the inner session first, when one is open).
  void RollbackSurgery();

  /// Disarms the log, keeping the mutations (used by the copy-based
  /// Apply* wrappers). Forbidden while an inner session is open: the
  /// outer log has no first-touch records for nodes the inner session
  /// modified, so committing it would leave the outer rollback unable to
  /// restore them.
  void CommitSurgery();

  bool surgery_active() const { return active_undo_ != nullptr; }

  /// Exact logical-state comparison (nodes, chains, labels, declared
  /// schemas, edges, topo order, interned schema identities, dirty set,
  /// id counter, flags). Used by the paranoid apply→undo cross-checks and
  /// the undo property tests; too strict and too slow for search-space
  /// identity — that is Signature()'s job.
  bool DebugEquals(const Workflow& other) const;

  /// Process-wide counters: full Workflow copies made / surgery sessions
  /// rolled back. The search layer snapshots deltas into SearchPerf so
  /// benches can gate the copy reduction. Monotonic, relaxed atomics.
  static size_t TotalCopies();
  static size_t TotalUndos();

  // --- Dirty-node tracking (delta-recost hook) ---
  //
  // Surgery records every node whose chain content or direct inputs it
  // touched. The cost layer seeds delta recosting from this set: a node
  // absent from it (and present in the base state with identical input
  // cardinalities) is guaranteed to cost the same as in the base, so its
  // cached figures can be reused. Copies inherit the set, so a sequence
  // of transitions derived from one base state accumulates all touched
  // nodes; the search layer clears it each time a state is (re)costed.

  /// Nodes touched by surgery since the last ClearDirtyNodes().
  const std::vector<NodeId>& dirty_nodes() const { return dirty_nodes_; }
  void ClearDirtyNodes() { dirty_nodes_.clear(); }

 private:
  NodeId NewId();
  void MarkDirty(NodeId id) { dirty_nodes_.push_back(id); }
  /// First-touch hook: saves `id`'s node into the active undo log (if
  /// any) before it is modified or removed. Nodes added during the
  /// session need no record — rollback truncates them away.
  void TouchNode(NodeId id);
  void EraseNode(NodeId id);
  const Node& GetNode(NodeId id) const;
  Node& GetNodeMutable(NodeId id);
  Status CheckStructure() const;
  StatusOr<std::vector<NodeId>> ComputeTopoOrder() const;
  std::string Unfold(NodeId id, std::map<NodeId, std::string>* memo) const;
  void Invalidate() { fresh_ = false; }

  /// Dense node table indexed by NodeId; slot 0 is unused, absent slots
  /// are tombstones of removed nodes. Invariant: nodes_.size() ==
  /// max(1, next_id_).
  std::vector<Node> nodes_ = std::vector<Node>(1);
  std::vector<WorkflowEdge> edges_;
  NodeId next_id_ = 1;
  bool finalized_ = false;
  std::vector<NodeId> dirty_nodes_;
  /// Outer and (optional) nested inner surgery session; TouchNode records
  /// into the innermost one.
  UndoLog* active_undo_ = nullptr;
  UndoLog* nested_undo_ = nullptr;

  // Computed by Refresh().
  bool fresh_ = false;
  std::vector<NodeId> topo_;
  /// NodeId-indexed interned output schemas (nullptr = no node).
  std::vector<const Schema*> out_schema_;
};

}  // namespace etlopt

#endif  // ETLOPT_GRAPH_WORKFLOW_H_
