#include "graph/activity_chain.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

void AddUnique(std::vector<std::string>* v, const std::string& s) {
  if (!Contains(*v, s)) v->push_back(s);
}


size_t HashString(const std::string& s) {
  size_t h = 1469598103934665603ULL;
  for (unsigned char c : s) h = (h ^ c) * 1099511628211ULL;
  return h;
}

}  // namespace

ActivityChain::ActivityChain(Activity activity, std::string plabel) {
  members_.push_back(Member{std::move(activity), std::move(plabel)});
  semantics_hash_ = HashString(SemanticsString());
}

ActivityChain::ActivityChain(std::vector<Member> members)
    : members_(std::move(members)) {
  semantics_hash_ = HashString(SemanticsString());
}

StatusOr<ActivityChain> ActivityChain::Concat(const ActivityChain& head,
                                              const ActivityChain& tail) {
  if (tail.front().is_binary()) {
    return Status::InvalidArgument(
        "merge: a binary activity can only lead a chain");
  }
  std::vector<Member> members = head.members_;
  members.insert(members.end(), tail.members_.begin(), tail.members_.end());
  return ActivityChain(std::move(members));
}

StatusOr<std::pair<ActivityChain, ActivityChain>> ActivityChain::SplitAt(
    size_t at) const {
  if (at == 0 || at >= members_.size()) {
    return Status::InvalidArgument(
        StrFormat("split: position %zu out of range (size %zu)", at,
                  members_.size()));
  }
  std::vector<Member> head(members_.begin(), members_.begin() + at);
  std::vector<Member> tail(members_.begin() + at, members_.end());
  return std::make_pair(ActivityChain(std::move(head)),
                        ActivityChain(std::move(tail)));
}

std::string ActivityChain::label() const {
  std::vector<std::string> parts;
  parts.reserve(members_.size());
  for (const auto& m : members_) parts.push_back(m.activity.label());
  return Join(parts, "+");
}

std::string ActivityChain::PriorityLabel() const {
  std::vector<std::string> parts;
  parts.reserve(members_.size());
  for (const auto& m : members_) parts.push_back(m.plabel);
  return Join(parts, "+");
}

void ActivityChain::set_plabel(size_t member, std::string plabel) {
  ETLOPT_CHECK(member < members_.size());
  members_[member].plabel = std::move(plabel);
}

void ActivityChain::ReplaceMemberActivity(size_t member, Activity activity) {
  ETLOPT_CHECK(member < members_.size());
  members_[member].activity = std::move(activity);
  semantics_hash_ = HashString(SemanticsString());
}

std::vector<std::string> ActivityChain::FunctionalityAttrs() const {
  std::vector<std::string> external;
  std::vector<std::string> produced_inside;
  for (const auto& m : members_) {
    for (const auto& f : m.activity.FunctionalityAttrs()) {
      if (!Contains(produced_inside, f)) AddUnique(&external, f);
    }
    for (const auto& g : m.activity.GeneratedAttrNames()) {
      AddUnique(&produced_inside, g);
    }
  }
  return external;
}

std::vector<std::string> ActivityChain::ValueChangedAttrs() const {
  std::vector<std::string> out;
  for (const auto& m : members_) {
    for (const auto& v : m.activity.ValueChangedAttrs()) AddUnique(&out, v);
  }
  return out;
}

double ActivityChain::selectivity() const {
  double s = 1.0;
  for (const auto& m : members_) s *= m.activity.selectivity();
  return s;
}

StatusOr<Schema> ActivityChain::ComputeOutputSchema(
    const std::vector<Schema>& inputs) const {
  ETLOPT_ASSIGN_OR_RETURN(Schema cur,
                          front().ComputeOutputSchema(inputs));
  for (size_t i = 1; i < members_.size(); ++i) {
    ETLOPT_ASSIGN_OR_RETURN(cur, members_[i].activity.ComputeOutputSchema(
                                     std::vector<Schema>{cur}));
  }
  return cur;
}

std::string ActivityChain::SemanticsString() const {
  std::vector<std::string> parts;
  parts.reserve(members_.size());
  for (const auto& m : members_) parts.push_back(m.activity.SemanticsString());
  return Join(parts, "+");
}

std::vector<std::string> ActivityChain::PredicateStrings() const {
  std::vector<std::string> parts;
  parts.reserve(members_.size());
  for (const auto& m : members_) parts.push_back(m.activity.SemanticsString());
  return parts;
}

StatusOr<std::vector<Record>> ActivityChain::Execute(
    const std::vector<Schema>& input_schemas,
    const std::vector<std::vector<Record>>& inputs,
    const ExecutionContext& ctx) const {
  ETLOPT_ASSIGN_OR_RETURN(std::vector<Record> rows,
                          front().Execute(input_schemas, inputs, ctx));
  ETLOPT_ASSIGN_OR_RETURN(Schema cur_schema,
                          front().ComputeOutputSchema(input_schemas));
  for (size_t i = 1; i < members_.size(); ++i) {
    const Activity& a = members_[i].activity;
    std::vector<Schema> in_s{cur_schema};
    ETLOPT_ASSIGN_OR_RETURN(
        std::vector<Record> next,
        a.Execute(in_s, std::vector<std::vector<Record>>{std::move(rows)},
                  ctx));
    rows = std::move(next);
    ETLOPT_ASSIGN_OR_RETURN(cur_schema, a.ComputeOutputSchema(in_s));
  }
  return rows;
}

}  // namespace etlopt
