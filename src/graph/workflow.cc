#include "graph/workflow.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "common/macros.h"
#include "common/string_util.h"
#include "schema/schema_interner.h"

namespace etlopt {

namespace {

// Process-wide copy/undo counters (see Workflow::TotalCopies). Relaxed:
// they are statistics, never synchronization.
std::atomic<size_t> g_workflow_copies{0};
std::atomic<size_t> g_workflow_undos{0};

}  // namespace

Workflow::Workflow(const Workflow& other)
    : nodes_(other.nodes_),
      edges_(other.edges_),
      next_id_(other.next_id_),
      finalized_(other.finalized_),
      dirty_nodes_(other.dirty_nodes_),
      fresh_(other.fresh_),
      topo_(other.topo_),
      out_schema_(other.out_schema_) {
  g_workflow_copies.fetch_add(1, std::memory_order_relaxed);
}

Workflow& Workflow::operator=(const Workflow& other) {
  ETLOPT_CHECK(active_undo_ == nullptr);
  if (this != &other) {
    nodes_ = other.nodes_;
    edges_ = other.edges_;
    next_id_ = other.next_id_;
    finalized_ = other.finalized_;
    dirty_nodes_ = other.dirty_nodes_;
    fresh_ = other.fresh_;
    topo_ = other.topo_;
    out_schema_ = other.out_schema_;
    g_workflow_copies.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

size_t Workflow::TotalCopies() {
  return g_workflow_copies.load(std::memory_order_relaxed);
}

size_t Workflow::TotalUndos() {
  return g_workflow_undos.load(std::memory_order_relaxed);
}

NodeId Workflow::NewId() {
  NodeId id = next_id_++;
  nodes_.emplace_back();
  return id;
}

void Workflow::TouchNode(NodeId id) {
  UndoLog* log = nested_undo_ != nullptr ? nested_undo_ : active_undo_;
  if (log == nullptr || id >= log->next_id_) return;
  for (const auto& [saved_id, node] : log->saved_nodes_) {
    if (saved_id == id) return;  // first touch already recorded
  }
  log->saved_nodes_.emplace_back(id, nodes_[id]);
}

void Workflow::EraseNode(NodeId id) {
  TouchNode(id);
  Node& n = nodes_[id];
  n.present = false;
  n.is_activity = false;
  n.chain.reset();
  n.recordset.reset();
  n.plabel.clear();
}

void Workflow::BeginSurgery(UndoLog* log) {
  ETLOPT_CHECK(log != nullptr);
  // At most one nesting level: an inner session may open under an outer
  // one, but not a third.
  ETLOPT_CHECK(nested_undo_ == nullptr);
  ETLOPT_CHECK(!log->active_);
  ETLOPT_CHECK(log != active_undo_);
  log->edges_ = edges_;
  log->topo_ = topo_;
  log->out_schema_ = out_schema_;
  log->dirty_nodes_ = dirty_nodes_;
  log->saved_nodes_.clear();
  log->next_id_ = next_id_;
  log->finalized_ = finalized_;
  log->fresh_ = fresh_;
  log->active_ = true;
  if (active_undo_ == nullptr) {
    active_undo_ = log;
  } else {
    nested_undo_ = log;
  }
}

void Workflow::RollbackSurgery() {
  ETLOPT_CHECK(active_undo_ != nullptr);
  UndoLog* log;
  if (nested_undo_ != nullptr) {
    log = nested_undo_;
    nested_undo_ = nullptr;
  } else {
    log = active_undo_;
    active_undo_ = nullptr;
  }
  // Nodes added during the session occupy the tail slots; drop them.
  nodes_.resize(static_cast<size_t>(log->next_id_));
  for (auto& [id, node] : log->saved_nodes_) {
    nodes_[id] = std::move(node);
  }
  // Swap (not copy) the flat snapshots back: the mutated contents left in
  // the log are garbage that the next BeginSurgery overwrites, and the
  // swapped-in buffers let log reuse amortize allocations to zero.
  edges_.swap(log->edges_);
  topo_.swap(log->topo_);
  out_schema_.swap(log->out_schema_);
  dirty_nodes_.swap(log->dirty_nodes_);
  next_id_ = log->next_id_;
  finalized_ = log->finalized_;
  fresh_ = log->fresh_;
  log->saved_nodes_.clear();
  log->active_ = false;
  g_workflow_undos.fetch_add(1, std::memory_order_relaxed);
}

void Workflow::CommitSurgery() {
  ETLOPT_CHECK(active_undo_ != nullptr);
  // Committing an inner session is forbidden (see the header): the outer
  // log could no longer restore what the inner session touched.
  ETLOPT_CHECK(nested_undo_ == nullptr);
  active_undo_->saved_nodes_.clear();
  active_undo_->active_ = false;
  active_undo_ = nullptr;
}

NodeId Workflow::AddRecordSet(RecordSetDef def) {
  NodeId id = NewId();
  Node& n = nodes_[id];
  n.present = true;
  n.is_activity = false;
  n.recordset = std::move(def);
  Invalidate();
  return id;
}

StatusOr<NodeId> Workflow::AddActivity(Activity activity,
                                       const std::vector<NodeId>& providers) {
  if (static_cast<int>(providers.size()) != activity.input_arity()) {
    return Status::InvalidArgument(StrFormat(
        "activity '%s' needs %d providers, got %zu", activity.label().c_str(),
        activity.input_arity(), providers.size()));
  }
  for (NodeId p : providers) {
    if (!Exists(p)) {
      return Status::NotFound(StrFormat("provider node %d does not exist", p));
    }
  }
  NodeId id = NewId();
  Node& n = nodes_[id];
  n.present = true;
  n.is_activity = true;
  n.chain = ActivityChain(std::move(activity));
  for (size_t i = 0; i < providers.size(); ++i) {
    edges_.push_back({providers[i], id, static_cast<int>(i)});
  }
  Invalidate();
  return id;
}

Status Workflow::Connect(NodeId from, NodeId to, int port) {
  if (!Exists(from) || !Exists(to)) {
    return Status::NotFound("connect: node does not exist");
  }
  for (const auto& e : edges_) {
    if (e.to == to && e.port == port) {
      return Status::AlreadyExists(
          StrFormat("connect: port %d of node %d already has a provider",
                    port, to));
    }
  }
  edges_.push_back({from, to, port});
  Invalidate();
  return Status::OK();
}

Status Workflow::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("workflow already finalized");
  }
  ETLOPT_RETURN_NOT_OK(Refresh());
  // Assign priorities in topological order, 1-based (paper §4.1).
  int next = 1;
  for (NodeId id : topo_) {
    Node& n = GetNodeMutable(id);
    if (n.is_activity) {
      for (size_t i = 0; i < n.chain->size(); ++i) {
        n.chain->set_plabel(i, std::to_string(next++));
      }
    } else {
      n.plabel = std::to_string(next++);
    }
  }
  finalized_ = true;
  return Status::OK();
}

bool Workflow::IsActivity(NodeId id) const {
  return Exists(id) && nodes_[id].is_activity;
}

bool Workflow::IsRecordSet(NodeId id) const {
  return Exists(id) && !nodes_[id].is_activity;
}

const ActivityChain& Workflow::chain(NodeId id) const {
  const Node& n = GetNode(id);
  ETLOPT_CHECK(n.is_activity);
  return *n.chain;
}

ActivityChain* Workflow::mutable_chain(NodeId id) {
  Node& n = GetNodeMutable(id);
  ETLOPT_CHECK(n.is_activity);
  MarkDirty(id);
  Invalidate();
  return &*n.chain;
}

const RecordSetDef& Workflow::recordset(NodeId id) const {
  const Node& n = GetNode(id);
  ETLOPT_CHECK(!n.is_activity);
  return *n.recordset;
}

std::string Workflow::PriorityLabelOf(NodeId id) const {
  const Node& n = GetNode(id);
  return n.is_activity ? n.chain->PriorityLabel() : n.plabel;
}

Status Workflow::SetPriorityLabel(NodeId id, const std::string& plabel) {
  if (!Exists(id)) {
    return Status::NotFound("SetPriorityLabel: no node " +
                            std::to_string(id));
  }
  if (plabel.empty() || plabel.find('+') != std::string::npos) {
    return Status::InvalidArgument("SetPriorityLabel: bad label '" + plabel +
                                   "'");
  }
  Node& n = GetNodeMutable(id);
  if (n.is_activity) {
    if (n.chain->size() != 1) {
      return Status::FailedPrecondition(
          "SetPriorityLabel: cannot relabel a merged chain");
    }
    n.chain->set_plabel(0, plabel);
    MarkDirty(id);
    Invalidate();
  } else {
    n.plabel = plabel;
  }
  return Status::OK();
}

size_t Workflow::ApproxMemoryBytes() const {
  // Logical sizes, not capacities: equal workflows must report equal
  // footprints regardless of how their vectors grew (rollback swaps
  // snapshot storage back, which changes capacity but not state).
  size_t bytes = sizeof(Workflow) + edges_.size() * sizeof(WorkflowEdge);
  auto schema_bytes = [](const Schema& s) {
    size_t b = sizeof(Schema);
    for (const auto& a : s.attributes()) b += sizeof(Attribute) + a.name.size();
    return b;
  };
  bytes += nodes_.size() * sizeof(Node);
  for (const Node& n : nodes_) {
    if (!n.present) continue;
    bytes += n.plabel.size();
    if (n.is_activity) {
      for (const auto& m : n.chain->members()) {
        bytes += sizeof(m) + m.plabel.size() + m.activity.label().size() +
                 m.activity.SemanticsString().size();
      }
    } else {
      // Declared schemata are owned by the node; computed schemata below
      // are interned (shared) and charged at pointer size.
      bytes += n.recordset->name.size() + schema_bytes(n.recordset->schema);
    }
  }
  bytes += topo_.size() * sizeof(NodeId);
  bytes += out_schema_.size() * sizeof(const Schema*);
  bytes += dirty_nodes_.size() * sizeof(NodeId);
  return bytes;
}

std::vector<NodeId> Workflow::NodeIds() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (NodeId id = 1; id < next_id_; ++id) {
    if (nodes_[id].present) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Workflow::ActivityNodeIds() const {
  std::vector<NodeId> out;
  for (NodeId id = 1; id < next_id_; ++id) {
    if (nodes_[id].present && nodes_[id].is_activity) out.push_back(id);
  }
  return out;
}

size_t Workflow::ActivityCount() const {
  size_t count = 0;
  for (const Node& n : nodes_) {
    if (n.present && n.is_activity) count += n.chain->size();
  }
  return count;
}

std::vector<NodeId> Workflow::Providers(NodeId id) const {
  std::vector<const WorkflowEdge*> in;
  for (const auto& e : edges_) {
    if (e.to == id) in.push_back(&e);
  }
  std::sort(in.begin(), in.end(),
            [](const WorkflowEdge* a, const WorkflowEdge* b) {
              return a->port < b->port;
            });
  std::vector<NodeId> out;
  out.reserve(in.size());
  for (const auto* e : in) out.push_back(e->from);
  return out;
}

std::vector<NodeId> Workflow::Consumers(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& e : edges_) {
    if (e.from == id) out.push_back(e.to);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Workflow::SourceRecordSets() const {
  std::vector<NodeId> out;
  for (NodeId id = 1; id < next_id_; ++id) {
    const Node& n = nodes_[id];
    if (n.present && !n.is_activity && Providers(id).empty()) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Workflow::TargetRecordSets() const {
  std::vector<NodeId> out;
  for (NodeId id = 1; id < next_id_; ++id) {
    const Node& n = nodes_[id];
    if (n.present && !n.is_activity && Consumers(id).empty()) out.push_back(id);
  }
  return out;
}

Status Workflow::CheckStructure() const {
  // One pass over the edges builds the degree/port index; per-node O(E)
  // rescans made Refresh() a search-loop bottleneck. All indices are
  // dense NodeId-indexed vectors.
  const size_t n_slots = nodes_.size();
  std::vector<std::vector<int>> in_ports(n_slots);
  std::vector<int> out_degree(n_slots, 0);
  for (const auto& e : edges_) {
    if (!Exists(e.from) || !Exists(e.to)) {
      return Status::Internal("edge references missing node");
    }
    if (e.from == e.to) return Status::Internal("self-loop edge");
    in_ports[e.to].push_back(e.port);
    ++out_degree[e.from];
  }
  bool any_node = false;
  for (NodeId id = 1; id < next_id_; ++id) {
    const Node& n = nodes_[id];
    if (!n.present) continue;
    any_node = true;
    size_t n_providers = in_ports[id].size();
    size_t n_consumers = static_cast<size_t>(out_degree[id]);
    if (n.is_activity) {
      int arity = n.chain->input_arity();
      if (static_cast<int>(n_providers) != arity) {
        return Status::FailedPrecondition(StrFormat(
            "activity node %d ('%s') has %zu providers, needs %d", id,
            n.chain->label().c_str(), n_providers, arity));
      }
      // Port set must be exactly {0..arity-1}.
      std::vector<int>& ports = in_ports[id];
      std::sort(ports.begin(), ports.end());
      for (int i = 0; i < arity; ++i) {
        if (ports[i] != i) {
          return Status::FailedPrecondition(
              StrFormat("activity node %d has bad port wiring", id));
        }
      }
      if (n_consumers != 1) {
        return Status::FailedPrecondition(StrFormat(
            "activity node %d ('%s') must have exactly one consumer, has %zu",
            id, n.chain->label().c_str(), n_consumers));
      }
    } else {
      if (n_providers > 1) {
        return Status::FailedPrecondition(StrFormat(
            "recordset node %d ('%s') has multiple providers; use a UNION "
            "activity",
            id, n.recordset->name.c_str()));
      }
      if (n_providers == 0 && n_consumers == 0) {
        return Status::FailedPrecondition(
            StrFormat("recordset node %d ('%s') is disconnected", id,
                      n.recordset->name.c_str()));
      }
    }
  }
  if (!any_node) return Status::FailedPrecondition("empty workflow");
  return Status::OK();
}

StatusOr<std::vector<NodeId>> Workflow::ComputeTopoOrder() const {
  // Kahn's algorithm; ready nodes processed in ascending id order for
  // determinism. Adjacency is indexed once up front.
  const size_t n_slots = nodes_.size();
  std::vector<int> indegree(n_slots, 0);
  std::vector<std::vector<NodeId>> successors(n_slots);
  size_t n_present = 0;
  for (NodeId id = 1; id < next_id_; ++id) {
    if (nodes_[id].present) ++n_present;
  }
  for (const auto& e : edges_) {
    ++indegree[e.to];
    successors[e.from].push_back(e.to);
  }
  std::set<NodeId> ready;
  for (NodeId id = 1; id < next_id_; ++id) {
    if (nodes_[id].present && indegree[id] == 0) ready.insert(id);
  }
  std::vector<NodeId> order;
  order.reserve(n_present);
  while (!ready.empty()) {
    NodeId id = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(id);
    for (NodeId next : successors[id]) {
      if (--indegree[next] == 0) ready.insert(next);
    }
  }
  if (order.size() != n_present) {
    return Status::FailedPrecondition("workflow graph contains a cycle");
  }
  return order;
}

Status Workflow::Refresh() {
  fresh_ = false;
  ETLOPT_RETURN_NOT_OK(CheckStructure());
  ETLOPT_ASSIGN_OR_RETURN(topo_, ComputeTopoOrder());
  out_schema_.assign(nodes_.size(), nullptr);
  // Port-ordered provider index built in one pass.
  std::vector<std::vector<std::pair<int, NodeId>>> providers_of(nodes_.size());
  for (const auto& e : edges_) {
    providers_of[e.to].push_back({e.port, e.from});
  }
  for (auto& ps : providers_of) std::sort(ps.begin(), ps.end());
  SchemaInterner& interner = SchemaInterner::Global();
  for (NodeId id : topo_) {
    const Node& n = GetNode(id);
    const auto& providers = providers_of[id];
    if (n.is_activity) {
      std::vector<Schema> inputs;
      inputs.reserve(providers.size());
      for (const auto& [port, from] : providers) {
        inputs.push_back(*out_schema_[from]);
      }
      auto out = n.chain->ComputeOutputSchema(inputs);
      if (!out.ok()) {
        return out.status().WithContext(
            StrFormat("schema propagation at node %d ('%s')", id,
                      n.chain->label().c_str()));
      }
      out_schema_[id] = interner.Intern(out.value());
    } else {
      if (!providers.empty()) {
        const Schema& received = *out_schema_[providers[0].second];
        if (!received.EquivalentTo(n.recordset->schema)) {
          return Status::FailedPrecondition(StrFormat(
              "recordset '%s' declared %s but receives %s",
              n.recordset->name.c_str(),
              n.recordset->schema.ToString().c_str(),
              received.ToString().c_str()));
        }
      }
      out_schema_[id] = interner.Intern(n.recordset->schema);
    }
  }
  fresh_ = true;
  return Status::OK();
}

const Schema& Workflow::OutputSchema(NodeId id) const {
  ETLOPT_CHECK(fresh_);
  ETLOPT_CHECK(id > 0 && static_cast<size_t>(id) < out_schema_.size());
  const Schema* s = out_schema_[id];
  ETLOPT_CHECK(s != nullptr);
  return *s;
}

std::vector<Schema> Workflow::InputSchemas(NodeId id) const {
  ETLOPT_CHECK(fresh_);
  std::vector<NodeId> providers = Providers(id);
  std::vector<Schema> inputs;
  inputs.reserve(providers.size());
  for (NodeId p : providers) inputs.push_back(OutputSchema(p));
  return inputs;
}

const std::vector<NodeId>& Workflow::TopoOrder() const {
  ETLOPT_CHECK(fresh_);
  return topo_;
}

std::string Workflow::Unfold(NodeId id,
                             std::map<NodeId, std::string>* memo) const {
  auto it = memo->find(id);
  if (it != memo->end()) return it->second;
  std::vector<NodeId> providers = Providers(id);
  std::string s = PriorityLabelOf(id);
  if (!providers.empty()) {
    std::vector<std::string> parts;
    parts.reserve(providers.size());
    for (NodeId p : providers) parts.push_back(Unfold(p, memo));
    s += "(" + Join(parts, ",") + ")";
  }
  memo->emplace(id, s);
  return s;
}

std::string Workflow::Signature() const {
  std::map<NodeId, std::string> memo;
  std::vector<std::string> targets;
  for (NodeId t : TargetRecordSets()) targets.push_back(Unfold(t, &memo));
  std::sort(targets.begin(), targets.end());
  return Join(targets, ";") + "#" + std::to_string(ActivityCount());
}

namespace {

// FNV-1a mixing helpers for SignatureHash.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FnvByte(uint64_t h, unsigned char b) {
  return (h ^ b) * kFnvPrime;
}

inline uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = FnvByte(h, p[i]);
  return h;
}

}  // namespace

uint64_t Workflow::SignatureHash() const {
  // Hashes the same plabel tree Signature() renders, without building the
  // strings and without the per-node O(E) Providers() scans: the
  // port-ordered provider index is built in one edge pass into dense
  // vectors, unfold hashes are memoized per node (the graph is a DAG),
  // and per-target hashes are sorted numerically — the canonicalization
  // Signature() gets from sorting the target strings.
  const size_t n_slots = nodes_.size();
  std::vector<std::vector<std::pair<int, NodeId>>> providers_of(n_slots);
  std::vector<char> has_consumer(n_slots, 0);
  for (const auto& e : edges_) {
    providers_of[e.to].push_back({e.port, e.from});
    has_consumer[e.from] = 1;
  }
  for (auto& ps : providers_of) std::sort(ps.begin(), ps.end());

  std::vector<uint64_t> memo(n_slots, 0);
  std::vector<char> done(n_slots, 0);
  std::function<uint64_t(NodeId)> unfold = [&](NodeId id) -> uint64_t {
    if (done[id]) return memo[id];
    uint64_t h = kFnvOffset;
    const std::string plabel = PriorityLabelOf(id);
    h = FnvBytes(h, plabel.data(), plabel.size());
    if (!providers_of[id].empty()) {
      h = FnvByte(h, '(');
      for (const auto& [port, from] : providers_of[id]) {
        uint64_t child = unfold(from);
        h = FnvBytes(h, &child, sizeof(child));
        h = FnvByte(h, ',');
      }
      h = FnvByte(h, ')');
    }
    memo[id] = h;
    done[id] = 1;
    return h;
  };

  std::vector<uint64_t> targets;
  for (NodeId id = 1; id < next_id_; ++id) {
    const Node& n = nodes_[id];
    if (n.present && !n.is_activity && !has_consumer[id]) {
      targets.push_back(unfold(id));
    }
  }
  std::sort(targets.begin(), targets.end());
  uint64_t h = kFnvOffset;
  for (uint64_t t : targets) h = FnvBytes(h, &t, sizeof(t));
  uint64_t count = ActivityCount();
  h = FnvByte(h, '#');
  h = FnvBytes(h, &count, sizeof(count));
  return h;
}

std::string Workflow::PrettySignature() const {
  // Recursive render: a node is its providers' rendering followed by its
  // own priority label; multiple providers bracket as (a//b).
  std::map<NodeId, std::string> memo;
  std::function<std::string(NodeId)> render = [&](NodeId id) -> std::string {
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    std::vector<NodeId> providers = Providers(id);
    std::string s;
    if (providers.size() == 1) {
      s = render(providers[0]) + ".";
    } else if (providers.size() > 1) {
      std::vector<std::string> parts;
      parts.reserve(providers.size());
      for (NodeId p : providers) parts.push_back("(" + render(p) + ")");
      s = "(" + Join(parts, "//") + ").";
    }
    s += PriorityLabelOf(id);
    memo.emplace(id, s);
    return s;
  };
  std::vector<std::string> targets;
  for (NodeId t : TargetRecordSets()) targets.push_back(render(t));
  std::sort(targets.begin(), targets.end());
  return Join(targets, " ; ");
}

std::set<std::string> Workflow::PostConditionSet() const {
  std::set<std::string> out;
  for (const Node& n : nodes_) {
    if (!n.present) continue;
    if (n.is_activity) {
      for (const auto& p : n.chain->PredicateStrings()) out.insert(p);
    } else {
      out.insert(n.recordset->name + n.recordset->schema.ToString());
    }
  }
  return out;
}

bool Workflow::EquivalentTo(const Workflow& other) const {
  // (a) Targets must coincide by name with equivalent schemata.
  std::map<std::string, const Schema*> mine;
  for (NodeId t : TargetRecordSets()) {
    mine.emplace(recordset(t).name, &recordset(t).schema);
  }
  std::map<std::string, const Schema*> theirs;
  for (NodeId t : other.TargetRecordSets()) {
    theirs.emplace(other.recordset(t).name, &other.recordset(t).schema);
  }
  if (mine.size() != theirs.size()) return false;
  for (const auto& [name, schema] : mine) {
    auto it = theirs.find(name);
    if (it == theirs.end() || !schema->EquivalentTo(*it->second)) return false;
  }
  // (b) Equivalent post-conditions.
  return PostConditionSet() == other.PostConditionSet();
}

bool Workflow::DebugEquals(const Workflow& other) const {
  if (next_id_ != other.next_id_ || finalized_ != other.finalized_ ||
      fresh_ != other.fresh_ || !(edges_ == other.edges_) ||
      topo_ != other.topo_ || out_schema_ != other.out_schema_ ||
      dirty_nodes_ != other.dirty_nodes_ ||
      nodes_.size() != other.nodes_.size()) {
    return false;
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& a = nodes_[i];
    const Node& b = other.nodes_[i];
    if (a.present != b.present) return false;
    if (!a.present) continue;
    if (a.is_activity != b.is_activity || a.plabel != b.plabel) return false;
    if (a.is_activity) {
      if (a.chain->size() != b.chain->size() ||
          a.chain->label() != b.chain->label() ||
          a.chain->PriorityLabel() != b.chain->PriorityLabel() ||
          a.chain->SemanticsString() != b.chain->SemanticsString() ||
          a.chain->selectivity() != b.chain->selectivity()) {
        return false;
      }
    } else {
      if (a.recordset->name != b.recordset->name ||
          a.recordset->cardinality != b.recordset->cardinality ||
          !(a.recordset->schema == b.recordset->schema)) {
        return false;
      }
    }
  }
  return true;
}

Status Workflow::SwapAdjacent(NodeId upstream, NodeId downstream) {
  if (!IsActivity(upstream) || !IsActivity(downstream)) {
    return Status::InvalidArgument("swap: both nodes must be activities");
  }
  if (!chain(upstream).is_unary() || !chain(downstream).is_unary()) {
    return Status::InvalidArgument("swap: both nodes must be unary");
  }
  std::vector<NodeId> up_consumers = Consumers(upstream);
  if (up_consumers.size() != 1 || up_consumers[0] != downstream) {
    return Status::FailedPrecondition("swap: nodes are not adjacent");
  }
  std::vector<NodeId> down_consumers = Consumers(downstream);
  if (down_consumers.size() != 1) {
    return Status::FailedPrecondition(
        "swap: downstream must have exactly one consumer");
  }
  NodeId provider = Providers(upstream)[0];
  NodeId consumer = down_consumers[0];
  int provider_port = 0;
  int consumer_port = 0;
  for (const auto& e : edges_) {
    if (e.to == upstream && e.from == provider) provider_port = e.port;
    if (e.from == downstream && e.to == consumer) consumer_port = e.port;
  }
  // provider -> downstream -> upstream -> consumer.
  std::vector<WorkflowEdge> kept;
  for (const auto& e : edges_) {
    bool remove = (e.from == provider && e.to == upstream) ||
                  (e.from == upstream && e.to == downstream) ||
                  (e.from == downstream && e.to == consumer);
    if (!remove) kept.push_back(e);
  }
  kept.push_back({provider, downstream, provider_port});
  kept.push_back({downstream, upstream, 0});
  kept.push_back({upstream, consumer, consumer_port});
  edges_ = std::move(kept);
  MarkDirty(upstream);
  MarkDirty(downstream);
  Invalidate();
  return Status::OK();
}

Status Workflow::RemoveChainNode(NodeId id) {
  if (!IsActivity(id) || !chain(id).is_unary()) {
    return Status::InvalidArgument("remove: node must be a unary activity");
  }
  NodeId provider = Providers(id)[0];
  // Rewire each outgoing edge to start at the provider.
  std::vector<WorkflowEdge> kept;
  for (const auto& e : edges_) {
    if (e.to == id) continue;
    if (e.from == id) {
      kept.push_back({provider, e.to, e.port});
    } else {
      kept.push_back(e);
    }
  }
  edges_ = std::move(kept);
  EraseNode(id);
  Invalidate();
  return Status::OK();
}

StatusOr<NodeId> Workflow::InsertOnEdge(ActivityChain chain, NodeId from,
                                        NodeId to) {
  if (!chain.is_unary()) {
    return Status::InvalidArgument("insert: chain must be unary");
  }
  auto it = std::find_if(edges_.begin(), edges_.end(),
                         [&](const WorkflowEdge& e) {
                           return e.from == from && e.to == to;
                         });
  if (it == edges_.end()) {
    return Status::NotFound(
        StrFormat("insert: no edge %d -> %d", from, to));
  }
  int port = it->port;
  edges_.erase(it);
  NodeId id = NewId();
  Node& n = nodes_[id];
  n.present = true;
  n.is_activity = true;
  n.chain = std::move(chain);
  edges_.push_back({from, id, 0});
  edges_.push_back({id, to, port});
  MarkDirty(id);
  Invalidate();
  return id;
}

Status Workflow::MergeInto(NodeId first, NodeId second) {
  if (!IsActivity(first) || !IsActivity(second)) {
    return Status::InvalidArgument("merge: both nodes must be activities");
  }
  std::vector<NodeId> consumers = Consumers(first);
  if (consumers.size() != 1 || consumers[0] != second) {
    return Status::FailedPrecondition(
        "merge: second must be first's only consumer");
  }
  if (!chain(second).is_unary()) {
    return Status::InvalidArgument("merge: second must be a unary chain");
  }
  ETLOPT_ASSIGN_OR_RETURN(
      ActivityChain merged,
      ActivityChain::Concat(chain(first), chain(second)));
  GetNodeMutable(first).chain = std::move(merged);
  // Bridge: second's consumers now consume first.
  std::vector<WorkflowEdge> kept;
  for (const auto& e : edges_) {
    if (e.to == second) continue;  // the first->second edge
    if (e.from == second) {
      kept.push_back({first, e.to, e.port});
    } else {
      kept.push_back(e);
    }
  }
  edges_ = std::move(kept);
  EraseNode(second);
  MarkDirty(first);
  Invalidate();
  return Status::OK();
}

StatusOr<NodeId> Workflow::SplitNode(NodeId id, size_t at) {
  if (!IsActivity(id)) {
    return Status::InvalidArgument("split: node must be an activity");
  }
  ETLOPT_ASSIGN_OR_RETURN(auto parts, chain(id).SplitAt(at));
  NodeId tail_id = NewId();
  Node& tail = nodes_[tail_id];
  tail.present = true;
  tail.is_activity = true;
  tail.chain = std::move(parts.second);
  // Tail takes over id's outgoing edges.
  for (auto& e : edges_) {
    if (e.from == id) e.from = tail_id;
  }
  edges_.push_back({id, tail_id, 0});
  GetNodeMutable(id).chain = std::move(parts.first);
  MarkDirty(id);
  MarkDirty(tail_id);
  Invalidate();
  return tail_id;
}

const Workflow::Node& Workflow::GetNode(NodeId id) const {
  ETLOPT_CHECK(Exists(id));
  return nodes_[id];
}

Workflow::Node& Workflow::GetNodeMutable(NodeId id) {
  ETLOPT_CHECK(Exists(id));
  TouchNode(id);
  return nodes_[id];
}

}  // namespace etlopt
