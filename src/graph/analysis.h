// Structural analyses over workflows used by the heuristic search:
// local groups, homologous activities, distributable activities (§3.2,
// §4.2 of the paper).

#ifndef ETLOPT_GRAPH_ANALYSIS_H_
#define ETLOPT_GRAPH_ANALYSIS_H_

#include <vector>

#include "graph/workflow.h"

namespace etlopt {

/// A local group: a maximal linear path of unary activity nodes, bordered
/// by recordsets and/or binary activities (paper §3.2). Nodes are listed
/// in flow order.
struct LocalGroup {
  std::vector<NodeId> nodes;
};

/// Finds all local groups, ordered by their first node id.
std::vector<LocalGroup> FindLocalGroups(const Workflow& w);

/// Walks downstream from `from` through unary activity nodes; returns the
/// first binary activity node or recordset hit (kInvalidNode if none).
NodeId NextBinaryOrRecordSet(const Workflow& w, NodeId from);

/// Walks upstream from `from` through unary activity nodes (single
/// provider); returns the first binary activity node or recordset.
NodeId PrevBinaryOrRecordSet(const Workflow& w, NodeId from);

/// Two activities are homologous (paper §3.2) when they live in local
/// groups converging to the same binary activity and have the same
/// semantics (algebraic expression + functionality/generated/projected-out
/// schemata, all captured by the chain's SemanticsString).
struct HomologousPair {
  NodeId a1 = kInvalidNode;
  NodeId a2 = kInvalidNode;
  /// The binary activity both groups converge to.
  NodeId binary = kInvalidNode;
};

std::vector<HomologousPair> FindHomologousPairs(const Workflow& w);

/// A candidate for the Distribute transition: a unary node whose local
/// group directly follows a binary activity (the node could be shifted
/// backwards in front of it and cloned into the converging flows).
struct DistributableActivity {
  NodeId node = kInvalidNode;
  NodeId binary = kInvalidNode;
};

std::vector<DistributableActivity> FindDistributable(const Workflow& w);

}  // namespace etlopt

#endif  // ETLOPT_GRAPH_ANALYSIS_H_
