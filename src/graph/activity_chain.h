// ActivityChain: one graph node's activities.
//
// A node normally holds a single activity, but the paper's Merge
// transition packages a pair of adjacent activities into one unit (and
// Split unpackages it). Representing the node payload as a short chain of
// activities makes MER/SPL list operations and lets every composite
// property (schemata, semantics, selectivity, execution) fold over the
// members.

#ifndef ETLOPT_GRAPH_ACTIVITY_CHAIN_H_
#define ETLOPT_GRAPH_ACTIVITY_CHAIN_H_

#include <string>
#include <vector>

#include "activity/activity.h"

namespace etlopt {

/// A non-empty sequence of activities executed back to back within one
/// workflow node. Invariants: a binary activity can only appear as the
/// first member; all later members are unary (a chain has one output and
/// as many inputs as its first member).
class ActivityChain {
 public:
  /// A chain member: the activity plus its execution-priority label
  /// (assigned from the initial workflow's topological order, paper §4.1,
  /// and carried unchanged for the activity's whole lifespan).
  struct Member {
    Activity activity;
    std::string plabel;
  };

  explicit ActivityChain(Activity activity, std::string plabel = "");

  /// Concatenates `head` then `tail` (the Merge transition). Fails if
  /// `tail` starts with a binary activity.
  static StatusOr<ActivityChain> Concat(const ActivityChain& head,
                                        const ActivityChain& tail);

  /// Splits into [0, at) and [at, size) (the Split transition).
  /// Requires 0 < at < size().
  StatusOr<std::pair<ActivityChain, ActivityChain>> SplitAt(size_t at) const;

  const std::vector<Member>& members() const { return members_; }
  size_t size() const { return members_.size(); }
  const Activity& front() const { return members_.front().activity; }
  const Activity& back() const { return members_.back().activity; }

  bool is_unary() const { return front().is_unary(); }
  bool is_binary() const { return front().is_binary(); }
  int input_arity() const { return front().input_arity(); }

  /// "check_nn+to_euro" — member labels joined.
  std::string label() const;

  /// "3+4" — member priority labels joined; the node's signature atom.
  std::string PriorityLabel() const;

  void set_plabel(size_t member, std::string plabel);

  /// Replaces one member's activity (e.g. with recalibrated selectivity).
  /// The member keeps its priority label.
  void ReplaceMemberActivity(size_t member, Activity activity);

  /// Attributes read from the chain's external input (reads satisfied by
  /// an upstream member's generated attributes are internal and excluded).
  std::vector<std::string> FunctionalityAttrs() const;

  /// Union of members' value-changed attributes.
  std::vector<std::string> ValueChangedAttrs() const;

  /// Composite selectivity (product of members').
  double selectivity() const;

  /// Folds ComputeOutputSchema over the members.
  StatusOr<Schema> ComputeOutputSchema(const std::vector<Schema>& inputs) const;

  /// Members' semantics strings joined with '+': the composite algebraic
  /// form used for the homologous test.
  std::string SemanticsString() const;

  /// FNV-1a hash of SemanticsString(), computed once at construction.
  /// Equal chains have equal hashes; used by the semi-incremental costing
  /// to detect untouched nodes cheaply.
  size_t semantics_hash() const { return semantics_hash_; }

  /// One post-condition predicate per member (paper §3.4).
  std::vector<std::string> PredicateStrings() const;

  /// Runs all members in sequence.
  StatusOr<std::vector<Record>> Execute(
      const std::vector<Schema>& input_schemas,
      const std::vector<std::vector<Record>>& inputs,
      const ExecutionContext& ctx) const;

 private:
  explicit ActivityChain(std::vector<Member> members);

  std::vector<Member> members_;
  size_t semantics_hash_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_GRAPH_ACTIVITY_CHAIN_H_
