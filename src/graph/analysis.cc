#include "graph/analysis.h"

#include <map>

namespace etlopt {

namespace {

bool IsUnaryActivityNode(const Workflow& w, NodeId id) {
  return w.IsActivity(id) && w.chain(id).is_unary();
}

}  // namespace

std::vector<LocalGroup> FindLocalGroups(const Workflow& w) {
  std::vector<LocalGroup> groups;
  for (NodeId id : w.ActivityNodeIds()) {
    if (!IsUnaryActivityNode(w, id)) continue;
    // Group heads: unary nodes whose provider is not a unary activity.
    NodeId provider = w.Providers(id)[0];
    if (IsUnaryActivityNode(w, provider)) continue;
    LocalGroup g;
    NodeId cur = id;
    while (true) {
      g.nodes.push_back(cur);
      std::vector<NodeId> consumers = w.Consumers(cur);
      if (consumers.size() != 1 || !IsUnaryActivityNode(w, consumers[0]))
        break;
      cur = consumers[0];
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

NodeId NextBinaryOrRecordSet(const Workflow& w, NodeId from) {
  NodeId cur = from;
  while (true) {
    std::vector<NodeId> consumers = w.Consumers(cur);
    if (consumers.empty()) return kInvalidNode;
    NodeId next = consumers[0];
    if (w.IsRecordSet(next) || !w.chain(next).is_unary()) return next;
    cur = next;
  }
}

NodeId PrevBinaryOrRecordSet(const Workflow& w, NodeId from) {
  NodeId cur = from;
  while (true) {
    std::vector<NodeId> providers = w.Providers(cur);
    if (providers.empty()) return cur;  // a source recordset
    NodeId prev = providers[0];
    if (w.IsRecordSet(prev) || !w.chain(prev).is_unary()) return prev;
    cur = prev;
  }
}

std::vector<HomologousPair> FindHomologousPairs(const Workflow& w) {
  std::vector<HomologousPair> out;
  std::vector<LocalGroup> groups = FindLocalGroups(w);
  std::map<NodeId, size_t> group_of;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId n : groups[g].nodes) group_of[n] = g;
  }
  std::vector<NodeId> unary;
  for (NodeId id : w.ActivityNodeIds()) {
    if (IsUnaryActivityNode(w, id)) unary.push_back(id);
  }
  for (size_t i = 0; i < unary.size(); ++i) {
    for (size_t j = i + 1; j < unary.size(); ++j) {
      NodeId a1 = unary[i];
      NodeId a2 = unary[j];
      // Homologous activities live in *different*, converging groups.
      if (group_of[a1] == group_of[a2]) continue;
      if (w.chain(a1).SemanticsString() != w.chain(a2).SemanticsString())
        continue;
      NodeId b1 = NextBinaryOrRecordSet(w, a1);
      NodeId b2 = NextBinaryOrRecordSet(w, a2);
      if (b1 == kInvalidNode || b1 != b2) continue;
      if (!w.IsActivity(b1) || !w.chain(b1).is_binary()) continue;
      out.push_back({a1, a2, b1});
    }
  }
  return out;
}

std::vector<DistributableActivity> FindDistributable(const Workflow& w) {
  std::vector<DistributableActivity> out;
  for (NodeId id : w.ActivityNodeIds()) {
    if (!IsUnaryActivityNode(w, id)) continue;
    NodeId prev = PrevBinaryOrRecordSet(w, id);
    if (prev != kInvalidNode && w.IsActivity(prev) &&
        w.chain(prev).is_binary()) {
      out.push_back({id, prev});
    }
  }
  return out;
}

}  // namespace etlopt
