// Value: a single typed cell of a record.

#ifndef ETLOPT_SCHEMA_VALUE_H_
#define ETLOPT_SCHEMA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/statusor.h"

namespace etlopt {

/// The type of an attribute / Value.
///
/// Dates are carried as strings so that the paper's format-conversion
/// activities (American "MM/DD/YYYY" to European "DD/MM/YYYY") are
/// observable data transformations rather than no-ops.
enum class DataType : int {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

std::string_view DataTypeToString(DataType t);

/// A dynamically typed cell. NULL is first-class (SQL-style) because ETL
/// cleansing activities (NotNull checks, domain checks) act on it.
class Value {
 public:
  /// Constructs NULL.
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Double(double d) { return Value(Repr(d)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }

  DataType type() const;
  bool is_null() const { return type() == DataType::kNull; }

  /// Typed accessors; calling the wrong one aborts (programming error).
  bool bool_value() const;
  int64_t int_value() const;
  double double_value() const;
  const std::string& string_value() const;

  /// Numeric view: int64 and double both convert; other types abort.
  double AsDouble() const;

  /// Renders the value for CSV/printing. NULL renders as empty string.
  std::string ToString() const;

  /// Parses `text` as `type`. Empty text yields NULL for any type.
  static StatusOr<Value> Parse(std::string_view text, DataType type);

  /// Total ordering across types (NULL < bool < int/double < string;
  /// int and double compare numerically). Enables sorting record multisets
  /// for order-insensitive comparison.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);

  /// FNV-style hash consistent with operator==.
  size_t Hash() const;

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr v) : v_(std::move(v)) {}

  Repr v_;
};

}  // namespace etlopt

#endif  // ETLOPT_SCHEMA_VALUE_H_
