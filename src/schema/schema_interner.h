// SchemaInterner: process-wide shared storage for schemata.
//
// The optimizer's search states regenerate the same handful of schemata
// millions of times (every candidate state re-propagates schemas through
// an almost-identical graph). Interning collapses all of those copies
// into one canonical, immutable Schema per distinct attribute list, so a
// Workflow's computed-schema table is a vector of pointers instead of a
// map of owned Schema values — cheap to copy, cheap to snapshot into an
// undo log, and shared across every state of every search.
//
// Lifetime rules: interned schemata are immutable and are never evicted;
// a `const Schema*` returned by Intern() stays valid for the rest of the
// process. Memory is bounded by the number of *distinct* schemata the
// process ever sees (workloads reuse a few dozen), not by the number of
// states. The interner is safe to call from any thread.

#ifndef ETLOPT_SCHEMA_SCHEMA_INTERNER_H_
#define ETLOPT_SCHEMA_SCHEMA_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "schema/schema.h"

namespace etlopt {

class SchemaInterner {
 public:
  /// The process-wide interner (function-local static; never destroyed
  /// before its users).
  static SchemaInterner& Global();

  /// Returns the canonical shared copy of `schema` (exact equality: same
  /// names, types and order). The pointer is stable for the process
  /// lifetime.
  const Schema* Intern(const Schema& schema);

  /// Number of distinct schemata interned so far.
  size_t size() const;

  /// Approximate bytes held by the interner (canonical schemata plus
  /// index overhead) — diagnostic, for memory accounting reports.
  size_t ApproxBytes() const;

 private:
  // Sharded to keep concurrent Refresh() calls (parallel frontier
  // expansion) off one lock. Shard storage is a deque so canonical
  // Schema addresses never move.
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_multimap<uint64_t, const Schema*> by_hash;
    std::deque<Schema> store;
    size_t payload_bytes = 0;
  };

  static uint64_t HashSchema(const Schema& schema);

  Shard shards_[kShards];
};

}  // namespace etlopt

#endif  // ETLOPT_SCHEMA_SCHEMA_INTERNER_H_
