#include "schema/schema_interner.h"

namespace etlopt {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

size_t SchemaPayloadBytes(const Schema& s) {
  size_t b = sizeof(Schema);
  for (const auto& a : s.attributes()) b += sizeof(Attribute) + a.name.size();
  return b;
}

}  // namespace

SchemaInterner& SchemaInterner::Global() {
  static SchemaInterner* interner = new SchemaInterner();
  return *interner;
}

uint64_t SchemaInterner::HashSchema(const Schema& schema) {
  uint64_t h = kFnvOffset;
  for (const auto& a : schema.attributes()) {
    h = FnvBytes(h, a.name.data(), a.name.size());
    const auto type = static_cast<uint32_t>(a.type);
    h = FnvBytes(h, &type, sizeof(type));
    h = (h ^ ';') * kFnvPrime;
  }
  return h;
}

const Schema* SchemaInterner::Intern(const Schema& schema) {
  const uint64_t hash = HashSchema(schema);
  Shard& shard = shards_[hash % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [lo, hi] = shard.by_hash.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (*it->second == schema) return it->second;
  }
  shard.store.push_back(schema);
  const Schema* canonical = &shard.store.back();
  shard.by_hash.emplace(hash, canonical);
  shard.payload_bytes += SchemaPayloadBytes(schema);
  return canonical;
}

size_t SchemaInterner::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.store.size();
  }
  return n;
}

size_t SchemaInterner::ApproxBytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.payload_bytes +
             shard.by_hash.size() * (sizeof(uint64_t) + sizeof(const Schema*) +
                                     2 * sizeof(void*));
  }
  return bytes;
}

}  // namespace etlopt
