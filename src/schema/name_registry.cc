#include "schema/name_registry.h"

namespace etlopt {

void NameRegistry::DeclareReference(std::string reference) {
  references_.insert(std::move(reference));
}

bool NameRegistry::IsReference(std::string_view reference) const {
  return references_.count(std::string(reference)) > 0;
}

Status NameRegistry::Register(std::string qualified, std::string reference) {
  auto it = qualified_to_reference_.find(qualified);
  if (it != qualified_to_reference_.end()) {
    if (it->second == reference) return Status::OK();
    return Status::AlreadyExists("'" + qualified + "' already bound to '" +
                                 it->second + "', cannot re-bind to '" +
                                 reference + "'");
  }
  references_.insert(reference);
  qualified_to_reference_.emplace(std::move(qualified), std::move(reference));
  return Status::OK();
}

StatusOr<std::string> NameRegistry::Resolve(std::string_view qualified) const {
  auto it = qualified_to_reference_.find(std::string(qualified));
  if (it == qualified_to_reference_.end()) {
    return Status::NotFound("unregistered qualified name: " +
                            std::string(qualified));
  }
  return it->second;
}

std::set<std::string> NameRegistry::SynonymsOf(
    std::string_view reference) const {
  std::set<std::string> out;
  for (const auto& [qualified, ref] : qualified_to_reference_) {
    if (ref == reference) out.insert(qualified);
  }
  return out;
}

std::string NameRegistry::FreshReference(std::string_view base) {
  std::string candidate(base);
  int suffix = 2;
  while (references_.count(candidate) > 0) {
    candidate = std::string(base) + "_" + std::to_string(suffix++);
  }
  references_.insert(candidate);
  return candidate;
}

}  // namespace etlopt
