#include "schema/value.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

std::string_view DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType Value::type() const {
  switch (v_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  return DataType::kNull;
}

bool Value::bool_value() const {
  ETLOPT_CHECK(std::holds_alternative<bool>(v_));
  return std::get<bool>(v_);
}

int64_t Value::int_value() const {
  ETLOPT_CHECK(std::holds_alternative<int64_t>(v_));
  return std::get<int64_t>(v_);
}

double Value::double_value() const {
  ETLOPT_CHECK(std::holds_alternative<double>(v_));
  return std::get<double>(v_);
}

const std::string& Value::string_value() const {
  ETLOPT_CHECK(std::holds_alternative<std::string>(v_));
  return std::get<std::string>(v_);
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(v_))
    return static_cast<double>(std::get<int64_t>(v_));
  ETLOPT_CHECK(std::holds_alternative<double>(v_));
  return std::get<double>(v_);
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(int_value());
    case DataType::kDouble:
      return DoubleToString(double_value());
    case DataType::kString:
      return string_value();
  }
  return "";
}

StatusOr<Value> Value::Parse(std::string_view text, DataType type) {
  if (text.empty()) return Value::Null();
  std::string s(text);
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      if (s == "true" || s == "1") return Value::Bool(true);
      if (s == "false" || s == "0") return Value::Bool(false);
      return Status::InvalidArgument("not a bool: '" + s + "'");
    }
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(s.c_str(), &end, 10);
      if (errno != 0 || end != s.c_str() + s.size())
        return Status::InvalidArgument("not an int: '" + s + "'");
      return Value::Int(v);
    }
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(s.c_str(), &end);
      if (errno != 0 || end != s.c_str() + s.size())
        return Status::InvalidArgument("not a double: '" + s + "'");
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(std::move(s));
  }
  return Status::InvalidArgument("unknown type");
}

namespace {

// Rank for the cross-type total order.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;  // numerics compare with each other
    case DataType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

bool operator==(const Value& a, const Value& b) {
  DataType ta = a.type();
  DataType tb = b.type();
  if (TypeRank(ta) != TypeRank(tb)) return false;
  switch (ta) {
    case DataType::kNull:
      return true;
    case DataType::kBool:
      return a.bool_value() == b.bool_value();
    case DataType::kInt64:
    case DataType::kDouble:
      return a.AsDouble() == b.AsDouble();
    case DataType::kString:
      return a.string_value() == b.string_value();
  }
  return false;
}

bool operator<(const Value& a, const Value& b) {
  int ra = TypeRank(a.type());
  int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb;
  switch (a.type()) {
    case DataType::kNull:
      return false;
    case DataType::kBool:
      return a.bool_value() < b.bool_value();
    case DataType::kInt64:
    case DataType::kDouble:
      return a.AsDouble() < b.AsDouble();
    case DataType::kString:
      return a.string_value() < b.string_value();
  }
  return false;
}

size_t Value::Hash() const {
  constexpr size_t kBasis = 1469598103934665603ULL;
  constexpr size_t kPrime = 1099511628211ULL;
  size_t h = kBasis;
  auto mix = [&h](const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kPrime;
  };
  switch (type()) {
    case DataType::kNull:
      break;
    case DataType::kBool: {
      bool b = bool_value();
      mix(&b, sizeof(b));
      break;
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      // Numerically equal int/double must hash equally.
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      mix(&d, sizeof(d));
      break;
    }
    case DataType::kString:
      mix(string_value().data(), string_value().size());
      break;
  }
  return h;
}

}  // namespace etlopt
