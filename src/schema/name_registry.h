// NameRegistry: the paper's naming principle (§3.1).
//
// The optimizer assumes (a) all synonyms denote the same real-world entity
// and (b) distinct names denote distinct entities. Real sources violate
// this (PARTS1.COST is Euros, PARTS2.COST is Dollars), so every source
// attribute is mapped to a *reference* name drawn from a scenario-wide
// terminology Ωn, and only reference names appear inside workflows.

#ifndef ETLOPT_SCHEMA_NAME_REGISTRY_H_
#define ETLOPT_SCHEMA_NAME_REGISTRY_H_

#include <map>
#include <set>
#include <string>
#include <string_view>

#include "common/statusor.h"

namespace etlopt {

/// Maintains the terminology Ωn and the mapping from qualified source
/// names ("PARTS2.COST") to reference names ("DOLLAR_COST").
///
/// Invariant enforced: a qualified name maps to exactly one reference
/// name, and the mapping never silently re-binds (re-registering with a
/// different target is an error — that is precisely the homonym bug the
/// naming principle guards against).
class NameRegistry {
 public:
  NameRegistry() = default;

  /// Declares `reference` as a member of the terminology Ωn.
  /// Idempotent.
  void DeclareReference(std::string reference);

  /// True iff `reference` is in Ωn.
  bool IsReference(std::string_view reference) const;

  /// Maps `qualified` (e.g. "PARTS2.COST") to `reference`. Declares the
  /// reference name implicitly. Fails with AlreadyExists if `qualified`
  /// is already bound to a different reference name.
  Status Register(std::string qualified, std::string reference);

  /// Resolves a qualified name; NotFound if unregistered.
  StatusOr<std::string> Resolve(std::string_view qualified) const;

  /// All qualified names bound to `reference` (synonym set).
  std::set<std::string> SynonymsOf(std::string_view reference) const;

  /// Makes a fresh reference name "<base>", "<base>_2", "<base>_3", ...
  /// not yet in Ωn, and declares it. Used when a transition or template
  /// instantiation needs a new generated-attribute name.
  std::string FreshReference(std::string_view base);

  size_t reference_count() const { return references_.size(); }

 private:
  std::set<std::string> references_;
  std::map<std::string, std::string> qualified_to_reference_;
};

}  // namespace etlopt

#endif  // ETLOPT_SCHEMA_NAME_REGISTRY_H_
