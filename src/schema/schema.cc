#include "schema/schema.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

std::string Attribute::ToString() const {
  std::string out = name;
  out += ":";
  out += DataTypeToString(type);
  return out;
}

StatusOr<Schema> Schema::Make(std::vector<Attribute> attributes) {
  Schema s;
  for (auto& a : attributes) {
    if (s.Contains(a.name)) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
    s.attributes_.push_back(std::move(a));
  }
  return s;
}

Schema Schema::MakeOrDie(std::initializer_list<Attribute> attributes) {
  auto s = Make(std::vector<Attribute>(attributes));
  ETLOPT_CHECK_OK(s.status());
  return std::move(s).value();
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

bool Schema::ContainsAll(const std::vector<std::string>& names) const {
  return std::all_of(names.begin(), names.end(),
                     [this](const std::string& n) { return Contains(n); });
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> out;
  out.reserve(attributes_.size());
  for (const auto& a : attributes_) out.push_back(a.name);
  return out;
}

StatusOr<Schema> Schema::Project(const std::vector<std::string>& names) const {
  Schema out;
  for (const auto& n : names) {
    auto idx = IndexOf(n);
    if (!idx.has_value())
      return Status::NotFound("attribute not in schema: " + n);
    ETLOPT_RETURN_NOT_OK(out.Append(attributes_[*idx]));
  }
  return out;
}

Schema Schema::Minus(const std::vector<std::string>& names) const {
  Schema out;
  for (const auto& a : attributes_) {
    if (std::find(names.begin(), names.end(), a.name) == names.end()) {
      ETLOPT_CHECK_OK(out.Append(a));
    }
  }
  return out;
}

Schema Schema::UnionWith(const Schema& other) const {
  Schema out = *this;
  for (const auto& a : other.attributes_) {
    if (!out.Contains(a.name)) {
      ETLOPT_CHECK_OK(out.Append(a));
    }
  }
  return out;
}

Status Schema::Append(Attribute attr) {
  if (Contains(attr.name)) {
    return Status::AlreadyExists("duplicate attribute name: " + attr.name);
  }
  attributes_.push_back(std::move(attr));
  return Status::OK();
}

bool Schema::EquivalentTo(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (const auto& a : attributes_) {
    auto idx = other.IndexOf(a.name);
    if (!idx.has_value() || other.attributes_[*idx].type != a.type)
      return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (const auto& a : attributes_) parts.push_back(a.ToString());
  return "[" + Join(parts, ", ") + "]";
}

}  // namespace etlopt
