// Attribute and Schema: the typed, ordered attribute lists that annotate
// every node of an ETL workflow (paper §2.1).
//
// Attribute names used inside the optimizer are *reference* names in the
// sense of the paper's naming principle (§3.1): one name, one real-world
// entity. NameRegistry (name_registry.h) maintains the mapping from
// source-native names to reference names.

#ifndef ETLOPT_SCHEMA_SCHEMA_H_
#define ETLOPT_SCHEMA_SCHEMA_H_

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "schema/value.h"

namespace etlopt {

/// A named, typed column.
struct Attribute {
  std::string name;
  DataType type = DataType::kString;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.type == b.type;
  }

  std::string ToString() const;
};

/// An ordered list of attributes with unique names.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; duplicate names are an InvalidArgument error.
  static StatusOr<Schema> Make(std::vector<Attribute> attributes);

  /// Convenience for tests/examples: aborts on duplicates.
  static Schema MakeOrDie(std::initializer_list<Attribute> attributes);

  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of `name`, or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;
  bool Contains(std::string_view name) const {
    return IndexOf(name).has_value();
  }

  /// True iff every name in `names` is present.
  bool ContainsAll(const std::vector<std::string>& names) const;

  /// The attribute names in order.
  std::vector<std::string> Names() const;

  /// Schema with only `names`, in the order given; error if any is missing.
  StatusOr<Schema> Project(const std::vector<std::string>& names) const;

  /// Schema with `names` removed (names absent from the schema are ignored).
  Schema Minus(const std::vector<std::string>& names) const;

  /// Appends attributes of `other` not already present (set-union keeping
  /// left-to-right order).
  Schema UnionWith(const Schema& other) const;

  /// Adds one attribute; error if the name already exists.
  Status Append(Attribute attr);

  /// Exact equality: same names, same types, same order.
  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attributes_ == b.attributes_;
  }

  /// Same attribute set regardless of order.
  bool EquivalentTo(const Schema& other) const;

  /// "[PKEY:int, COST:double]".
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace etlopt

#endif  // ETLOPT_SCHEMA_SCHEMA_H_
