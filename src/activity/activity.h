// Activity: the unit of work in an ETL workflow (paper §2.1, §3.2).
//
// An activity is the quadruple (Id, I, O, S): identifier, input schemata,
// output schemata, and semantics. Semantics are drawn from a template
// library in the spirit of ARKTOS II (paper ref [18]): each template has a
// fixed algebraic meaning parameterized by attributes/expressions, and
// exposes the three auxiliary schemata the optimizer reasons with:
//
//  * functionality (necessary) schema — attributes read by the computation;
//  * generated schema                — attributes newly created;
//  * projected-out schema            — attributes dropped from the flow.
//
// Beyond the paper's three schemata we track a fourth derived set,
// ValueChangedAttrs(): attributes whose *content* denotes a new real-world
// entity after the activity (function outputs under rename semantics,
// surrogate keys, aggregate results). This operationalizes the naming
// principle (§3.1): a downstream activity whose functionality schema
// intersects an upstream activity's value-changed set is semantically
// anchored after it, which is exactly what blocks pushing sigma(EUR) before
// the $2E conversion while still allowing the aggregation to slide before
// the (entity-preserving) date-format conversion A2E.

#ifndef ETLOPT_ACTIVITY_ACTIVITY_H_
#define ETLOPT_ACTIVITY_ACTIVITY_H_

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/statusor.h"
#include "expr/expr.h"
#include "records/record.h"
#include "schema/schema.h"

namespace etlopt {

/// The template an activity instantiates.
enum class ActivityKind : int {
  // Unary filters.
  kSelection = 0,       // keep rows satisfying a predicate
  kNotNull = 1,         // keep rows whose attribute is non-NULL
  kDomainCheck = 2,     // keep rows whose numeric attribute lies in [lo, hi]
  kPrimaryKeyCheck = 3, // keep the first row per key (duplicate removal)
  // Unary transformations.
  kProjection = 4,      // drop attributes
  kFunction = 5,        // out = f(args), optionally dropping args
  kSurrogateKey = 6,    // assign surrogate key via lookup table
  kAggregation = 7,     // group-by + aggregates
  // Binary.
  kUnion = 8,
  kJoin = 9,            // natural equi-join on named keys
  kDifference = 10,     // bag difference (left minus right)
  kIntersection = 11,   // bag intersection
};

std::string_view ActivityKindToString(ActivityKind kind);
bool IsUnaryKind(ActivityKind kind);
bool IsBinaryKind(ActivityKind kind);

/// Aggregate functions for kAggregation.
enum class AggFn : int { kSum = 0, kMin = 1, kMax = 2, kCount = 3, kAvg = 4 };

std::string_view AggFnToString(AggFn fn);

/// One aggregate column: `output = fn(arg)` per group.
struct AggSpec {
  AggFn fn = AggFn::kSum;
  std::string arg;
  std::string output;
};

// ---- Per-template parameter structs ----

struct SelectionParams {
  ExprPtr predicate;
};

struct NotNullParams {
  std::string attr;
};

struct DomainCheckParams {
  std::string attr;
  double lo = 0.0;
  double hi = 0.0;
};

struct PrimaryKeyParams {
  std::vector<std::string> key_attrs;
};

struct ProjectionParams {
  std::vector<std::string> drop_attrs;
};

struct FunctionParams {
  /// Registered scalar function name (see expr/expr.h).
  std::string function;
  /// Input attributes, passed in order.
  std::vector<std::string> args;
  /// Output attribute. May equal an arg for in-place transforms.
  std::string output;
  DataType output_type = DataType::kDouble;
  /// True when the transform preserves the real-world entity (e.g. date
  /// format conversion): the output keeps its reference name and imposes
  /// no ordering constraint on consumers. False for entity-changing
  /// transforms (e.g. currency conversion), whose output is a new entity.
  bool entity_preserving = false;
  /// Args to drop from the flow (rename semantics).
  std::vector<std::string> drop_args;
};

struct SurrogateKeyParams {
  /// Attributes forming the lookup key, e.g. {PKEY, SOURCE}.
  std::vector<std::string> key_attrs;
  /// Generated surrogate-key attribute (int).
  std::string output;
  /// Name of the lookup table in the ExecutionContext.
  std::string lookup_name;
  /// Key attributes to drop once the surrogate key is assigned.
  std::vector<std::string> drop_attrs;
};

struct AggregationParams {
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;
};

struct UnionParams {};

struct JoinParams {
  std::vector<std::string> key_attrs;
};

struct DifferenceParams {};

struct IntersectionParams {};

using ActivityParams =
    std::variant<SelectionParams, NotNullParams, DomainCheckParams,
                 PrimaryKeyParams, ProjectionParams, FunctionParams,
                 SurrogateKeyParams, AggregationParams, UnionParams,
                 JoinParams, DifferenceParams, IntersectionParams>;

/// Runtime environment for executing activities: named surrogate-key
/// lookup tables (composite key values -> surrogate id).
struct ExecutionContext {
  std::map<std::string, std::map<std::vector<Value>, Value>> lookups;
};

/// An instantiated activity template.
///
/// Activities are immutable values: transitions copy workflows wholesale,
/// so cheap copying (shared ExprPtr, small vectors) matters.
class Activity {
 public:
  /// Validates `params` against `kind` (variant alternative must match,
  /// template-specific invariants must hold) and builds the activity.
  /// `selectivity` is the estimated output/input cardinality ratio used by
  /// cost models (the paper assigns these per activity).
  static StatusOr<Activity> Make(std::string label, ActivityKind kind,
                                 ActivityParams params,
                                 double selectivity = 1.0);

  ActivityKind kind() const { return kind_; }
  const std::string& label() const { return label_; }
  double selectivity() const { return selectivity_; }
  const ActivityParams& params() const { return params_; }

  bool is_unary() const { return IsUnaryKind(kind_); }
  bool is_binary() const { return IsBinaryKind(kind_); }
  int input_arity() const { return is_binary() ? 2 : 1; }

  /// Typed parameter access; aborts on kind mismatch (programming error).
  template <typename T>
  const T& params_as() const {
    return std::get<T>(params_);
  }

  /// Functionality (necessary) schema: attributes the computation reads.
  std::vector<std::string> FunctionalityAttrs() const;

  /// Attributes whose content is a *new real-world entity* downstream of
  /// this activity (see file comment). A consumer reading any of these
  /// cannot be swapped above this activity.
  std::vector<std::string> ValueChangedAttrs() const;

  /// Declared projected-out schema.
  std::vector<std::string> ProjectedOutAttrs() const;

  /// Names of attributes this activity introduces (generated schema).
  std::vector<std::string> GeneratedAttrNames() const;

  /// Derives the output schema from input schemata, enforcing the
  /// template invariants (functionality coverage, name collisions, binary
  /// schema compatibility). This is the engine of automatic schema
  /// (re)generation after transitions (paper §3.2).
  StatusOr<Schema> ComputeOutputSchema(const std::vector<Schema>& inputs) const;

  /// Canonical algebraic form, e.g. "SEL[(COST_EUR >= 100)]". Two
  /// activities with equal semantics strings perform the same operation
  /// (the homologous-activity test, §3.2), and this string doubles as the
  /// activity's post-condition predicate (§3.4).
  std::string SemanticsString() const;

  /// Returns a copy with a different estimated selectivity (semantics
  /// unchanged); used by selectivity calibration.
  Activity WithSelectivity(double selectivity) const {
    Activity copy = *this;
    copy.selectivity_ = selectivity;
    return copy;
  }

  /// Executes the activity over materialized inputs.
  StatusOr<std::vector<Record>> Execute(
      const std::vector<Schema>& input_schemas,
      const std::vector<std::vector<Record>>& inputs,
      const ExecutionContext& ctx) const;

 private:
  Activity(std::string label, ActivityKind kind, ActivityParams params,
           double selectivity)
      : label_(std::move(label)), kind_(kind), params_(std::move(params)),
        selectivity_(selectivity) {}

  std::string label_;
  ActivityKind kind_;
  ActivityParams params_;
  double selectivity_;
};

}  // namespace etlopt

#endif  // ETLOPT_ACTIVITY_ACTIVITY_H_
