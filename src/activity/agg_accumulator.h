// The aggregation accumulator shared by batch execution
// (activity_exec.cc) and incremental streaming (src/stream/). One
// accumulator per (group, AggSpec); feeding the same values in the same
// order always yields bit-identical results, which is what lets the
// stream executor's persistent per-group state reproduce the one-shot
// batch output exactly.

#ifndef ETLOPT_ACTIVITY_AGG_ACCUMULATOR_H_
#define ETLOPT_ACTIVITY_AGG_ACCUMULATOR_H_

#include <cstdint>

#include "activity/activity.h"
#include "schema/value.h"

namespace etlopt {

struct AggAcc {
  double sum = 0.0;
  int64_t non_null = 0;
  Value min;
  Value max;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++non_null;
    if (v.type() == DataType::kInt64 || v.type() == DataType::kDouble) {
      sum += v.AsDouble();
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || max < v) max = v;
  }

  Value Result(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount:
        return Value::Int(non_null);
      case AggFn::kSum:
        return non_null == 0 ? Value::Null() : Value::Double(sum);
      case AggFn::kAvg:
        return non_null == 0
                   ? Value::Null()
                   : Value::Double(sum / static_cast<double>(non_null));
      case AggFn::kMin:
        return min;
      case AggFn::kMax:
        return max;
    }
    return Value::Null();
  }
};

}  // namespace etlopt

#endif  // ETLOPT_ACTIVITY_AGG_ACCUMULATOR_H_
