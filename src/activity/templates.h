// Convenience constructors for the activity template library.
//
// These are the ergonomic entry points scenario builders use; each wraps
// Activity::Make with the right parameter struct.

#ifndef ETLOPT_ACTIVITY_TEMPLATES_H_
#define ETLOPT_ACTIVITY_TEMPLATES_H_

#include <string>
#include <vector>

#include "activity/activity.h"

namespace etlopt {

/// sigma: keep rows satisfying `predicate`. `selectivity` estimates the
/// kept fraction.
StatusOr<Activity> MakeSelection(std::string label, ExprPtr predicate,
                                 double selectivity);

/// Keep rows with a non-NULL `attr`.
StatusOr<Activity> MakeNotNull(std::string label, std::string attr,
                               double selectivity);

/// Keep rows whose numeric `attr` lies in [lo, hi].
StatusOr<Activity> MakeDomainCheck(std::string label, std::string attr,
                                   double lo, double hi, double selectivity);

/// Keep the first row per `key_attrs` (duplicate / PK-violation filter).
StatusOr<Activity> MakePrimaryKeyCheck(std::string label,
                                       std::vector<std::string> key_attrs,
                                       double selectivity);

/// pi-out: drop `drop_attrs` from the flow.
StatusOr<Activity> MakeProjection(std::string label,
                                  std::vector<std::string> drop_attrs);

/// Entity-changing function: output = fn(args); `drop_args` are projected
/// out (rename semantics, e.g. $2E: COST_USD -> COST_EUR). Downstream
/// readers of `output` cannot be swapped above this activity.
StatusOr<Activity> MakeFunction(std::string label, std::string function,
                                std::vector<std::string> args,
                                std::string output, DataType output_type,
                                std::vector<std::string> drop_args = {});

/// Entity-preserving in-place function, e.g. A2E date-format conversion:
/// the output keeps the reference name and imposes no ordering constraint.
StatusOr<Activity> MakeInPlaceFunction(std::string label, std::string function,
                                       std::string attr, DataType output_type);

/// Surrogate-key assignment via the lookup table `lookup_name` bound in
/// the ExecutionContext; drops `drop_attrs` (subset of key) afterwards.
StatusOr<Activity> MakeSurrogateKey(std::string label,
                                    std::vector<std::string> key_attrs,
                                    std::string output,
                                    std::string lookup_name,
                                    std::vector<std::string> drop_attrs = {});

/// gamma: group by `group_by`, computing `aggregates`. `reduction` is the
/// estimated groups/rows ratio (the activity's selectivity).
StatusOr<Activity> MakeAggregation(std::string label,
                                   std::vector<std::string> group_by,
                                   std::vector<AggSpec> aggregates,
                                   double reduction);

StatusOr<Activity> MakeUnion(std::string label);
StatusOr<Activity> MakeJoin(std::string label,
                            std::vector<std::string> key_attrs,
                            double selectivity);
StatusOr<Activity> MakeDifference(std::string label, double selectivity);
StatusOr<Activity> MakeIntersection(std::string label, double selectivity);

}  // namespace etlopt

#endif  // ETLOPT_ACTIVITY_TEMPLATES_H_
