#include "activity/activity.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// Expected variant index per kind; the two enums are kept in lockstep.
size_t ExpectedParamsIndex(ActivityKind kind) {
  return static_cast<size_t>(kind);
}

Status CheckNoDuplicates(const std::vector<std::string>& names,
                         const char* what) {
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        return Status::InvalidArgument(StrFormat(
            "duplicate %s attribute '%s'", what, names[i].c_str()));
      }
    }
  }
  return Status::OK();
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

Status CheckSubset(const std::vector<std::string>& sub,
                   const std::vector<std::string>& super, const char* what) {
  for (const auto& s : sub) {
    if (!Contains(super, s)) {
      return Status::InvalidArgument(
          StrFormat("%s: '%s' is not available", what, s.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

std::string_view ActivityKindToString(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kSelection:
      return "SEL";
    case ActivityKind::kNotNull:
      return "NN";
    case ActivityKind::kDomainCheck:
      return "DOM";
    case ActivityKind::kPrimaryKeyCheck:
      return "PK";
    case ActivityKind::kProjection:
      return "PROJ";
    case ActivityKind::kFunction:
      return "FN";
    case ActivityKind::kSurrogateKey:
      return "SK";
    case ActivityKind::kAggregation:
      return "AGG";
    case ActivityKind::kUnion:
      return "UNION";
    case ActivityKind::kJoin:
      return "JOIN";
    case ActivityKind::kDifference:
      return "DIFF";
    case ActivityKind::kIntersection:
      return "INTERSECT";
  }
  return "UNKNOWN";
}

bool IsUnaryKind(ActivityKind kind) { return !IsBinaryKind(kind); }

bool IsBinaryKind(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kUnion:
    case ActivityKind::kJoin:
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection:
      return true;
    default:
      return false;
  }
}

std::string_view AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kAvg:
      return "AVG";
  }
  return "?";
}

StatusOr<Activity> Activity::Make(std::string label, ActivityKind kind,
                                  ActivityParams params, double selectivity) {
  if (params.index() != ExpectedParamsIndex(kind)) {
    return Status::InvalidArgument(
        StrFormat("activity '%s': params do not match kind %s", label.c_str(),
                  std::string(ActivityKindToString(kind)).c_str()));
  }
  if (selectivity <= 0.0 || selectivity > 1.0) {
    if (!(kind == ActivityKind::kJoin && selectivity > 0.0)) {
      return Status::InvalidArgument(StrFormat(
          "activity '%s': selectivity %.4f out of (0, 1]", label.c_str(),
          selectivity));
    }
  }
  // Template-specific invariants.
  switch (kind) {
    case ActivityKind::kSelection: {
      const auto& p = std::get<SelectionParams>(params);
      if (p.predicate == nullptr)
        return Status::InvalidArgument("selection: missing predicate");
      break;
    }
    case ActivityKind::kNotNull: {
      const auto& p = std::get<NotNullParams>(params);
      if (p.attr.empty())
        return Status::InvalidArgument("not-null: missing attribute");
      break;
    }
    case ActivityKind::kDomainCheck: {
      const auto& p = std::get<DomainCheckParams>(params);
      if (p.attr.empty())
        return Status::InvalidArgument("domain-check: missing attribute");
      if (p.lo > p.hi)
        return Status::InvalidArgument("domain-check: lo > hi");
      break;
    }
    case ActivityKind::kPrimaryKeyCheck: {
      const auto& p = std::get<PrimaryKeyParams>(params);
      if (p.key_attrs.empty())
        return Status::InvalidArgument("pk-check: empty key");
      ETLOPT_RETURN_NOT_OK(CheckNoDuplicates(p.key_attrs, "key"));
      break;
    }
    case ActivityKind::kProjection: {
      const auto& p = std::get<ProjectionParams>(params);
      if (p.drop_attrs.empty())
        return Status::InvalidArgument("projection: nothing to drop");
      ETLOPT_RETURN_NOT_OK(CheckNoDuplicates(p.drop_attrs, "drop"));
      break;
    }
    case ActivityKind::kFunction: {
      const auto& p = std::get<FunctionParams>(params);
      if (p.function.empty() || p.output.empty())
        return Status::InvalidArgument("function: missing name or output");
      if (!IsScalarFunctionRegistered(p.function))
        return Status::NotFound("function: unregistered scalar function '" +
                                p.function + "'");
      ETLOPT_RETURN_NOT_OK(CheckNoDuplicates(p.args, "arg"));
      ETLOPT_RETURN_NOT_OK(CheckSubset(p.drop_args, p.args,
                                       "function drop_args"));
      if (Contains(p.drop_args, p.output)) {
        return Status::InvalidArgument(
            "function: output attribute cannot be dropped");
      }
      break;
    }
    case ActivityKind::kSurrogateKey: {
      const auto& p = std::get<SurrogateKeyParams>(params);
      if (p.key_attrs.empty() || p.output.empty() || p.lookup_name.empty())
        return Status::InvalidArgument("surrogate-key: incomplete params");
      ETLOPT_RETURN_NOT_OK(CheckNoDuplicates(p.key_attrs, "key"));
      ETLOPT_RETURN_NOT_OK(
          CheckSubset(p.drop_attrs, p.key_attrs, "surrogate-key drop_attrs"));
      if (Contains(p.key_attrs, p.output)) {
        return Status::InvalidArgument(
            "surrogate-key: output collides with key attribute");
      }
      break;
    }
    case ActivityKind::kAggregation: {
      const auto& p = std::get<AggregationParams>(params);
      if (p.aggregates.empty())
        return Status::InvalidArgument("aggregation: no aggregates");
      ETLOPT_RETURN_NOT_OK(CheckNoDuplicates(p.group_by, "group-by"));
      std::vector<std::string> outs = p.group_by;
      for (const auto& a : p.aggregates) {
        if (a.arg.empty() || a.output.empty())
          return Status::InvalidArgument("aggregation: incomplete AggSpec");
        if (Contains(outs, a.output)) {
          return Status::InvalidArgument(
              "aggregation: duplicate output attribute '" + a.output + "'");
        }
        outs.push_back(a.output);
      }
      break;
    }
    case ActivityKind::kJoin: {
      const auto& p = std::get<JoinParams>(params);
      if (p.key_attrs.empty())
        return Status::InvalidArgument("join: empty key");
      ETLOPT_RETURN_NOT_OK(CheckNoDuplicates(p.key_attrs, "key"));
      break;
    }
    case ActivityKind::kUnion:
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection:
      break;
  }
  return Activity(std::move(label), kind, std::move(params), selectivity);
}

std::vector<std::string> Activity::FunctionalityAttrs() const {
  switch (kind_) {
    case ActivityKind::kSelection:
      return params_as<SelectionParams>().predicate->ReferencedColumns();
    case ActivityKind::kNotNull:
      return {params_as<NotNullParams>().attr};
    case ActivityKind::kDomainCheck:
      return {params_as<DomainCheckParams>().attr};
    case ActivityKind::kPrimaryKeyCheck:
      return params_as<PrimaryKeyParams>().key_attrs;
    case ActivityKind::kProjection:
      return {};
    case ActivityKind::kFunction:
      return params_as<FunctionParams>().args;
    case ActivityKind::kSurrogateKey:
      return params_as<SurrogateKeyParams>().key_attrs;
    case ActivityKind::kAggregation: {
      const auto& p = params_as<AggregationParams>();
      std::vector<std::string> out = p.group_by;
      for (const auto& a : p.aggregates) {
        if (!Contains(out, a.arg)) out.push_back(a.arg);
      }
      return out;
    }
    case ActivityKind::kJoin:
      return params_as<JoinParams>().key_attrs;
    case ActivityKind::kUnion:
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection:
      return {};
  }
  return {};
}

std::vector<std::string> Activity::ValueChangedAttrs() const {
  switch (kind_) {
    case ActivityKind::kFunction: {
      const auto& p = params_as<FunctionParams>();
      if (p.entity_preserving) return {};
      return {p.output};
    }
    case ActivityKind::kSurrogateKey:
      return {params_as<SurrogateKeyParams>().output};
    case ActivityKind::kAggregation: {
      const auto& p = params_as<AggregationParams>();
      std::vector<std::string> out;
      out.reserve(p.aggregates.size());
      for (const auto& a : p.aggregates) out.push_back(a.output);
      return out;
    }
    default:
      return {};
  }
}

std::vector<std::string> Activity::ProjectedOutAttrs() const {
  switch (kind_) {
    case ActivityKind::kProjection:
      return params_as<ProjectionParams>().drop_attrs;
    case ActivityKind::kFunction:
      return params_as<FunctionParams>().drop_args;
    case ActivityKind::kSurrogateKey:
      return params_as<SurrogateKeyParams>().drop_attrs;
    default:
      return {};
  }
}

std::vector<std::string> Activity::GeneratedAttrNames() const {
  switch (kind_) {
    case ActivityKind::kFunction: {
      const auto& p = params_as<FunctionParams>();
      if (Contains(p.args, p.output)) return {};  // in-place update
      return {p.output};
    }
    case ActivityKind::kSurrogateKey:
      return {params_as<SurrogateKeyParams>().output};
    case ActivityKind::kAggregation: {
      const auto& p = params_as<AggregationParams>();
      std::vector<std::string> out;
      for (const auto& a : p.aggregates) {
        if (a.output != a.arg) out.push_back(a.output);
      }
      return out;
    }
    default:
      return {};
  }
}

StatusOr<Schema> Activity::ComputeOutputSchema(
    const std::vector<Schema>& inputs) const {
  if (static_cast<int>(inputs.size()) != input_arity()) {
    return Status::InvalidArgument(StrFormat(
        "activity '%s': expected %d input schemata, got %zu", label_.c_str(),
        input_arity(), inputs.size()));
  }
  auto check_present = [&](const std::vector<std::string>& attrs,
                           const Schema& s, const char* what) -> Status {
    for (const auto& a : attrs) {
      if (!s.Contains(a)) {
        return Status::FailedPrecondition(
            StrFormat("activity '%s': %s attribute '%s' missing from input %s",
                      label_.c_str(), what, a.c_str(), s.ToString().c_str()));
      }
    }
    return Status::OK();
  };
  switch (kind_) {
    case ActivityKind::kSelection:
    case ActivityKind::kNotNull:
    case ActivityKind::kDomainCheck:
    case ActivityKind::kPrimaryKeyCheck: {
      ETLOPT_RETURN_NOT_OK(
          check_present(FunctionalityAttrs(), inputs[0], "functionality"));
      return inputs[0];
    }
    case ActivityKind::kProjection: {
      const auto& p = params_as<ProjectionParams>();
      ETLOPT_RETURN_NOT_OK(check_present(p.drop_attrs, inputs[0], "drop"));
      Schema out = inputs[0].Minus(p.drop_attrs);
      if (out.empty()) {
        return Status::FailedPrecondition(
            StrFormat("activity '%s': projection drops all attributes",
                      label_.c_str()));
      }
      return out;
    }
    case ActivityKind::kFunction: {
      const auto& p = params_as<FunctionParams>();
      ETLOPT_RETURN_NOT_OK(check_present(p.args, inputs[0], "arg"));
      Schema out = inputs[0].Minus(p.drop_args);
      if (auto idx = out.IndexOf(p.output); idx.has_value()) {
        // In-place update: only legal when the output is one of the args.
        // A collision with an unrelated input attribute must be rejected,
        // otherwise a transition could silently change semantics.
        if (!Contains(p.args, p.output)) {
          return Status::FailedPrecondition(StrFormat(
              "activity '%s': output '%s' collides with an input attribute",
              label_.c_str(), p.output.c_str()));
        }
        std::vector<Attribute> attrs = out.attributes();
        attrs[*idx].type = p.output_type;
        return Schema::Make(std::move(attrs));
      }
      ETLOPT_RETURN_NOT_OK(out.Append({p.output, p.output_type}));
      return out;
    }
    case ActivityKind::kSurrogateKey: {
      const auto& p = params_as<SurrogateKeyParams>();
      ETLOPT_RETURN_NOT_OK(check_present(p.key_attrs, inputs[0], "key"));
      if (inputs[0].Contains(p.output)) {
        return Status::FailedPrecondition(
            StrFormat("activity '%s': surrogate output '%s' already present",
                      label_.c_str(), p.output.c_str()));
      }
      Schema out = inputs[0].Minus(p.drop_attrs);
      ETLOPT_RETURN_NOT_OK(out.Append({p.output, DataType::kInt64}));
      return out;
    }
    case ActivityKind::kAggregation: {
      const auto& p = params_as<AggregationParams>();
      ETLOPT_RETURN_NOT_OK(check_present(p.group_by, inputs[0], "group-by"));
      Schema out;
      for (const auto& g : p.group_by) {
        auto idx = inputs[0].IndexOf(g);
        ETLOPT_RETURN_NOT_OK(out.Append(inputs[0].attribute(*idx)));
      }
      for (const auto& a : p.aggregates) {
        auto idx = inputs[0].IndexOf(a.arg);
        if (!idx.has_value()) {
          return Status::FailedPrecondition(
              StrFormat("activity '%s': aggregate arg '%s' missing",
                        label_.c_str(), a.arg.c_str()));
        }
        DataType out_type;
        switch (a.fn) {
          case AggFn::kCount:
            out_type = DataType::kInt64;
            break;
          case AggFn::kMin:
          case AggFn::kMax:
            out_type = inputs[0].attribute(*idx).type;
            break;
          case AggFn::kSum:
          case AggFn::kAvg:
            out_type = DataType::kDouble;
            break;
        }
        ETLOPT_RETURN_NOT_OK(out.Append({a.output, out_type}));
      }
      return out;
    }
    case ActivityKind::kUnion:
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection: {
      if (!inputs[0].EquivalentTo(inputs[1])) {
        return Status::FailedPrecondition(StrFormat(
            "activity '%s': %s requires equivalent input schemata; got %s "
            "vs %s",
            label_.c_str(),
            std::string(ActivityKindToString(kind_)).c_str(),
            inputs[0].ToString().c_str(), inputs[1].ToString().c_str()));
      }
      return inputs[0];
    }
    case ActivityKind::kJoin: {
      const auto& p = params_as<JoinParams>();
      ETLOPT_RETURN_NOT_OK(check_present(p.key_attrs, inputs[0], "key"));
      ETLOPT_RETURN_NOT_OK(check_present(p.key_attrs, inputs[1], "key"));
      Schema out = inputs[0];
      for (const auto& a : inputs[1].attributes()) {
        if (Contains(p.key_attrs, a.name)) continue;
        if (out.Contains(a.name)) {
          return Status::FailedPrecondition(StrFormat(
              "activity '%s': join would duplicate non-key attribute '%s'",
              label_.c_str(), a.name.c_str()));
        }
        ETLOPT_RETURN_NOT_OK(out.Append(a));
      }
      return out;
    }
  }
  return Status::Internal("unhandled activity kind");
}

std::string Activity::SemanticsString() const {
  std::string head(ActivityKindToString(kind_));
  switch (kind_) {
    case ActivityKind::kSelection:
      return head + "[" + params_as<SelectionParams>().predicate->ToString() +
             "]";
    case ActivityKind::kNotNull:
      return head + "[" + params_as<NotNullParams>().attr + "]";
    case ActivityKind::kDomainCheck: {
      const auto& p = params_as<DomainCheckParams>();
      return head + "[" + p.attr + "," + DoubleToString(p.lo) + "," +
             DoubleToString(p.hi) + "]";
    }
    case ActivityKind::kPrimaryKeyCheck:
      return head + "[" + Join(params_as<PrimaryKeyParams>().key_attrs, ",") +
             "]";
    case ActivityKind::kProjection:
      return head + "-[" + Join(params_as<ProjectionParams>().drop_attrs, ",") +
             "]";
    case ActivityKind::kFunction: {
      const auto& p = params_as<FunctionParams>();
      std::string s = head;
      if (p.entity_preserving) s += "~";
      s += "[" + p.function + "(" + Join(p.args, ",") + ")->" + p.output;
      if (!p.drop_args.empty()) s += ";-" + Join(p.drop_args, ",");
      s += "]";
      return s;
    }
    case ActivityKind::kSurrogateKey: {
      const auto& p = params_as<SurrogateKeyParams>();
      std::string s = head + "[" + Join(p.key_attrs, ",") + "->" + p.output +
                      ";lut=" + p.lookup_name;
      if (!p.drop_attrs.empty()) s += ";-" + Join(p.drop_attrs, ",");
      s += "]";
      return s;
    }
    case ActivityKind::kAggregation: {
      const auto& p = params_as<AggregationParams>();
      std::vector<std::string> aggs;
      aggs.reserve(p.aggregates.size());
      for (const auto& a : p.aggregates) {
        aggs.push_back(std::string(AggFnToString(a.fn)) + "(" + a.arg + ")->" +
                       a.output);
      }
      return head + "[" + Join(p.group_by, ",") + "|" + Join(aggs, ",") + "]";
    }
    case ActivityKind::kJoin:
      return head + "[" + Join(params_as<JoinParams>().key_attrs, ",") + "]";
    case ActivityKind::kUnion:
    case ActivityKind::kDifference:
    case ActivityKind::kIntersection:
      return head;
  }
  return head;
}

}  // namespace etlopt
