// Execution semantics of the activity templates.

#include <algorithm>
#include <map>

#include "activity/activity.h"
#include "activity/agg_accumulator.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// Extracts the values of `attrs` from `row` laid out by `schema`.
StatusOr<std::vector<Value>> KeyOf(const Record& row, const Schema& schema,
                                   const std::vector<std::string>& attrs) {
  std::vector<Value> key;
  key.reserve(attrs.size());
  for (const auto& a : attrs) {
    auto idx = schema.IndexOf(a);
    if (!idx.has_value()) return Status::Internal("missing attr: " + a);
    key.push_back(row.value(*idx));
  }
  return key;
}

// Rearranges `row` (laid out by `from`) into the layout of `to`.
// Requires: to's attributes are a subset of from's.
StatusOr<Record> Realign(const Record& row, const Schema& from,
                         const Schema& to) {
  Record out;
  for (const auto& a : to.attributes()) {
    auto idx = from.IndexOf(a.name);
    if (!idx.has_value()) {
      return Status::Internal("realign: missing attribute " + a.name);
    }
    out.Append(row.value(*idx));
  }
  return out;
}

}  // namespace

StatusOr<std::vector<Record>> Activity::Execute(
    const std::vector<Schema>& input_schemas,
    const std::vector<std::vector<Record>>& inputs,
    const ExecutionContext& ctx) const {
  if (input_schemas.size() != inputs.size() ||
      static_cast<int>(inputs.size()) != input_arity()) {
    return Status::InvalidArgument(
        StrFormat("activity '%s': bad execute arity", label_.c_str()));
  }
  // Validate schema compatibility up front; Execute relies on it.
  ETLOPT_ASSIGN_OR_RETURN(Schema out_schema, ComputeOutputSchema(input_schemas));
  const Schema& in = input_schemas[0];
  const std::vector<Record>& rows = inputs[0];
  std::vector<Record> out;

  switch (kind_) {
    case ActivityKind::kSelection: {
      const auto& p = params_as<SelectionParams>();
      for (const auto& r : rows) {
        ETLOPT_ASSIGN_OR_RETURN(bool keep,
                                EvaluatePredicate(*p.predicate, r, in));
        if (keep) out.push_back(r);
      }
      return out;
    }

    case ActivityKind::kNotNull: {
      const auto& p = params_as<NotNullParams>();
      size_t idx = *in.IndexOf(p.attr);
      for (const auto& r : rows) {
        if (!r.value(idx).is_null()) out.push_back(r);
      }
      return out;
    }

    case ActivityKind::kDomainCheck: {
      const auto& p = params_as<DomainCheckParams>();
      size_t idx = *in.IndexOf(p.attr);
      for (const auto& r : rows) {
        const Value& v = r.value(idx);
        if (v.is_null()) continue;
        if (v.type() != DataType::kInt64 && v.type() != DataType::kDouble) {
          return Status::InvalidArgument(
              StrFormat("activity '%s': domain check over non-numeric '%s'",
                        label_.c_str(), p.attr.c_str()));
        }
        double d = v.AsDouble();
        if (d >= p.lo && d <= p.hi) out.push_back(r);
      }
      return out;
    }

    case ActivityKind::kPrimaryKeyCheck: {
      const auto& p = params_as<PrimaryKeyParams>();
      std::map<std::vector<Value>, bool> seen;
      for (const auto& r : rows) {
        ETLOPT_ASSIGN_OR_RETURN(std::vector<Value> key,
                                KeyOf(r, in, p.key_attrs));
        if (seen.emplace(std::move(key), true).second) out.push_back(r);
      }
      return out;
    }

    case ActivityKind::kProjection: {
      for (const auto& r : rows) {
        ETLOPT_ASSIGN_OR_RETURN(Record nr, Realign(r, in, out_schema));
        out.push_back(std::move(nr));
      }
      return out;
    }

    case ActivityKind::kFunction: {
      const auto& p = params_as<FunctionParams>();
      std::vector<ExprPtr> arg_exprs;
      arg_exprs.reserve(p.args.size());
      for (const auto& a : p.args) arg_exprs.push_back(Column(a));
      ExprPtr call = Function(p.function, std::move(arg_exprs));
      size_t out_idx = *out_schema.IndexOf(p.output);
      for (const auto& r : rows) {
        ETLOPT_ASSIGN_OR_RETURN(Value v, call->Evaluate(r, in));
        Record nr;
        for (size_t i = 0; i < out_schema.size(); ++i) {
          if (i == out_idx) {
            nr.Append(v);
          } else {
            auto src = in.IndexOf(out_schema.attribute(i).name);
            if (!src.has_value())
              return Status::Internal("function: missing passthrough attr");
            nr.Append(r.value(*src));
          }
        }
        out.push_back(std::move(nr));
      }
      return out;
    }

    case ActivityKind::kSurrogateKey: {
      const auto& p = params_as<SurrogateKeyParams>();
      auto lut = ctx.lookups.find(p.lookup_name);
      if (lut == ctx.lookups.end()) {
        return Status::NotFound(
            StrFormat("activity '%s': lookup table '%s' not bound",
                      label_.c_str(), p.lookup_name.c_str()));
      }
      size_t out_idx = *out_schema.IndexOf(p.output);
      for (const auto& r : rows) {
        ETLOPT_ASSIGN_OR_RETURN(std::vector<Value> key,
                                KeyOf(r, in, p.key_attrs));
        auto hit = lut->second.find(key);
        if (hit == lut->second.end()) {
          std::vector<std::string> parts;
          for (const auto& v : key) parts.push_back(v.ToString());
          return Status::NotFound(StrFormat(
              "activity '%s': surrogate key miss for (%s)", label_.c_str(),
              Join(parts, ",").c_str()));
        }
        Record nr;
        for (size_t i = 0; i < out_schema.size(); ++i) {
          if (i == out_idx) {
            nr.Append(hit->second);
          } else {
            auto src = in.IndexOf(out_schema.attribute(i).name);
            if (!src.has_value())
              return Status::Internal("surrogate key: missing attr");
            nr.Append(r.value(*src));
          }
        }
        out.push_back(std::move(nr));
      }
      return out;
    }

    case ActivityKind::kAggregation: {
      const auto& p = params_as<AggregationParams>();
      // std::map keyed by group values gives deterministic output order,
      // making executed outputs comparable across equivalent workflows.
      std::map<std::vector<Value>, std::vector<AggAcc>> groups;
      std::vector<size_t> arg_idx;
      arg_idx.reserve(p.aggregates.size());
      for (const auto& a : p.aggregates) arg_idx.push_back(*in.IndexOf(a.arg));
      for (const auto& r : rows) {
        ETLOPT_ASSIGN_OR_RETURN(std::vector<Value> key,
                                KeyOf(r, in, p.group_by));
        auto [it, inserted] = groups.try_emplace(
            std::move(key), std::vector<AggAcc>(p.aggregates.size()));
        (void)inserted;
        for (size_t i = 0; i < p.aggregates.size(); ++i) {
          it->second[i].Add(r.value(arg_idx[i]));
        }
      }
      for (const auto& [key, accs] : groups) {
        Record nr;
        for (const auto& k : key) nr.Append(k);
        for (size_t i = 0; i < p.aggregates.size(); ++i) {
          nr.Append(accs[i].Result(p.aggregates[i].fn));
        }
        out.push_back(std::move(nr));
      }
      return out;
    }

    case ActivityKind::kUnion: {
      out = rows;
      for (const auto& r : inputs[1]) {
        ETLOPT_ASSIGN_OR_RETURN(Record nr,
                                Realign(r, input_schemas[1], out_schema));
        out.push_back(std::move(nr));
      }
      return out;
    }

    case ActivityKind::kDifference:
    case ActivityKind::kIntersection: {
      // Bag semantics over name-aligned records.
      std::map<Record, int64_t> right_counts;
      for (const auto& r : inputs[1]) {
        ETLOPT_ASSIGN_OR_RETURN(Record nr,
                                Realign(r, input_schemas[1], out_schema));
        ++right_counts[nr];
      }
      bool keep_matched = kind_ == ActivityKind::kIntersection;
      for (const auto& r : rows) {
        auto it = right_counts.find(r);
        bool matched = it != right_counts.end() && it->second > 0;
        if (matched) --it->second;
        if (matched == keep_matched) out.push_back(r);
      }
      return out;
    }

    case ActivityKind::kJoin: {
      const auto& p = params_as<JoinParams>();
      std::map<std::vector<Value>, std::vector<const Record*>> right_index;
      for (const auto& r : inputs[1]) {
        ETLOPT_ASSIGN_OR_RETURN(std::vector<Value> key,
                                KeyOf(r, input_schemas[1], p.key_attrs));
        // NULL keys never join (SQL semantics).
        if (std::any_of(key.begin(), key.end(),
                        [](const Value& v) { return v.is_null(); }))
          continue;
        right_index[std::move(key)].push_back(&r);
      }
      for (const auto& l : rows) {
        ETLOPT_ASSIGN_OR_RETURN(std::vector<Value> key,
                                KeyOf(l, in, p.key_attrs));
        if (std::any_of(key.begin(), key.end(),
                        [](const Value& v) { return v.is_null(); }))
          continue;
        auto hit = right_index.find(key);
        if (hit == right_index.end()) continue;
        for (const Record* r : hit->second) {
          Record nr = l;
          for (const auto& a : input_schemas[1].attributes()) {
            if (std::find(p.key_attrs.begin(), p.key_attrs.end(), a.name) !=
                p.key_attrs.end())
              continue;
            nr.Append(r->value(*input_schemas[1].IndexOf(a.name)));
          }
          out.push_back(std::move(nr));
        }
      }
      return out;
    }
  }
  return Status::Internal("unhandled activity kind in Execute");
}

}  // namespace etlopt
