#include "activity/templates.h"

namespace etlopt {

StatusOr<Activity> MakeSelection(std::string label, ExprPtr predicate,
                                 double selectivity) {
  return Activity::Make(std::move(label), ActivityKind::kSelection,
                        SelectionParams{std::move(predicate)}, selectivity);
}

StatusOr<Activity> MakeNotNull(std::string label, std::string attr,
                               double selectivity) {
  return Activity::Make(std::move(label), ActivityKind::kNotNull,
                        NotNullParams{std::move(attr)}, selectivity);
}

StatusOr<Activity> MakeDomainCheck(std::string label, std::string attr,
                                   double lo, double hi, double selectivity) {
  return Activity::Make(std::move(label), ActivityKind::kDomainCheck,
                        DomainCheckParams{std::move(attr), lo, hi},
                        selectivity);
}

StatusOr<Activity> MakePrimaryKeyCheck(std::string label,
                                       std::vector<std::string> key_attrs,
                                       double selectivity) {
  return Activity::Make(std::move(label), ActivityKind::kPrimaryKeyCheck,
                        PrimaryKeyParams{std::move(key_attrs)}, selectivity);
}

StatusOr<Activity> MakeProjection(std::string label,
                                  std::vector<std::string> drop_attrs) {
  return Activity::Make(std::move(label), ActivityKind::kProjection,
                        ProjectionParams{std::move(drop_attrs)},
                        /*selectivity=*/1.0);
}

StatusOr<Activity> MakeFunction(std::string label, std::string function,
                                std::vector<std::string> args,
                                std::string output, DataType output_type,
                                std::vector<std::string> drop_args) {
  FunctionParams p;
  p.function = std::move(function);
  p.args = std::move(args);
  p.output = std::move(output);
  p.output_type = output_type;
  p.entity_preserving = false;
  p.drop_args = std::move(drop_args);
  return Activity::Make(std::move(label), ActivityKind::kFunction,
                        std::move(p), /*selectivity=*/1.0);
}

StatusOr<Activity> MakeInPlaceFunction(std::string label, std::string function,
                                       std::string attr,
                                       DataType output_type) {
  FunctionParams p;
  p.function = std::move(function);
  p.args = {attr};
  p.output = attr;
  p.output_type = output_type;
  p.entity_preserving = true;
  return Activity::Make(std::move(label), ActivityKind::kFunction,
                        std::move(p), /*selectivity=*/1.0);
}

StatusOr<Activity> MakeSurrogateKey(std::string label,
                                    std::vector<std::string> key_attrs,
                                    std::string output,
                                    std::string lookup_name,
                                    std::vector<std::string> drop_attrs) {
  SurrogateKeyParams p;
  p.key_attrs = std::move(key_attrs);
  p.output = std::move(output);
  p.lookup_name = std::move(lookup_name);
  p.drop_attrs = std::move(drop_attrs);
  return Activity::Make(std::move(label), ActivityKind::kSurrogateKey,
                        std::move(p), /*selectivity=*/1.0);
}

StatusOr<Activity> MakeAggregation(std::string label,
                                   std::vector<std::string> group_by,
                                   std::vector<AggSpec> aggregates,
                                   double reduction) {
  return Activity::Make(
      std::move(label), ActivityKind::kAggregation,
      AggregationParams{std::move(group_by), std::move(aggregates)},
      reduction);
}

StatusOr<Activity> MakeUnion(std::string label) {
  return Activity::Make(std::move(label), ActivityKind::kUnion, UnionParams{},
                        /*selectivity=*/1.0);
}

StatusOr<Activity> MakeJoin(std::string label,
                            std::vector<std::string> key_attrs,
                            double selectivity) {
  return Activity::Make(std::move(label), ActivityKind::kJoin,
                        JoinParams{std::move(key_attrs)}, selectivity);
}

StatusOr<Activity> MakeDifference(std::string label, double selectivity) {
  return Activity::Make(std::move(label), ActivityKind::kDifference,
                        DifferenceParams{}, selectivity);
}

StatusOr<Activity> MakeIntersection(std::string label, double selectivity) {
  return Activity::Make(std::move(label), ActivityKind::kIntersection,
                        IntersectionParams{}, selectivity);
}

}  // namespace etlopt
