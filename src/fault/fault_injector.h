// FaultInjector: process-wide, seed-deterministic fault injection.
//
// Production code is sprinkled with named *fault sites* via
// ETLOPT_FAULT_HIT(site): activity execution, recordset scan/append,
// thread-pool tasks, service requests, plan-cache and checkpoint I/O.
// Tests and the fault sweep arm the global injector with a schedule —
// a list of (site, hit index, kind) entries — and every hit of a site
// is counted; when the count matches a scheduled entry the injector
// fires: a transient Status error (Unavailable), a delay, or a
// crash-point (a non-retryable Internal error that models the process
// dying at that instruction — retry layers must NOT absorb it; recovery
// happens in a fresh run from persisted checkpoints).
//
// Overhead discipline: when the injector is disarmed (the default) a hit
// is one relaxed atomic load and a predictable branch — no counting, no
// locks. Compiling with -DETLOPT_NO_FAULT_INJECTION removes the hooks
// entirely. Schedules are immutable while armed, so firing decisions
// need no locking either; per-site hit counters are atomic.
//
// Determinism: with a serial engine, hit N of a site is the same logical
// operation on every run, so a schedule reproduces a failure exactly.
// Under parallel engines the site that fires is schedule-deterministic
// but the logical operation it lands on depends on interleaving — which
// is precisely what the recovery property test wants to survive.

#ifndef ETLOPT_FAULT_FAULT_INJECTOR_H_
#define ETLOPT_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace etlopt {

/// Every instrumented location, by semantic role.
enum class FaultSite : int {
  kActivityExecute = 0,  // one activity-chain node execution
  kRecordSetScan = 1,    // RecordSet::ScanAll
  kRecordSetAppend = 2,  // RecordSet::Append
  kThreadPoolTask = 3,   // one ParallelFor item dispatch
  kServiceRequest = 4,   // OptimizerService request handling
  kSearchExecute = 5,    // one optimizer search invocation
  kPlanCacheSave = 6,    // persisting the plan cache
  kPlanCacheLoad = 7,    // warm-loading the plan cache
  kCheckpointWrite = 8,  // recovery checkpoint write
  kCheckpointRead = 9,   // recovery checkpoint read
  kStreamSourceNext = 10,       // MicroBatchSource::Next batch delivery
  kStreamStateCheckpoint = 11,  // stream-state checkpoint write/read
  kVectorizedBatch = 12,        // one columnar batch through the
                                // vectorized engine
  kNetAccept = 13,              // accepting one server connection
  kNetRead = 14,                // one socket read (frame bytes in)
  kNetWrite = 15,               // one socket write (frame bytes out)
  kCacheLookup = 16,            // one shared-result-cache probe
  kCacheMaterialize = 17,       // one shared-result-cache publication
  kRecoveryPlaceCheckpoint = 18,  // writing one optimizer-placed
                                  // (RecoveryPointPlan) checkpoint
};
inline constexpr int kNumFaultSites = 19;

/// Stable lowercase name ("activity_execute", ...), for reports and
/// schedule printing.
std::string_view FaultSiteName(FaultSite site);

/// All sites, for sweeps.
const std::array<FaultSite, kNumFaultSites>& AllFaultSites();

enum class FaultKind : int {
  /// Transient error: Status::Unavailable. Retry layers absorb it.
  kError = 0,
  /// Sleep delay_micros, then succeed. Exercises deadlines.
  kDelay = 1,
  /// Non-retryable Status::Internal modeling a process kill at this
  /// point. IsInjectedCrash() recognizes it.
  kCrash = 2,
};

/// One scheduled fault: fire `kind` on hit number `hit` (0-based) of
/// `site`.
struct FaultSpec {
  FaultSite site = FaultSite::kActivityExecute;
  uint64_t hit = 0;
  FaultKind kind = FaultKind::kError;
  int64_t delay_micros = 100;  // kDelay only
};

struct FaultSchedule {
  std::vector<FaultSpec> faults;
};

/// Options for random schedule generation.
struct FaultScheduleOptions {
  /// Faults to draw.
  size_t num_faults = 3;
  /// Hit indices are drawn uniformly from [0, max_hit).
  uint64_t max_hit = 64;
  /// Relative weights of error / delay / crash faults.
  double error_weight = 0.6;
  double delay_weight = 0.2;
  double crash_weight = 0.2;
  int64_t delay_micros = 200;
};

/// Draws a reproducible random schedule: equal seeds yield equal
/// schedules. Sites are drawn uniformly from AllFaultSites().
FaultSchedule MakeRandomFaultSchedule(uint64_t seed,
                                      const FaultScheduleOptions& options = {});

/// Counters the injector keeps while armed.
struct FaultStats {
  std::array<uint64_t, kNumFaultSites> hits{};   // per-site hit counts
  std::array<uint64_t, kNumFaultSites> fired{};  // per-site fired faults
  uint64_t total_hits() const {
    uint64_t n = 0;
    for (uint64_t h : hits) n += h;
    return n;
  }
  uint64_t total_fired() const {
    uint64_t n = 0;
    for (uint64_t f : fired) n += f;
    return n;
  }
};

class FaultInjector {
 public:
  /// The process-wide instance every ETLOPT_FAULT_HIT consults.
  static FaultInjector& Global();

  /// Installs `schedule`, zeroes all counters, and enables injection.
  /// Arming with an empty schedule turns on pure hit counting (nothing
  /// fires) — the sweep uses that to size hit ranges, and the overhead
  /// bench to count hook executions.
  void Arm(FaultSchedule schedule);

  /// Disables injection; hits return to the zero-cost fast path.
  /// Counters and stats survive until the next Arm().
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Called by armed hooks: counts the hit and fires any scheduled
  /// fault. Returns the injected error, or OK (possibly after a delay).
  Status Hit(FaultSite site);

  FaultStats Stats() const;

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  // (hit index -> spec) per site; immutable while armed.
  std::array<std::unordered_map<uint64_t, FaultSpec>, kNumFaultSites>
      schedule_;
  std::array<std::atomic<uint64_t>, kNumFaultSites> hits_{};
  std::array<std::atomic<uint64_t>, kNumFaultSites> fired_{};
};

/// True iff `status` is an injected crash-point (the one injected error
/// retry layers must never absorb).
bool IsInjectedCrash(const Status& status);

/// RAII arm/disarm, so a test cannot leak an armed injector into the
/// rest of the binary.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultSchedule schedule) {
    FaultInjector::Global().Arm(std::move(schedule));
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace etlopt

// The hook. Expands to a guarded global-injector check that propagates
// an injected error out of the enclosing Status/StatusOr function;
// disappears entirely under -DETLOPT_NO_FAULT_INJECTION.
#ifndef ETLOPT_NO_FAULT_INJECTION
#define ETLOPT_FAULT_HIT(site)                                         \
  do {                                                                 \
    if (::etlopt::FaultInjector::Global().armed()) {                   \
      ::etlopt::Status _etlopt_fault =                                 \
          ::etlopt::FaultInjector::Global().Hit(site);                 \
      if (!_etlopt_fault.ok()) return _etlopt_fault;                   \
    }                                                                  \
  } while (false)
#else
#define ETLOPT_FAULT_HIT(site) \
  do {                         \
  } while (false)
#endif

#endif  // ETLOPT_FAULT_FAULT_INJECTOR_H_
