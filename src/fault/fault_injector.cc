#include "fault/fault_injector.h"

#include <chrono>
#include <thread>

#include "common/random.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// The crash-point message marker IsInjectedCrash keys on. Kept unique
// enough that no organic Internal error matches it.
constexpr std::string_view kCrashMarker = "injected crash-point";

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kActivityExecute: return "activity_execute";
    case FaultSite::kRecordSetScan: return "recordset_scan";
    case FaultSite::kRecordSetAppend: return "recordset_append";
    case FaultSite::kThreadPoolTask: return "thread_pool_task";
    case FaultSite::kServiceRequest: return "service_request";
    case FaultSite::kSearchExecute: return "search_execute";
    case FaultSite::kPlanCacheSave: return "plan_cache_save";
    case FaultSite::kPlanCacheLoad: return "plan_cache_load";
    case FaultSite::kCheckpointWrite: return "checkpoint_write";
    case FaultSite::kCheckpointRead: return "checkpoint_read";
    case FaultSite::kStreamSourceNext: return "stream.source_next";
    case FaultSite::kStreamStateCheckpoint: return "stream.state_checkpoint";
    case FaultSite::kVectorizedBatch: return "engine.vectorized_batch";
    case FaultSite::kNetAccept: return "net.accept";
    case FaultSite::kNetRead: return "net.read";
    case FaultSite::kNetWrite: return "net.write";
    case FaultSite::kCacheLookup: return "cache.lookup";
    case FaultSite::kCacheMaterialize: return "cache.materialize";
    case FaultSite::kRecoveryPlaceCheckpoint:
      return "recovery.place_checkpoint";
  }
  return "unknown";
}

const std::array<FaultSite, kNumFaultSites>& AllFaultSites() {
  static const std::array<FaultSite, kNumFaultSites> sites = {
      FaultSite::kActivityExecute, FaultSite::kRecordSetScan,
      FaultSite::kRecordSetAppend, FaultSite::kThreadPoolTask,
      FaultSite::kServiceRequest,  FaultSite::kSearchExecute,
      FaultSite::kPlanCacheSave,   FaultSite::kPlanCacheLoad,
      FaultSite::kCheckpointWrite, FaultSite::kCheckpointRead,
      FaultSite::kStreamSourceNext, FaultSite::kStreamStateCheckpoint,
      FaultSite::kVectorizedBatch,  FaultSite::kNetAccept,
      FaultSite::kNetRead,          FaultSite::kNetWrite,
      FaultSite::kCacheLookup,      FaultSite::kCacheMaterialize,
      FaultSite::kRecoveryPlaceCheckpoint,
  };
  return sites;
}

FaultSchedule MakeRandomFaultSchedule(uint64_t seed,
                                      const FaultScheduleOptions& options) {
  Rng rng(seed);
  FaultSchedule schedule;
  schedule.faults.reserve(options.num_faults);
  const double total_weight = options.error_weight + options.delay_weight +
                              options.crash_weight;
  for (size_t i = 0; i < options.num_faults; ++i) {
    FaultSpec spec;
    spec.site = AllFaultSites()[rng.UniformIndex(kNumFaultSites)];
    spec.hit = options.max_hit == 0 ? 0 : rng.Next() % options.max_hit;
    double draw = rng.UniformDouble() * (total_weight > 0 ? total_weight : 1);
    if (draw < options.error_weight) {
      spec.kind = FaultKind::kError;
    } else if (draw < options.error_weight + options.delay_weight) {
      spec.kind = FaultKind::kDelay;
    } else {
      spec.kind = FaultKind::kCrash;
    }
    spec.delay_micros = options.delay_micros;
    schedule.faults.push_back(spec);
  }
  return schedule;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultSchedule schedule) {
  // Stop concurrent hits from reading the tables mid-rebuild.
  armed_.store(false, std::memory_order_seq_cst);
  for (int i = 0; i < kNumFaultSites; ++i) {
    schedule_[i].clear();
    hits_[i].store(0, std::memory_order_relaxed);
    fired_[i].store(0, std::memory_order_relaxed);
  }
  for (const FaultSpec& spec : schedule.faults) {
    schedule_[static_cast<int>(spec.site)][spec.hit] = spec;
  }
  armed_.store(true, std::memory_order_seq_cst);
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_seq_cst);
}

Status FaultInjector::Hit(FaultSite site) {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  const int index = static_cast<int>(site);
  const uint64_t hit = hits_[index].fetch_add(1, std::memory_order_relaxed);
  const auto& site_schedule = schedule_[index];
  if (site_schedule.empty()) return Status::OK();
  auto it = site_schedule.find(hit);
  if (it == site_schedule.end()) return Status::OK();
  const FaultSpec& spec = it->second;
  fired_[index].fetch_add(1, std::memory_order_relaxed);
  switch (spec.kind) {
    case FaultKind::kError:
      return Status::Unavailable(
          StrFormat("injected fault at %s#%llu",
                    std::string(FaultSiteName(site)).c_str(),
                    static_cast<unsigned long long>(hit)));
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(spec.delay_micros));
      return Status::OK();
    case FaultKind::kCrash:
      return Status::Internal(
          StrFormat("%s at %s#%llu",
                    std::string(kCrashMarker).c_str(),
                    std::string(FaultSiteName(site)).c_str(),
                    static_cast<unsigned long long>(hit)));
  }
  return Status::OK();
}

FaultStats FaultInjector::Stats() const {
  FaultStats stats;
  for (int i = 0; i < kNumFaultSites; ++i) {
    stats.hits[i] = hits_[i].load(std::memory_order_relaxed);
    stats.fired[i] = fired_[i].load(std::memory_order_relaxed);
  }
  return stats;
}

bool IsInjectedCrash(const Status& status) {
  return status.IsInternal() &&
         status.message().find(kCrashMarker) != std::string::npos;
}

}  // namespace etlopt
