// State-space search algorithms for ETL workflow optimization (paper §4):
// Exhaustive Search (ES), Heuristic Search (HS, the four-phase algorithm
// of Fig. 7), and HS-Greedy.

#ifndef ETLOPT_OPTIMIZER_SEARCH_H_
#define ETLOPT_OPTIMIZER_SEARCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "cost/state_cost.h"
#include "graph/workflow.h"
#include "optimizer/state_eval.h"

namespace etlopt {

/// Costs and signs a workflow (refreshing it if needed). Always fills the
/// string signature; the search algorithms' internal fast paths use
/// StateEvaluator instead.
StatusOr<State> MakeState(Workflow workflow, const CostModel& model);

/// A description of one applied transition, for tracing.
struct TransitionRecord {
  enum class Kind { kSwap, kFactorize, kDistribute, kMerge, kSplit };
  Kind kind = Kind::kSwap;
  std::string description;
};

/// All states one transition away from `state` (SWA, FAC, DIS — the
/// cost-relevant transitions; MER/SPL only reshape the search space).
/// Each successor is paired with the transition that produced it.
StatusOr<std::vector<std::pair<State, TransitionRecord>>> EnumerateSuccessors(
    const State& state, const CostModel& model);

/// Budget and tuning knobs shared by the algorithms.
struct SearchOptions {
  /// Stop after visiting this many states.
  size_t max_states = 200000;
  /// Stop after this much wall-clock time.
  int64_t max_millis = 60000;
  /// HS/HS-Greedy: cap on states explored per local-group swap sweep.
  size_t max_states_per_group = 64;

  /// HS: cap on the states kept by the Phase III distribution worklist
  /// (compositions of distributions past the cap are dropped).
  size_t max_phase3_states = 192;
  /// HS: Phase IV re-sweeps only the this-many cheapest visited states.
  size_t max_phase4_states = 16;

  /// Worker threads for frontier expansion (candidate successors of one
  /// state are evaluated concurrently; winner selection stays sequential,
  /// so results are byte-identical to a serial run). 1 = serial,
  /// 0 = ThreadPool::DefaultThreads().
  size_t num_threads = 1;

  /// Benchmark baseline knob: disables delta recosting and signature
  /// hashing's string-elision (every state is fully recosted and its
  /// string signature materialized). Search behavior and results are
  /// identical either way; only the cost profile changes.
  bool disable_fast_paths = false;

  /// HS/HS-Greedy ablation toggles; all true reproduces the paper's
  /// algorithm. Used by the heuristic-ablation bench to measure each
  /// phase's contribution.
  bool enable_phase1_sweep = true;   // Fig. 7 Phase I
  bool enable_factorize = true;      // Fig. 7 Phase II
  bool enable_distribute = true;     // Fig. 7 Phase III
  bool enable_phase4_resweep = true; // Fig. 7 Phase IV

  /// Cache-aware costing (see CacheCostHint): discounts subgraphs whose
  /// results a shared result cache already holds, so search prefers
  /// plans that keep shared prefixes intact. Unowned; must outlive the
  /// search call and stay stable during it. Null (the default) costs
  /// plans exactly as before — the optimizer service never sets this,
  /// so its plan-cache keys never split on it.
  const CacheCostHint* cache_hint = nullptr;

  /// Reliability-aware costing (see cost/reliability_model.h): every
  /// state's cost gains the expected checkpoint + recovery cost of its
  /// optimal recovery-point placement, so search trades execution cost
  /// against failure exposure, and results carry a RecoveryPointPlan.
  /// Unowned; must outlive the search call and stay stable during it.
  /// Null (the default) costs plans exactly as before, bit for bit.
  const ReliabilityParams* reliability = nullptr;
};

/// Rejects nonsensical budgets (max_states == 0, max_millis <= 0,
/// max_phase4_states == 0) with InvalidArgument. Every search entry point
/// calls this before doing any work.
Status ValidateSearchOptions(const SearchOptions& options);

/// Canonical string of exactly the options that can change a search's
/// *result* (budgets, per-phase caps, ablation toggles). num_threads and
/// disable_fast_paths are deliberately excluded: results are byte-identical
/// across them by construction, so the serving layer's plan cache must not
/// split entries on them. Note max_millis *is* included — a wall-clock
/// budget that actually fires makes results timing-dependent, so cached
/// serving assumes deadlines generous enough that the state budget binds
/// first.
std::string ResultFingerprint(const SearchOptions& options);

/// User-supplied merge constraints for HS pre-processing: activities are
/// named by label; each pair is packaged before the search and split
/// afterwards (paper §2.2 Merge/Split and Heuristic 3).
struct MergeConstraint {
  std::string first_label;
  std::string second_label;
};

struct SearchResult {
  State best;
  double initial_cost = 0.0;
  size_t visited_states = 0;
  int64_t elapsed_millis = 0;
  /// ES only: true when the whole space was enumerated within budget.
  bool exhausted = true;
  /// ES only: the transition sequence that rewrites the initial state
  /// into `best` (empty when best == initial). The heuristics do not
  /// track lineage; their vector stays empty.
  std::vector<TransitionRecord> best_path;
  /// How the run spent its costing work (delta vs full recosts, node
  /// cache hits, thread count).
  SearchPerf perf;

  /// The recovery-point decision for `best`. Enabled (and non-trivial)
  /// only when SearchOptions::reliability was set; disabled plans
  /// serialize to nothing, keeping legacy formats byte-identical.
  RecoveryPointPlan recovery;

  /// The paper's Table 2 metric: cost improvement over the initial state.
  double improvement_pct() const {
    if (initial_cost <= 0.0) return 0.0;
    return 100.0 * (initial_cost - best.cost) / initial_cost;
  }
};

/// ES: breadth-first enumeration of every reachable state (budgeted).
StatusOr<SearchResult> ExhaustiveSearch(const Workflow& initial,
                                        const CostModel& model,
                                        const SearchOptions& options = {});

/// HS: the four-phase heuristic of the paper's Fig. 7 — merge
/// pre-processing, per-local-group swap optimization, factorization of
/// homologous pairs, distribution, and a final swap re-sweep, then splits.
StatusOr<SearchResult> HeuristicSearch(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options = {},
    const std::vector<MergeConstraint>& merge_constraints = {});

/// HS-Greedy: HS with the swap sweeps (Phases I and IV) replaced by
/// hill-climbing that only accepts cost-improving swaps.
StatusOr<SearchResult> HeuristicSearchGreedy(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options = {},
    const std::vector<MergeConstraint>& merge_constraints = {});

/// Which search algorithm to run — the request-level selector used by the
/// optimizer service and tools that dispatch on configuration.
enum class SearchAlgorithm { kExhaustive, kHeuristic, kHeuristicGreedy };

/// "es" / "hs" / "hsg".
std::string_view SearchAlgorithmToString(SearchAlgorithm algorithm);
StatusOr<SearchAlgorithm> SearchAlgorithmFromString(std::string_view name);

/// Fills `result.recovery` from the best state's breakdown when
/// `options.reliability` is set (a disabled, empty plan otherwise). Called
/// by every algorithm's finalization; exposed for the annealing extension
/// and tests.
Status FinalizeRecoveryPlan(SearchResult& result, const CostModel& model,
                            const SearchOptions& options);

/// Dispatches to ExhaustiveSearch / HeuristicSearch / HeuristicSearchGreedy
/// (ES ignores merge constraints, as before).
StatusOr<SearchResult> RunSearch(
    SearchAlgorithm algorithm, const Workflow& initial, const CostModel& model,
    const SearchOptions& options = {},
    const std::vector<MergeConstraint>& merge_constraints = {});

}  // namespace etlopt

#endif  // ETLOPT_OPTIMIZER_SEARCH_H_
