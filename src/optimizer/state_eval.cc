#include "optimizer/state_eval.h"

#include <utility>

#include "common/macros.h"

namespace etlopt {

namespace {

State FinishState(Workflow workflow, CostBreakdown bd, double cost,
                  bool materialize_sig) {
  State s;
  s.cost = cost;
  s.signature_hash = workflow.SignatureHash();
  if (materialize_sig) s.signature = workflow.Signature();
  s.breakdown = std::make_shared<const CostBreakdown>(std::move(bd));
  // The stored state is the new base: its figures are current, so the
  // dirty set restarts empty for the transitions derived from it.
  workflow.ClearDirtyNodes();
  s.workflow = std::move(workflow);
  return s;
}

}  // namespace

StatusOr<State> StateEvaluator::Eval(Workflow workflow) const {
  if (!workflow.fresh()) {
    ETLOPT_RETURN_NOT_OK(workflow.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(CostBreakdown bd,
                          ComputeCostBreakdown(workflow, model_));
  full_recosts_.fetch_add(1, std::memory_order_relaxed);
  TrackPeakStateBytes(workflow.ApproxMemoryBytes());
  double cost = EffectiveCost(workflow, bd);
  return FinishState(std::move(workflow), std::move(bd), cost,
                     /*materialize_sig=*/!fast_paths_);
}

StatusOr<State> StateEvaluator::EvalFrom(Workflow workflow,
                                         const State& base) const {
  if (!fast_paths_ || base.breakdown == nullptr) {
    return Eval(std::move(workflow));
  }
  if (!workflow.fresh()) {
    ETLOPT_RETURN_NOT_OK(workflow.Refresh());
  }
  CostReuseStats stats;
  ETLOPT_ASSIGN_OR_RETURN(
      CostBreakdown bd,
      IncrementalCostBreakdown(workflow, *base.breakdown, model_, &stats));
#ifdef ETLOPT_PARANOID_CHECKS
  {
    auto full = ComputeCostBreakdown(workflow, model_);
    ETLOPT_CHECK_OK(full.status());
    ETLOPT_CHECK(bd.total == full.value().total);
    ETLOPT_CHECK(bd.node_cost == full.value().node_cost);
    ETLOPT_CHECK(bd.node_output_cardinality ==
                 full.value().node_output_cardinality);
    ETLOPT_CHECK(bd.node_input_cardinality ==
                 full.value().node_input_cardinality);
  }
#endif
  delta_recosts_.fetch_add(1, std::memory_order_relaxed);
  reused_nodes_.fetch_add(stats.reused_nodes, std::memory_order_relaxed);
  recosted_nodes_.fetch_add(stats.recosted_nodes, std::memory_order_relaxed);
  double cost = EffectiveCost(workflow, bd);
  return FinishState(std::move(workflow), std::move(bd), cost,
                     /*materialize_sig=*/false);
}

StatusOr<NeighborEval> StateEvaluator::EvalNeighbor(const Workflow& applied,
                                                    const State& base) const {
  ETLOPT_CHECK(applied.fresh());
  NeighborEval ne;
  if (fast_paths_ && base.breakdown != nullptr) {
    CostReuseStats stats;
    ETLOPT_ASSIGN_OR_RETURN(
        CostBreakdown bd,
        IncrementalCostBreakdown(applied, *base.breakdown, model_, &stats));
#ifdef ETLOPT_PARANOID_CHECKS
    {
      auto full = ComputeCostBreakdown(applied, model_);
      ETLOPT_CHECK_OK(full.status());
      ETLOPT_CHECK(bd.total == full.value().total);
      ETLOPT_CHECK(bd.node_cost == full.value().node_cost);
      ETLOPT_CHECK(bd.node_output_cardinality ==
                   full.value().node_output_cardinality);
      ETLOPT_CHECK(bd.node_input_cardinality ==
                   full.value().node_input_cardinality);
    }
#endif
    delta_recosts_.fetch_add(1, std::memory_order_relaxed);
    reused_nodes_.fetch_add(stats.reused_nodes, std::memory_order_relaxed);
    recosted_nodes_.fetch_add(stats.recosted_nodes, std::memory_order_relaxed);
    ne.cost = EffectiveCost(applied, bd);
    ne.breakdown = std::make_shared<const CostBreakdown>(std::move(bd));
  } else {
    ETLOPT_ASSIGN_OR_RETURN(CostBreakdown bd,
                            ComputeCostBreakdown(applied, model_));
    full_recosts_.fetch_add(1, std::memory_order_relaxed);
    ne.cost = EffectiveCost(applied, bd);
    ne.breakdown = std::make_shared<const CostBreakdown>(std::move(bd));
  }
  ne.signature_hash = applied.SignatureHash();
#ifdef ETLOPT_PARANOID_CHECKS
  ne.signature = applied.Signature();
#endif
  return ne;
}

State StateEvaluator::MaterializeState(const Workflow& applied,
                                       const NeighborEval& ne) const {
  State s;
  s.workflow = applied;  // the single counted copy of a surviving neighbor
  s.workflow.ClearDirtyNodes();
  s.cost = ne.cost;
  s.signature_hash = ne.signature_hash;
  s.breakdown = ne.breakdown;
  TrackPeakStateBytes(s.workflow.ApproxMemoryBytes());
  return s;
}

State StateEvaluator::MaterializeState(Workflow&& applied,
                                       const NeighborEval& ne) const {
  State s;
  s.workflow = std::move(applied);
  s.workflow.ClearDirtyNodes();
  s.cost = ne.cost;
  s.signature_hash = ne.signature_hash;
  s.breakdown = ne.breakdown;
  TrackPeakStateBytes(s.workflow.ApproxMemoryBytes());
  return s;
}

void StateEvaluator::ParanoidCheckRestore(const Workflow& restored,
                                          const State& base) const {
  ParanoidCheckRestore(restored, base.workflow, base.signature_hash,
                       base.cost);
}

void StateEvaluator::ParanoidCheckRestore(const Workflow& restored,
                                          const Workflow& base_wf,
                                          uint64_t base_hash,
                                          double base_cost) const {
#ifdef ETLOPT_PARANOID_CHECKS
  ETLOPT_CHECK(restored.DebugEquals(base_wf));
  ETLOPT_CHECK(restored.SignatureHash() == base_hash);
  auto full = ComputeCostBreakdown(restored, model_);
  ETLOPT_CHECK_OK(full.status());
  // States carry effective (cache-discounted) costs; the discount is a
  // deterministic function of (content, breakdown), so the restored
  // workflow must reproduce the base's cost bit for bit through it.
  ETLOPT_CHECK(EffectiveCost(restored, full.value()) == base_cost);
#else
  (void)restored;
  (void)base_wf;
  (void)base_hash;
  (void)base_cost;
#endif
}

double StateEvaluator::EffectiveCost(const Workflow& workflow,
                                     const CostBreakdown& bd) const {
  double base = CacheDiscountedCost(workflow, bd);
  if (reliability_ != nullptr) {
    base += ReliabilitySurcharge(workflow, bd, *reliability_);
  }
  return base;
}

double StateEvaluator::CacheDiscountedCost(const Workflow& workflow,
                                           const CostBreakdown& bd) const {
  if (hint_ == nullptr || !hint_->is_materialized) return bd.total;
  std::vector<uint64_t> sigs =
      AllSubgraphResultSignatures(workflow, hint_->inputs);
  // Mirror the executor's acquire pass: walk downstream-first; a
  // materialized node covers its whole upstream cone, and nested
  // materializations inside an already-covered cone add nothing.
  const std::vector<NodeId>& topo = workflow.TopoOrder();
  std::vector<char> avoided(sigs.size(), 0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    NodeId id = *it;
    if (avoided[id] || workflow.IsRecordSet(id)) continue;
    if (!hint_->is_materialized(sigs[id])) continue;
    for (NodeId n : SubtreeNodes(workflow, id)) avoided[n] = 1;
  }
  double cost = bd.total;
  for (const auto& [id, node_cost] : bd.node_cost) {
    if (static_cast<size_t>(id) < avoided.size() && avoided[id]) {
      cost -= node_cost * (1.0 - hint_->residual);
    }
  }
  return cost;
}

void StateEvaluator::TrackPeakStateBytes(size_t bytes) const {
  size_t prev = peak_state_bytes_.load(std::memory_order_relaxed);
  while (bytes > prev && !peak_state_bytes_.compare_exchange_weak(
                             prev, bytes, std::memory_order_relaxed)) {
  }
}

SearchPerf StateEvaluator::perf() const {
  SearchPerf p;
  p.full_recosts = full_recosts_.load(std::memory_order_relaxed);
  p.delta_recosts = delta_recosts_.load(std::memory_order_relaxed);
  p.reused_nodes = reused_nodes_.load(std::memory_order_relaxed);
  p.recosted_nodes = recosted_nodes_.load(std::memory_order_relaxed);
  p.peak_state_bytes = peak_state_bytes_.load(std::memory_order_relaxed);
  return p;
}

uint64_t SignatureInterner::Intern(const State& state) {
#ifdef ETLOPT_PARANOID_CHECKS
  std::string sig =
      state.signature.empty() ? state.workflow.Signature() : state.signature;
  auto [it, inserted] = table_.emplace(state.signature_hash, std::move(sig));
  if (!inserted) {
    ETLOPT_CHECK(it->second == (state.signature.empty()
                                    ? state.workflow.Signature()
                                    : state.signature));
  }
#endif
  return state.signature_hash;
}

uint64_t SignatureInterner::Intern(uint64_t hash,
                                   const std::string& signature) {
#ifdef ETLOPT_PARANOID_CHECKS
  auto [it, inserted] = table_.emplace(hash, signature);
  if (!inserted) {
    ETLOPT_CHECK(it->second == signature);
  }
#else
  (void)signature;
#endif
  return hash;
}

}  // namespace etlopt
