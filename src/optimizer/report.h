// Human-readable optimization reports: what the optimizer did, where the
// cost went, and why the rewritten workflow is cheaper.

#ifndef ETLOPT_OPTIMIZER_REPORT_H_
#define ETLOPT_OPTIMIZER_REPORT_H_

#include <string>

#include "cost/state_cost.h"
#include "optimizer/search.h"

namespace etlopt {

/// Renders a per-activity cost table for one workflow:
///
///   priority  activity            semantics           rows in    cost
///   3         nn_cost             NN[COST_EUR]          1000     1000
///   ...
///   total                                                       45852
StatusOr<std::string> CostReport(const Workflow& workflow,
                                 const CostModel& model);

/// Renders a before/after comparison for a search result: summary line,
/// the ES rewrite path when available, and the activities whose position
/// or cost changed.
StatusOr<std::string> OptimizationReport(const Workflow& initial,
                                         const SearchResult& result,
                                         const CostModel& model);

}  // namespace etlopt

#endif  // ETLOPT_OPTIMIZER_REPORT_H_
