// EXTENSION beyond the ICDE'05 paper: randomized search (simulated
// annealing) over the same transition space.
//
// The paper's future-work section invites alternative search strategies;
// annealing is the canonical one for plan spaces with local minima. Each
// step picks a random applicable transition (SWA / FAC / DIS), accepts
// improvements always, and accepts regressions with probability
// exp(-delta / T) under a geometric cooling schedule. The best state ever
// visited is returned, so the result is never worse than the initial
// state.

#ifndef ETLOPT_OPTIMIZER_ANNEALING_H_
#define ETLOPT_OPTIMIZER_ANNEALING_H_

#include "optimizer/search.h"

namespace etlopt {

struct AnnealingOptions {
  /// PRNG seed; equal seeds give equal runs.
  uint64_t seed = 1;
  /// Starting temperature, as a fraction of the initial state's cost.
  double initial_temperature_fraction = 0.05;
  /// Geometric cooling factor per plateau.
  double cooling = 0.92;
  /// Proposals evaluated at each temperature.
  size_t steps_per_temperature = 40;
  /// Stop when the temperature falls below this fraction of the initial
  /// cost.
  double min_temperature_fraction = 1e-5;
};

/// Simulated-annealing optimization. Shares SearchOptions budgets
/// (max_states counts evaluated proposals) with the other algorithms.
StatusOr<SearchResult> SimulatedAnnealingSearch(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options = {},
    const AnnealingOptions& annealing = {});

}  // namespace etlopt

#endif  // ETLOPT_OPTIMIZER_ANNEALING_H_
