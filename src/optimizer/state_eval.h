// State evaluation for the search algorithms: costing, signing, and the
// perf machinery behind the fast search paths — delta recosting against a
// base state's cached CostBreakdown and hashed signatures that avoid
// materializing the canonical string on the hot path.

#ifndef ETLOPT_OPTIMIZER_STATE_EVAL_H_
#define ETLOPT_OPTIMIZER_STATE_EVAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cost/reliability_model.h"
#include "cost/state_cost.h"
#include "graph/subgraph_signature.h"
#include "graph/workflow.h"

// Exactness cross-checks (delta recost == full recost, hash/string
// signature consistency) run in debug builds, or anywhere when
// ETLOPT_PARANOID is defined (the CI sanitizer job sets it so optimized
// NDEBUG builds still exercise them).
#if !defined(NDEBUG) || defined(ETLOPT_PARANOID)
#define ETLOPT_PARANOID_CHECKS 1
#endif

namespace etlopt {

/// Cache-aware costing hook. When a shared result cache already holds
/// the materialized output of a subgraph, executing a plan that keeps
/// that subgraph intact costs (almost) nothing for the covered cone —
/// so search should prefer such plans. The hook discounts State costs:
/// every node whose subgraph result signature the predicate claims is
/// materialized has its upstream cone's node costs scaled down to
/// `residual` (the cost of reading the rows back). A transition that
/// rewrites inside a materialized cone changes the signatures, loses
/// the discount, and correctly looks expensive.
///
/// The discount applies to State/NeighborEval cost only; CostBreakdown
/// stays the exact execution-cost ledger (delta recosting depends on
/// its exactness). `is_materialized` must be pure and stable for the
/// duration of one search run — serving layers should consult a
/// snapshot, never a live mutating cache. The optimizer service never
/// sets this hook; its plan-cache keys are unaffected.
struct CacheCostHint {
  /// True when a subgraph result with this signature is materialized.
  std::function<bool(uint64_t)> is_materialized;
  /// Fingerprint bindings for signature computation. Must match the
  /// executor's bindings (engine/shared_cache_exec) or the hint's keys
  /// never meet the cache's.
  SubgraphSignatureInputs inputs;
  /// Fraction of an avoided node's cost still charged (re-read cost).
  double residual = 0.1;
  /// Identity of the materialized-set snapshot, folded into
  /// ResultFingerprint so hinted results are never conflated with
  /// unhinted (or differently-hinted) ones.
  uint64_t snapshot_id = 0;
};

/// A state of the search space: a workflow plus its cost and identity.
struct State {
  Workflow workflow;
  double cost = 0.0;

  /// Workflow::SignatureHash() of the workflow — the identity the search
  /// algorithms key their visited/queued sets on.
  uint64_t signature_hash = 0;

  /// Canonical string signature. The fast search paths leave this empty
  /// for interior states and materialize it only for the states they
  /// return; MakeState and EnumerateSuccessors always fill it.
  std::string signature;

  /// Per-node cost figures, shared so derived states can delta-recost
  /// against this state without copying the maps.
  std::shared_ptr<const CostBreakdown> breakdown;
};

/// The light evaluation of a neighbor produced by in-place transition
/// surgery: everything the search needs to decide the neighbor's fate
/// (visited-set identity, cost comparison) without materializing a State.
/// Only a neighbor that survives is promoted via MaterializeState — that
/// is the single full Workflow copy on the zero-copy path.
struct NeighborEval {
  uint64_t signature_hash = 0;
  double cost = 0.0;
  /// Per-node figures of the neighbor, reused verbatim by MaterializeState
  /// so promotion never recosts.
  std::shared_ptr<const CostBreakdown> breakdown;
  /// Canonical string signature; filled only when paranoid checks are on
  /// (the SignatureInterner cross-check needs it), empty otherwise.
  std::string signature;
};

/// Counters describing how a search run spent its costing work.
struct SearchPerf {
  /// States costed from scratch (ComputeCostBreakdown).
  size_t full_recosts = 0;
  /// States costed by delta against their base (IncrementalCostBreakdown).
  size_t delta_recosts = 0;
  /// Node-level cache behavior across all delta recosts.
  size_t reused_nodes = 0;
  size_t recosted_nodes = 0;
  /// Worker threads the run fanned out over (1 = serial).
  size_t threads = 1;
  /// Full Workflow copies made during the run (delta of the process-wide
  /// Workflow::TotalCopies() counter — approximate when other searches run
  /// concurrently in the same process). The zero-copy neighbor path keeps
  /// this near the number of *enqueued* states; the baseline pays one per
  /// generated candidate.
  size_t workflow_copies = 0;
  /// Surgery sessions rolled back (Workflow::TotalUndos() delta) — the
  /// neighbors that were evaluated in place instead of being copied.
  size_t undo_applies = 0;
  /// Largest ApproxMemoryBytes() over the states this run materialized
  /// (from-scratch evals and promoted neighbors; the baseline path's
  /// interior candidates are deliberately not measured — sizing them would
  /// add per-candidate work to the path being benchmarked against).
  size_t peak_state_bytes = 0;

  /// Share of states costed by delta rather than from scratch.
  double delta_share() const {
    size_t n = full_recosts + delta_recosts;
    return n == 0 ? 0.0 : static_cast<double>(delta_recosts) / n;
  }
  /// Share of per-node costings answered from the base state's cache.
  double node_cache_hit_rate() const {
    size_t n = reused_nodes + recosted_nodes;
    return n == 0 ? 0.0 : static_cast<double>(reused_nodes) / n;
  }
};

/// Costs and signs workflows on behalf of one search run. Thread-safe:
/// worker threads evaluate candidates concurrently; the counters are
/// relaxed atomics read once at the end of the run.
///
/// With fast_paths (the default), Eval/EvalFrom hash signatures instead of
/// materializing strings and EvalFrom recosts only the delta a transition
/// touched. With fast_paths off (SearchOptions::disable_fast_paths — the
/// benchmark baseline), every state is fully recosted and its string
/// signature materialized, reproducing the pre-optimization cost profile
/// while keeping identical search behavior.
class StateEvaluator {
 public:
  /// `hint` (optional, unowned, may outlive-checked by caller) turns on
  /// cache-aware costing: all returned costs become effective costs
  /// (exact cost minus the materialized-cone discount). Null reproduces
  /// plain costing bit for bit. `reliability` (optional, unowned) adds
  /// the expected checkpoint + recovery cost of the state's optimal
  /// recovery-point placement (see cost/reliability_model.h) on top;
  /// null reproduces legacy costing bit for bit.
  StateEvaluator(const CostModel& model, bool fast_paths,
                 const CacheCostHint* hint = nullptr,
                 const ReliabilityParams* reliability = nullptr)
      : model_(model),
        fast_paths_(fast_paths),
        hint_(hint),
        reliability_(reliability) {}

  /// Costs and signs a workflow from scratch (refreshing if needed).
  StatusOr<State> Eval(Workflow workflow) const;

  /// Costs and signs a workflow derived from `base` by transitions,
  /// reusing the base's per-node figures for everything the transitions
  /// did not touch (see IncrementalCostBreakdown). Exact: debug builds
  /// assert the delta recost equals a full recost bit for bit.
  StatusOr<State> EvalFrom(Workflow workflow, const State& base) const;

  /// Light evaluation of a neighbor mutated in place from `base`'s
  /// workflow (the surgery session is still open): hashes its signature
  /// and delta-costs it against the base without copying the workflow or
  /// building a State. Counter behavior matches EvalFrom exactly — one
  /// delta (or full) recost per call — so A/B perf lines stay comparable.
  StatusOr<NeighborEval> EvalNeighbor(const Workflow& applied,
                                      const State& base) const;

  /// Promotes a surviving neighbor to a State: takes THE copy of the
  /// still-mutated scratch workflow and attaches the figures already
  /// computed by EvalNeighbor (no recosting). The caller rolls the
  /// scratch back afterwards.
  State MaterializeState(const Workflow& applied,
                         const NeighborEval& ne) const;

  /// Move form: steals an already-committed scratch workflow outright (no
  /// copy at all). The caller must CommitSurgery() first and treat the
  /// scratch slot as consumed afterwards.
  State MaterializeState(Workflow&& applied, const NeighborEval& ne) const;

  /// Paranoid-build assertion that an apply→undo round trip restored the
  /// parent exactly: DebugEquals, signature hash, and cost bits (full
  /// recost of the restored workflow == base.cost). No-op in release
  /// builds without ETLOPT_PARANOID.
  void ParanoidCheckRestore(const Workflow& restored, const State& base) const;

  /// Same assertion against a bare base workflow plus its figures, for
  /// callers whose base is a light state (no materialized workflow).
  void ParanoidCheckRestore(const Workflow& restored, const Workflow& base_wf,
                            uint64_t base_hash, double base_cost) const;

  /// True when the fast paths (delta recosting, hashed signatures, and
  /// zero-copy neighbor generation) are enabled for this run.
  bool fast_paths() const { return fast_paths_; }

  /// Snapshot of the counters (threads, workflow_copies and undo_applies
  /// are left at their defaults; the search run fills them in from the
  /// process-wide Workflow counters).
  SearchPerf perf() const;

  /// The cost this evaluator assigns a fresh workflow given its exact
  /// breakdown: bd.total minus the cache discount, plus the reliability
  /// surcharge (bd.total verbatim when neither knob is set).
  /// Deterministic in (workflow content, bd), so restore checks can
  /// recompute it bit for bit.
  double EffectiveCost(const Workflow& workflow,
                       const CostBreakdown& bd) const;

 private:
  /// bd.total minus the materialized-cone discount (no reliability term).
  double CacheDiscountedCost(const Workflow& workflow,
                             const CostBreakdown& bd) const;

  void TrackPeakStateBytes(size_t bytes) const;

  const CostModel& model_;
  const bool fast_paths_;
  const CacheCostHint* hint_ = nullptr;
  const ReliabilityParams* reliability_ = nullptr;
  mutable std::atomic<size_t> full_recosts_{0};
  mutable std::atomic<size_t> delta_recosts_{0};
  mutable std::atomic<size_t> reused_nodes_{0};
  mutable std::atomic<size_t> recosted_nodes_{0};
  mutable std::atomic<size_t> peak_state_bytes_{0};
};

/// Guards the "equal hashes mean equal states" assumption the search sets
/// rely on. In release builds Intern() is a pass-through; with paranoid
/// checks it records every hash's string signature and aborts on a
/// collision (two distinct signatures, one hash) or an inconsistency.
/// Not thread-safe — call only from the sequential merge points.
class SignatureInterner {
 public:
  uint64_t Intern(const State& state);

  /// Hash-first form for the zero-copy path, where no State exists yet.
  /// `signature` is consulted only under paranoid checks (NeighborEval
  /// fills it there; it may stay empty in release builds).
  uint64_t Intern(uint64_t hash, const std::string& signature);

 private:
#ifdef ETLOPT_PARANOID_CHECKS
  std::map<uint64_t, std::string> table_;
#endif
};

}  // namespace etlopt

#endif  // ETLOPT_OPTIMIZER_STATE_EVAL_H_
