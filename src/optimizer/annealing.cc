#include "optimizer/annealing.h"

#include <cmath>

#include "common/macros.h"
#include "common/random.h"
#include "graph/analysis.h"
#include "optimizer/budget.h"
#include "optimizer/state_eval.h"
#include "optimizer/transitions.h"

namespace etlopt {

namespace {

// A proposable move; operands are looked up lazily because node ids churn
// as transitions apply.
struct Move {
  enum class Kind { kSwap, kFactorize, kDistribute };
  Kind kind = Kind::kSwap;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  NodeId binary = kInvalidNode;
};

// Collects every structurally plausible move in `w` (semantic legality is
// checked on application).
std::vector<Move> CollectMoves(const Workflow& w) {
  std::vector<Move> moves;
  for (NodeId u : w.ActivityNodeIds()) {
    if (!w.chain(u).is_unary()) continue;
    std::vector<NodeId> consumers = w.Consumers(u);
    if (consumers.size() == 1 && w.IsActivity(consumers[0]) &&
        w.chain(consumers[0]).is_unary()) {
      moves.push_back({Move::Kind::kSwap, u, consumers[0], kInvalidNode});
    }
  }
  for (const auto& h : FindHomologousPairs(w)) {
    moves.push_back({Move::Kind::kFactorize, h.a1, h.a2, h.binary});
  }
  for (const auto& d : FindDistributable(w)) {
    moves.push_back({Move::Kind::kDistribute, d.node, kInvalidNode, d.binary});
  }
  return moves;
}

StatusOr<Workflow> ApplyMove(const Workflow& w, const Move& move) {
  switch (move.kind) {
    case Move::Kind::kSwap:
      return ApplySwap(w, move.a, move.b);
    case Move::Kind::kFactorize:
      return ApplyFactorize(w, move.binary, move.a, move.b);
    case Move::Kind::kDistribute:
      return ApplyDistribute(w, move.binary, move.a);
  }
  return Status::Internal("bad move kind");
}

}  // namespace

StatusOr<SearchResult> SimulatedAnnealingSearch(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options, const AnnealingOptions& annealing) {
  ETLOPT_RETURN_NOT_OK(ValidateSearchOptions(options));
  Budget budget(options);
  StateEvaluator eval(model, /*fast_paths=*/!options.disable_fast_paths);
  Rng rng(annealing.seed);

  Workflow w0 = initial;
  if (!w0.fresh()) {
    ETLOPT_RETURN_NOT_OK(w0.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(State current, eval.Eval(std::move(w0)));
  SearchResult result;
  result.initial_cost = current.cost;
  State best = current;
  ++budget.visited;

  double temperature =
      annealing.initial_temperature_fraction * result.initial_cost;
  const double floor_temperature =
      annealing.min_temperature_fraction * result.initial_cost;
  bool budget_hit = false;

  while (temperature > floor_temperature) {
    for (size_t step = 0; step < annealing.steps_per_temperature; ++step) {
      if (budget.Exhausted()) {
        budget_hit = true;
        break;
      }
      std::vector<Move> moves = CollectMoves(current.workflow);
      if (moves.empty()) break;
      const Move& move = moves[rng.UniformIndex(moves.size())];
      auto next = ApplyMove(current.workflow, move);
      if (!next.ok()) continue;  // structurally plausible, semantically not
      // Each proposal is one transition away from `current`, so the
      // candidate delta-recosts against it.
      ETLOPT_ASSIGN_OR_RETURN(State candidate,
                              eval.EvalFrom(std::move(next).value(), current));
      ++budget.visited;
      double delta = candidate.cost - current.cost;
      bool accept = delta <= 0.0 ||
                    rng.UniformDouble() < std::exp(-delta / temperature);
      if (accept) {
        current = std::move(candidate);
        if (current.cost < best.cost) best = current;
      }
    }
    if (budget_hit) break;
    temperature *= annealing.cooling;
  }

  result.best = std::move(best);
  if (result.best.signature.empty()) {
    result.best.signature = result.best.workflow.Signature();
  }
  result.visited_states = budget.visited;
  result.elapsed_millis = budget.ElapsedMillis();
  result.exhausted = !budget_hit;
  result.perf = eval.perf();
  return result;
}

}  // namespace etlopt
