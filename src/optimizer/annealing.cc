#include "optimizer/annealing.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/random.h"
#include "graph/analysis.h"
#include "optimizer/budget.h"
#include "optimizer/state_eval.h"
#include "optimizer/transitions.h"

namespace etlopt {

namespace {

// A proposable move; operands are looked up lazily because node ids churn
// as transitions apply.
struct Move {
  enum class Kind { kSwap, kFactorize, kDistribute };
  Kind kind = Kind::kSwap;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  NodeId binary = kInvalidNode;
};

// Collects every structurally plausible move in `w` (semantic legality is
// checked on application).
std::vector<Move> CollectMoves(const Workflow& w) {
  std::vector<Move> moves;
  for (NodeId u : w.ActivityNodeIds()) {
    if (!w.chain(u).is_unary()) continue;
    std::vector<NodeId> consumers = w.Consumers(u);
    if (consumers.size() == 1 && w.IsActivity(consumers[0]) &&
        w.chain(consumers[0]).is_unary()) {
      moves.push_back({Move::Kind::kSwap, u, consumers[0], kInvalidNode});
    }
  }
  for (const auto& h : FindHomologousPairs(w)) {
    moves.push_back({Move::Kind::kFactorize, h.a1, h.a2, h.binary});
  }
  for (const auto& d : FindDistributable(w)) {
    moves.push_back({Move::Kind::kDistribute, d.node, kInvalidNode, d.binary});
  }
  return moves;
}

StatusOr<Workflow> ApplyMove(const Workflow& w, const Move& move) {
  switch (move.kind) {
    case Move::Kind::kSwap:
      return ApplySwap(w, move.a, move.b);
    case Move::Kind::kFactorize:
      return ApplyFactorize(w, move.binary, move.a, move.b);
    case Move::Kind::kDistribute:
      return ApplyDistribute(w, move.binary, move.a);
  }
  return Status::Internal("bad move kind");
}

Status ApplyMoveInPlace(Workflow& w, const Move& move,
                        Workflow::UndoLog& log) {
  switch (move.kind) {
    case Move::Kind::kSwap:
      return ApplySwapInPlace(w, move.a, move.b, log);
    case Move::Kind::kFactorize:
      return ApplyFactorizeInPlace(w, move.binary, move.a, move.b, log);
    case Move::Kind::kDistribute:
      return ApplyDistributeInPlace(w, move.binary, move.a, log);
  }
  return Status::Internal("bad move kind");
}

}  // namespace

StatusOr<SearchResult> SimulatedAnnealingSearch(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options, const AnnealingOptions& annealing) {
  ETLOPT_RETURN_NOT_OK(ValidateSearchOptions(options));
  Budget budget(options);
  StateEvaluator eval(model, /*fast_paths=*/!options.disable_fast_paths,
                      options.cache_hint, options.reliability);
  Rng rng(annealing.seed);
  const size_t copies0 = Workflow::TotalCopies();
  const size_t undos0 = Workflow::TotalUndos();
  const bool zero_copy = eval.fast_paths();

  Workflow w0 = initial;
  if (!w0.fresh()) {
    ETLOPT_RETURN_NOT_OK(w0.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(State s0, eval.Eval(std::move(w0)));
  auto current = std::make_shared<const State>(std::move(s0));
  SearchResult result;
  result.initial_cost = current->cost;
  // `best` aliases `current` — tracking the incumbent never copies a
  // workflow.
  auto best = current;
  ++budget.visited;

  // Zero-copy proposal loop: one scratch workflow mirrors `current` (same
  // bytes, same cleared dirty set); every proposal mutates it in place and
  // either commits (accepted move — the scratch simply becomes the new
  // current's twin) or rolls back. The only per-move copy left is the
  // materialization of an *accepted* candidate.
  Workflow scratch = current->workflow;
  Workflow::UndoLog log;

  double temperature =
      annealing.initial_temperature_fraction * result.initial_cost;
  const double floor_temperature =
      annealing.min_temperature_fraction * result.initial_cost;
  bool budget_hit = false;

  while (temperature > floor_temperature) {
    for (size_t step = 0; step < annealing.steps_per_temperature; ++step) {
      if (budget.Exhausted()) {
        budget_hit = true;
        break;
      }
      std::vector<Move> moves = CollectMoves(current->workflow);
      if (moves.empty()) break;
      const Move& move = moves[rng.UniformIndex(moves.size())];
      ++budget.generated;
      if (zero_copy) {
        Status applied = ApplyMoveInPlace(scratch, move, log);
        if (!applied.ok()) continue;  // semantically illegal: rolled back
        // Each proposal is one transition away from `current`, so it
        // delta-recosts against it.
        auto ne = eval.EvalNeighbor(scratch, *current);
        if (!ne.ok()) {
          scratch.RollbackSurgery();
          return ne.status();
        }
        ++budget.visited;
        double delta = ne.value().cost - current->cost;
        bool accept = delta <= 0.0 ||
                      rng.UniformDouble() < std::exp(-delta / temperature);
        if (accept) {
          State candidate = eval.MaterializeState(scratch, ne.value());
          scratch.CommitSurgery();
          // Keep the scratch the new current's twin: the materialized
          // state restarted its dirty set, so the scratch must too.
          scratch.ClearDirtyNodes();
          current = std::make_shared<const State>(std::move(candidate));
          if (current->cost < best->cost) best = current;
        } else {
          scratch.RollbackSurgery();
          eval.ParanoidCheckRestore(scratch, *current);
        }
        continue;
      }
      auto next = ApplyMove(current->workflow, move);
      if (!next.ok()) continue;  // structurally plausible, semantically not
      // Each proposal is one transition away from `current`, so the
      // candidate delta-recosts against it.
      ETLOPT_ASSIGN_OR_RETURN(State candidate,
                              eval.EvalFrom(std::move(next).value(), *current));
      ++budget.visited;
      double delta = candidate.cost - current->cost;
      bool accept = delta <= 0.0 ||
                    rng.UniformDouble() < std::exp(-delta / temperature);
      if (accept) {
        current = std::make_shared<const State>(std::move(candidate));
        if (current->cost < best->cost) best = current;
      }
    }
    if (budget_hit) break;
    temperature *= annealing.cooling;
  }

  result.best = *best;
  if (result.best.signature.empty()) {
    result.best.signature = result.best.workflow.Signature();
  }
  result.visited_states = budget.visited;
  result.elapsed_millis = budget.ElapsedMillis();
  result.exhausted = !budget_hit;
  result.perf = eval.perf();
  result.perf.workflow_copies = Workflow::TotalCopies() - copies0;
  result.perf.undo_applies = Workflow::TotalUndos() - undos0;
  ETLOPT_RETURN_NOT_OK(FinalizeRecoveryPlan(result, model, options));
  return result;
}

}  // namespace etlopt
