#include "optimizer/transitions.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

bool Intersect(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  for (const auto& x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

// The semantic half of swap conditions 3-4: two adjacent unary chains may
// be reordered only if neither reads (functionality) or re-derives
// (value-changed) an attribute whose value the other one establishes.
Status CheckSwapSemantics(const ActivityChain& up, const ActivityChain& down) {
  if (Intersect(down.FunctionalityAttrs(), up.ValueChangedAttrs())) {
    return Status::FailedPrecondition(
        "swap: downstream activity reads attributes computed upstream");
  }
  if (Intersect(up.FunctionalityAttrs(), down.ValueChangedAttrs())) {
    return Status::FailedPrecondition(
        "swap: upstream activity reads attributes the downstream one "
        "re-computes");
  }
  if (Intersect(up.ValueChangedAttrs(), down.ValueChangedAttrs())) {
    return Status::FailedPrecondition(
        "swap: both activities compute the same attribute; order is "
        "semantically fixed");
  }
  return Status::OK();
}

Status CheckUnaryActivityNode(const Workflow& w, NodeId id, const char* role) {
  if (!w.IsActivity(id)) {
    return Status::InvalidArgument(StrFormat("%s: node %d is not an activity",
                                             role, id));
  }
  if (!w.chain(id).is_unary()) {
    return Status::FailedPrecondition(
        StrFormat("%s: node %d is not unary", role, id));
  }
  return Status::OK();
}

Status CheckBinaryActivityNode(const Workflow& w, NodeId id, const char* role) {
  if (!w.IsActivity(id)) {
    return Status::InvalidArgument(StrFormat("%s: node %d is not an activity",
                                             role, id));
  }
  if (!w.chain(id).is_binary()) {
    return Status::FailedPrecondition(
        StrFormat("%s: node %d is not binary", role, id));
  }
  return Status::OK();
}

// Both the copy-based and the in-place path of each transition run the
// same precheck (on the unmodified workflow) and the same surgery body
// (on the copy / under the undo log), so they accept and reject
// identically — the byte-identical A/B guarantee hangs on this split.

Status CheckSwapPre(const Workflow& w, NodeId a1, NodeId a2) {
  ETLOPT_RETURN_NOT_OK(CheckUnaryActivityNode(w, a1, "swap"));
  ETLOPT_RETURN_NOT_OK(CheckUnaryActivityNode(w, a2, "swap"));
  std::vector<NodeId> consumers = w.Consumers(a1);
  if (consumers.size() != 1 || consumers[0] != a2) {
    return Status::FailedPrecondition("swap: activities are not adjacent");
  }
  return CheckSwapSemantics(w.chain(a1), w.chain(a2));
}

Status SwapSurgery(Workflow& w, NodeId a1, NodeId a2) {
  ETLOPT_RETURN_NOT_OK(w.SwapAdjacent(a1, a2));
  // Schema regeneration is the final arbiter (conditions 3-4).
  return w.Refresh().WithContext("swap rejected");
}

Status CheckFactorizePre(const Workflow& w, NodeId ab, NodeId a1, NodeId a2) {
  ETLOPT_RETURN_NOT_OK(CheckBinaryActivityNode(w, ab, "factorize"));
  ETLOPT_RETURN_NOT_OK(CheckUnaryActivityNode(w, a1, "factorize"));
  ETLOPT_RETURN_NOT_OK(CheckUnaryActivityNode(w, a2, "factorize"));
  if (a1 == a2) {
    return Status::InvalidArgument("factorize: a1 and a2 must differ");
  }
  // Condition 1: same operation in terms of algebraic expression.
  if (w.chain(a1).SemanticsString() != w.chain(a2).SemanticsString()) {
    return Status::FailedPrecondition(
        "factorize: activities are not homologous");
  }
  // Condition 2: common consumer ab, through different ports.
  if (w.Consumers(a1) != std::vector<NodeId>{ab} ||
      w.Consumers(a2) != std::vector<NodeId>{ab}) {
    return Status::FailedPrecondition(
        "factorize: both activities must directly feed the binary");
  }
  return CheckDistributesOverBinary(w.chain(a1), w.chain(ab));
}

Status FactorizeSurgery(Workflow& w, NodeId ab, NodeId a1, NodeId a2) {
  NodeId ab_consumer = w.Consumers(ab)[0];
  // Keep a1's chain (the paper reuses one of the removed activities'
  // identities for the new node; we keep the smaller priority label).
  ActivityChain clone =
      w.PriorityLabelOf(a1) <= w.PriorityLabelOf(a2) ? w.chain(a1)
                                                     : w.chain(a2);
  ETLOPT_RETURN_NOT_OK(w.RemoveChainNode(a1));
  ETLOPT_RETURN_NOT_OK(w.RemoveChainNode(a2));
  ETLOPT_RETURN_NOT_OK(
      w.InsertOnEdge(std::move(clone), ab, ab_consumer).status());
  return w.Refresh().WithContext("factorize rejected");
}

Status CheckDistributePre(const Workflow& w, NodeId ab, NodeId a) {
  ETLOPT_RETURN_NOT_OK(CheckBinaryActivityNode(w, ab, "distribute"));
  ETLOPT_RETURN_NOT_OK(CheckUnaryActivityNode(w, a, "distribute"));
  // Condition 1: the binary is the provider of a.
  if (w.Providers(a) != std::vector<NodeId>{ab}) {
    return Status::FailedPrecondition(
        "distribute: activity must directly consume the binary");
  }
  return CheckDistributesOverBinary(w.chain(a), w.chain(ab));
}

Status DistributeSurgery(Workflow& w, NodeId ab, NodeId a) {
  ActivityChain clone = w.chain(a);
  std::vector<NodeId> flows = w.Providers(ab);
  ETLOPT_RETURN_NOT_OK(w.RemoveChainNode(a));
  for (NodeId flow : flows) {
    ETLOPT_RETURN_NOT_OK(w.InsertOnEdge(clone, flow, ab).status());
  }
  return w.Refresh().WithContext("distribute rejected");
}

Status MergeSurgery(Workflow& w, NodeId a1, NodeId a2) {
  ETLOPT_RETURN_NOT_OK(w.MergeInto(a1, a2));
  return w.Refresh().WithContext("merge rejected");
}

Status SplitSurgery(Workflow& w, NodeId a, size_t at) {
  ETLOPT_RETURN_NOT_OK(w.SplitNode(a, at).status());
  return w.Refresh().WithContext("split rejected");
}

// Shared tail of the in-place variants: run the surgery under the already
// armed log; on rejection restore the scratch before reporting.
Status SurgeryOrRollback(Workflow& w, Status surgery_result) {
  if (!surgery_result.ok()) w.RollbackSurgery();
  return surgery_result;
}

}  // namespace

StatusOr<Workflow> ApplySwap(const Workflow& w, NodeId a1, NodeId a2) {
  ETLOPT_RETURN_NOT_OK(CheckSwapPre(w, a1, a2));
  Workflow next = w;
  ETLOPT_RETURN_NOT_OK(SwapSurgery(next, a1, a2));
  return next;
}

Status ApplySwapInPlace(Workflow& w, NodeId a1, NodeId a2,
                        Workflow::UndoLog& log) {
  ETLOPT_RETURN_NOT_OK(CheckSwapPre(w, a1, a2));
  w.BeginSurgery(&log);
  return SurgeryOrRollback(w, SwapSurgery(w, a1, a2));
}

Status ApplySwapDirect(Workflow& w, NodeId a1, NodeId a2) {
  ETLOPT_RETURN_NOT_OK(CheckSwapPre(w, a1, a2));
  return SwapSurgery(w, a1, a2);
}

bool CanSwap(const Workflow& w, NodeId a1, NodeId a2) {
  return ApplySwap(w, a1, a2).ok();
}

Status CheckDistributesOverBinary(const ActivityChain& chain,
                                  const ActivityChain& binary) {
  auto is_per_row = [](ActivityKind k) {
    switch (k) {
      case ActivityKind::kSelection:
      case ActivityKind::kNotNull:
      case ActivityKind::kDomainCheck:
      case ActivityKind::kProjection:
      case ActivityKind::kFunction:
      case ActivityKind::kSurrogateKey:
        return true;
      default:
        return false;
    }
  };
  auto is_pure_filter = [](ActivityKind k) {
    switch (k) {
      case ActivityKind::kSelection:
      case ActivityKind::kNotNull:
      case ActivityKind::kDomainCheck:
        return true;
      default:
        return false;
    }
  };
  ActivityKind bk = binary.front().kind();
  for (const auto& m : chain.members()) {
    ActivityKind k = m.activity.kind();
    switch (bk) {
      case ActivityKind::kUnion:
        if (!is_per_row(k)) {
          return Status::FailedPrecondition(
              StrFormat("'%s' does not distribute over UNION (rows from "
                        "different flows interact)",
                        m.activity.label().c_str()));
        }
        break;
      case ActivityKind::kDifference:
      case ActivityKind::kIntersection:
        if (!is_pure_filter(k)) {
          return Status::FailedPrecondition(
              StrFormat("'%s' does not distribute over DIFF/INTERSECT "
                        "(transforms can merge distinct rows)",
                        m.activity.label().c_str()));
        }
        break;
      case ActivityKind::kJoin: {
        if (!is_pure_filter(k)) {
          return Status::FailedPrecondition(StrFormat(
              "'%s' does not distribute over JOIN", m.activity.label().c_str()));
        }
        const auto& keys =
            binary.front().params_as<JoinParams>().key_attrs;
        for (const auto& f : m.activity.FunctionalityAttrs()) {
          if (std::find(keys.begin(), keys.end(), f) == keys.end()) {
            return Status::FailedPrecondition(StrFormat(
                "'%s' reads non-key attribute '%s'; cannot distribute over "
                "JOIN",
                m.activity.label().c_str(), f.c_str()));
          }
        }
        break;
      }
      default:
        return Status::Internal("unexpected binary kind");
    }
  }
  return Status::OK();
}

StatusOr<Workflow> ApplyFactorize(const Workflow& w, NodeId ab, NodeId a1,
                                  NodeId a2) {
  ETLOPT_RETURN_NOT_OK(CheckFactorizePre(w, ab, a1, a2));
  Workflow next = w;
  ETLOPT_RETURN_NOT_OK(FactorizeSurgery(next, ab, a1, a2));
  return next;
}

Status ApplyFactorizeInPlace(Workflow& w, NodeId ab, NodeId a1, NodeId a2,
                             Workflow::UndoLog& log) {
  ETLOPT_RETURN_NOT_OK(CheckFactorizePre(w, ab, a1, a2));
  w.BeginSurgery(&log);
  return SurgeryOrRollback(w, FactorizeSurgery(w, ab, a1, a2));
}

Status ApplyFactorizeDirect(Workflow& w, NodeId ab, NodeId a1, NodeId a2) {
  ETLOPT_RETURN_NOT_OK(CheckFactorizePre(w, ab, a1, a2));
  return FactorizeSurgery(w, ab, a1, a2);
}

StatusOr<Workflow> ApplyDistribute(const Workflow& w, NodeId ab, NodeId a) {
  ETLOPT_RETURN_NOT_OK(CheckDistributePre(w, ab, a));
  Workflow next = w;
  ETLOPT_RETURN_NOT_OK(DistributeSurgery(next, ab, a));
  return next;
}

Status ApplyDistributeInPlace(Workflow& w, NodeId ab, NodeId a,
                              Workflow::UndoLog& log) {
  ETLOPT_RETURN_NOT_OK(CheckDistributePre(w, ab, a));
  w.BeginSurgery(&log);
  return SurgeryOrRollback(w, DistributeSurgery(w, ab, a));
}

Status ApplyDistributeDirect(Workflow& w, NodeId ab, NodeId a) {
  ETLOPT_RETURN_NOT_OK(CheckDistributePre(w, ab, a));
  return DistributeSurgery(w, ab, a);
}

StatusOr<Workflow> ApplyMerge(const Workflow& w, NodeId a1, NodeId a2) {
  Workflow next = w;
  ETLOPT_RETURN_NOT_OK(MergeSurgery(next, a1, a2));
  return next;
}

Status ApplyMergeInPlace(Workflow& w, NodeId a1, NodeId a2,
                         Workflow::UndoLog& log) {
  w.BeginSurgery(&log);
  return SurgeryOrRollback(w, MergeSurgery(w, a1, a2));
}

StatusOr<Workflow> ApplySplit(const Workflow& w, NodeId a, size_t at) {
  Workflow next = w;
  ETLOPT_RETURN_NOT_OK(SplitSurgery(next, a, at));
  return next;
}

Status ApplySplitInPlace(Workflow& w, NodeId a, size_t at,
                         Workflow::UndoLog& log) {
  w.BeginSurgery(&log);
  return SurgeryOrRollback(w, SplitSurgery(w, a, at));
}

}  // namespace etlopt
