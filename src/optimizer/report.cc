#include "optimizer/report.h"

#include <map>

#include "common/macros.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

std::string Truncate(const std::string& s, size_t width) {
  if (s.size() <= width) return s;
  return s.substr(0, width - 3) + "...";
}

// Input cardinality of a node = its first provider's output cardinality.
double InputRows(const Workflow& w, NodeId id, const CostBreakdown& bd) {
  std::vector<NodeId> providers = w.Providers(id);
  double rows = 0;
  for (NodeId p : providers) rows += bd.node_output_cardinality.at(p);
  return rows;
}

}  // namespace

StatusOr<std::string> CostReport(const Workflow& workflow,
                                 const CostModel& model) {
  Workflow copy = workflow;
  if (!copy.fresh()) {
    ETLOPT_RETURN_NOT_OK(copy.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(CostBreakdown bd, ComputeCostBreakdown(copy, model));
  std::string out = StrFormat("%-9s %-22s %-34s %10s %12s\n", "priority",
                              "activity", "semantics", "rows in", "cost");
  for (NodeId id : copy.TopoOrder()) {
    if (!copy.IsActivity(id)) continue;
    const ActivityChain& chain = copy.chain(id);
    out += StrFormat("%-9s %-22s %-34s %10.0f %12.0f\n",
                     copy.PriorityLabelOf(id).c_str(),
                     Truncate(chain.label(), 22).c_str(),
                     Truncate(chain.SemanticsString(), 34).c_str(),
                     InputRows(copy, id, bd), bd.node_cost.at(id));
  }
  out += StrFormat("%-9s %-22s %-34s %10s %12.0f\n", "total", "", "", "",
                   bd.total);
  return out;
}

StatusOr<std::string> OptimizationReport(const Workflow& initial,
                                         const SearchResult& result,
                                         const CostModel& model) {
  std::string out = StrFormat(
      "cost %.0f -> %.0f (%.1f%% improvement), %zu states visited in %lld "
      "ms%s\n",
      result.initial_cost, result.best.cost, result.improvement_pct(),
      result.visited_states,
      static_cast<long long>(result.elapsed_millis),
      result.exhausted ? "" : " (budget hit)");
  if (result.perf.full_recosts + result.perf.delta_recosts > 0) {
    out += StrFormat(
        "search perf: %zu threads, %.0f states/s, %.0f%% delta recosts, "
        "%.0f%% node cache hits\n",
        result.perf.threads,
        result.elapsed_millis > 0
            ? 1000.0 * static_cast<double>(result.visited_states) /
                  static_cast<double>(result.elapsed_millis)
            : static_cast<double>(result.visited_states),
        100.0 * result.perf.delta_share(),
        100.0 * result.perf.node_cache_hit_rate());
    out += StrFormat(
        "state memory: %zu workflow copies, %zu undo applies, "
        "%.1f KiB peak state\n",
        result.perf.workflow_copies, result.perf.undo_applies,
        static_cast<double>(result.perf.peak_state_bytes) / 1024.0);
  }
  if (!result.best_path.empty()) {
    out += "rewrite path:\n";
    for (const auto& rec : result.best_path) {
      out += "  " + rec.description + "\n";
    }
  }
  out += "\n--- initial plan ---\n";
  ETLOPT_ASSIGN_OR_RETURN(std::string before, CostReport(initial, model));
  out += before;
  out += "\n--- optimized plan ---\n";
  ETLOPT_ASSIGN_OR_RETURN(std::string after,
                          CostReport(result.best.workflow, model));
  out += after;
  return out;
}

}  // namespace etlopt
