// The five state transitions of the paper (§2.2, §3.3): Swap, Factorize,
// Distribute, Merge, Split.
//
// Each Apply* function checks the transition's applicability conditions,
// then produces a NEW workflow (states are immutable values); the input
// state is never modified. A non-OK status means "transition not
// applicable here" — the search layers treat that as pruning, not as an
// error.
//
// Each transition also has an Apply*InPlace variant that mutates a scratch
// workflow under a Workflow::UndoLog instead of copying — the zero-copy
// neighbor-generation path. On success the surgery session is left OPEN:
// the caller inspects the mutated neighbor (hash it, delta-cost it, copy
// it if it survives pruning) and then MUST call RollbackSurgery() to
// restore the scratch byte-identically (or CommitSurgery() to keep the
// mutation). On failure the variant rolls back internally and the scratch
// is already restored. Both paths run the same precondition checks and the
// same Refresh() validation, so they accept/reject identically.
//
// Correctness (the paper's Theorems 1-2) is enforced in two layers:
//  1. structural/semantic preconditions checked up front (conditions 1-4
//     of §3.3, plus the distributivity rules for FAC/DIS);
//  2. full schema regeneration via Workflow::Refresh() on the rewired
//     copy — any state whose schemata no longer line up is rejected.

#ifndef ETLOPT_OPTIMIZER_TRANSITIONS_H_
#define ETLOPT_OPTIMIZER_TRANSITIONS_H_

#include "graph/workflow.h"

namespace etlopt {

/// SWA(a1, a2): interchange two adjacent unary activities (a1 provider of
/// a2). Conditions (paper §3.3):
///  1-2. adjacency; both unary with single input/output and one consumer;
///  3-4. functionality and input schemata remain covered after the swap —
///       checked both via the value-changed/functionality dependency test
///       (neither activity may read or re-change what the other computes)
///       and via full schema regeneration.
StatusOr<Workflow> ApplySwap(const Workflow& w, NodeId a1, NodeId a2);

/// True iff ApplySwap(w, a1, a2) would succeed (cheaper: no copy on the
/// happy path is still required, so this simply wraps ApplySwap's checks).
bool CanSwap(const Workflow& w, NodeId a1, NodeId a2);

/// FAC(ab, a1, a2): replace homologous activities a1, a2 (each adjacent
/// providers of binary ab through different ports) with a single clone
/// placed right after ab.
StatusOr<Workflow> ApplyFactorize(const Workflow& w, NodeId ab, NodeId a1,
                                  NodeId a2);

/// DIS(ab, a): remove a (the direct consumer of binary ab) and clone it
/// into each flow entering ab.
StatusOr<Workflow> ApplyDistribute(const Workflow& w, NodeId ab, NodeId a);

/// MER(a1+2, a1, a2): package a2 (a1's only consumer) into a1's node.
StatusOr<Workflow> ApplyMerge(const Workflow& w, NodeId a1, NodeId a2);

/// SPL(a1+2, a1, a2): unpackage a merged node at member position `at`.
StatusOr<Workflow> ApplySplit(const Workflow& w, NodeId a, size_t at);

// --- In-place variants (see file comment for the session contract) ---

Status ApplySwapInPlace(Workflow& w, NodeId a1, NodeId a2,
                        Workflow::UndoLog& log);
Status ApplyFactorizeInPlace(Workflow& w, NodeId ab, NodeId a1, NodeId a2,
                             Workflow::UndoLog& log);
Status ApplyDistributeInPlace(Workflow& w, NodeId ab, NodeId a,
                              Workflow::UndoLog& log);
Status ApplyMergeInPlace(Workflow& w, NodeId a1, NodeId a2,
                         Workflow::UndoLog& log);
Status ApplySplitInPlace(Workflow& w, NodeId a, size_t at,
                         Workflow::UndoLog& log);

// --- Destructive chain variants ---
//
// Mutate `w` directly with no undo log — for transition *chains* on a
// locally owned workflow (the heuristic's shift-then-factorize and
// shift-then-distribute sequences), where a mid-chain rejection discards
// the whole workflow anyway. On failure `w` may be left partially rewired
// and must not be used further.

Status ApplySwapDirect(Workflow& w, NodeId a1, NodeId a2);
Status ApplyFactorizeDirect(Workflow& w, NodeId ab, NodeId a1, NodeId a2);
Status ApplyDistributeDirect(Workflow& w, NodeId ab, NodeId a);

/// The shared FAC/DIS legality rule: can `chain` be moved across binary
/// activity `binary` (in either direction) without changing semantics?
///  * UNION: any per-row activity (filters, projection, function, SK);
///    PK-check and aggregation do not distribute (rows from different
///    flows interact);
///  * DIFFERENCE / INTERSECTION: pure filters only (projections and
///    functions can merge distinct rows and change bag semantics);
///  * JOIN: filters whose functionality is covered by the join keys.
Status CheckDistributesOverBinary(const ActivityChain& chain,
                                  const ActivityChain& binary);

}  // namespace etlopt

#endif  // ETLOPT_OPTIMIZER_TRANSITIONS_H_
