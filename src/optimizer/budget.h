// Shared budget accounting for one search-algorithm run (ES, HS,
// HS-Greedy, simulated annealing).

#ifndef ETLOPT_OPTIMIZER_BUDGET_H_
#define ETLOPT_OPTIMIZER_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "optimizer/search.h"

namespace etlopt {

struct Budget {
  using Clock = std::chrono::steady_clock;

  Clock::time_point start = Clock::now();
  Clock::time_point deadline;
  size_t max_states = 0;
  size_t visited = 0;
  /// Candidate neighbors generated, including ones rejected by transition
  /// pruning or visited-set hits before ever becoming states. Only the
  /// wall-clock check interval counts these: a search grinding through
  /// mostly-rejected candidates makes no `visited` progress for long
  /// stretches, and the deadline used to go unconsulted for all of it.
  /// max_states still budgets visited states only.
  size_t generated = 0;

  /// Clock::now() is a syscall and Exhausted() runs once per candidate
  /// state on the hottest loop, so the wall-clock deadline is only
  /// consulted every this-many units of progress (visited + generated).
  /// The max_states accounting stays exact.
  static constexpr size_t kDeadlineCheckInterval = 64;

  explicit Budget(const SearchOptions& options)
      : deadline(start + std::chrono::milliseconds(options.max_millis)),
        max_states(options.max_states) {}

  bool Exhausted() {
    if (visited >= max_states || timed_out_) return true;
    const size_t progress = visited + generated;
    if (progress - last_deadline_check_ >= kDeadlineCheckInterval) {
      last_deadline_check_ = progress;
      timed_out_ = Clock::now() >= deadline;
    }
    return timed_out_;
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start)
        .count();
  }

 private:
  size_t last_deadline_check_ = 0;
  bool timed_out_ = false;
};

}  // namespace etlopt

#endif  // ETLOPT_OPTIMIZER_BUDGET_H_
