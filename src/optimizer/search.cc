#include "optimizer/search.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "engine/thread_pool.h"
#include "graph/analysis.h"
#include "optimizer/budget.h"
#include "optimizer/state_eval.h"
#include "optimizer/transitions.h"

namespace etlopt {

namespace {

bool IsUnaryActivityNode(const Workflow& w, NodeId id) {
  return w.IsActivity(id) && w.chain(id).is_unary();
}

// One not-yet-applied transition: a thunk producing the derived workflow
// (or a rejection status) plus its trace record. The thunk captures the
// base workflow by reference, so candidates must be evaluated while it is
// alive.
struct Candidate {
  std::function<StatusOr<Workflow>()> apply;
  TransitionRecord rec;
};

// Evaluates all candidate transitions of `base`, fanning out over `pool`
// when one is given, and returns the surviving successors *in candidate
// order* — workers fill index-slotted results and the sequential compaction
// preserves ordering, so the outcome is byte-identical to a serial loop.
// A candidate whose transition is rejected is pruned; an evaluation error
// propagates (the pool reports the smallest failing index, matching what a
// serial loop would return).
StatusOr<std::vector<std::pair<State, TransitionRecord>>> EvalCandidates(
    const State& base, const std::vector<Candidate>& candidates,
    const StateEvaluator& eval, ThreadPool* pool) {
  std::vector<std::optional<std::pair<State, TransitionRecord>>> slots(
      candidates.size());
  auto eval_one = [&](size_t i) -> Status {
    auto trial = candidates[i].apply();
    if (!trial.ok()) return Status::OK();  // illegal transition: prune
    ETLOPT_ASSIGN_OR_RETURN(State st,
                            eval.EvalFrom(std::move(trial).value(), base));
    slots[i] = std::make_pair(std::move(st), candidates[i].rec);
    return Status::OK();
  };
  if (pool != nullptr && candidates.size() > 1) {
    ETLOPT_RETURN_NOT_OK(pool->ParallelFor(
        candidates.size(), [&](size_t i, size_t) { return eval_one(i); }));
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) {
      ETLOPT_RETURN_NOT_OK(eval_one(i));
    }
  }
  std::vector<std::pair<State, TransitionRecord>> out;
  out.reserve(candidates.size());
  for (auto& slot : slots) {
    if (slot.has_value()) out.push_back(std::move(*slot));
  }
  return out;
}

// The candidate successors of `w` under SWA, FAC, DIS, in the canonical
// enumeration order (ascending node ids; analysis order for pairs).
std::vector<Candidate> CollectSuccessorCandidates(const Workflow& w) {
  std::vector<Candidate> out;

  // SWA over every adjacent unary pair.
  for (NodeId u : w.ActivityNodeIds()) {
    if (!IsUnaryActivityNode(w, u)) continue;
    std::vector<NodeId> consumers = w.Consumers(u);
    if (consumers.size() != 1 || !IsUnaryActivityNode(w, consumers[0]))
      continue;
    NodeId d = consumers[0];
    out.push_back(
        {[&w, u, d] { return ApplySwap(w, u, d); },
         TransitionRecord{TransitionRecord::Kind::kSwap,
                          StrFormat("SWA(%s,%s)",
                                    w.PriorityLabelOf(u).c_str(),
                                    w.PriorityLabelOf(d).c_str())}});
  }

  // FAC over homologous pairs adjacent to their binary.
  for (const auto& h : FindHomologousPairs(w)) {
    out.push_back(
        {[&w, h] { return ApplyFactorize(w, h.binary, h.a1, h.a2); },
         TransitionRecord{TransitionRecord::Kind::kFactorize,
                          StrFormat("FAC(%s,%s,%s)",
                                    w.PriorityLabelOf(h.binary).c_str(),
                                    w.PriorityLabelOf(h.a1).c_str(),
                                    w.PriorityLabelOf(h.a2).c_str())}});
  }

  // DIS of direct consumers of binary activities.
  for (const auto& d : FindDistributable(w)) {
    out.push_back(
        {[&w, d] { return ApplyDistribute(w, d.binary, d.node); },
         TransitionRecord{TransitionRecord::Kind::kDistribute,
                          StrFormat("DIS(%s,%s)",
                                    w.PriorityLabelOf(d.binary).c_str(),
                                    w.PriorityLabelOf(d.node).c_str())}});
  }
  return out;
}

// Moves `a` downstream via swaps until its consumer is `stop`.
StatusOr<Workflow> ShiftForward(Workflow w, NodeId a, NodeId stop) {
  while (true) {
    std::vector<NodeId> consumers = w.Consumers(a);
    if (consumers.size() != 1) {
      return Status::FailedPrecondition("shift-forward: no single consumer");
    }
    if (consumers[0] == stop) return w;
    if (!IsUnaryActivityNode(w, consumers[0])) {
      return Status::FailedPrecondition(
          "shift-forward: blocked by a non-unary node");
    }
    ETLOPT_ASSIGN_OR_RETURN(w, ApplySwap(w, a, consumers[0]));
  }
}

// Moves `a` upstream via swaps until its provider is `stop`.
StatusOr<Workflow> ShiftBackward(Workflow w, NodeId a, NodeId stop) {
  while (true) {
    std::vector<NodeId> providers = w.Providers(a);
    if (providers.size() != 1) {
      return Status::FailedPrecondition("shift-backward: not unary");
    }
    if (providers[0] == stop) return w;
    if (!IsUnaryActivityNode(w, providers[0])) {
      return Status::FailedPrecondition(
          "shift-backward: blocked by a non-unary node");
    }
    ETLOPT_ASSIGN_OR_RETURN(w, ApplySwap(w, providers[0], a));
  }
}

// Adjacent pairs (u, d) with both endpoints inside `group`.
std::vector<std::pair<NodeId, NodeId>> AdjacentPairsInGroup(
    const Workflow& w, const std::set<NodeId>& group) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u : group) {
    if (!w.Exists(u)) continue;
    std::vector<NodeId> consumers = w.Consumers(u);
    if (consumers.size() == 1 && group.count(consumers[0])) {
      out.push_back({u, consumers[0]});
    }
  }
  return out;
}

// The in-group swap transitions of `w` as candidates (records unused —
// group sweeps do not trace lineage).
std::vector<Candidate> SwapCandidatesInGroup(const Workflow& w,
                                             const std::set<NodeId>& group) {
  std::vector<Candidate> out;
  for (const auto& [u, d] : AdjacentPairsInGroup(w, group)) {
    NodeId uu = u, dd = d;
    out.push_back({[&w, uu, dd] { return ApplySwap(w, uu, dd); },
                   TransitionRecord{}});
  }
  return out;
}

// Phase I / IV inner loop: optimizes the order of one local group's
// activities by swaps only.
//
// HS explores every reachable ordering of the group (bounded BFS,
// Heuristic 4's divide-and-conquer); HS-Greedy hill-climbs, accepting only
// cost-improving swaps (§4.2's greedy variant). Candidate swaps of each
// step are evaluated in parallel; acceptance runs sequentially in
// candidate order, so the sweep is deterministic across thread counts.
StatusOr<State> OptimizeGroupSwaps(const State& start,
                                   const std::vector<NodeId>& group_nodes,
                                   const StateEvaluator& eval,
                                   ThreadPool* pool,
                                   SignatureInterner* interner, bool greedy,
                                   const SearchOptions& options,
                                   Budget* budget) {
  std::set<NodeId> group(group_nodes.begin(), group_nodes.end());
  // Hill-climb: repeatedly apply the best cost-improving swap.
  auto hill_climb = [&](State current) -> StatusOr<State> {
    bool improved = true;
    while (improved && !budget->Exhausted()) {
      improved = false;
      State best = current;
      std::vector<Candidate> candidates =
          SwapCandidatesInGroup(current.workflow, group);
      ETLOPT_ASSIGN_OR_RETURN(auto evaluated,
                              EvalCandidates(current, candidates, eval, pool));
      for (auto& [st, rec] : evaluated) {
        ++budget->visited;
        if (st.cost < best.cost) {
          best = std::move(st);
          improved = true;
        }
      }
      if (improved) current = std::move(best);
    }
    return current;
  };
  if (greedy) return hill_climb(start);
  // HS: seed the bounded BFS with the hill-climbed ordering so the sweep
  // is never worse than the greedy one, then explore around it.
  ETLOPT_ASSIGN_OR_RETURN(State best, hill_climb(start));
  std::deque<State> queue;
  queue.push_back(best);
  queue.push_back(start);
  std::set<uint64_t> seen{interner->Intern(best), interner->Intern(start)};
  while (!queue.empty() && seen.size() < options.max_states_per_group &&
         !budget->Exhausted()) {
    State cur = std::move(queue.front());
    queue.pop_front();
    std::vector<Candidate> candidates =
        SwapCandidatesInGroup(cur.workflow, group);
    ETLOPT_ASSIGN_OR_RETURN(auto evaluated,
                            EvalCandidates(cur, candidates, eval, pool));
    for (auto& [st, rec] : evaluated) {
      if (!seen.insert(interner->Intern(st)).second) continue;
      ++budget->visited;
      if (st.cost < best.cost) best = st;
      queue.push_back(std::move(st));
    }
  }
  return best;
}

// Splits every multi-member chain back into singleton nodes (the final
// SPL applications of Fig. 7, line 36).
StatusOr<Workflow> SplitAllMergedNodes(Workflow w) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : w.ActivityNodeIds()) {
      if (w.chain(id).size() > 1) {
        ETLOPT_RETURN_NOT_OK(w.SplitNode(id, 1).status());
        changed = true;
        break;
      }
    }
  }
  ETLOPT_RETURN_NOT_OK(w.Refresh());
  return w;
}

// Finds the activity node whose chain has exactly one member labelled
// `label`.
StatusOr<NodeId> FindNodeByActivityLabel(const Workflow& w,
                                         const std::string& label) {
  NodeId found = kInvalidNode;
  for (NodeId id : w.ActivityNodeIds()) {
    for (const auto& m : w.chain(id).members()) {
      if (m.activity.label() == label) {
        if (found != kInvalidNode) {
          return Status::FailedPrecondition("ambiguous activity label: " +
                                            label);
        }
        found = id;
      }
    }
  }
  if (found == kInvalidNode) {
    return Status::NotFound("no activity labelled: " + label);
  }
  return found;
}

// Resolves num_threads (0 = hardware default) and builds a pool when the
// run is actually parallel.
std::unique_ptr<ThreadPool> MakePool(const SearchOptions& options,
                                     size_t* threads_out) {
  size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads;
  *threads_out = threads;
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

StatusOr<SearchResult> RunHeuristic(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints, bool greedy) {
  ETLOPT_RETURN_NOT_OK(ValidateSearchOptions(options));
  Budget budget(options);
  StateEvaluator eval(model, /*fast_paths=*/!options.disable_fast_paths);
  SignatureInterner interner;
  size_t threads = 1;
  std::unique_ptr<ThreadPool> pool = MakePool(options, &threads);
  Workflow w0 = initial;
  if (!w0.fresh()) {
    ETLOPT_RETURN_NOT_OK(w0.Refresh());
  }
  // Pre-processing (Fig. 7, ln 4): apply merge constraints.
  for (const auto& mc : merge_constraints) {
    ETLOPT_ASSIGN_OR_RETURN(NodeId a1,
                            FindNodeByActivityLabel(w0, mc.first_label));
    ETLOPT_ASSIGN_OR_RETURN(NodeId a2,
                            FindNodeByActivityLabel(w0, mc.second_label));
    ETLOPT_ASSIGN_OR_RETURN(w0, ApplyMerge(w0, a1, a2));
  }
  ETLOPT_ASSIGN_OR_RETURN(State s0, eval.Eval(std::move(w0)));
  ++budget.visited;
  SearchResult result;
  result.initial_cost = s0.cost;
  State smin = s0;

  // Fig. 7, ln 6-8: homologous (H), distributable (D), local groups (L).
  std::vector<HomologousPair> homologous = FindHomologousPairs(s0.workflow);
  std::vector<DistributableActivity> distributable =
      FindDistributable(s0.workflow);
  std::vector<LocalGroup> groups = FindLocalGroups(s0.workflow);

  // Phase I (ln 9-13): swap optimization inside each local group.
  State cur = s0;
  if (options.enable_phase1_sweep) {
    for (const auto& g : groups) {
      if (budget.Exhausted()) break;
      ETLOPT_ASSIGN_OR_RETURN(
          cur, OptimizeGroupSwaps(cur, g.nodes, eval, pool.get(), &interner,
                                  greedy, options, &budget));
    }
  }
  if (cur.cost < smin.cost) smin = cur;

  // `visited` list of distinct promising states (ln 14), keyed by
  // signature hash.
  std::map<uint64_t, State> visited;
  visited.emplace(interner.Intern(smin), smin);

  // Phase II (ln 15-20): factorize homologous pairs that can be shifted
  // forward to their binary. A successful factorization can expose a new
  // homologous pair one level up a union tree (the shared clone and its
  // counterpart on the sibling flow), so each seed pair cascades to a
  // fixpoint. The shift/factorize chains are data-dependent, so this phase
  // stays sequential; each chain delta-recosts against the state it was
  // derived from.
  for (const auto& h : homologous) {
    if (!options.enable_factorize) break;
    if (budget.Exhausted()) break;
    const Workflow& base = smin.workflow;
    if (!base.Exists(h.a1) || !base.Exists(h.a2) || !base.Exists(h.binary))
      continue;
    std::string semantics = base.chain(h.a1).SemanticsString();
    auto shifted1 = ShiftForward(base, h.a1, h.binary);
    if (!shifted1.ok()) continue;
    auto shifted2 = ShiftForward(std::move(shifted1).value(), h.a2, h.binary);
    if (!shifted2.ok()) continue;
    auto factored =
        ApplyFactorize(std::move(shifted2).value(), h.binary, h.a1, h.a2);
    if (!factored.ok()) continue;
    ETLOPT_ASSIGN_OR_RETURN(State st,
                            eval.EvalFrom(std::move(factored).value(), smin));
    ++budget.visited;
    // Cascade: keep factorizing pairs with the same semantics.
    bool changed = true;
    while (changed && !budget.Exhausted()) {
      changed = false;
      for (const auto& hc : FindHomologousPairs(st.workflow)) {
        if (st.workflow.chain(hc.a1).SemanticsString() != semantics) continue;
        auto s1 = ShiftForward(st.workflow, hc.a1, hc.binary);
        if (!s1.ok()) continue;
        auto s2 = ShiftForward(std::move(s1).value(), hc.a2, hc.binary);
        if (!s2.ok()) continue;
        auto next = ApplyFactorize(std::move(s2).value(), hc.binary, hc.a1,
                                   hc.a2);
        if (!next.ok()) continue;
        ETLOPT_ASSIGN_OR_RETURN(st, eval.EvalFrom(std::move(next).value(), st));
        ++budget.visited;
        changed = true;
        break;
      }
    }
    if (st.cost < smin.cost) smin = st;
    visited.emplace(interner.Intern(st), std::move(st));
  }

  // Phase III (ln 21-28): distribute the initial state's distributable
  // activities in every state produced so far (activities factorized in
  // Phase II have fresh node ids, so they are naturally excluded). The
  // worklist includes states Phase III itself produces, so distributions
  // of *different* activities compose (e.g. two post-union filters both
  // pushed into the flows). Sequential for the same reason as Phase II.
  std::deque<State> worklist;
  std::set<uint64_t> queued;
  for (const auto& [sig, st] : visited) {
    worklist.push_back(st);
    queued.insert(sig);
  }
  while (!worklist.empty() && options.enable_distribute &&
         !budget.Exhausted()) {
    const State si = std::move(worklist.front());
    worklist.pop_front();
    for (const auto& d : distributable) {
      if (budget.Exhausted()) break;
      if (!si.workflow.Exists(d.node)) continue;
      std::string plabel = si.workflow.PriorityLabelOf(d.node);
      // Distribute, then cascade the clones (identified by the carried
      // priority label) down through any further binary activities — a
      // selection above a union tree can be pushed into every leaf flow.
      State st = si;
      bool changed = true;
      bool any = false;
      while (changed && !budget.Exhausted()) {
        changed = false;
        for (const auto& dc : FindDistributable(st.workflow)) {
          if (st.workflow.PriorityLabelOf(dc.node) != plabel) continue;
          auto shifted = ShiftBackward(st.workflow, dc.node, dc.binary);
          if (!shifted.ok()) continue;
          auto dist =
              ApplyDistribute(std::move(shifted).value(), dc.binary, dc.node);
          if (!dist.ok()) continue;
          ETLOPT_ASSIGN_OR_RETURN(st,
                                  eval.EvalFrom(std::move(dist).value(), st));
          ++budget.visited;
          changed = true;
          any = true;
          // Every cascade depth is a candidate: pushing all the way down
          // is not always the cheapest placement.
          if (st.cost < smin.cost) smin = st;
          // Bound the composition frontier: past the cap, keep improving
          // states only and stop re-enqueueing.
          if (queued.insert(interner.Intern(st)).second &&
              visited.size() < options.max_phase3_states) {
            visited.emplace(st.signature_hash, st);
            worklist.push_back(st);
          }
          break;
        }
      }
      if (!any) continue;
    }
  }

  // Phase IV (ln 29-35): re-run the swap sweeps on the visited states
  // (local groups changed after FAC/DIS). Visited states are processed in
  // ascending cost order and the sweep is limited to the most promising
  // ones — the tail of the list rarely overtakes a full sweep of the
  // leaders and re-sweeping everything dominates the runtime. Ties break
  // on signature hash so the order is deterministic.
  std::vector<State> snapshot;
  snapshot.reserve(visited.size());
  for (const auto& [sig, st] : visited) snapshot.push_back(st);
  std::sort(snapshot.begin(), snapshot.end(),
            [](const State& a, const State& b) {
              return a.cost != b.cost ? a.cost < b.cost
                                      : a.signature_hash < b.signature_hash;
            });
  if (snapshot.size() > options.max_phase4_states) {
    snapshot.resize(options.max_phase4_states);
  }
  for (const State& si : snapshot) {
    if (!options.enable_phase4_resweep) break;
    if (budget.Exhausted()) break;
    State c = si;
    for (const auto& g : FindLocalGroups(c.workflow)) {
      if (budget.Exhausted()) break;
      ETLOPT_ASSIGN_OR_RETURN(
          c, OptimizeGroupSwaps(c, g.nodes, eval, pool.get(), &interner,
                                greedy, options, &budget));
    }
    if (c.cost < smin.cost) smin = c;
  }

  // Post-processing (ln 36): split anything still merged.
  ETLOPT_ASSIGN_OR_RETURN(Workflow split, SplitAllMergedNodes(smin.workflow));
  ETLOPT_ASSIGN_OR_RETURN(smin, eval.EvalFrom(std::move(split), smin));

  result.best = std::move(smin);
  if (result.best.signature.empty()) {
    result.best.signature = result.best.workflow.Signature();
  }
  result.visited_states = budget.visited;
  result.elapsed_millis = budget.ElapsedMillis();
  result.exhausted = !budget.Exhausted();
  result.perf = eval.perf();
  result.perf.threads = threads;
  return result;
}

}  // namespace

Status ValidateSearchOptions(const SearchOptions& options) {
  if (options.max_states == 0) {
    return Status::InvalidArgument(
        "search options: max_states must be positive");
  }
  if (options.max_millis <= 0) {
    return Status::InvalidArgument(
        "search options: max_millis must be positive");
  }
  if (options.max_phase4_states == 0) {
    return Status::InvalidArgument(
        "search options: max_phase4_states must be positive");
  }
  return Status::OK();
}

std::string ResultFingerprint(const SearchOptions& options) {
  return StrFormat(
      "max_states=%zu,max_millis=%lld,per_group=%zu,phase3=%zu,phase4=%zu,"
      "phases=%d%d%d%d",
      options.max_states, static_cast<long long>(options.max_millis),
      options.max_states_per_group, options.max_phase3_states,
      options.max_phase4_states, options.enable_phase1_sweep ? 1 : 0,
      options.enable_factorize ? 1 : 0, options.enable_distribute ? 1 : 0,
      options.enable_phase4_resweep ? 1 : 0);
}

std::string_view SearchAlgorithmToString(SearchAlgorithm algorithm) {
  switch (algorithm) {
    case SearchAlgorithm::kExhaustive: return "es";
    case SearchAlgorithm::kHeuristic: return "hs";
    case SearchAlgorithm::kHeuristicGreedy: return "hsg";
  }
  return "hs";
}

StatusOr<SearchAlgorithm> SearchAlgorithmFromString(std::string_view name) {
  if (name == "es") return SearchAlgorithm::kExhaustive;
  if (name == "hs") return SearchAlgorithm::kHeuristic;
  if (name == "hsg") return SearchAlgorithm::kHeuristicGreedy;
  return Status::InvalidArgument("unknown search algorithm: " +
                                 std::string(name));
}

StatusOr<SearchResult> RunSearch(
    SearchAlgorithm algorithm, const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints) {
  switch (algorithm) {
    case SearchAlgorithm::kExhaustive:
      return ExhaustiveSearch(initial, model, options);
    case SearchAlgorithm::kHeuristic:
      return HeuristicSearch(initial, model, options, merge_constraints);
    case SearchAlgorithm::kHeuristicGreedy:
      return HeuristicSearchGreedy(initial, model, options, merge_constraints);
  }
  return Status::InvalidArgument("unknown search algorithm");
}

StatusOr<State> MakeState(Workflow workflow, const CostModel& model) {
  if (!workflow.fresh()) {
    ETLOPT_RETURN_NOT_OK(workflow.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(CostBreakdown bd,
                          ComputeCostBreakdown(workflow, model));
  State s;
  s.cost = bd.total;
  s.signature_hash = workflow.SignatureHash();
  s.signature = workflow.Signature();
  s.breakdown = std::make_shared<const CostBreakdown>(std::move(bd));
  workflow.ClearDirtyNodes();
  s.workflow = std::move(workflow);
  return s;
}

StatusOr<std::vector<std::pair<State, TransitionRecord>>> EnumerateSuccessors(
    const State& state, const CostModel& model) {
  std::vector<Candidate> candidates =
      CollectSuccessorCandidates(state.workflow);
  std::vector<std::pair<State, TransitionRecord>> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    auto trial = c.apply();
    if (!trial.ok()) continue;
    ETLOPT_ASSIGN_OR_RETURN(State st,
                            MakeState(std::move(trial).value(), model));
    out.emplace_back(std::move(st), c.rec);
  }
  return out;
}

StatusOr<SearchResult> ExhaustiveSearch(const Workflow& initial,
                                        const CostModel& model,
                                        const SearchOptions& options) {
  ETLOPT_RETURN_NOT_OK(ValidateSearchOptions(options));
  Budget budget(options);
  StateEvaluator eval(model, /*fast_paths=*/!options.disable_fast_paths);
  SignatureInterner interner;
  size_t threads = 1;
  std::unique_ptr<ThreadPool> pool = MakePool(options, &threads);
  Workflow w0 = initial;
  if (!w0.fresh()) {
    ETLOPT_RETURN_NOT_OK(w0.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(State s0, eval.Eval(std::move(w0)));
  SearchResult result;
  result.initial_cost = s0.cost;
  State best = s0;

  // Lineage: state hash -> (parent hash, producing transition), for
  // reconstructing the rewrite path of the optimum.
  std::map<uint64_t, std::pair<uint64_t, TransitionRecord>> parent;
  const uint64_t initial_hash = interner.Intern(s0);
  std::set<uint64_t> visited{initial_hash};
  std::deque<State> queue;
  queue.push_back(std::move(s0));
  ++budget.visited;
  bool complete = true;
  while (!queue.empty()) {
    if (budget.Exhausted()) {
      complete = false;
      break;
    }
    State cur = std::move(queue.front());
    queue.pop_front();
    // The whole frontier of `cur` is evaluated (in parallel when a pool is
    // set); dedup against `visited` and winner selection stay sequential
    // in candidate order, matching the serial algorithm state for state.
    std::vector<Candidate> candidates = CollectSuccessorCandidates(cur.workflow);
    ETLOPT_ASSIGN_OR_RETURN(auto successors,
                            EvalCandidates(cur, candidates, eval, pool.get()));
    for (auto& [st, rec] : successors) {
      if (!visited.insert(interner.Intern(st)).second) continue;
      parent.emplace(st.signature_hash,
                     std::make_pair(cur.signature_hash, rec));
      ++budget.visited;
      if (st.cost < best.cost) best = st;
      queue.push_back(std::move(st));
      if (budget.Exhausted()) {
        complete = false;
        break;
      }
    }
  }
  // Walk the lineage back from the optimum to the initial state.
  uint64_t sig = best.signature_hash;
  while (sig != initial_hash) {
    auto it = parent.find(sig);
    ETLOPT_CHECK(it != parent.end());
    result.best_path.push_back(it->second.second);
    sig = it->second.first;
  }
  std::reverse(result.best_path.begin(), result.best_path.end());
  result.best = std::move(best);
  if (result.best.signature.empty()) {
    result.best.signature = result.best.workflow.Signature();
  }
  result.visited_states = budget.visited;
  result.elapsed_millis = budget.ElapsedMillis();
  result.exhausted = complete;
  result.perf = eval.perf();
  result.perf.threads = threads;
  return result;
}

StatusOr<SearchResult> HeuristicSearch(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints) {
  return RunHeuristic(initial, model, options, merge_constraints,
                      /*greedy=*/false);
}

StatusOr<SearchResult> HeuristicSearchGreedy(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints) {
  return RunHeuristic(initial, model, options, merge_constraints,
                      /*greedy=*/true);
}

}  // namespace etlopt
