#include "optimizer/search.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "engine/thread_pool.h"
#include "graph/analysis.h"
#include "optimizer/budget.h"
#include "optimizer/state_eval.h"
#include "optimizer/transitions.h"

namespace etlopt {

namespace {

bool IsUnaryActivityNode(const Workflow& w, NodeId id) {
  return w.IsActivity(id) && w.chain(id).is_unary();
}

// Shared handle to an immutable search state. The bookkeeping structures
// (visited maps, worklists, BFS queues, running minima) all alias the
// same underlying State, so shuffling a state between them never copies
// its workflow — only candidate evaluation and materialization touch
// workflow storage, which is what the copy counters measure.
using StateRef = std::shared_ptr<const State>;

StateRef ShareState(State&& st) {
  // The pointee is built non-const: the serial fast paths temporarily
  // mutate a base state's workflow under an open surgery session (and
  // roll it back); casting constness off a genuinely const object would
  // be undefined.
  return std::make_shared<State>(std::move(st));
}

// Serial fast-path runs do transition surgery *directly on the base
// state's workflow* — apply, evaluate, roll back — so candidate
// evaluation copies nothing at all. Paranoid builds keep the scratch-copy
// path instead: its rollback verification compares the restored workflow
// against an untouched base, which is vacuous when they are the same
// object.
#ifndef ETLOPT_PARANOID_CHECKS
constexpr bool kDirectSurgery = true;
#else
constexpr bool kDirectSurgery = false;
#endif

// One not-yet-applied transition: a copy-path thunk producing the derived
// workflow (or a rejection status), the zero-copy in-place form of the
// same transition, and the trace record. The copy thunk captures the base
// workflow by reference, so candidates must be evaluated while it is
// alive; the in-place form captures only node ids and can be re-applied
// to any scratch equal to the base.
struct Candidate {
  std::function<StatusOr<Workflow>()> apply;
  std::function<Status(Workflow&, Workflow::UndoLog&)> apply_in_place;
  TransitionRecord rec;
};

// Per-worker scratch workflows (plus one spare for materialization) for
// zero-copy neighbor generation. A worker copies the base into its slot
// only when the slot holds something else, so consecutive evaluation
// rounds against the same base — the common case when sweeps converge
// without improving — cost no copy at all. Every apply→undo round trip
// leaves the slot equal to its base (the key stays truthful);
// materialization *steals* a synced slot outright (the workflow moves
// into the State, no copy) and invalidates it.
//
// Reuse is keyed on the *source instance* (address of the immutable base
// workflow) plus its signature hash — not the hash alone. Two states can
// share a canonical signature yet differ byte-wise (node-id layout and
// table order depend on the derivation path), so a hash-only match could
// hand a worker a byte-different twin and break the exact-restore
// contract. Bases with no stable identity — the path-replay BFS rebuilds
// its base in a function-local cache whose address recurs across calls —
// sync under an *ephemeral round* instead: they match only within the
// same round (one EvalCandidates call), never across. Paranoid builds
// byte-verify every reuse.
class NeighborScratch {
 public:
  explicit NeighborScratch(size_t workers) : slots_(workers + 1) {}

  // Starts a new ephemeral round; slots previously synced from an
  // ephemeral base stop matching.
  void BeginEphemeralRound() { ++round_; }

  // `base_id` identifies the base instance: the address of a workflow
  // that stays alive and unmutated while the slot may be reused, or
  // nullptr for an ephemeral base (matches within the current round
  // only).
  Workflow& Acquire(size_t slot, const Workflow& base_wf, uint64_t base_hash,
                    const void* base_id) {
    Slot& s = slots_[slot];
    const bool match =
        s.valid && s.base_hash == base_hash &&
        (base_id != nullptr ? s.src == base_id
                            : (s.src == nullptr && s.round == round_));
    if (!match) {
      s.workflow = base_wf;
      s.base_hash = base_hash;
      s.src = base_id;
      s.round = round_;
      s.valid = true;
    }
#ifdef ETLOPT_PARANOID_CHECKS
    else {
      ETLOPT_CHECK(s.workflow.DebugEquals(base_wf));
    }
#endif
    return s.workflow;
  }

  // A slot whose workflow equals the (durable) base, preferring one
  // already synced from this very instance (free); falls back to syncing
  // the spare slot. The caller consumes the workflow by move and must
  // Invalidate() the slot, or keep mutating it and re-key it with Rekey.
  size_t AcquireSynced(const Workflow& base_wf, uint64_t base_hash) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].valid && slots_[i].src == &base_wf &&
          slots_[i].base_hash == base_hash) {
#ifdef ETLOPT_PARANOID_CHECKS
        ETLOPT_CHECK(slots_[i].workflow.DebugEquals(base_wf));
#endif
        return i;
      }
    }
    Acquire(slots_.size() - 1, base_wf, base_hash, &base_wf);
    return slots_.size() - 1;
  }

  Workflow& workflow(size_t slot) { return slots_[slot].workflow; }
  Workflow::UndoLog& log(size_t slot) { return slots_[slot].log; }

  // Re-keys a slot after its workflow was mutated and committed in place.
  // `src` names the instance the slot now mirrors (e.g. the State just
  // materialized by copy from it), or nullptr when the content has no
  // durable twin — the slot then stays private to its current holder.
  void Rekey(size_t slot, const void* src, uint64_t hash) {
    slots_[slot].src = src;
    slots_[slot].base_hash = hash;
    slots_[slot].round = 0;  // durable (or unmatchable): not round-scoped
    slots_[slot].valid = true;
  }

  // Marks a slot's content as consumed (moved-from); the next Acquire of
  // the slot re-copies.
  void Invalidate(size_t slot) { slots_[slot].valid = false; }

 private:
  struct Slot {
    Workflow workflow;
    Workflow::UndoLog log;
    const void* src = nullptr;
    uint64_t base_hash = 0;
    uint64_t round = 0;
    bool valid = false;
  };
  std::vector<Slot> slots_;
  // Ephemeral rounds start at 1 so a default-initialized slot (round 0)
  // never matches one.
  uint64_t round_ = 1;
};

// What EvalCandidates reports per candidate. On the zero-copy path only
// the light fields are filled — the neighbor itself was rolled back; a
// consumer that keeps the candidate promotes it via MaterializeOutcome.
// On the copy path (disable_fast_paths baseline) the full State is
// attached and MaterializeOutcome just releases it, so consumer code is
// identical across A/B.
struct CandidateOutcome {
  bool alive = false;
  uint64_t signature_hash = 0;
  double cost = 0.0;
  std::shared_ptr<const CostBreakdown> breakdown;
  /// String signature for SignatureInterner cross-checks; filled only
  /// under paranoid checks.
  std::string paranoid_sig;
  /// Copy path only.
  std::optional<State> state;
};

// Evaluates all candidate transitions of a base workflow, fanning out
// over `pool` when one is given, and returns per-candidate outcomes *in
// candidate order* — workers fill index-slotted results, so the outcome
// is byte-identical to a serial loop. A candidate whose transition is
// rejected is left !alive; an evaluation error propagates (the pool
// reports the smallest failing index, matching what a serial loop would
// return).
//
// The base is split into workflow and figures so callers holding only a
// light state — cost, hash, breakdown, but no owned workflow (the
// path-replay BFS) — can evaluate against a reconstructed workflow;
// `base_meta.workflow` is never read. The base workflow may carry an open
// surgery session: the direct path nests one candidate session inside it,
// and the scratch path copies it (copies never inherit a session).
// `ephemeral_base` marks a base whose address does not outlive the call
// (a replayed reconstruction): scratch slots synced from it are scoped to
// this call and never reused against a later base.
//
// With fast paths on, each worker mutates its scratch in place, computes
// hash + delta cost, and rolls back — no per-candidate Workflow copy.
// Paranoid builds verify every rollback restored the base exactly.
StatusOr<std::vector<CandidateOutcome>> EvalCandidates(
    const Workflow& base_wf, const State& base_meta,
    const std::vector<Candidate>& candidates, const StateEvaluator& eval,
    ThreadPool* pool, NeighborScratch* scratch, bool ephemeral_base = false) {
  const bool zero_copy = eval.fast_paths();
  // Serial runs need no private scratch copy: candidates are applied to
  // and rolled back off the base workflow itself, one at a time.
  const bool direct = kDirectSurgery && zero_copy && pool == nullptr;
  const void* base_id = ephemeral_base ? nullptr : &base_wf;
  if (zero_copy && !direct && ephemeral_base) scratch->BeginEphemeralRound();
  std::vector<CandidateOutcome> outcomes(candidates.size());
  auto eval_one = [&](size_t i, size_t worker) -> Status {
    CandidateOutcome& o = outcomes[i];
    if (zero_copy) {
      Workflow& wf = direct ? const_cast<Workflow&>(base_wf)
                            : scratch->Acquire(worker, base_wf,
                                               base_meta.signature_hash,
                                               base_id);
      Status applied = candidates[i].apply_in_place(wf, scratch->log(worker));
      if (!applied.ok()) return Status::OK();  // illegal transition: prune
      auto ne = eval.EvalNeighbor(wf, base_meta);
      wf.RollbackSurgery();
      if (!direct) {
        eval.ParanoidCheckRestore(wf, base_wf, base_meta.signature_hash,
                                  base_meta.cost);
      }
      if (!ne.ok()) return ne.status();
      o.alive = true;
      o.signature_hash = ne.value().signature_hash;
      o.cost = ne.value().cost;
      o.breakdown = std::move(ne.value().breakdown);
      o.paranoid_sig = std::move(ne.value().signature);
      return Status::OK();
    }
    auto trial = candidates[i].apply();
    if (!trial.ok()) return Status::OK();  // illegal transition: prune
    ETLOPT_ASSIGN_OR_RETURN(State st,
                            eval.EvalFrom(std::move(trial).value(), base_meta));
    o.alive = true;
    o.signature_hash = st.signature_hash;
    o.cost = st.cost;
    o.breakdown = st.breakdown;
#ifdef ETLOPT_PARANOID_CHECKS
    o.paranoid_sig =
        st.signature.empty() ? st.workflow.Signature() : st.signature;
#endif
    o.state = std::move(st);
    return Status::OK();
  };
  if (pool != nullptr && candidates.size() > 1) {
    ETLOPT_RETURN_NOT_OK(pool->ParallelFor(candidates.size(), eval_one));
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) {
      ETLOPT_RETURN_NOT_OK(eval_one(i, 0));
    }
  }
  return outcomes;
}

// Promotes a surviving candidate to a full State. Copy path: release the
// already-built State. Zero-copy path: deterministically re-apply the
// transition to a scratch slot still synced to the base (the undo log
// restored the id counter, so the re-applied neighbor is bit-identical to
// the evaluated one), commit, and *move* the workflow into the State —
// the slot a worker already synced this round is consumed outright, so
// promoting the first survivor of a round costs no copy at all.
//
// Runs sequentially, after EvalCandidates' workers have all rolled back.
StatusOr<State> MaterializeOutcome(const State& base, const Candidate& c,
                                   CandidateOutcome& o,
                                   const StateEvaluator& eval,
                                   NeighborScratch* scratch) {
  ETLOPT_CHECK(o.alive);
  if (o.state.has_value()) {
    State st = std::move(*o.state);
    o.state.reset();
    return st;
  }
  const size_t slot =
      scratch->AcquireSynced(base.workflow, base.signature_hash);
  Workflow& wf = scratch->workflow(slot);
  // The light evaluation already accepted this transition on an identical
  // workflow, so the re-apply cannot fail.
  ETLOPT_RETURN_NOT_OK(c.apply_in_place(wf, scratch->log(slot)));
#ifdef ETLOPT_PARANOID_CHECKS
  // The re-applied neighbor must be the evaluated one, bit for bit.
  ETLOPT_CHECK(wf.SignatureHash() == o.signature_hash);
#endif
  NeighborEval ne;
  ne.signature_hash = o.signature_hash;
  ne.cost = o.cost;
  ne.breakdown = o.breakdown;
  wf.CommitSurgery();
  scratch->Invalidate(slot);
  return eval.MaterializeState(std::move(wf), ne);
}

// The candidate successors of `w` under SWA, FAC, DIS, in the canonical
// enumeration order (ascending node ids; analysis order for pairs).
std::vector<Candidate> CollectSuccessorCandidates(const Workflow& w) {
  std::vector<Candidate> out;

  // SWA over every adjacent unary pair.
  for (NodeId u : w.ActivityNodeIds()) {
    if (!IsUnaryActivityNode(w, u)) continue;
    std::vector<NodeId> consumers = w.Consumers(u);
    if (consumers.size() != 1 || !IsUnaryActivityNode(w, consumers[0]))
      continue;
    NodeId d = consumers[0];
    out.push_back(
        {[&w, u, d] { return ApplySwap(w, u, d); },
         [u, d](Workflow& s, Workflow::UndoLog& log) {
           return ApplySwapInPlace(s, u, d, log);
         },
         TransitionRecord{TransitionRecord::Kind::kSwap,
                          StrFormat("SWA(%s,%s)",
                                    w.PriorityLabelOf(u).c_str(),
                                    w.PriorityLabelOf(d).c_str())}});
  }

  // FAC over homologous pairs adjacent to their binary.
  for (const auto& h : FindHomologousPairs(w)) {
    out.push_back(
        {[&w, h] { return ApplyFactorize(w, h.binary, h.a1, h.a2); },
         [h](Workflow& s, Workflow::UndoLog& log) {
           return ApplyFactorizeInPlace(s, h.binary, h.a1, h.a2, log);
         },
         TransitionRecord{TransitionRecord::Kind::kFactorize,
                          StrFormat("FAC(%s,%s,%s)",
                                    w.PriorityLabelOf(h.binary).c_str(),
                                    w.PriorityLabelOf(h.a1).c_str(),
                                    w.PriorityLabelOf(h.a2).c_str())}});
  }

  // DIS of direct consumers of binary activities.
  for (const auto& d : FindDistributable(w)) {
    out.push_back(
        {[&w, d] { return ApplyDistribute(w, d.binary, d.node); },
         [d](Workflow& s, Workflow::UndoLog& log) {
           return ApplyDistributeInPlace(s, d.binary, d.node, log);
         },
         TransitionRecord{TransitionRecord::Kind::kDistribute,
                          StrFormat("DIS(%s,%s)",
                                    w.PriorityLabelOf(d.binary).c_str(),
                                    w.PriorityLabelOf(d.node).c_str())}});
  }
  return out;
}

// Read-only legality walk of a forward shift chain: true when every node
// between `a` and `stop` is a single-consumer unary activity — the exact
// sequence of structural checks ShiftForward performs, evaluated without
// paying the owned-workflow copy. A semantically illegal swap can still
// fail inside the chain afterwards; the walk only screens out chains that
// are structurally doomed, so skipping them never changes search results.
bool CanShiftForward(const Workflow& w, NodeId a, NodeId stop) {
  NodeId cur = a;
  while (true) {
    std::vector<NodeId> consumers = w.Consumers(cur);
    if (consumers.size() != 1) return false;
    if (consumers[0] == stop) return true;
    if (!IsUnaryActivityNode(w, consumers[0])) return false;
    cur = consumers[0];
  }
}

// Backward twin of CanShiftForward, mirroring ShiftBackward's checks.
bool CanShiftBackward(const Workflow& w, NodeId a, NodeId stop) {
  NodeId cur = a;
  while (true) {
    std::vector<NodeId> providers = w.Providers(cur);
    if (providers.size() != 1) return false;
    if (providers[0] == stop) return true;
    if (!IsUnaryActivityNode(w, providers[0])) return false;
    cur = providers[0];
  }
}

// Moves `a` downstream via swaps until its consumer is `stop`, copying
// the workflow per swap — the disable_fast_paths baseline cost profile.
StatusOr<Workflow> ShiftForward(Workflow w, NodeId a, NodeId stop) {
  while (true) {
    std::vector<NodeId> consumers = w.Consumers(a);
    if (consumers.size() != 1) {
      return Status::FailedPrecondition("shift-forward: no single consumer");
    }
    if (consumers[0] == stop) return w;
    if (!IsUnaryActivityNode(w, consumers[0])) {
      return Status::FailedPrecondition(
          "shift-forward: blocked by a non-unary node");
    }
    ETLOPT_ASSIGN_OR_RETURN(w, ApplySwap(w, a, consumers[0]));
  }
}

// Zero-copy twin of ShiftForward: rewires `w` directly. Meant to run
// inside an open surgery session so a failed chain rolls back whole.
Status ShiftForwardDirect(Workflow& w, NodeId a, NodeId stop) {
  while (true) {
    std::vector<NodeId> consumers = w.Consumers(a);
    if (consumers.size() != 1) {
      return Status::FailedPrecondition("shift-forward: no single consumer");
    }
    if (consumers[0] == stop) return Status::OK();
    if (!IsUnaryActivityNode(w, consumers[0])) {
      return Status::FailedPrecondition(
          "shift-forward: blocked by a non-unary node");
    }
    ETLOPT_RETURN_NOT_OK(ApplySwapDirect(w, a, consumers[0]));
  }
}

// Moves `a` upstream via swaps until its provider is `stop` (baseline,
// copy per swap).
StatusOr<Workflow> ShiftBackward(Workflow w, NodeId a, NodeId stop) {
  while (true) {
    std::vector<NodeId> providers = w.Providers(a);
    if (providers.size() != 1) {
      return Status::FailedPrecondition("shift-backward: not unary");
    }
    if (providers[0] == stop) return w;
    if (!IsUnaryActivityNode(w, providers[0])) {
      return Status::FailedPrecondition(
          "shift-backward: blocked by a non-unary node");
    }
    ETLOPT_ASSIGN_OR_RETURN(w, ApplySwap(w, providers[0], a));
  }
}

// Zero-copy twin of ShiftBackward.
Status ShiftBackwardDirect(Workflow& w, NodeId a, NodeId stop) {
  while (true) {
    std::vector<NodeId> providers = w.Providers(a);
    if (providers.size() != 1) {
      return Status::FailedPrecondition("shift-backward: not unary");
    }
    if (providers[0] == stop) return Status::OK();
    if (!IsUnaryActivityNode(w, providers[0])) {
      return Status::FailedPrecondition(
          "shift-backward: blocked by a non-unary node");
    }
    ETLOPT_RETURN_NOT_OK(ApplySwapDirect(w, providers[0], a));
  }
}

// One zero-copy Phase II/III chain attempt: runs `chain` — a sequence of
// Direct transitions — inside a single surgery session on a scratch slot
// synced to `base` (free when the previous attempt against the same base
// rolled back), then refreshes and light-evaluates the result. A rejected
// chain rolls back whole and returns nullopt without any copy; an
// accepted one steals the slot by move. A refresh or evaluation failure
// propagates, matching the baseline's EvalFrom error behavior.
StatusOr<std::optional<State>> TryChainInPlace(
    const State& base, const std::function<Status(Workflow&)>& chain,
    const StateEvaluator& eval, NeighborScratch* scratch) {
  if (kDirectSurgery) {
    // Phases II/III are sequential even in parallel runs, so the chain
    // can operate on the base state's own workflow: a rejected chain
    // rolls back for free, an accepted one pays exactly one copy (the
    // materialized State) and then rolls the base back.
    Workflow& wf = const_cast<Workflow&>(base.workflow);
    Workflow::UndoLog log;
    wf.BeginSurgery(&log);
    Status applied = chain(wf);
    if (!applied.ok()) {
      wf.RollbackSurgery();
      return std::optional<State>();
    }
    Status refreshed = wf.Refresh();
    if (!refreshed.ok()) {
      wf.RollbackSurgery();
      return refreshed;  // transitions guarantee validity: a real error
    }
    auto ne = eval.EvalNeighbor(wf, base);
    if (!ne.ok()) {
      wf.RollbackSurgery();
      return ne.status();
    }
    State st = eval.MaterializeState(wf, ne.value());
    wf.RollbackSurgery();
    return std::optional<State>(std::move(st));
  }
  const size_t slot =
      scratch->AcquireSynced(base.workflow, base.signature_hash);
  Workflow& wf = scratch->workflow(slot);
  wf.BeginSurgery(&scratch->log(slot));
  Status applied = chain(wf);
  if (!applied.ok()) {
    wf.RollbackSurgery();
    eval.ParanoidCheckRestore(wf, base);
    return std::optional<State>();
  }
  Status refreshed = wf.Refresh();
  if (!refreshed.ok()) {
    wf.RollbackSurgery();
    return refreshed;  // transitions guarantee validity: a real error
  }
  auto ne = eval.EvalNeighbor(wf, base);
  if (!ne.ok()) {
    wf.RollbackSurgery();
    return ne.status();
  }
  wf.CommitSurgery();
  scratch->Invalidate(slot);
  return std::optional<State>(
      eval.MaterializeState(std::move(wf), ne.value()));
}

// Adjacent pairs (u, d) with both endpoints inside `group`.
std::vector<std::pair<NodeId, NodeId>> AdjacentPairsInGroup(
    const Workflow& w, const std::set<NodeId>& group) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u : group) {
    if (!w.Exists(u)) continue;
    std::vector<NodeId> consumers = w.Consumers(u);
    if (consumers.size() == 1 && group.count(consumers[0])) {
      out.push_back({u, consumers[0]});
    }
  }
  return out;
}

// The in-group swap transitions of `w` as candidates (records unused —
// group sweeps do not trace lineage).
std::vector<Candidate> SwapCandidatesInGroup(const Workflow& w,
                                             const std::set<NodeId>& group) {
  std::vector<Candidate> out;
  for (const auto& [u, d] : AdjacentPairsInGroup(w, group)) {
    NodeId uu = u, dd = d;
    out.push_back({[&w, uu, dd] { return ApplySwap(w, uu, dd); },
                   [uu, dd](Workflow& s, Workflow::UndoLog& log) {
                     return ApplySwapInPlace(s, uu, dd, log);
                   },
                   TransitionRecord{}});
  }
  return out;
}

// Serial zero-copy hill-climb over one group's swaps: the sweep borrows a
// single scratch slot for its entire duration. Candidates are applied and
// rolled back on it; the winning swap of each round is re-applied and
// *committed*, advancing the slot toward the local optimum without any
// intermediate materialization. Copy cost of a whole sweep: one sync if
// the slot was cold (zero when the previous sweep left the same base
// behind), zero when nothing improves, and a move — not a copy — for the
// final state when something did.
//
// Decision-for-decision identical to the generic hill-climb in
// OptimizeGroupSwaps: same candidate order, same eval values, same budget
// accounting, same strict-< first-winner tie-break.
StatusOr<StateRef> HillClimbSwapsInPlace(StateRef start,
                                         const std::set<NodeId>& group,
                                         const StateEvaluator& eval,
                                         NeighborScratch* scratch,
                                         Budget* budget) {
  // With direct surgery the climb starts right on the base workflow — a
  // sweep that never improves (the common case for Phase IV re-sweeps)
  // costs zero copies. The climb moves onto a scratch copy only at the
  // first committed winner, because committing must not alter `start`.
  // Paranoid builds use the scratch slot throughout so every rollback can
  // be byte-compared against an untouched twin.
  size_t slot = 0;
  bool have_slot = false;
  Workflow* sweep = nullptr;
  Workflow::UndoLog direct_log;
  Workflow::UndoLog* log = nullptr;
  if (kDirectSurgery) {
    sweep = const_cast<Workflow*>(&start->workflow);
    log = &direct_log;
  } else {
    slot = scratch->AcquireSynced(start->workflow, start->signature_hash);
    have_slot = true;
    sweep = &scratch->workflow(slot);
    log = &scratch->log(slot);
  }
  // EvalNeighbor reads only the breakdown of its base; the sweep workflow
  // itself plays the role of base.workflow.
  State light;
  light.cost = start->cost;
  light.signature_hash = start->signature_hash;
  light.breakdown = start->breakdown;
#ifdef ETLOPT_PARANOID_CHECKS
  // Byte-compare target for every rollback (the generic path gets this
  // from ParanoidCheckRestore against the materialized base).
  Workflow twin = *sweep;
#endif
  bool any_commit = false;
  bool improved = true;
  while (improved && !budget->Exhausted()) {
    improved = false;
    const auto pairs = AdjacentPairsInGroup(*sweep, group);
    double best_cost = light.cost;
    size_t best_i = pairs.size();
    NeighborEval best_ne;
    for (size_t i = 0; i < pairs.size(); ++i) {
      Status applied = ApplySwapInPlace(*sweep, pairs[i].first,
                                        pairs[i].second, *log);
      if (!applied.ok()) continue;  // illegal transition: prune
      auto ne = eval.EvalNeighbor(*sweep, light);
      sweep->RollbackSurgery();
#ifdef ETLOPT_PARANOID_CHECKS
      ETLOPT_CHECK(sweep->DebugEquals(twin));
      ETLOPT_CHECK(sweep->SignatureHash() == light.signature_hash);
#endif
      if (!ne.ok()) return ne.status();
      ++budget->visited;
      if (ne.value().cost < best_cost) {
        best_cost = ne.value().cost;
        best_i = i;
        best_ne = std::move(ne).value();
        improved = true;
      }
    }
    budget->generated += pairs.size();
    if (improved) {
      if (!have_slot) {
        // First winner: move the climb onto a scratch copy equal to the
        // current sweep state (`start` itself, still unmutated).
        slot = scratch->AcquireSynced(start->workflow, start->signature_hash);
        have_slot = true;
        sweep = &scratch->workflow(slot);
        log = &scratch->log(slot);
      }
      // Advance the sweep: re-apply the winner and keep it.
      ETLOPT_RETURN_NOT_OK(ApplySwapInPlace(*sweep, pairs[best_i].first,
                                            pairs[best_i].second, *log));
#ifdef ETLOPT_PARANOID_CHECKS
      ETLOPT_CHECK(sweep->SignatureHash() == best_ne.signature_hash);
#endif
      sweep->CommitSurgery();
      sweep->ClearDirtyNodes();
      // No durable twin exists for the advanced sweep state; the nullptr
      // key keeps the slot private to this climb.
      scratch->Rekey(slot, nullptr, best_ne.signature_hash);
      light.cost = best_ne.cost;
      light.signature_hash = best_ne.signature_hash;
      light.breakdown = best_ne.breakdown;
      any_commit = true;
#ifdef ETLOPT_PARANOID_CHECKS
      twin = *sweep;
#endif
    }
  }
  if (!any_commit) return start;  // nothing mutated; no slot consumed
  NeighborEval fin;
  fin.cost = light.cost;
  fin.signature_hash = light.signature_hash;
  fin.breakdown = light.breakdown;
  scratch->Invalidate(slot);
  return ShareState(eval.MaterializeState(std::move(*sweep), fin));
}

// Phase I / IV inner loop: optimizes the order of one local group's
// activities by swaps only.
//
// HS explores every reachable ordering of the group (bounded BFS,
// Heuristic 4's divide-and-conquer); HS-Greedy hill-climbs, accepting only
// cost-improving swaps (§4.2's greedy variant). Candidate swaps of each
// step are evaluated in parallel; acceptance runs sequentially in
// candidate order, so the sweep is deterministic across thread counts.
StatusOr<StateRef> OptimizeGroupSwaps(StateRef start,
                                      const std::vector<NodeId>& group_nodes,
                                      const StateEvaluator& eval,
                                      ThreadPool* pool,
                                      SignatureInterner* interner,
                                      NeighborScratch* scratch, bool greedy,
                                      const SearchOptions& options,
                                      Budget* budget) {
  std::set<NodeId> group(group_nodes.begin(), group_nodes.end());
  // Hill-climb: repeatedly apply the best cost-improving swap. Only the
  // winner of each step is materialized; the losing neighbors never leave
  // the scratch. Serial zero-copy runs take the in-place sweep (one
  // borrowed slot for the whole climb); parallel runs fan the candidates
  // out over the pool — both make identical decisions.
  auto hill_climb = [&](StateRef current) -> StatusOr<StateRef> {
    if (eval.fast_paths() && pool == nullptr) {
      return HillClimbSwapsInPlace(std::move(current), group, eval, scratch,
                                   budget);
    }
    bool improved = true;
    while (improved && !budget->Exhausted()) {
      improved = false;
      std::vector<Candidate> candidates =
          SwapCandidatesInGroup(current->workflow, group);
      ETLOPT_ASSIGN_OR_RETURN(
          auto outcomes, EvalCandidates(current->workflow, *current,
                                        candidates, eval, pool, scratch));
      budget->generated += candidates.size();
      double best_cost = current->cost;
      size_t best_i = candidates.size();
      for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].alive) continue;
        ++budget->visited;
        if (outcomes[i].cost < best_cost) {
          best_cost = outcomes[i].cost;
          best_i = i;
          improved = true;
        }
      }
      if (improved) {
        ETLOPT_ASSIGN_OR_RETURN(
            State next, MaterializeOutcome(*current, candidates[best_i],
                                           outcomes[best_i], eval, scratch));
        current = ShareState(std::move(next));
      }
    }
    return current;
  };
  if (greedy) return hill_climb(std::move(start));
  // HS: seed the bounded BFS with the hill-climbed ordering so the sweep
  // is never worse than the greedy one, then explore around it.
  ETLOPT_ASSIGN_OR_RETURN(StateRef best, hill_climb(start));
  if (eval.fast_paths()) {
    // Light BFS: a queue entry is (root, swap path) plus the figures the
    // candidate evaluation already computed — enqueueing a state costs no
    // workflow copy at all. A popped entry is reconstructed by replaying
    // its path on a cached copy of its root inside a surgery session;
    // candidates are evaluated against the reconstruction (nested
    // sessions on the direct path), and the outer rollback returns the
    // cache to its root. Only the overall winner is materialized, once,
    // at the end.
    //
    // Replay is deterministic: in-group swaps never create or destroy
    // nodes, so node ids are stable along any path, and re-applying the
    // same swaps to a byte-identical root reproduces the evaluated state
    // bit for bit. Decisions (candidate order, seen-set inserts, budget
    // accounting, strict-< best tracking) are identical to the
    // materializing BFS below, which the disable_fast_paths baseline
    // keeps.
    struct Entry {
      StateRef root;
      std::vector<std::pair<NodeId, NodeId>> path;
      double cost = 0.0;
      uint64_t hash = 0;
      std::shared_ptr<const CostBreakdown> breakdown;
    };
    std::deque<Entry> queue;
    queue.push_back(
        Entry{best, {}, best->cost, best->signature_hash, best->breakdown});
    queue.push_back(
        Entry{start, {}, start->cost, start->signature_hash,
              start->breakdown});
    std::set<uint64_t> seen{interner->Intern(*best), interner->Intern(*start)};
    // One replay cache per seed root; a rolled-back cache equals its root,
    // so alternating between the two costs no re-copy.
    struct RootCache {
      Workflow wf;
      uint64_t hash = 0;
      bool valid = false;
    };
    RootCache roots[2];
    Workflow::UndoLog path_log;
    double best_cost = best->cost;
    std::optional<Entry> winner;
    while (!queue.empty() && seen.size() < options.max_states_per_group &&
           !budget->Exhausted()) {
      Entry cur = std::move(queue.front());
      queue.pop_front();
      const Workflow* base_wf = &cur.root->workflow;
      Workflow* replayed = nullptr;
      if (!cur.path.empty()) {
        RootCache* rc = nullptr;
        for (RootCache& r : roots) {
          if (r.valid && r.hash == cur.root->signature_hash) rc = &r;
        }
        if (rc == nullptr) {
          rc = !roots[0].valid ? &roots[0] : &roots[1];
          rc->wf = cur.root->workflow;
          rc->hash = cur.root->signature_hash;
          rc->valid = true;
        }
        replayed = &rc->wf;
        replayed->BeginSurgery(&path_log);
        Status step = Status::OK();
        for (const auto& [u, d] : cur.path) {
          step = ApplySwapDirect(*replayed, u, d);
          if (!step.ok()) break;
        }
        if (step.ok()) step = replayed->Refresh();
        if (!step.ok()) {
          replayed->RollbackSurgery();
          return step;  // replay of accepted swaps: a real error
        }
        // The entry's breakdown is current for the reconstruction, so the
        // dirty set restarts empty — candidate evaluations delta-recost
        // only their own swap. Rollback restores the root's (empty) set.
        replayed->ClearDirtyNodes();
#ifdef ETLOPT_PARANOID_CHECKS
        ETLOPT_CHECK(replayed->SignatureHash() == cur.hash);
#endif
        base_wf = replayed;
      }
      State light;
      light.cost = cur.cost;
      light.signature_hash = cur.hash;
      light.breakdown = cur.breakdown;
      const auto pairs = AdjacentPairsInGroup(*base_wf, group);
      std::vector<Candidate> candidates =
          SwapCandidatesInGroup(*base_wf, group);
      // A replayed reconstruction lives in a function-local cache whose
      // address recurs across calls, so it is an ephemeral base for the
      // scratch slots; an unreplayed root is the durable State itself.
      auto outcomes = EvalCandidates(*base_wf, light, candidates, eval, pool,
                                     scratch,
                                     /*ephemeral_base=*/replayed != nullptr);
      if (!outcomes.ok()) {
        if (replayed != nullptr) replayed->RollbackSurgery();
        return outcomes.status();
      }
      budget->generated += candidates.size();
      for (size_t i = 0; i < outcomes.value().size(); ++i) {
        CandidateOutcome& o = outcomes.value()[i];
        if (!o.alive) continue;
        if (!seen.insert(interner->Intern(o.signature_hash, o.paranoid_sig))
                 .second) {
          continue;
        }
        ++budget->visited;
        Entry child;
        child.root = cur.root;
        child.path = cur.path;
        child.path.push_back(pairs[i]);
        child.cost = o.cost;
        child.hash = o.signature_hash;
        child.breakdown = std::move(o.breakdown);
        if (child.cost < best_cost) {
          best_cost = child.cost;
          winner = child;
        }
        queue.push_back(std::move(child));
      }
      if (replayed != nullptr) {
        replayed->RollbackSurgery();
#ifdef ETLOPT_PARANOID_CHECKS
        ETLOPT_CHECK(replayed->SignatureHash() == cur.root->signature_hash);
#endif
      }
    }
    if (!winner.has_value()) return best;
    // Materialize the winner: the single copy the whole BFS pays.
    Workflow wf = winner->root->workflow;
    for (const auto& [u, d] : winner->path) {
      ETLOPT_RETURN_NOT_OK(ApplySwapDirect(wf, u, d));
    }
    ETLOPT_RETURN_NOT_OK(wf.Refresh());
#ifdef ETLOPT_PARANOID_CHECKS
    ETLOPT_CHECK(wf.SignatureHash() == winner->hash);
#endif
    NeighborEval ne;
    ne.cost = winner->cost;
    ne.signature_hash = winner->hash;
    ne.breakdown = std::move(winner->breakdown);
    return ShareState(eval.MaterializeState(std::move(wf), ne));
  }
  std::deque<StateRef> queue;
  queue.push_back(best);
  queue.push_back(start);
  std::set<uint64_t> seen{interner->Intern(*best), interner->Intern(*start)};
  while (!queue.empty() && seen.size() < options.max_states_per_group &&
         !budget->Exhausted()) {
    StateRef cur = std::move(queue.front());
    queue.pop_front();
    std::vector<Candidate> candidates =
        SwapCandidatesInGroup(cur->workflow, group);
    ETLOPT_ASSIGN_OR_RETURN(
        auto outcomes, EvalCandidates(cur->workflow, *cur, candidates, eval,
                                      pool, scratch));
    budget->generated += candidates.size();
    for (size_t i = 0; i < outcomes.size(); ++i) {
      CandidateOutcome& o = outcomes[i];
      if (!o.alive) continue;
      if (!seen.insert(interner->Intern(o.signature_hash, o.paranoid_sig))
               .second) {
        continue;
      }
      ++budget->visited;
      ETLOPT_ASSIGN_OR_RETURN(
          State st,
          MaterializeOutcome(*cur, candidates[i], o, eval, scratch));
      StateRef sp = ShareState(std::move(st));
      if (sp->cost < best->cost) best = sp;
      queue.push_back(std::move(sp));
    }
  }
  return best;
}

// Splits every multi-member chain back into singleton nodes (the final
// SPL applications of Fig. 7, line 36).
StatusOr<Workflow> SplitAllMergedNodes(Workflow w) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : w.ActivityNodeIds()) {
      if (w.chain(id).size() > 1) {
        ETLOPT_RETURN_NOT_OK(w.SplitNode(id, 1).status());
        changed = true;
        break;
      }
    }
  }
  ETLOPT_RETURN_NOT_OK(w.Refresh());
  return w;
}

// Finds the activity node whose chain has exactly one member labelled
// `label`.
StatusOr<NodeId> FindNodeByActivityLabel(const Workflow& w,
                                         const std::string& label) {
  NodeId found = kInvalidNode;
  for (NodeId id : w.ActivityNodeIds()) {
    for (const auto& m : w.chain(id).members()) {
      if (m.activity.label() == label) {
        if (found != kInvalidNode) {
          return Status::FailedPrecondition("ambiguous activity label: " +
                                            label);
        }
        found = id;
      }
    }
  }
  if (found == kInvalidNode) {
    return Status::NotFound("no activity labelled: " + label);
  }
  return found;
}

// Resolves num_threads (0 = hardware default) and builds a pool when the
// run is actually parallel.
std::unique_ptr<ThreadPool> MakePool(const SearchOptions& options,
                                     size_t* threads_out) {
  size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads;
  *threads_out = threads;
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

StatusOr<SearchResult> RunHeuristic(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints, bool greedy) {
  ETLOPT_RETURN_NOT_OK(ValidateSearchOptions(options));
  Budget budget(options);
  StateEvaluator eval(model, /*fast_paths=*/!options.disable_fast_paths,
                      options.cache_hint, options.reliability);
  SignatureInterner interner;
  size_t threads = 1;
  std::unique_ptr<ThreadPool> pool = MakePool(options, &threads);
  NeighborScratch scratch(threads);
  const size_t copies0 = Workflow::TotalCopies();
  const size_t undos0 = Workflow::TotalUndos();
  // Zero-copy transition chains in Phases II/III ride on the same switch
  // as the other fast paths, so the disable_fast_paths baseline keeps the
  // copy-per-transition profile.
  const bool zero_copy = eval.fast_paths();
  Workflow w0 = initial;
  if (!w0.fresh()) {
    ETLOPT_RETURN_NOT_OK(w0.Refresh());
  }
  // Pre-processing (Fig. 7, ln 4): apply merge constraints.
  for (const auto& mc : merge_constraints) {
    ETLOPT_ASSIGN_OR_RETURN(NodeId a1,
                            FindNodeByActivityLabel(w0, mc.first_label));
    ETLOPT_ASSIGN_OR_RETURN(NodeId a2,
                            FindNodeByActivityLabel(w0, mc.second_label));
    ETLOPT_ASSIGN_OR_RETURN(w0, ApplyMerge(w0, a1, a2));
  }
  ETLOPT_ASSIGN_OR_RETURN(State s0v, eval.Eval(std::move(w0)));
  StateRef s0 = ShareState(std::move(s0v));
  ++budget.visited;
  SearchResult result;
  result.initial_cost = s0->cost;
  StateRef smin = s0;

  // Fig. 7, ln 6-8: homologous (H), distributable (D), local groups (L).
  std::vector<HomologousPair> homologous = FindHomologousPairs(s0->workflow);
  std::vector<DistributableActivity> distributable =
      FindDistributable(s0->workflow);
  std::vector<LocalGroup> groups = FindLocalGroups(s0->workflow);

  // Phase I (ln 9-13): swap optimization inside each local group.
  StateRef cur = s0;
  if (options.enable_phase1_sweep) {
    for (const auto& g : groups) {
      if (budget.Exhausted()) break;
      ETLOPT_ASSIGN_OR_RETURN(
          cur, OptimizeGroupSwaps(cur, g.nodes, eval, pool.get(), &interner,
                                  &scratch, greedy, options, &budget));
    }
  }
  if (cur->cost < smin->cost) smin = cur;

  // `visited` list of distinct promising states (ln 14), keyed by
  // signature hash.
  std::map<uint64_t, StateRef> visited;
  visited.emplace(interner.Intern(*smin), smin);

  // Phase II (ln 15-20): factorize homologous pairs that can be shifted
  // forward to their binary. A successful factorization can expose a new
  // homologous pair one level up a union tree (the shared clone and its
  // counterpart on the sibling flow), so each seed pair cascades to a
  // fixpoint. The shift/factorize chains are data-dependent, so this phase
  // stays sequential; each chain delta-recosts against the state it was
  // derived from.
  for (const auto& h : homologous) {
    if (!options.enable_factorize) break;
    if (budget.Exhausted()) break;
    const Workflow& base = smin->workflow;
    if (!base.Exists(h.a1) || !base.Exists(h.a2) || !base.Exists(h.binary))
      continue;
    std::string semantics = base.chain(h.a1).SemanticsString();
    // The baseline pays one workflow copy per swap of the chain; the
    // zero-copy path runs the whole chain as one surgery session on a
    // scratch slot (a rejected chain rolls back without ever copying, and
    // a structurally doomed first shift is screened out before the
    // session even opens).
    ++budget.generated;
    StateRef st;
    if (zero_copy) {
      if (!CanShiftForward(base, h.a1, h.binary)) continue;
      ETLOPT_ASSIGN_OR_RETURN(
          std::optional<State> got,
          TryChainInPlace(
              *smin,
              [&](Workflow& wf) {
                ETLOPT_RETURN_NOT_OK(ShiftForwardDirect(wf, h.a1, h.binary));
                ETLOPT_RETURN_NOT_OK(ShiftForwardDirect(wf, h.a2, h.binary));
                return ApplyFactorizeDirect(wf, h.binary, h.a1, h.a2);
              },
              eval, &scratch));
      if (!got.has_value()) continue;
      st = ShareState(std::move(*got));
    } else {
      auto shifted1 = ShiftForward(base, h.a1, h.binary);
      if (!shifted1.ok()) continue;
      auto shifted2 =
          ShiftForward(std::move(shifted1).value(), h.a2, h.binary);
      if (!shifted2.ok()) continue;
      auto factored =
          ApplyFactorize(std::move(shifted2).value(), h.binary, h.a1, h.a2);
      if (!factored.ok()) continue;
      ETLOPT_ASSIGN_OR_RETURN(
          State stv, eval.EvalFrom(std::move(factored).value(), *smin));
      st = ShareState(std::move(stv));
    }
    ++budget.visited;
    // Cascade: keep factorizing pairs with the same semantics.
    bool changed = true;
    while (changed && !budget.Exhausted()) {
      changed = false;
      for (const auto& hc : FindHomologousPairs(st->workflow)) {
        if (st->workflow.chain(hc.a1).SemanticsString() != semantics) continue;
        ++budget.generated;
        if (zero_copy) {
          if (!CanShiftForward(st->workflow, hc.a1, hc.binary)) continue;
          ETLOPT_ASSIGN_OR_RETURN(
              std::optional<State> got,
              TryChainInPlace(
                  *st,
                  [&](Workflow& wf) {
                    ETLOPT_RETURN_NOT_OK(
                        ShiftForwardDirect(wf, hc.a1, hc.binary));
                    ETLOPT_RETURN_NOT_OK(
                        ShiftForwardDirect(wf, hc.a2, hc.binary));
                    return ApplyFactorizeDirect(wf, hc.binary, hc.a1, hc.a2);
                  },
                  eval, &scratch));
          if (!got.has_value()) continue;
          st = ShareState(std::move(*got));
        } else {
          auto s1 = ShiftForward(st->workflow, hc.a1, hc.binary);
          if (!s1.ok()) continue;
          auto s2 = ShiftForward(std::move(s1).value(), hc.a2, hc.binary);
          if (!s2.ok()) continue;
          auto next =
              ApplyFactorize(std::move(s2).value(), hc.binary, hc.a1, hc.a2);
          if (!next.ok()) continue;
          ETLOPT_ASSIGN_OR_RETURN(State nsv,
                                  eval.EvalFrom(std::move(next).value(), *st));
          st = ShareState(std::move(nsv));
        }
        ++budget.visited;
        changed = true;
        break;
      }
    }
    if (st->cost < smin->cost) smin = st;
    visited.emplace(interner.Intern(*st), std::move(st));
  }

  // Phase III (ln 21-28): distribute the initial state's distributable
  // activities in every state produced so far (activities factorized in
  // Phase II have fresh node ids, so they are naturally excluded). The
  // worklist includes states Phase III itself produces, so distributions
  // of *different* activities compose (e.g. two post-union filters both
  // pushed into the flows). Sequential for the same reason as Phase II.
  std::deque<StateRef> worklist;
  std::set<uint64_t> queued;
  for (const auto& [sig, st] : visited) {
    worklist.push_back(st);
    queued.insert(sig);
  }
  while (!worklist.empty() && options.enable_distribute &&
         !budget.Exhausted()) {
    const StateRef si = std::move(worklist.front());
    worklist.pop_front();
    for (const auto& d : distributable) {
      if (budget.Exhausted()) break;
      if (!si->workflow.Exists(d.node)) continue;
      std::string plabel = si->workflow.PriorityLabelOf(d.node);
      // Distribute, then cascade the clones (identified by the carried
      // priority label) down through any further binary activities — a
      // selection above a union tree can be pushed into every leaf flow.
      if (zero_copy) {
        // The whole cascade advances one scratch workflow. Each step is
        // its own surgery session — apply, evaluate, commit (or roll back
        // just that step) — so the only copies a cascade pays are the
        // slot sync at its start (free when the slot already mirrors
        // `si`) and one per state it actually keeps: enqueued on the
        // worklist or a new running minimum. Interior cascade depths that
        // are neither come and go without ever being materialized.
        const size_t slot =
            scratch.AcquireSynced(si->workflow, si->signature_hash);
        Workflow& wf = scratch.workflow(slot);
        Workflow::UndoLog& log = scratch.log(slot);
        State light;
        light.cost = si->cost;
        light.signature_hash = si->signature_hash;
        light.breakdown = si->breakdown;
        bool changed = true;
        while (changed && !budget.Exhausted()) {
          changed = false;
          for (const auto& dc : FindDistributable(wf)) {
            if (wf.PriorityLabelOf(dc.node) != plabel) continue;
            ++budget.generated;
            if (!CanShiftBackward(wf, dc.node, dc.binary)) continue;
            wf.BeginSurgery(&log);
            Status step = ShiftBackwardDirect(wf, dc.node, dc.binary);
            if (step.ok()) {
              step = ApplyDistributeDirect(wf, dc.binary, dc.node);
            }
            if (!step.ok()) {
              wf.RollbackSurgery();
#ifdef ETLOPT_PARANOID_CHECKS
              ETLOPT_CHECK(wf.SignatureHash() == light.signature_hash);
#endif
              continue;
            }
            Status refreshed = wf.Refresh();
            if (!refreshed.ok()) {
              wf.RollbackSurgery();
              return refreshed;  // transitions guarantee validity
            }
            auto ne = eval.EvalNeighbor(wf, light);
            if (!ne.ok()) {
              wf.RollbackSurgery();
              return ne.status();
            }
            wf.CommitSurgery();
            wf.ClearDirtyNodes();
            // Until a twin is materialized below, the advanced slot has
            // no durable source instance to be keyed on.
            scratch.Rekey(slot, nullptr, ne.value().signature_hash);
            light.cost = ne.value().cost;
            light.signature_hash = ne.value().signature_hash;
            light.breakdown = ne.value().breakdown;
            ++budget.visited;
            changed = true;
            // Every cascade depth is a candidate: pushing all the way
            // down is not always the cheapest placement. Past the
            // composition cap, keep improving states only and stop
            // re-enqueueing.
            const bool enqueue =
                queued
                    .insert(interner.Intern(ne.value().signature_hash,
                                            ne.value().signature))
                    .second &&
                visited.size() < options.max_phase3_states;
            const bool improves = light.cost < smin->cost;
            if (enqueue || improves) {
              StateRef kept =
                  ShareState(eval.MaterializeState(wf, ne.value()));
              if (improves) smin = kept;
              if (enqueue) {
                visited.emplace(kept->signature_hash, kept);
                worklist.push_back(kept);
                // `kept` was copied from the slot, so the slot mirrors it
                // byte-for-byte; keying the slot to `kept` lets the
                // worklist pop of `kept` start its own cascades without a
                // re-sync. `visited` keeps the instance alive (and its
                // address stable) for the rest of the search.
                scratch.Rekey(slot, &kept->workflow, kept->signature_hash);
              }
            }
            break;
          }
        }
        continue;
      }
      StateRef st = si;
      bool changed = true;
      bool any = false;
      while (changed && !budget.Exhausted()) {
        changed = false;
        for (const auto& dc : FindDistributable(st->workflow)) {
          if (st->workflow.PriorityLabelOf(dc.node) != plabel) continue;
          ++budget.generated;
          auto shifted = ShiftBackward(st->workflow, dc.node, dc.binary);
          if (!shifted.ok()) continue;
          auto dist =
              ApplyDistribute(std::move(shifted).value(), dc.binary, dc.node);
          if (!dist.ok()) continue;
          ETLOPT_ASSIGN_OR_RETURN(State nsv,
                                  eval.EvalFrom(std::move(dist).value(), *st));
          st = ShareState(std::move(nsv));
          ++budget.visited;
          changed = true;
          any = true;
          // Every cascade depth is a candidate: pushing all the way down
          // is not always the cheapest placement.
          if (st->cost < smin->cost) smin = st;
          // Bound the composition frontier: past the cap, keep improving
          // states only and stop re-enqueueing.
          if (queued.insert(interner.Intern(*st)).second &&
              visited.size() < options.max_phase3_states) {
            visited.emplace(st->signature_hash, st);
            worklist.push_back(st);
          }
          break;
        }
      }
      if (!any) continue;
    }
  }

  // Phase IV (ln 29-35): re-run the swap sweeps on the visited states
  // (local groups changed after FAC/DIS). Visited states are processed in
  // ascending cost order and the sweep is limited to the most promising
  // ones — the tail of the list rarely overtakes a full sweep of the
  // leaders and re-sweeping everything dominates the runtime. Ties break
  // on signature hash so the order is deterministic.
  std::vector<StateRef> snapshot;
  snapshot.reserve(visited.size());
  for (const auto& [sig, st] : visited) snapshot.push_back(st);
  std::sort(snapshot.begin(), snapshot.end(),
            [](const StateRef& a, const StateRef& b) {
              return a->cost != b->cost
                         ? a->cost < b->cost
                         : a->signature_hash < b->signature_hash;
            });
  if (snapshot.size() > options.max_phase4_states) {
    snapshot.resize(options.max_phase4_states);
  }
  for (const StateRef& si : snapshot) {
    if (!options.enable_phase4_resweep) break;
    if (budget.Exhausted()) break;
    StateRef c = si;
    for (const auto& g : FindLocalGroups(c->workflow)) {
      if (budget.Exhausted()) break;
      ETLOPT_ASSIGN_OR_RETURN(
          c, OptimizeGroupSwaps(c, g.nodes, eval, pool.get(), &interner,
                                &scratch, greedy, options, &budget));
    }
    if (c->cost < smin->cost) smin = c;
  }

  // Post-processing (ln 36): split anything still merged.
  ETLOPT_ASSIGN_OR_RETURN(Workflow split, SplitAllMergedNodes(smin->workflow));
  ETLOPT_ASSIGN_OR_RETURN(State final_state,
                          eval.EvalFrom(std::move(split), *smin));

  result.best = std::move(final_state);
  if (result.best.signature.empty()) {
    result.best.signature = result.best.workflow.Signature();
  }
  result.visited_states = budget.visited;
  result.elapsed_millis = budget.ElapsedMillis();
  result.exhausted = !budget.Exhausted();
  result.perf = eval.perf();
  result.perf.threads = threads;
  result.perf.workflow_copies = Workflow::TotalCopies() - copies0;
  result.perf.undo_applies = Workflow::TotalUndos() - undos0;
  ETLOPT_RETURN_NOT_OK(FinalizeRecoveryPlan(result, model, options));
  return result;
}

}  // namespace

Status ValidateSearchOptions(const SearchOptions& options) {
  if (options.max_states == 0) {
    return Status::InvalidArgument(
        "search options: max_states must be positive");
  }
  if (options.max_millis <= 0) {
    return Status::InvalidArgument(
        "search options: max_millis must be positive");
  }
  if (options.max_phase4_states == 0) {
    return Status::InvalidArgument(
        "search options: max_phase4_states must be positive");
  }
  if (options.reliability != nullptr) {
    ETLOPT_RETURN_NOT_OK(ValidateReliabilityParams(*options.reliability));
  }
  return Status::OK();
}

Status FinalizeRecoveryPlan(SearchResult& result, const CostModel& model,
                            const SearchOptions& options) {
  if (options.reliability == nullptr) {
    result.recovery = RecoveryPointPlan{};
    return Status::OK();
  }
  std::shared_ptr<const CostBreakdown> bd = result.best.breakdown;
  if (bd == nullptr) {
    ETLOPT_ASSIGN_OR_RETURN(CostBreakdown fresh,
                            ComputeCostBreakdown(result.best.workflow, model));
    bd = std::make_shared<const CostBreakdown>(std::move(fresh));
  }
  result.recovery =
      PlaceRecoveryPoints(result.best.workflow, *bd, *options.reliability);
  return Status::OK();
}

std::string ResultFingerprint(const SearchOptions& options) {
  std::string fp = StrFormat(
      "max_states=%zu,max_millis=%lld,per_group=%zu,phase3=%zu,phase4=%zu,"
      "phases=%d%d%d%d",
      options.max_states, static_cast<long long>(options.max_millis),
      options.max_states_per_group, options.max_phase3_states,
      options.max_phase4_states, options.enable_phase1_sweep ? 1 : 0,
      options.enable_factorize ? 1 : 0, options.enable_distribute ? 1 : 0,
      options.enable_phase4_resweep ? 1 : 0);
  // Appended only when hinted, so every pre-existing fingerprint (and
  // with it every serving-layer plan-cache key) is byte-stable.
  if (options.cache_hint != nullptr) {
    fp += StrFormat(",cache_snapshot=%llu,cache_residual=%.17g",
                    static_cast<unsigned long long>(
                        options.cache_hint->snapshot_id),
                    options.cache_hint->residual);
  }
  if (options.reliability != nullptr) {
    fp += ",reliability=" + ReliabilityFingerprint(*options.reliability);
  }
  return fp;
}

std::string_view SearchAlgorithmToString(SearchAlgorithm algorithm) {
  switch (algorithm) {
    case SearchAlgorithm::kExhaustive: return "es";
    case SearchAlgorithm::kHeuristic: return "hs";
    case SearchAlgorithm::kHeuristicGreedy: return "hsg";
  }
  return "hs";
}

StatusOr<SearchAlgorithm> SearchAlgorithmFromString(std::string_view name) {
  if (name == "es") return SearchAlgorithm::kExhaustive;
  if (name == "hs") return SearchAlgorithm::kHeuristic;
  if (name == "hsg") return SearchAlgorithm::kHeuristicGreedy;
  return Status::InvalidArgument("unknown search algorithm: " +
                                 std::string(name));
}

StatusOr<SearchResult> RunSearch(
    SearchAlgorithm algorithm, const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints) {
  switch (algorithm) {
    case SearchAlgorithm::kExhaustive:
      return ExhaustiveSearch(initial, model, options);
    case SearchAlgorithm::kHeuristic:
      return HeuristicSearch(initial, model, options, merge_constraints);
    case SearchAlgorithm::kHeuristicGreedy:
      return HeuristicSearchGreedy(initial, model, options, merge_constraints);
  }
  return Status::InvalidArgument("unknown search algorithm");
}

StatusOr<State> MakeState(Workflow workflow, const CostModel& model) {
  if (!workflow.fresh()) {
    ETLOPT_RETURN_NOT_OK(workflow.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(CostBreakdown bd,
                          ComputeCostBreakdown(workflow, model));
  State s;
  s.cost = bd.total;
  s.signature_hash = workflow.SignatureHash();
  s.signature = workflow.Signature();
  s.breakdown = std::make_shared<const CostBreakdown>(std::move(bd));
  workflow.ClearDirtyNodes();
  s.workflow = std::move(workflow);
  return s;
}

StatusOr<std::vector<std::pair<State, TransitionRecord>>> EnumerateSuccessors(
    const State& state, const CostModel& model) {
  std::vector<Candidate> candidates =
      CollectSuccessorCandidates(state.workflow);
  std::vector<std::pair<State, TransitionRecord>> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    auto trial = c.apply();
    if (!trial.ok()) continue;
    ETLOPT_ASSIGN_OR_RETURN(State st,
                            MakeState(std::move(trial).value(), model));
    out.emplace_back(std::move(st), c.rec);
  }
  return out;
}

StatusOr<SearchResult> ExhaustiveSearch(const Workflow& initial,
                                        const CostModel& model,
                                        const SearchOptions& options) {
  ETLOPT_RETURN_NOT_OK(ValidateSearchOptions(options));
  Budget budget(options);
  StateEvaluator eval(model, /*fast_paths=*/!options.disable_fast_paths,
                      options.cache_hint, options.reliability);
  SignatureInterner interner;
  size_t threads = 1;
  std::unique_ptr<ThreadPool> pool = MakePool(options, &threads);
  NeighborScratch scratch(threads);
  const size_t copies0 = Workflow::TotalCopies();
  const size_t undos0 = Workflow::TotalUndos();
  Workflow w0 = initial;
  if (!w0.fresh()) {
    ETLOPT_RETURN_NOT_OK(w0.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(State s0v, eval.Eval(std::move(w0)));
  StateRef s0 = ShareState(std::move(s0v));
  SearchResult result;
  result.initial_cost = s0->cost;
  StateRef best = s0;

  // Lineage: state hash -> (parent hash, producing transition), for
  // reconstructing the rewrite path of the optimum.
  std::map<uint64_t, std::pair<uint64_t, TransitionRecord>> parent;
  const uint64_t initial_hash = interner.Intern(*s0);
  std::set<uint64_t> visited{initial_hash};
  std::deque<StateRef> queue;
  queue.push_back(std::move(s0));
  ++budget.visited;
  bool complete = true;
  while (!queue.empty()) {
    if (budget.Exhausted()) {
      complete = false;
      break;
    }
    StateRef cur = std::move(queue.front());
    queue.pop_front();
    // The whole frontier of `cur` is evaluated (in parallel when a pool is
    // set); dedup against `visited` and winner selection stay sequential
    // in candidate order, matching the serial algorithm state for state.
    std::vector<Candidate> candidates =
        CollectSuccessorCandidates(cur->workflow);
    ETLOPT_ASSIGN_OR_RETURN(
        auto outcomes, EvalCandidates(cur->workflow, *cur, candidates, eval,
                                      pool.get(), &scratch));
    budget.generated += candidates.size();
    for (size_t i = 0; i < outcomes.size(); ++i) {
      CandidateOutcome& o = outcomes[i];
      if (!o.alive) continue;
      if (!visited.insert(interner.Intern(o.signature_hash, o.paranoid_sig))
               .second) {
        continue;
      }
      ETLOPT_ASSIGN_OR_RETURN(
          State st, MaterializeOutcome(*cur, candidates[i], o, eval, &scratch));
      StateRef sp = ShareState(std::move(st));
      parent.emplace(sp->signature_hash,
                     std::make_pair(cur->signature_hash, candidates[i].rec));
      ++budget.visited;
      if (sp->cost < best->cost) best = sp;
      queue.push_back(std::move(sp));
      if (budget.Exhausted()) {
        complete = false;
        break;
      }
    }
  }
  // Walk the lineage back from the optimum to the initial state.
  uint64_t sig = best->signature_hash;
  while (sig != initial_hash) {
    auto it = parent.find(sig);
    ETLOPT_CHECK(it != parent.end());
    result.best_path.push_back(it->second.second);
    sig = it->second.first;
  }
  std::reverse(result.best_path.begin(), result.best_path.end());
  result.best = *best;
  if (result.best.signature.empty()) {
    result.best.signature = result.best.workflow.Signature();
  }
  result.visited_states = budget.visited;
  result.elapsed_millis = budget.ElapsedMillis();
  result.exhausted = complete;
  result.perf = eval.perf();
  result.perf.threads = threads;
  result.perf.workflow_copies = Workflow::TotalCopies() - copies0;
  result.perf.undo_applies = Workflow::TotalUndos() - undos0;
  ETLOPT_RETURN_NOT_OK(FinalizeRecoveryPlan(result, model, options));
  return result;
}

StatusOr<SearchResult> HeuristicSearch(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints) {
  return RunHeuristic(initial, model, options, merge_constraints,
                      /*greedy=*/false);
}

StatusOr<SearchResult> HeuristicSearchGreedy(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints) {
  return RunHeuristic(initial, model, options, merge_constraints,
                      /*greedy=*/true);
}

}  // namespace etlopt
