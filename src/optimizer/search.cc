#include "optimizer/search.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <set>

#include "common/macros.h"
#include "common/string_util.h"
#include "graph/analysis.h"
#include "optimizer/transitions.h"

namespace etlopt {

namespace {

using Clock = std::chrono::steady_clock;

// Shared budget accounting across one algorithm run.
struct Budget {
  Clock::time_point start = Clock::now();
  Clock::time_point deadline;
  size_t max_states = 0;
  size_t visited = 0;

  explicit Budget(const SearchOptions& options)
      : deadline(start + std::chrono::milliseconds(options.max_millis)),
        max_states(options.max_states) {}

  bool Exhausted() const {
    return visited >= max_states || Clock::now() >= deadline;
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start)
        .count();
  }
};

bool IsUnaryActivityNode(const Workflow& w, NodeId id) {
  return w.IsActivity(id) && w.chain(id).is_unary();
}

// Moves `a` downstream via swaps until its consumer is `stop`.
StatusOr<Workflow> ShiftForward(Workflow w, NodeId a, NodeId stop) {
  while (true) {
    std::vector<NodeId> consumers = w.Consumers(a);
    if (consumers.size() != 1) {
      return Status::FailedPrecondition("shift-forward: no single consumer");
    }
    if (consumers[0] == stop) return w;
    if (!IsUnaryActivityNode(w, consumers[0])) {
      return Status::FailedPrecondition(
          "shift-forward: blocked by a non-unary node");
    }
    ETLOPT_ASSIGN_OR_RETURN(w, ApplySwap(w, a, consumers[0]));
  }
}

// Moves `a` upstream via swaps until its provider is `stop`.
StatusOr<Workflow> ShiftBackward(Workflow w, NodeId a, NodeId stop) {
  while (true) {
    std::vector<NodeId> providers = w.Providers(a);
    if (providers.size() != 1) {
      return Status::FailedPrecondition("shift-backward: not unary");
    }
    if (providers[0] == stop) return w;
    if (!IsUnaryActivityNode(w, providers[0])) {
      return Status::FailedPrecondition(
          "shift-backward: blocked by a non-unary node");
    }
    ETLOPT_ASSIGN_OR_RETURN(w, ApplySwap(w, providers[0], a));
  }
}

// Adjacent pairs (u, d) with both endpoints inside `group`.
std::vector<std::pair<NodeId, NodeId>> AdjacentPairsInGroup(
    const Workflow& w, const std::set<NodeId>& group) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u : group) {
    if (!w.Exists(u)) continue;
    std::vector<NodeId> consumers = w.Consumers(u);
    if (consumers.size() == 1 && group.count(consumers[0])) {
      out.push_back({u, consumers[0]});
    }
  }
  return out;
}

// Phase I / IV inner loop: optimizes the order of one local group's
// activities by swaps only.
//
// HS explores every reachable ordering of the group (bounded BFS,
// Heuristic 4's divide-and-conquer); HS-Greedy hill-climbs, accepting only
// cost-improving swaps (§4.2's greedy variant).
StatusOr<State> OptimizeGroupSwaps(const State& start,
                                   const std::vector<NodeId>& group_nodes,
                                   const CostModel& model, bool greedy,
                                   const SearchOptions& options,
                                   Budget* budget) {
  std::set<NodeId> group(group_nodes.begin(), group_nodes.end());
  // Hill-climb: repeatedly apply the best cost-improving swap.
  auto hill_climb = [&](State current) -> StatusOr<State> {
    bool improved = true;
    while (improved && !budget->Exhausted()) {
      improved = false;
      State best = current;
      for (const auto& [u, d] : AdjacentPairsInGroup(current.workflow, group)) {
        auto trial = ApplySwap(current.workflow, u, d);
        if (!trial.ok()) continue;
        ETLOPT_ASSIGN_OR_RETURN(State st,
                                MakeState(std::move(trial).value(), model));
        ++budget->visited;
        if (st.cost < best.cost) {
          best = std::move(st);
          improved = true;
        }
      }
      if (improved) current = std::move(best);
    }
    return current;
  };
  if (greedy) return hill_climb(start);
  // HS: seed the bounded BFS with the hill-climbed ordering so the sweep
  // is never worse than the greedy one, then explore around it.
  ETLOPT_ASSIGN_OR_RETURN(State best, hill_climb(start));
  std::deque<State> queue;
  queue.push_back(best);
  queue.push_back(start);
  std::set<std::string> seen{best.signature, start.signature};
  while (!queue.empty() && seen.size() < options.max_states_per_group &&
         !budget->Exhausted()) {
    State cur = std::move(queue.front());
    queue.pop_front();
    for (const auto& [u, d] : AdjacentPairsInGroup(cur.workflow, group)) {
      auto trial = ApplySwap(cur.workflow, u, d);
      if (!trial.ok()) continue;
      ETLOPT_ASSIGN_OR_RETURN(State st,
                              MakeState(std::move(trial).value(), model));
      if (!seen.insert(st.signature).second) continue;
      ++budget->visited;
      if (st.cost < best.cost) best = st;
      queue.push_back(std::move(st));
    }
  }
  return best;
}

// Splits every multi-member chain back into singleton nodes (the final
// SPL applications of Fig. 7, line 36).
StatusOr<Workflow> SplitAllMergedNodes(Workflow w) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : w.ActivityNodeIds()) {
      if (w.chain(id).size() > 1) {
        ETLOPT_RETURN_NOT_OK(w.SplitNode(id, 1).status());
        changed = true;
        break;
      }
    }
  }
  ETLOPT_RETURN_NOT_OK(w.Refresh());
  return w;
}

// Finds the activity node whose chain has exactly one member labelled
// `label`.
StatusOr<NodeId> FindNodeByActivityLabel(const Workflow& w,
                                         const std::string& label) {
  NodeId found = kInvalidNode;
  for (NodeId id : w.ActivityNodeIds()) {
    for (const auto& m : w.chain(id).members()) {
      if (m.activity.label() == label) {
        if (found != kInvalidNode) {
          return Status::FailedPrecondition("ambiguous activity label: " +
                                            label);
        }
        found = id;
      }
    }
  }
  if (found == kInvalidNode) {
    return Status::NotFound("no activity labelled: " + label);
  }
  return found;
}

StatusOr<SearchResult> RunHeuristic(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints, bool greedy) {
  Budget budget(options);
  Workflow w0 = initial;
  if (!w0.fresh()) {
    ETLOPT_RETURN_NOT_OK(w0.Refresh());
  }
  // Pre-processing (Fig. 7, ln 4): apply merge constraints.
  for (const auto& mc : merge_constraints) {
    ETLOPT_ASSIGN_OR_RETURN(NodeId a1,
                            FindNodeByActivityLabel(w0, mc.first_label));
    ETLOPT_ASSIGN_OR_RETURN(NodeId a2,
                            FindNodeByActivityLabel(w0, mc.second_label));
    ETLOPT_ASSIGN_OR_RETURN(w0, ApplyMerge(w0, a1, a2));
  }
  ETLOPT_ASSIGN_OR_RETURN(State s0, MakeState(std::move(w0), model));
  ++budget.visited;
  SearchResult result;
  result.initial_cost = s0.cost;
  State smin = s0;

  // Fig. 7, ln 6-8: homologous (H), distributable (D), local groups (L).
  std::vector<HomologousPair> homologous = FindHomologousPairs(s0.workflow);
  std::vector<DistributableActivity> distributable =
      FindDistributable(s0.workflow);
  std::vector<LocalGroup> groups = FindLocalGroups(s0.workflow);

  // Phase I (ln 9-13): swap optimization inside each local group.
  State cur = s0;
  if (options.enable_phase1_sweep) {
    for (const auto& g : groups) {
      if (budget.Exhausted()) break;
      ETLOPT_ASSIGN_OR_RETURN(cur, OptimizeGroupSwaps(cur, g.nodes, model,
                                                      greedy, options,
                                                      &budget));
    }
  }
  if (cur.cost < smin.cost) smin = cur;

  // `visited` list of distinct promising states (ln 14).
  std::map<std::string, State> visited;
  visited.emplace(smin.signature, smin);

  // Phase II (ln 15-20): factorize homologous pairs that can be shifted
  // forward to their binary. A successful factorization can expose a new
  // homologous pair one level up a union tree (the shared clone and its
  // counterpart on the sibling flow), so each seed pair cascades to a
  // fixpoint.
  for (const auto& h : homologous) {
    if (!options.enable_factorize) break;
    if (budget.Exhausted()) break;
    const Workflow& base = smin.workflow;
    if (!base.Exists(h.a1) || !base.Exists(h.a2) || !base.Exists(h.binary))
      continue;
    std::string semantics = base.chain(h.a1).SemanticsString();
    auto shifted1 = ShiftForward(base, h.a1, h.binary);
    if (!shifted1.ok()) continue;
    auto shifted2 = ShiftForward(std::move(shifted1).value(), h.a2, h.binary);
    if (!shifted2.ok()) continue;
    auto factored =
        ApplyFactorize(std::move(shifted2).value(), h.binary, h.a1, h.a2);
    if (!factored.ok()) continue;
    ETLOPT_ASSIGN_OR_RETURN(State st,
                            MakeState(std::move(factored).value(), model));
    ++budget.visited;
    // Cascade: keep factorizing pairs with the same semantics.
    bool changed = true;
    while (changed && !budget.Exhausted()) {
      changed = false;
      for (const auto& hc : FindHomologousPairs(st.workflow)) {
        if (st.workflow.chain(hc.a1).SemanticsString() != semantics) continue;
        auto s1 = ShiftForward(st.workflow, hc.a1, hc.binary);
        if (!s1.ok()) continue;
        auto s2 = ShiftForward(std::move(s1).value(), hc.a2, hc.binary);
        if (!s2.ok()) continue;
        auto next = ApplyFactorize(std::move(s2).value(), hc.binary, hc.a1,
                                   hc.a2);
        if (!next.ok()) continue;
        ETLOPT_ASSIGN_OR_RETURN(st, MakeState(std::move(next).value(), model));
        ++budget.visited;
        changed = true;
        break;
      }
    }
    if (st.cost < smin.cost) smin = st;
    visited.emplace(st.signature, std::move(st));
  }

  // Phase III (ln 21-28): distribute the initial state's distributable
  // activities in every state produced so far (activities factorized in
  // Phase II have fresh node ids, so they are naturally excluded). The
  // worklist includes states Phase III itself produces, so distributions
  // of *different* activities compose (e.g. two post-union filters both
  // pushed into the flows).
  std::deque<State> worklist;
  std::set<std::string> queued;
  for (const auto& [sig, st] : visited) {
    worklist.push_back(st);
    queued.insert(sig);
  }
  while (!worklist.empty() && options.enable_distribute &&
         !budget.Exhausted()) {
    const State si = std::move(worklist.front());
    worklist.pop_front();
    for (const auto& d : distributable) {
      if (budget.Exhausted()) break;
      if (!si.workflow.Exists(d.node)) continue;
      std::string plabel = si.workflow.PriorityLabelOf(d.node);
      // Distribute, then cascade the clones (identified by the carried
      // priority label) down through any further binary activities — a
      // selection above a union tree can be pushed into every leaf flow.
      State st = si;
      bool changed = true;
      bool any = false;
      while (changed && !budget.Exhausted()) {
        changed = false;
        for (const auto& dc : FindDistributable(st.workflow)) {
          if (st.workflow.PriorityLabelOf(dc.node) != plabel) continue;
          auto shifted = ShiftBackward(st.workflow, dc.node, dc.binary);
          if (!shifted.ok()) continue;
          auto dist =
              ApplyDistribute(std::move(shifted).value(), dc.binary, dc.node);
          if (!dist.ok()) continue;
          ETLOPT_ASSIGN_OR_RETURN(st,
                                  MakeState(std::move(dist).value(), model));
          ++budget.visited;
          changed = true;
          any = true;
          // Every cascade depth is a candidate: pushing all the way down
          // is not always the cheapest placement.
          if (st.cost < smin.cost) smin = st;
          // Bound the composition frontier: past the cap, keep improving
          // states only and stop re-enqueueing.
          if (queued.insert(st.signature).second &&
              visited.size() < options.max_phase3_states) {
            visited.emplace(st.signature, st);
            worklist.push_back(st);
          }
          break;
        }
      }
      if (!any) continue;
    }
  }

  // Phase IV (ln 29-35): re-run the swap sweeps on the visited states
  // (local groups changed after FAC/DIS). Visited states are processed in
  // ascending cost order and the sweep is limited to the most promising
  // ones — the tail of the list rarely overtakes a full sweep of the
  // leaders and re-sweeping everything dominates the runtime.
  std::vector<State> snapshot;
  snapshot.reserve(visited.size());
  for (const auto& [sig, st] : visited) snapshot.push_back(st);
  std::sort(snapshot.begin(), snapshot.end(),
            [](const State& a, const State& b) { return a.cost < b.cost; });
  if (snapshot.size() > options.max_phase4_states) {
    snapshot.resize(options.max_phase4_states);
  }
  for (const State& si : snapshot) {
    if (!options.enable_phase4_resweep) break;
    if (budget.Exhausted()) break;
    State c = si;
    for (const auto& g : FindLocalGroups(c.workflow)) {
      if (budget.Exhausted()) break;
      ETLOPT_ASSIGN_OR_RETURN(
          c, OptimizeGroupSwaps(c, g.nodes, model, greedy, options, &budget));
    }
    if (c.cost < smin.cost) smin = c;
  }

  // Post-processing (ln 36): split anything still merged.
  ETLOPT_ASSIGN_OR_RETURN(Workflow split, SplitAllMergedNodes(smin.workflow));
  ETLOPT_ASSIGN_OR_RETURN(smin, MakeState(std::move(split), model));

  result.best = std::move(smin);
  result.visited_states = budget.visited;
  result.elapsed_millis = budget.ElapsedMillis();
  result.exhausted = !budget.Exhausted();
  return result;
}

}  // namespace

StatusOr<State> MakeState(Workflow workflow, const CostModel& model) {
  if (!workflow.fresh()) {
    ETLOPT_RETURN_NOT_OK(workflow.Refresh());
  }
  State s;
  ETLOPT_ASSIGN_OR_RETURN(s.cost, StateCost(workflow, model));
  s.signature = workflow.Signature();
  s.workflow = std::move(workflow);
  return s;
}

StatusOr<std::vector<std::pair<State, TransitionRecord>>> EnumerateSuccessors(
    const State& state, const CostModel& model) {
  const Workflow& w = state.workflow;
  std::vector<std::pair<State, TransitionRecord>> out;

  // SWA over every adjacent unary pair.
  for (NodeId u : w.ActivityNodeIds()) {
    if (!IsUnaryActivityNode(w, u)) continue;
    std::vector<NodeId> consumers = w.Consumers(u);
    if (consumers.size() != 1 || !IsUnaryActivityNode(w, consumers[0]))
      continue;
    NodeId d = consumers[0];
    auto trial = ApplySwap(w, u, d);
    if (!trial.ok()) continue;
    ETLOPT_ASSIGN_OR_RETURN(State st, MakeState(std::move(trial).value(), model));
    out.emplace_back(std::move(st),
                     TransitionRecord{TransitionRecord::Kind::kSwap,
                                      StrFormat("SWA(%s,%s)",
                                                w.PriorityLabelOf(u).c_str(),
                                                w.PriorityLabelOf(d).c_str())});
  }

  // FAC over homologous pairs adjacent to their binary.
  for (const auto& h : FindHomologousPairs(w)) {
    auto trial = ApplyFactorize(w, h.binary, h.a1, h.a2);
    if (!trial.ok()) continue;
    ETLOPT_ASSIGN_OR_RETURN(State st, MakeState(std::move(trial).value(), model));
    out.emplace_back(
        std::move(st),
        TransitionRecord{TransitionRecord::Kind::kFactorize,
                         StrFormat("FAC(%s,%s,%s)",
                                   w.PriorityLabelOf(h.binary).c_str(),
                                   w.PriorityLabelOf(h.a1).c_str(),
                                   w.PriorityLabelOf(h.a2).c_str())});
  }

  // DIS of direct consumers of binary activities.
  for (const auto& d : FindDistributable(w)) {
    auto trial = ApplyDistribute(w, d.binary, d.node);
    if (!trial.ok()) continue;
    ETLOPT_ASSIGN_OR_RETURN(State st, MakeState(std::move(trial).value(), model));
    out.emplace_back(
        std::move(st),
        TransitionRecord{TransitionRecord::Kind::kDistribute,
                         StrFormat("DIS(%s,%s)",
                                   w.PriorityLabelOf(d.binary).c_str(),
                                   w.PriorityLabelOf(d.node).c_str())});
  }
  return out;
}

StatusOr<SearchResult> ExhaustiveSearch(const Workflow& initial,
                                        const CostModel& model,
                                        const SearchOptions& options) {
  Budget budget(options);
  Workflow w0 = initial;
  if (!w0.fresh()) {
    ETLOPT_RETURN_NOT_OK(w0.Refresh());
  }
  ETLOPT_ASSIGN_OR_RETURN(State s0, MakeState(std::move(w0), model));
  SearchResult result;
  result.initial_cost = s0.cost;
  State best = s0;

  // Lineage: signature -> (parent signature, producing transition), for
  // reconstructing the rewrite path of the optimum.
  std::map<std::string, std::pair<std::string, TransitionRecord>> parent;
  std::set<std::string> visited{s0.signature};
  std::string initial_signature = s0.signature;
  std::deque<State> queue;
  queue.push_back(std::move(s0));
  ++budget.visited;
  bool complete = true;
  while (!queue.empty()) {
    if (budget.Exhausted()) {
      complete = false;
      break;
    }
    State cur = std::move(queue.front());
    queue.pop_front();
    ETLOPT_ASSIGN_OR_RETURN(auto successors,
                            EnumerateSuccessors(cur, model));
    for (auto& [st, rec] : successors) {
      if (!visited.insert(st.signature).second) continue;
      parent.emplace(st.signature, std::make_pair(cur.signature, rec));
      ++budget.visited;
      if (st.cost < best.cost) best = st;
      queue.push_back(std::move(st));
      if (budget.Exhausted()) {
        complete = false;
        break;
      }
    }
  }
  // Walk the lineage back from the optimum to the initial state.
  std::string sig = best.signature;
  while (sig != initial_signature) {
    auto it = parent.find(sig);
    ETLOPT_CHECK(it != parent.end());
    result.best_path.push_back(it->second.second);
    sig = it->second.first;
  }
  std::reverse(result.best_path.begin(), result.best_path.end());
  result.best = std::move(best);
  result.visited_states = budget.visited;
  result.elapsed_millis = budget.ElapsedMillis();
  result.exhausted = complete;
  return result;
}

StatusOr<SearchResult> HeuristicSearch(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints) {
  return RunHeuristic(initial, model, options, merge_constraints,
                      /*greedy=*/false);
}

StatusOr<SearchResult> HeuristicSearchGreedy(
    const Workflow& initial, const CostModel& model,
    const SearchOptions& options,
    const std::vector<MergeConstraint>& merge_constraints) {
  return RunHeuristic(initial, model, options, merge_constraints,
                      /*greedy=*/true);
}

}  // namespace etlopt
