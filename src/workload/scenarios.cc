#include "workload/scenarios.h"

#include "activity/templates.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

Schema PartsSchema() {
  return Schema::MakeOrDie({{"PKEY", DataType::kInt64},
                            {"SOURCE", DataType::kString},
                            {"DATE", DataType::kString},
                            {"COST_EUR", DataType::kDouble}});
}

Schema Parts2Schema() {
  return Schema::MakeOrDie({{"PKEY", DataType::kInt64},
                            {"SOURCE", DataType::kString},
                            {"DATE", DataType::kString},
                            {"DEPT", DataType::kString},
                            {"COST_USD", DataType::kDouble}});
}

// "DD/MM/YYYY" within 2004, day restricted to 1..28.
std::string EuropeanDate(Rng* rng) {
  return StrFormat("%02d/%02d/2004", static_cast<int>(rng->UniformInt(1, 28)),
                   static_cast<int>(rng->UniformInt(1, 12)));
}

// "MM/DD/YYYY" within 2004.
std::string AmericanDate(Rng* rng) {
  return StrFormat("%02d/%02d/2004", static_cast<int>(rng->UniformInt(1, 12)),
                   static_cast<int>(rng->UniformInt(1, 28)));
}

}  // namespace

StatusOr<Fig1Scenario> BuildFig1Scenario(double threshold) {
  Fig1Scenario s;
  Workflow& w = s.workflow;

  s.parts1 = w.AddRecordSet({"PARTS1", PartsSchema(), /*cardinality=*/1000});
  s.parts2 = w.AddRecordSet({"PARTS2", Parts2Schema(), /*cardinality=*/3000});

  // Flow 1: (3) NotNull check on the (already-Euro) cost.
  ETLOPT_ASSIGN_OR_RETURN(Activity nn,
                          MakeNotNull("nn_cost", "COST_EUR", 0.9));
  ETLOPT_ASSIGN_OR_RETURN(s.not_null, w.AddActivity(nn, {s.parts1}));

  // Flow 2: (4) Dollars -> Euros (entity-changing rename);
  ETLOPT_ASSIGN_OR_RETURN(
      Activity to_euro,
      MakeFunction("to_euro", "dollar2euro", {"COST_USD"}, "COST_EUR",
                   DataType::kDouble, /*drop_args=*/{"COST_USD"}));
  ETLOPT_ASSIGN_OR_RETURN(s.to_euro, w.AddActivity(to_euro, {s.parts2}));

  // (5) American -> European date format (entity-preserving in-place).
  ETLOPT_ASSIGN_OR_RETURN(
      Activity a2e,
      MakeInPlaceFunction("a2e_date", "a2e_date", "DATE", DataType::kString));
  ETLOPT_ASSIGN_OR_RETURN(s.a2e_date, w.AddActivity(a2e, {s.to_euro}));

  // (6) Aggregation: total cost per (PKEY, SOURCE, DATE); DEPT discarded.
  ETLOPT_ASSIGN_OR_RETURN(
      Activity agg,
      MakeAggregation("monthly_sum", {"PKEY", "SOURCE", "DATE"},
                      {{AggFn::kSum, "COST_EUR", "COST_EUR"}},
                      /*reduction=*/0.4));
  ETLOPT_ASSIGN_OR_RETURN(s.aggregate, w.AddActivity(agg, {s.a2e_date}));

  // (7) Union of the two flows.
  ETLOPT_ASSIGN_OR_RETURN(Activity u, MakeUnion("u"));
  ETLOPT_ASSIGN_OR_RETURN(s.union_node,
                          w.AddActivity(u, {s.not_null, s.aggregate}));

  // (8) Final threshold check on Euro costs.
  ETLOPT_ASSIGN_OR_RETURN(
      Activity sel,
      MakeSelection("cost_threshold",
                    Compare(CompareOp::kGe, Column("COST_EUR"),
                            Literal(Value::Double(threshold))),
                    /*selectivity=*/0.5));
  ETLOPT_ASSIGN_OR_RETURN(s.threshold, w.AddActivity(sel, {s.union_node}));

  // (9) Warehouse target.
  s.dw = w.AddRecordSet({"DW", PartsSchema(), 0});
  ETLOPT_RETURN_NOT_OK(w.Connect(s.threshold, s.dw));

  ETLOPT_RETURN_NOT_OK(w.Finalize());
  return s;
}

ExecutionInput MakeFig1Input(uint64_t seed, size_t rows_per_source) {
  Rng rng(seed);
  ExecutionInput input;
  std::vector<Record> parts1;
  parts1.reserve(rows_per_source);
  for (size_t i = 0; i < rows_per_source; ++i) {
    Record r;
    r.Append(Value::Int(rng.UniformInt(1, 50)));
    r.Append(Value::String("S1"));
    r.Append(Value::String(EuropeanDate(&rng)));
    // ~10% NULL costs exercise the NotNull cleansing.
    if (rng.Bernoulli(0.1)) {
      r.Append(Value::Null());
    } else {
      r.Append(Value::Double(rng.UniformDouble(10.0, 400.0)));
    }
    parts1.push_back(std::move(r));
  }
  std::vector<Record> parts2;
  parts2.reserve(rows_per_source);
  for (size_t i = 0; i < rows_per_source; ++i) {
    Record r;
    r.Append(Value::Int(rng.UniformInt(1, 50)));
    r.Append(Value::String("S2"));
    r.Append(Value::String(AmericanDate(&rng)));
    r.Append(Value::String(StrFormat("dept%d",
                                     static_cast<int>(rng.UniformInt(1, 5)))));
    r.Append(Value::Double(rng.UniformDouble(10.0, 500.0)));
    parts2.push_back(std::move(r));
  }
  input.source_data.emplace("PARTS1", std::move(parts1));
  input.source_data.emplace("PARTS2", std::move(parts2));
  return input;
}

StatusOr<Fig4Scenario> BuildFig4Scenario(double rows_per_flow) {
  Fig4Scenario s;
  Workflow& w = s.workflow;
  Schema src_schema = Schema::MakeOrDie({{"PKEY", DataType::kInt64},
                                         {"SOURCE", DataType::kString},
                                         {"QTY", DataType::kDouble}});
  s.src1 = w.AddRecordSet({"R1", src_schema, rows_per_flow});
  s.src2 = w.AddRecordSet({"R2", src_schema, rows_per_flow});

  // The two SK activities are homologous: same semantics, different flows.
  auto make_sk = [](const char* label) {
    return MakeSurrogateKey(label, {"PKEY", "SOURCE"}, "SKEY", "parts_lut",
                            /*drop_attrs=*/{"PKEY"});
  };
  ETLOPT_ASSIGN_OR_RETURN(Activity sk1, make_sk("sk1"));
  ETLOPT_ASSIGN_OR_RETURN(Activity sk2, make_sk("sk2"));
  ETLOPT_ASSIGN_OR_RETURN(s.sk1, w.AddActivity(sk1, {s.src1}));
  ETLOPT_ASSIGN_OR_RETURN(s.sk2, w.AddActivity(sk2, {s.src2}));

  ETLOPT_ASSIGN_OR_RETURN(Activity u, MakeUnion("u"));
  ETLOPT_ASSIGN_OR_RETURN(s.union_node, w.AddActivity(u, {s.sk1, s.sk2}));

  // sigma with 50% selectivity (the paper's setting), over QTY so that it
  // is independent of the surrogate key and can be distributed.
  ETLOPT_ASSIGN_OR_RETURN(
      Activity sel,
      MakeSelection("sigma",
                    Compare(CompareOp::kGe, Column("QTY"),
                            Literal(Value::Double(0.5))),
                    /*selectivity=*/0.5));
  ETLOPT_ASSIGN_OR_RETURN(s.selection, w.AddActivity(sel, {s.union_node}));

  Schema out_schema = Schema::MakeOrDie({{"SOURCE", DataType::kString},
                                         {"QTY", DataType::kDouble},
                                         {"SKEY", DataType::kInt64}});
  s.target = w.AddRecordSet({"T", out_schema, 0});
  ETLOPT_RETURN_NOT_OK(w.Connect(s.selection, s.target));

  ETLOPT_RETURN_NOT_OK(w.Finalize());
  return s;
}

ExecutionInput MakeFig4Input(uint64_t seed, size_t rows_per_source) {
  Rng rng(seed);
  ExecutionInput input;
  auto make_rows = [&rng, rows_per_source](const char* source) {
    std::vector<Record> rows;
    rows.reserve(rows_per_source);
    for (size_t i = 0; i < rows_per_source; ++i) {
      Record r;
      r.Append(Value::Int(rng.UniformInt(1, 20)));
      r.Append(Value::String(source));
      r.Append(Value::Double(rng.UniformDouble(0.0, 1.0)));
      rows.push_back(std::move(r));
    }
    return rows;
  };
  input.source_data.emplace("R1", make_rows("S1"));
  input.source_data.emplace("R2", make_rows("S2"));
  // Complete lookup table: every (PKEY, SOURCE) combination that the data
  // generator can emit resolves to a deterministic surrogate id.
  auto& lut = input.context.lookups["parts_lut"];
  int64_t next = 1000;
  for (int64_t pkey = 1; pkey <= 20; ++pkey) {
    for (const char* src : {"S1", "S2"}) {
      lut.emplace(std::vector<Value>{Value::Int(pkey), Value::String(src)},
                  Value::Int(next++));
    }
  }
  return input;
}

}  // namespace etlopt
