// Synthetic ETL workflow generator.
//
// The paper evaluates on 40 hand-designed scenarios characterized only by
// size: small / medium / large with 15-70 activities (§4.2). This
// generator reproduces that population with seeded randomness:
//
//  * F parallel source flows converge through a balanced tree of binary
//    activities (mostly unions) into a post-processing chain and a
//    warehouse target;
//  * all flows share the same "backbone" of entity-changing stages
//    (currency rename, date normalization, surrogate-key assignment) so
//    sibling flows carry homologous activities (Factorize candidates);
//  * each flow independently draws cleansing filters with random
//    selectivities and positions (Swap opportunities), and the post-union
//    chain carries filters that can be distributed into the flows.

#ifndef ETLOPT_WORKLOAD_GENERATOR_H_
#define ETLOPT_WORKLOAD_GENERATOR_H_

#include <vector>

#include "engine/executor.h"
#include "graph/workflow.h"

namespace etlopt {

/// The paper's three scenario sizes.
enum class WorkloadCategory { kSmall, kMedium, kLarge };

std::string_view WorkloadCategoryToString(WorkloadCategory c);

struct GeneratorOptions {
  WorkloadCategory category = WorkloadCategory::kSmall;
  uint64_t seed = 1;
  /// Source cardinalities are drawn uniformly from this range.
  double min_cardinality = 1000;
  double max_cardinality = 50000;
  /// When true, every source schema carries an extra int64 event-time
  /// column named `kEventTimeAttr`, so generated captures can be sliced
  /// into event-time windows by the streaming subsystem.
  bool with_event_time = false;
  /// Cross-tenant flow overlap. Negative (the default) keeps the legacy
  /// per-seed generation stream bit-for-bit. A value in [0, 1] switches
  /// to overlap mode: round(backbone_overlap * F) of the F flows — and
  /// the backbone variant itself — are drawn from a tenant-independent
  /// fixed-seed stream, so every workflow generated with the same
  /// category and overlap carries those flow subgraphs verbatim
  /// regardless of `seed`. The remaining flows and the post-union chain
  /// still come from the per-seed stream. This is the knob the shared
  /// result cache bench sweeps: overlapping flows hash to equal subgraph
  /// result signatures across tenants and so share cache entries.
  double backbone_overlap = -1.0;
};

/// The event-time attribute name `with_event_time` adds to source
/// schemas (and the default InputGenOptions::event_time_column).
inline constexpr const char* kEventTimeAttr = "ETS";

/// A generated scenario: the finalized workflow plus its nominal activity
/// count (for reporting).
struct GeneratedWorkflow {
  Workflow workflow;
  size_t activity_count = 0;
};

/// Generates one scenario. Equal options yield equal workflows.
StatusOr<GeneratedWorkflow> GenerateWorkflow(const GeneratorOptions& options);

/// Generates `count` scenarios with seeds base_seed, base_seed+1, ...
StatusOr<std::vector<GeneratedWorkflow>> GenerateSuite(
    WorkloadCategory category, size_t count, uint64_t base_seed);

/// Knobs for generated execution inputs. The defaults reproduce the
/// historical shape (small test inputs); benches scale rows_per_source
/// into the hundreds of thousands and widen key_domain so blocking
/// operators see realistically many distinct keys.
struct InputGenOptions {
  size_t rows_per_source = 1000;
  /// Source keys (and surrogate-key lookup coverage) range over
  /// [1, key_domain].
  int64_t key_domain = 50;
  /// Int64 attributes with this name are filled with a per-source
  /// non-decreasing event-time clock (milliseconds) instead of key
  /// draws. Sources without such an attribute are unaffected, so the
  /// default is harmless for historical workflows.
  std::string event_time_column = kEventTimeAttr;
  /// First timestamp of every source's clock.
  int64_t event_time_start = 1000000;
  /// Per-row clock advance is drawn uniformly from [0, this].
  int64_t event_time_max_step = 20;
};

/// Deterministic source data + surrogate-key lookups for executing a
/// generated workflow (used by the property tests and the engine benches).
ExecutionInput GenerateInputFor(const Workflow& workflow, uint64_t seed,
                                const InputGenOptions& options);

/// Convenience overload with the historical signature.
ExecutionInput GenerateInputFor(const Workflow& workflow, uint64_t seed,
                                size_t rows_per_source);

}  // namespace etlopt

#endif  // ETLOPT_WORKLOAD_GENERATOR_H_
