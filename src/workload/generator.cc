#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "activity/templates.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace etlopt {

namespace {

// Sizing knobs per category, tuned to land in the paper's 15-70 activity
// range (small ~15-20, medium ~40, large ~70).
struct CategoryParams {
  size_t flows;
  size_t min_flow_filters;
  size_t max_flow_filters;
  size_t post_filters;
  double aggregation_probability;
};

// Seed of the tenant-independent stream overlap mode draws shared flows
// from. Per-flow streams are derived as kSharedFlowSeed + 1 + flow_idx
// so a shared flow's content depends only on its index, never on how
// many filters earlier flows consumed.
constexpr uint64_t kSharedFlowSeed = 0x73686172656466ull;  // "sharedf"

CategoryParams ParamsFor(WorkloadCategory c) {
  switch (c) {
    case WorkloadCategory::kSmall:
      return {2, 3, 5, 2, 0.5};
    case WorkloadCategory::kMedium:
      return {4, 5, 7, 3, 0.6};
    case WorkloadCategory::kLarge:
      return {6, 7, 9, 4, 0.6};
  }
  return {2, 3, 5, 2, 0.5};
}

Schema SourceSchema(bool with_event_time) {
  std::vector<Attribute> attrs = {{"K", DataType::kInt64},
                                  {"SRC", DataType::kString},
                                  {"DATE", DataType::kString},
                                  {"V1", DataType::kDouble},
                                  {"V2", DataType::kDouble}};
  if (with_event_time) attrs.push_back({kEventTimeAttr, DataType::kInt64});
  auto schema = Schema::Make(std::move(attrs));
  ETLOPT_CHECK_OK(schema.status());
  return *std::move(schema);
}

// The shared backbone of entity-changing stages every flow applies (in
// this order), making sibling flows carry homologous activities.
struct Backbone {
  bool rename_v1 = true;   // dollar2euro: V1 -> V1E, drop V1
  bool normalize_date = false;  // a2e_date in place
  bool surrogate_key = false;   // {K} -> SKEY, drop K
  size_t size() const {
    return (rename_v1 ? 1 : 0) + (normalize_date ? 1 : 0) +
           (surrogate_key ? 1 : 0);
  }
};

// One step of a flow plan: either a backbone stage index or a filter.
struct PlanStep {
  enum class Kind { kRename, kDate, kSk, kFilter };
  Kind kind = Kind::kFilter;
};

// Makes a random filter over the attributes currently in `schema`.
StatusOr<Activity> MakeRandomFilter(const Schema& schema,
                                    const std::string& label, Rng* rng) {
  // Numeric candidates for SEL/DOM; all attributes qualify for NN.
  std::vector<std::string> numeric;
  std::vector<std::string> any;
  for (const auto& a : schema.attributes()) {
    any.push_back(a.name);
    if (a.type == DataType::kDouble) numeric.push_back(a.name);
  }
  double selectivity = rng->UniformDouble(0.2, 0.8);
  int kind = static_cast<int>(rng->UniformInt(0, numeric.empty() ? 0 : 2));
  switch (kind) {
    case 1: {
      const std::string& attr = rng->Pick(numeric);
      double threshold = rng->UniformDouble(0.0, 800.0);
      return MakeSelection(
          label,
          Compare(CompareOp::kGe, Column(attr),
                  Literal(Value::Double(threshold))),
          selectivity);
    }
    case 2: {
      const std::string& attr = rng->Pick(numeric);
      double lo = rng->UniformDouble(0.0, 300.0);
      double hi = rng->UniformDouble(400.0, 1000.0);
      return MakeDomainCheck(label, attr, lo, hi, selectivity);
    }
    default:
      return MakeNotNull(label, rng->Pick(any),
                         rng->UniformDouble(0.85, 0.99));
  }
}

// Builds one flow: source recordset + its activity chain; returns the
// last node and the flow's final schema.
struct FlowResult {
  NodeId last = kInvalidNode;
  Schema schema;
  size_t activities = 0;
};

StatusOr<FlowResult> BuildFlow(Workflow* w, size_t flow_idx,
                               const Backbone& backbone, size_t n_filters,
                               const GeneratorOptions& options, Rng* rng) {
  double cardinality =
      rng->UniformDouble(options.min_cardinality, options.max_cardinality);
  NodeId src = w->AddRecordSet({StrFormat("SRC%zu", flow_idx),
                                SourceSchema(options.with_event_time),
                                cardinality});

  // Interleave the backbone stages (fixed relative order) with filters.
  // Filter positions are biased towards the end of the flow: real-world
  // designers bolt cleansing checks on late, which is exactly the
  // sub-optimality the optimizer is meant to repair (paper §1).
  std::vector<PlanStep> plan;
  if (backbone.rename_v1) plan.push_back({PlanStep::Kind::kRename});
  if (backbone.normalize_date) plan.push_back({PlanStep::Kind::kDate});
  if (backbone.surrogate_key) plan.push_back({PlanStep::Kind::kSk});
  for (size_t i = 0; i < n_filters; ++i) {
    int64_t lo = rng->Bernoulli(0.75)
                     ? static_cast<int64_t>(plan.size())  // append at end
                     : 0;
    plan.insert(plan.begin() + rng->UniformInt(lo, plan.size()),
                {PlanStep::Kind::kFilter});
  }

  FlowResult out;
  out.schema = SourceSchema(options.with_event_time);
  NodeId cur = src;
  size_t step_idx = 0;
  for (const auto& step : plan) {
    Activity activity = [&]() -> Activity {
      std::string label =
          StrFormat("f%zu_s%zu", flow_idx, step_idx);
      switch (step.kind) {
        case PlanStep::Kind::kRename: {
          // Identical params across flows => homologous.
          auto a = MakeFunction("to_euro", "dollar2euro", {"V1"}, "V1E",
                                DataType::kDouble, {"V1"});
          ETLOPT_CHECK_OK(a.status());
          return *a;
        }
        case PlanStep::Kind::kDate: {
          auto a = MakeInPlaceFunction("norm_date", "a2e_date", "DATE",
                                       DataType::kString);
          ETLOPT_CHECK_OK(a.status());
          return *a;
        }
        case PlanStep::Kind::kSk: {
          auto a = MakeSurrogateKey("assign_skey", {"K"}, "SKEY", "gen_lut",
                                    {"K"});
          ETLOPT_CHECK_OK(a.status());
          return *a;
        }
        case PlanStep::Kind::kFilter: {
          auto a = MakeRandomFilter(out.schema, label, rng);
          ETLOPT_CHECK_OK(a.status());
          return *a;
        }
      }
      ETLOPT_CHECK(false);
      return *MakeUnion("unreachable");
    }();
    ETLOPT_ASSIGN_OR_RETURN(out.schema, activity.ComputeOutputSchema(
                                            std::vector<Schema>{out.schema}));
    ETLOPT_ASSIGN_OR_RETURN(cur, w->AddActivity(std::move(activity), {cur}));
    ++out.activities;
    ++step_idx;
  }
  out.last = cur;
  return out;
}

}  // namespace

std::string_view WorkloadCategoryToString(WorkloadCategory c) {
  switch (c) {
    case WorkloadCategory::kSmall:
      return "small";
    case WorkloadCategory::kMedium:
      return "medium";
    case WorkloadCategory::kLarge:
      return "large";
  }
  return "?";
}

StatusOr<GeneratedWorkflow> GenerateWorkflow(const GeneratorOptions& options) {
  Rng rng(options.seed);
  CategoryParams params = ParamsFor(options.category);
  // Overlap mode (backbone_overlap in [0,1]) makes the first
  // round(overlap * F) flows tenant-independent: their every draw — and
  // the backbone variant, which must be uniform across a workflow's
  // flows for union schemas to line up — comes from fixed-seed streams.
  // The legacy path (negative overlap) is untouched draw-for-draw.
  const bool overlap_mode = options.backbone_overlap >= 0.0;
  const size_t shared_flows =
      overlap_mode
          ? std::min(params.flows,
                     static_cast<size_t>(std::llround(
                         std::min(1.0, options.backbone_overlap) *
                         static_cast<double>(params.flows))))
          : 0;
  Backbone backbone;
  backbone.rename_v1 = true;
  if (overlap_mode) {
    Rng shared(kSharedFlowSeed);
    backbone.normalize_date = shared.Bernoulli(0.7);
    backbone.surrogate_key = shared.Bernoulli(0.5);
  } else {
    backbone.normalize_date = rng.Bernoulli(0.7);
    backbone.surrogate_key = rng.Bernoulli(0.5);
  }

  Workflow w;
  size_t total_activities = 0;

  // Flows.
  std::vector<FlowResult> flows;
  flows.reserve(params.flows);
  for (size_t f = 0; f < params.flows; ++f) {
    Rng shared(kSharedFlowSeed + 1 + f);
    Rng* flow_rng = f < shared_flows ? &shared : &rng;
    size_t n_filters = static_cast<size_t>(flow_rng->UniformInt(
        static_cast<int64_t>(params.min_flow_filters),
        static_cast<int64_t>(params.max_flow_filters)));
    ETLOPT_ASSIGN_OR_RETURN(
        FlowResult flow,
        BuildFlow(&w, f, backbone, n_filters, options, flow_rng));
    total_activities += flow.activities;
    flows.push_back(std::move(flow));
  }

  // Pair sibling flows with unions, then fold the pair outputs left-deep
  // (pairing maximizes homologous opportunities).
  std::vector<NodeId> layer;
  Schema flow_schema = flows[0].schema;
  size_t i = 0;
  for (; i + 1 < flows.size(); i += 2) {
    ETLOPT_ASSIGN_OR_RETURN(Activity u, MakeUnion(StrFormat("u_%zu", i / 2)));
    ETLOPT_ASSIGN_OR_RETURN(
        NodeId un, w.AddActivity(u, {flows[i].last, flows[i + 1].last}));
    ++total_activities;
    layer.push_back(un);
  }
  if (i < flows.size()) layer.push_back(flows[i].last);
  NodeId joined = layer[0];
  for (size_t j = 1; j < layer.size(); ++j) {
    ETLOPT_ASSIGN_OR_RETURN(Activity u,
                            MakeUnion(StrFormat("u_top_%zu", j)));
    ETLOPT_ASSIGN_OR_RETURN(joined, w.AddActivity(u, {joined, layer[j]}));
    ++total_activities;
  }

  // Post-union chain: filters, optionally around an aggregation.
  Schema post_schema = flow_schema;
  NodeId cur = joined;
  bool has_agg = rng.Bernoulli(params.aggregation_probability);
  size_t agg_at = has_agg ? rng.UniformIndex(params.post_filters + 1)
                          : params.post_filters + 1;
  for (size_t p = 0; p <= params.post_filters; ++p) {
    if (p == agg_at) {
      std::vector<std::string> group_by = {"SRC", "DATE"};
      if (post_schema.Contains("SKEY")) group_by.push_back("SKEY");
      std::string agg_attr = post_schema.Contains("V1E") ? "V1E" : "V2";
      ETLOPT_ASSIGN_OR_RETURN(
          Activity agg,
          MakeAggregation("post_agg", group_by,
                          {{AggFn::kSum, agg_attr, agg_attr}},
                          rng.UniformDouble(0.1, 0.5)));
      ETLOPT_ASSIGN_OR_RETURN(
          post_schema,
          agg.ComputeOutputSchema(std::vector<Schema>{post_schema}));
      ETLOPT_ASSIGN_OR_RETURN(cur, w.AddActivity(std::move(agg), {cur}));
      ++total_activities;
    }
    if (p == params.post_filters) break;
    ETLOPT_ASSIGN_OR_RETURN(
        Activity filter,
        MakeRandomFilter(post_schema, StrFormat("post_%zu", p), &rng));
    ETLOPT_ASSIGN_OR_RETURN(cur, w.AddActivity(std::move(filter), {cur}));
    ++total_activities;
  }

  NodeId target = w.AddRecordSet({"DW", post_schema, 0});
  ETLOPT_RETURN_NOT_OK(w.Connect(cur, target));
  ETLOPT_RETURN_NOT_OK(w.Finalize());

  GeneratedWorkflow out;
  out.workflow = std::move(w);
  out.activity_count = total_activities;
  return out;
}

StatusOr<std::vector<GeneratedWorkflow>> GenerateSuite(
    WorkloadCategory category, size_t count, uint64_t base_seed) {
  std::vector<GeneratedWorkflow> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    GeneratorOptions options;
    options.category = category;
    options.seed = base_seed + i;
    ETLOPT_ASSIGN_OR_RETURN(GeneratedWorkflow g, GenerateWorkflow(options));
    out.push_back(std::move(g));
  }
  return out;
}

ExecutionInput GenerateInputFor(const Workflow& workflow, uint64_t seed,
                                const InputGenOptions& options) {
  Rng rng(seed);
  ExecutionInput input;
  for (NodeId src : workflow.SourceRecordSets()) {
    const RecordSetDef& def = workflow.recordset(src);
    std::vector<Record> rows;
    rows.reserve(options.rows_per_source);
    int64_t event_clock = options.event_time_start;
    for (size_t i = 0; i < options.rows_per_source; ++i) {
      Record r;
      for (const auto& attr : def.schema.attributes()) {
        if (attr.type == DataType::kInt64 &&
            attr.name == options.event_time_column) {
          // Non-decreasing per source, so event-time windows preserve
          // the capture's row order when sliced.
          event_clock += rng.UniformInt(0, options.event_time_max_step);
          r.Append(Value::Int(event_clock));
        } else if (attr.type == DataType::kInt64) {
          r.Append(Value::Int(rng.UniformInt(1, options.key_domain)));
        } else if (attr.type == DataType::kDouble) {
          // A few NULLs keep the NotNull cleansing activities honest.
          if (rng.Bernoulli(0.05)) {
            r.Append(Value::Null());
          } else {
            r.Append(Value::Double(rng.UniformDouble(0.0, 1000.0)));
          }
        } else if (attr.name == "DATE") {
          r.Append(Value::String(
              StrFormat("%02d/%02d/2004",
                        static_cast<int>(rng.UniformInt(1, 12)),
                        static_cast<int>(rng.UniformInt(1, 12)))));
        } else {
          r.Append(Value::String(def.name));
        }
      }
      rows.push_back(std::move(r));
    }
    input.source_data.emplace(def.name, std::move(rows));
  }
  // Bind every surrogate-key lookup: generated SK keys range over the int
  // domain [1, key_domain].
  for (NodeId id : workflow.ActivityNodeIds()) {
    for (const auto& m : workflow.chain(id).members()) {
      if (m.activity.kind() != ActivityKind::kSurrogateKey) continue;
      const auto& p = m.activity.params_as<SurrogateKeyParams>();
      auto& lut = input.context.lookups[p.lookup_name];
      if (!lut.empty()) continue;
      int64_t next = 1000;
      for (int64_t k = 1; k <= options.key_domain; ++k) {
        lut.emplace(std::vector<Value>{Value::Int(k)}, Value::Int(next++));
      }
    }
  }
  return input;
}

ExecutionInput GenerateInputFor(const Workflow& workflow, uint64_t seed,
                                size_t rows_per_source) {
  InputGenOptions options;
  options.rows_per_source = rows_per_source;
  return GenerateInputFor(workflow, seed, options);
}

}  // namespace etlopt
