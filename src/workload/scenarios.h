// The paper's concrete scenarios, built programmatically:
//  * Fig. 1 — the PARTS1/PARTS2 running example (two sources, currency and
//    date conversions, monthly aggregation, union, threshold selection);
//  * Fig. 4 — the factorize/distribute cost illustration (two flows with
//    surrogate-key assignment and a selection around a union).
//
// These are used by the unit/integration tests, the quickstart example,
// and the figure-reproduction benches.

#ifndef ETLOPT_WORKLOAD_SCENARIOS_H_
#define ETLOPT_WORKLOAD_SCENARIOS_H_

#include "engine/executor.h"
#include "graph/workflow.h"

namespace etlopt {

/// Node handles into the Fig. 1 workflow, so tests can name the pieces.
struct Fig1Scenario {
  Workflow workflow;
  NodeId parts1 = kInvalidNode;       // source S1 (monthly, Euros)
  NodeId parts2 = kInvalidNode;       // source S2 (daily, Dollars)
  NodeId not_null = kInvalidNode;     // (3) NN(COST_EUR) on flow 1
  NodeId to_euro = kInvalidNode;      // (4) $2E on flow 2
  NodeId a2e_date = kInvalidNode;     // (5) American -> European dates
  NodeId aggregate = kInvalidNode;    // (6) gamma SUM per (PKEY,SOURCE,DATE)
  NodeId union_node = kInvalidNode;   // (7) U
  NodeId threshold = kInvalidNode;    // (8) sigma(COST_EUR >= threshold)
  NodeId dw = kInvalidNode;           // (9) warehouse target
};

/// Builds the finalized Fig. 1 workflow. `threshold` parameterizes the
/// final selection (paper: "values above a certain threshold").
StatusOr<Fig1Scenario> BuildFig1Scenario(double threshold = 100.0);

/// Deterministic source data + lookup context for executing Fig. 1.
/// `rows_per_source` rows are generated per source from `seed`; a fraction
/// of PARTS1 costs are NULL so the NotNull cleansing has work to do.
ExecutionInput MakeFig1Input(uint64_t seed, size_t rows_per_source);

/// Fig. 4: two source flows each with SK assignment, converging in a
/// union followed by a 50%-selective selection. This is the initial
/// configuration whose cost the paper calls c1.
struct Fig4Scenario {
  Workflow workflow;
  NodeId src1 = kInvalidNode;
  NodeId src2 = kInvalidNode;
  NodeId sk1 = kInvalidNode;
  NodeId sk2 = kInvalidNode;
  NodeId union_node = kInvalidNode;
  NodeId selection = kInvalidNode;
  NodeId target = kInvalidNode;
};

/// Builds the finalized Fig. 4 workflow with `rows_per_flow` as each
/// source's cardinality (the paper uses 8).
StatusOr<Fig4Scenario> BuildFig4Scenario(double rows_per_flow = 8.0);

/// Deterministic input for executing Fig. 4 scenarios.
ExecutionInput MakeFig4Input(uint64_t seed, size_t rows_per_source);

}  // namespace etlopt

#endif  // ETLOPT_WORKLOAD_SCENARIOS_H_
