// SharedResultCache: materialized intermediate results shared across
// concurrent workflow executions.
//
// A multi-tenant optimizer+executor service sees many workflows built
// from the same backbone of entity-changing stages over the same source
// extracts. Each entry here is one materialized subgraph output — the
// rows leaving a cacheable cut point — keyed by its subgraph result
// signature (graph/subgraph_signature.h), which two nodes share iff
// their upstream subtrees produce byte-identical rows over the bound
// inputs. A tenant that finds an entry skips executing the entire
// upstream cone; a tenant that misses executes it once and publishes for
// everyone else.
//
// Design mirrors PlanCache: N-way sharding (per-shard mutex, LRU list,
// byte budget) plus single-flight coalescing — but with a LEASE protocol
// instead of a compute callback, because an executor discovers its cut
// points mid-run and cannot package "execute this subtree" as a closure:
//
//   auto r = cache->Acquire(sig, /*may_wait=*/...);
//   switch (r.kind) {
//     case kHit:    /* reuse r.value, skip the subtree */
//     case kLeased: /* compute, then Publish(sig, entry) or Abort(sig) */
//     case kBusy:   /* someone else is computing; compute locally,
//                      do not publish */
//   }
//
// may_wait=true blocks a miss on another holder's in-flight lease and
// returns its published value (the coalescing path: k concurrent
// identical subgraphs ⇒ 1 execution). Executors only pass may_wait while
// they hold no leases of their own, which makes the wait graph acyclic —
// a lease holder never blocks — so the protocol cannot deadlock. An
// aborted lease wakes all waiters with kBusy: cache failure degrades to
// recomputation, never to an error.

#ifndef ETLOPT_SERVICE_SHARED_RESULT_CACHE_H_
#define ETLOPT_SERVICE_SHARED_RESULT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "records/record.h"

namespace etlopt {

/// One materialized subgraph output: the cut node's rows plus the
/// rows_out bookkeeping of every activity node in its upstream cone, in
/// the canonical SubtreeNodes() order — positional, so a consumer in a
/// DIFFERENT workflow (different NodeIds, same signature) can transfer
/// it into its own ExecutionResult.
struct CachedSubgraphResult {
  std::vector<Record> rows;
  std::vector<size_t> subtree_rows_out;
  /// Cache charge, set by the publisher (ApproxRowsBytes + bookkeeping).
  size_t bytes = 0;
};

/// Deterministic in-memory size estimate used for the byte budget.
size_t ApproxRowsBytes(const std::vector<Record>& rows);

struct SharedResultCacheOptions {
  /// Shard count, rounded up to a power of two and clamped to >= 1.
  size_t shards = 8;
  /// Total byte budget; each shard evicts LRU past budget/shards.
  /// Entries bigger than a whole shard's budget are never cached
  /// (counted as oversized) — but waiters coalescing on their flight
  /// still receive the value.
  size_t byte_budget = static_cast<size_t>(256) << 20;
};

/// Point-in-time counters. Monotonic except the entries/bytes gauges.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;      // includes coalesced waits and busy probes
  uint64_t coalesced = 0;   // misses served by another run's publication
  uint64_t busy = 0;        // misses computed locally (holder in flight)
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t oversized = 0;
  uint64_t aborted = 0;     // leases released without a publication
  size_t entries = 0;
  size_t bytes = 0;
  size_t byte_budget = 0;
  size_t shards = 0;

  double hit_rate() const {
    uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class SharedResultCache {
 public:
  explicit SharedResultCache(SharedResultCacheOptions options = {});

  SharedResultCache(const SharedResultCache&) = delete;
  SharedResultCache& operator=(const SharedResultCache&) = delete;

  enum class Outcome : int {
    kHit = 0,     // value returned (cached, or coalesced from a holder)
    kLeased = 1,  // caller owns the flight: Publish or Abort exactly once
    kBusy = 2,    // another run is computing; compute locally, no publish
  };

  struct AcquireResult {
    Outcome kind = Outcome::kBusy;
    std::shared_ptr<const CachedSubgraphResult> value;  // kHit only
  };

  /// Probes `signature`. On a miss with no flight in progress the caller
  /// is granted the lease (kLeased). On a miss with a flight in progress:
  /// blocks for the holder's publication when `may_wait` (kHit on
  /// publish, kBusy if the holder aborts), else returns kBusy at once.
  /// Callers must only pass may_wait while holding no leases — see the
  /// deadlock-freedom argument in the file comment.
  AcquireResult Acquire(uint64_t signature, bool may_wait);

  /// Completes the caller's lease: inserts under the byte budget (LRU
  /// eviction; oversized entries skipped) and hands the value to every
  /// waiter either way.
  void Publish(uint64_t signature,
               std::shared_ptr<const CachedSubgraphResult> entry);

  /// Releases the caller's lease without a value (the compute failed or
  /// was skipped); waiters wake with kBusy and fall back to recompute.
  void Abort(uint64_t signature);

  /// Plain lookup; counts a hit or a miss, never waits, never leases.
  std::shared_ptr<const CachedSubgraphResult> Lookup(uint64_t signature);

  ResultCacheStats Stats() const;

  void Clear();

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const CachedSubgraphResult> value;  // null if aborted
  };

  struct Shard {
    mutable std::mutex mu;
    // front = most recently used.
    std::list<std::pair<uint64_t, std::shared_ptr<const CachedSubgraphResult>>>
        lru;
    std::unordered_map<uint64_t, decltype(lru)::iterator> index;
    std::unordered_map<uint64_t, std::shared_ptr<Flight>> flights;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t coalesced = 0;
    uint64_t busy = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t oversized = 0;
    uint64_t aborted = 0;
  };

  Shard& ShardFor(uint64_t signature);
  // Requires shard.mu held.
  void InsertLocked(Shard& shard, uint64_t signature,
                    std::shared_ptr<const CachedSubgraphResult> entry);
  // Detaches the flight for `signature` (if any) and returns it.
  std::shared_ptr<Flight> TakeFlight(Shard& shard, uint64_t signature);

  size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_SERVICE_SHARED_RESULT_CACHE_H_
