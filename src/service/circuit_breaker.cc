#include "service/circuit_breaker.h"

#include <chrono>

#include "common/string_util.h"

namespace etlopt {

Status ValidateCircuitBreakerOptions(const CircuitBreakerOptions& options) {
  if (options.open_millis < 0) {
    return Status::InvalidArgument(StrFormat(
        "breaker: open_millis must be >= 0, got %lld",
        static_cast<long long>(options.open_millis)));
  }
  if (options.failure_threshold > 0 && options.half_open_probes < 1) {
    return Status::InvalidArgument(StrFormat(
        "breaker: half_open_probes must be >= 1, got %d",
        options.half_open_probes));
  }
  return Status::OK();
}

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)) {}

int64_t CircuitBreaker::Now() const {
  if (options_.now_millis) return options_.now_millis();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool CircuitBreaker::Allow() {
  if (options_.failure_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kOpen) {
    if (Now() - opened_at_millis_ >= options_.open_millis) {
      state_ = BreakerState::kHalfOpen;
      half_open_successes_ = 0;
      half_open_inflight_ = 0;
    } else {
      ++rejections_;
      return false;
    }
  }
  if (state_ == BreakerState::kHalfOpen) {
    // Budgeted admission: in-flight probes plus banked successes may not
    // exceed the quota, so concurrent callers racing into half-open get
    // exactly half_open_probes trials — not one each.
    if (half_open_inflight_ + half_open_successes_ >=
        options_.half_open_probes) {
      ++rejections_;
      return false;
    }
    ++half_open_inflight_;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    if (half_open_inflight_ > 0) --half_open_inflight_;
    if (++half_open_successes_ >= options_.half_open_probes) {
      state_ = BreakerState::kClosed;
      half_open_inflight_ = 0;
    }
  }
}

void CircuitBreaker::RecordFailure() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen ||
      (state_ == BreakerState::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    state_ = BreakerState::kOpen;
    opened_at_millis_ = Now();
    half_open_inflight_ = 0;
    ++trips_;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreakerStats CircuitBreaker::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CircuitBreakerStats stats;
  stats.state = state_;
  stats.trips = trips_;
  stats.rejections = rejections_;
  stats.consecutive_failures = consecutive_failures_;
  return stats;
}

}  // namespace etlopt
