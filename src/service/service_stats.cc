#include "service/service_stats.h"

#include "common/string_util.h"

namespace etlopt {

std::string ServiceStatsReport(const ServiceStats& stats) {
  std::string out = "optimizer service\n";
  auto row = [&out](const char* name, const std::string& value) {
    out += StrFormat("  %-22s %s\n", name, value.c_str());
  };
  row("requests", StrFormat("%llu (%llu rejected, %llu uncacheable)",
                            static_cast<unsigned long long>(stats.requests),
                            static_cast<unsigned long long>(stats.rejected),
                            static_cast<unsigned long long>(
                                stats.uncacheable)));
  row("searches run",
      StrFormat("%llu (%llu failed, %llu retries, %.1f ms total)",
                static_cast<unsigned long long>(stats.searches_run),
                static_cast<unsigned long long>(stats.failed_searches),
                static_cast<unsigned long long>(stats.search_retries),
                stats.search_millis));
  row("resilience",
      StrFormat("%llu degraded, %llu deadline-exceeded",
                static_cast<unsigned long long>(stats.degraded),
                static_cast<unsigned long long>(stats.deadline_exceeded)));
  row("breaker",
      StrFormat("%s (%llu trips, %llu rejections)",
                std::string(BreakerStateName(stats.breaker.state)).c_str(),
                static_cast<unsigned long long>(stats.breaker.trips),
                static_cast<unsigned long long>(stats.breaker.rejections)));
  row("queue", StrFormat("%zu in flight / %zu max, %zu workers",
                         stats.in_flight, stats.max_queue,
                         stats.worker_threads));
  const PlanCacheStats& c = stats.cache;
  row("plan cache hit rate",
      StrFormat("%.1f%% (%llu hits, %llu misses, %llu coalesced)",
                100.0 * c.hit_rate(),
                static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.misses),
                static_cast<unsigned long long>(c.coalesced)));
  row("plan cache size",
      StrFormat("%zu plans, %zu / %zu bytes over %zu shards", c.entries,
                c.bytes, c.byte_budget, c.shards));
  row("plan cache churn",
      StrFormat("%llu insertions, %llu evictions, %llu oversized",
                static_cast<unsigned long long>(c.insertions),
                static_cast<unsigned long long>(c.evictions),
                static_cast<unsigned long long>(c.oversized)));
  const ResultCacheStats& r = stats.result_cache;
  row("result cache hit rate",
      StrFormat("%.1f%% (%llu hits, %llu misses, %llu coalesced, %llu busy)",
                100.0 * r.hit_rate(),
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.misses),
                static_cast<unsigned long long>(r.coalesced),
                static_cast<unsigned long long>(r.busy)));
  row("result cache size",
      StrFormat("%zu results, %zu / %zu bytes over %zu shards", r.entries,
                r.bytes, r.byte_budget, r.shards));
  row("result cache churn",
      StrFormat("%llu insertions, %llu evictions, %llu oversized, "
                "%llu aborted",
                static_cast<unsigned long long>(r.insertions),
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.oversized),
                static_cast<unsigned long long>(r.aborted)));
  return out;
}

}  // namespace etlopt
