// Observability snapshot of the optimizer service: cache behavior, queue
// pressure, and search work, with the same human-readable report styling
// as the optimizer's report layer.

#ifndef ETLOPT_SERVICE_SERVICE_STATS_H_
#define ETLOPT_SERVICE_SERVICE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/circuit_breaker.h"
#include "service/shared_result_cache.h"

namespace etlopt {

/// Point-in-time counters of a PlanCache. All monotonic except the
/// entries/bytes gauges.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       // includes coalesced waits (they missed too)
  uint64_t coalesced = 0;    // misses served by another request's search
  uint64_t insertions = 0;
  uint64_t evictions = 0;    // entries dropped by the LRU byte budget
  uint64_t oversized = 0;    // results too large to cache at all
  size_t entries = 0;
  size_t bytes = 0;
  size_t byte_budget = 0;
  size_t shards = 0;

  double hit_rate() const {
    uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// Point-in-time counters of the whole service (caches included).
struct ServiceStats {
  PlanCacheStats cache;
  /// The shared intermediate-result cache attached to the service (see
  /// OptimizerService::AttachResultCache); all-zero when none is.
  ResultCacheStats result_cache;
  uint64_t requests = 0;          // accepted (queued or run inline)
  uint64_t rejected = 0;          // ResourceExhausted: queue full
  uint64_t uncacheable = 0;       // answered, but result not cacheable
  uint64_t searches_run = 0;      // actual optimizer invocations
  uint64_t failed_searches = 0;   // requests whose search failed for good
  uint64_t search_retries = 0;    // transient failures absorbed by retry
  uint64_t degraded = 0;          // answered by the greedy fallback
  uint64_t deadline_exceeded = 0; // requests that ran out of budget
  double search_millis = 0;       // wall-clock spent inside searches
  CircuitBreakerStats breaker;
  size_t in_flight = 0;           // gauge: queued + running right now
  size_t max_queue = 0;
  size_t worker_threads = 0;
};

/// Renders the snapshot as an aligned table (report-layer style).
std::string ServiceStatsReport(const ServiceStats& stats);

}  // namespace etlopt

#endif  // ETLOPT_SERVICE_SERVICE_STATS_H_
