#include "service/shared_result_cache.h"

#include <utility>

namespace etlopt {

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// splitmix-style finalizer: signatures are already well-mixed FNV hashes,
// but shard selection uses the low bits, so re-mix defensively.
inline size_t MixSignature(uint64_t sig) {
  uint64_t h = sig + 0x9e3779b97f4a7c15ull;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<size_t>(h);
}

size_t ApproxValueBytes(const Value& v) {
  constexpr size_t kBase = sizeof(Value);
  if (v.type() == DataType::kString) {
    return kBase + v.string_value().size();
  }
  return kBase;
}

}  // namespace

size_t ApproxRowsBytes(const std::vector<Record>& rows) {
  size_t bytes = sizeof(std::vector<Record>);
  for (const Record& r : rows) {
    bytes += sizeof(Record);
    for (const Value& v : r.values()) bytes += ApproxValueBytes(v);
  }
  return bytes;
}

SharedResultCache::SharedResultCache(SharedResultCacheOptions options) {
  size_t shards = RoundUpPowerOfTwo(options.shards == 0 ? 1 : options.shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
  shard_budget_ = options.byte_budget / shards;
}

SharedResultCache::Shard& SharedResultCache::ShardFor(uint64_t signature) {
  return *shards_[MixSignature(signature) & shard_mask_];
}

void SharedResultCache::InsertLocked(
    Shard& shard, uint64_t signature,
    std::shared_ptr<const CachedSubgraphResult> entry) {
  if (entry->bytes > shard_budget_) {
    ++shard.oversized;
    return;
  }
  auto it = shard.index.find(signature);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.bytes += entry->bytes;
  shard.lru.emplace_front(signature, std::move(entry));
  shard.index[signature] = shard.lru.begin();
  ++shard.insertions;
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const auto& victim = shard.lru.back();
    shard.bytes -= victim.second->bytes;
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::shared_ptr<SharedResultCache::Flight> SharedResultCache::TakeFlight(
    Shard& shard, uint64_t signature) {
  auto it = shard.flights.find(signature);
  if (it == shard.flights.end()) return nullptr;
  std::shared_ptr<Flight> flight = std::move(it->second);
  shard.flights.erase(it);
  return flight;
}

SharedResultCache::AcquireResult SharedResultCache::Acquire(uint64_t signature,
                                                            bool may_wait) {
  Shard& shard = ShardFor(signature);
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(signature);
    if (it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return {Outcome::kHit, it->second->second};
    }
    ++shard.misses;
    auto fit = shard.flights.find(signature);
    if (fit == shard.flights.end()) {
      shard.flights[signature] = std::make_shared<Flight>();
      return {Outcome::kLeased, nullptr};
    }
    if (!may_wait) {
      ++shard.busy;
      return {Outcome::kBusy, nullptr};
    }
    flight = fit->second;
  }
  // Coalescing path: block on the holder's publication. The holder never
  // waits on anyone (callers pass may_wait only while holding no leases),
  // so this wait cannot participate in a cycle.
  std::unique_lock<std::mutex> lock(flight->mu);
  flight->cv.wait(lock, [&flight] { return flight->done; });
  if (flight->value == nullptr) {
    // Holder aborted: degrade to local recomputation.
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    ++shard.busy;
    return {Outcome::kBusy, nullptr};
  }
  {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    ++shard.coalesced;
  }
  return {Outcome::kHit, flight->value};
}

void SharedResultCache::Publish(
    uint64_t signature, std::shared_ptr<const CachedSubgraphResult> entry) {
  Shard& shard = ShardFor(signature);
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    flight = TakeFlight(shard, signature);
    InsertLocked(shard, signature, entry);
  }
  if (flight != nullptr) {
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->done = true;
      flight->value = std::move(entry);
    }
    flight->cv.notify_all();
  }
}

void SharedResultCache::Abort(uint64_t signature) {
  Shard& shard = ShardFor(signature);
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    flight = TakeFlight(shard, signature);
    ++shard.aborted;
  }
  if (flight != nullptr) {
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->done = true;
      flight->value = nullptr;
    }
    flight->cv.notify_all();
  }
}

std::shared_ptr<const CachedSubgraphResult> SharedResultCache::Lookup(
    uint64_t signature) {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(signature);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

ResultCacheStats SharedResultCache::Stats() const {
  ResultCacheStats stats;
  stats.shards = shards_.size();
  stats.byte_budget = shard_budget_ * shards_.size();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.coalesced += shard->coalesced;
    stats.busy += shard->busy;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.oversized += shard->oversized;
    stats.aborted += shard->aborted;
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

void SharedResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace etlopt
